"""Builder (Fig. 4) and block-analysis (Fig. 9) tests."""

import numpy as np
import pytest

from repro.core.analysis import MEDIUM_MAX, SPARSE_MAX, categorize_blocks
from repro.core.builder import build_bitbsr
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

from tests.conftest import make_random_dense


class TestBuilder:
    def test_report_matches_table1_semantics(self, rng):
        dense = make_random_dense(rng, 100, 100, 0.1)
        coo = COOMatrix.from_dense(dense)
        report = build_bitbsr(coo)
        assert report.nrow == 100
        assert report.nnz == coo.nnz
        assert report.block_nrow == 13  # ceil(100 / 8)
        assert report.block_nnz == report.matrix.nblocks
        row = report.table1_row("test")
        assert row == {"Matrix": "test", "nrow": 100, "nnz": coo.nnz, "Bnrow": 13, "Bnnz": report.matrix.nblocks}

    def test_accepts_csr_input(self, small_coo):
        report = build_bitbsr(CSRMatrix.from_coo(small_coo))
        assert report.nnz == small_coo.nnz

    def test_host_cost_recorded(self, small_coo):
        report = build_bitbsr(small_coo)
        assert report.host_seconds > 0
        assert report.host_ns_per_nnz > 0

    def test_mean_block_nnz(self, small_coo):
        report = build_bitbsr(small_coo)
        assert report.mean_block_nnz == pytest.approx(report.nnz / report.block_nnz)


class TestAnalysis:
    def test_paper_example_fig4(self):
        """The highlighted Fig. 4 block: f at (0,0), g/i/j elsewhere."""
        dense = np.zeros((8, 8), dtype=np.float32)
        dense[0, 0] = 1.0  # 'f': row0 = 0x01
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        assert int(bit.bitmaps[0]) & 0xFF == 0x01

    def test_category_boundaries(self):
        """Blocks of exactly 32 / 33 / 48 / 49 nonzeros split correctly."""
        blocks = []
        for k in (32, 33, 48, 49):
            d = np.zeros((8, 8), dtype=np.float32)
            d.reshape(-1)[:k] = 1.0
            blocks.append(d)
        dense = np.zeros((8, 32), dtype=np.float32)
        for i, b in enumerate(blocks):
            dense[:, i * 8 : (i + 1) * 8] = b
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        profile = categorize_blocks(bit)
        assert profile.nblocks == 4
        assert profile.sparse_blocks == 1   # k = 32
        assert profile.medium_blocks == 2   # k = 33, 48
        assert profile.dense_blocks == 1    # k = 49

    def test_ratios_sum_to_one(self, rng):
        dense = make_random_dense(rng, 80, 80, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        p = categorize_blocks(bit)
        assert p.sparse_ratio + p.medium_ratio + p.dense_ratio == pytest.approx(1.0)
        assert 0 < p.fill_ratio <= 1

    def test_constants_match_paper(self):
        assert SPARSE_MAX == 32
        assert MEDIUM_MAX == 48

    def test_empty_profile(self):
        coo = COOMatrix((8, 8), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
        p = categorize_blocks(build_bitbsr(coo).matrix)
        assert p.nblocks == 0
        assert p.sparse_ratio == 0.0

"""Lane-accurate SpMM pairing kernel tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import build_bitbsr
from repro.core.spmm import spaden_spmm
from repro.core.spmm_simulated import spaden_spmm_simulated
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense


class TestSimulatedSpMM:
    def test_matches_vectorized_and_dense(self, rng):
        dense = make_random_dense(rng, 32, 40, 0.25)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        X = fp16_exact_values(rng, 40 * 6).reshape(40, 6)
        Y_sim, stats = spaden_spmm_simulated(bit, X)
        Y_fast = spaden_spmm(bit, X)
        ref = dense.astype(np.float64) @ X.astype(np.float64)
        assert np.allclose(Y_sim, ref, rtol=1e-3, atol=1e-2)
        assert np.allclose(Y_sim, Y_fast, rtol=1e-4, atol=1e-3)

    def test_mma_count_is_steps_times_panels(self, rng):
        dense = make_random_dense(rng, 32, 32, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        lens = np.diff(bit.block_row_pointers)
        top, bottom = lens[0::2], lens[1::2]
        if bottom.size < top.size:
            bottom = np.concatenate([bottom, [0]])
        steps = int(np.maximum(top, bottom).sum())
        for k, panels in ((4, 1), (8, 1), (9, 2), (16, 2)):
            X = fp16_exact_values(rng, 32 * k).reshape(32, k)
            _, stats = spaden_spmm_simulated(bit, X)
            assert stats.mma_ops == steps * panels, k

    def test_ragged_panel_edges_zero_filled(self, rng):
        """k not a multiple of 8: the ragged final panel must not read or
        write out of bounds, and results stay exact."""
        dense = make_random_dense(rng, 24, 24, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        X = fp16_exact_values(rng, 24 * 5).reshape(24, 5)
        Y, _ = spaden_spmm_simulated(bit, X)
        ref = dense.astype(np.float64) @ X.astype(np.float64)
        assert Y.shape == (24, 5)
        assert np.allclose(Y, ref, rtol=1e-3, atol=1e-2)

    def test_odd_block_rows(self, rng):
        dense = make_random_dense(rng, 24, 16, 0.4)  # 3 block rows
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        X = fp16_exact_values(rng, 16 * 8).reshape(16, 8)
        Y, _ = spaden_spmm_simulated(bit, X)
        assert np.allclose(Y, dense.astype(np.float64) @ X.astype(np.float64), rtol=1e-3, atol=1e-2)

    def test_shape_check(self, rng):
        bit = build_bitbsr(COOMatrix.from_dense(make_random_dense(rng, 16, 16, 0.3))).matrix
        with pytest.raises(KernelError):
            spaden_spmm_simulated(bit, np.ones((15, 3), dtype=np.float32))

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 12))
    def test_property_vs_reference(self, seed, k):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, 20, 28, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        X = fp16_exact_values(rng, 28 * k).reshape(28, k)
        Y, _ = spaden_spmm_simulated(bit, X)
        assert np.allclose(Y, dense.astype(np.float64) @ X.astype(np.float64), rtol=1e-3, atol=1e-2)

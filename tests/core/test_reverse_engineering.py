"""§3 probe tests: the mapping is discovered, not assumed."""

import numpy as np
import pytest

from repro.constants import REGISTERS_PER_LANE
from repro.core.reverse_engineering import (
    probe_fragment_layout,
    valid_register_range,
)
from repro.gpu.fragment import FragmentKind, lane_register_element


class TestProbe:
    def test_register_range_is_eight(self):
        """The paper's first finding: valid indices are only 0..7."""
        assert valid_register_range() == REGISTERS_PER_LANE == 8

    @pytest.mark.parametrize("kind", list(FragmentKind))
    def test_probe_agrees_with_hardware_tables(self, kind):
        """The probe must rediscover exactly the simulated layout."""
        layout = probe_fragment_layout(kind)
        for lane in range(32):
            for reg in range(8):
                assert layout.element_of(lane, reg) == lane_register_element(kind, lane, reg)

    def test_accumulator_portion_pairs_match_paper(self):
        """Fig. 2: x[0,1] top-left ... x[6,7] bottom-right."""
        layout = probe_fragment_layout(FragmentKind.ACCUMULATOR)
        assert layout.portion_registers == ((0, 1), (2, 3), (4, 5), (6, 7))

    def test_diagonal_registers_shared_across_kinds(self):
        """Algorithm 3 writes x[0,1]/x[6,7] in A, B and C fragments alike;
        the probe confirms those pairs always address the diagonal."""
        for kind in FragmentKind:
            layout = probe_fragment_layout(kind)
            assert layout.portion_registers[0] == (0, 1)
            assert layout.portion_registers[3] == (6, 7)

    def test_owner_views_cover_warp(self):
        layout = probe_fragment_layout(FragmentKind.ACCUMULATOR)
        assert set(np.unique(layout.owner_lane)) == set(range(32))
        assert set(np.unique(layout.owner_register)) == set(range(8))

"""Algorithm 3/4 tests: pairing on the fragment diagonals and extraction."""

import numpy as np
import pytest

from repro.core.extract import extract_result_vector
from repro.core.pairing import pair_block_rows
from repro.core.spmv import register_bitbsr_arrays
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.coo import COOMatrix
from repro.gpu.fragment import Fragment, FragmentKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.mma import MMAUnit, Precision
from repro.gpu.warp import Warp

from tests.conftest import make_random_dense


def setup(rng, nrows=32, ncols=40, density=0.3):
    dense = make_random_dense(rng, nrows, ncols, density)
    bit = BitBSRMatrix.from_coo(COOMatrix.from_dense(dense))
    mem = GlobalMemory()
    x = make_random_dense(rng, 1, ncols, 1.0)[0]
    register_bitbsr_arrays(mem, bit, x)
    return dense, bit, mem, x


class TestPairing:
    def test_accumulator_diagonal_holds_both_results(self, rng):
        dense, bit, mem, x = setup(rng)
        warp = Warp(mem)
        acc = pair_block_rows(warp, MMAUnit(Precision.FP16, mem.stats), bit, 0, 1)
        m = acc.to_matrix()
        ref = dense.astype(np.float64) @ x.astype(np.float64)
        # column 0 of the top-left portion = y[0:8], of bottom-right = y[8:16]
        assert np.allclose(m[:8, 0], ref[:8], rtol=1e-3, atol=1e-2)
        assert np.allclose(m[8:, 8], ref[8:16], rtol=1e-3, atol=1e-2)

    def test_off_diagonal_portions_stay_zero(self, rng):
        """A and B only populate the diagonal portions, so the MMA result
        must be block-diagonal."""
        dense, bit, mem, x = setup(rng)
        acc = pair_block_rows(Warp(mem), MMAUnit(Precision.FP16, mem.stats), bit, 0, 1)
        m = acc.to_matrix()
        assert not m[:8, 8:].any()
        assert not m[8:, :8].any()

    def test_unpaired_final_row(self, rng):
        dense, bit, mem, x = setup(rng, nrows=24)  # 3 block rows
        acc = pair_block_rows(Warp(mem), MMAUnit(Precision.FP16, mem.stats), bit, 2, None)
        ref = dense.astype(np.float64) @ x.astype(np.float64)
        assert np.allclose(acc.to_matrix()[:8, 0], ref[16:24], rtol=1e-3, atol=1e-2)
        assert not acc.to_matrix()[8:, 8:].any()

    def test_imbalanced_rows_zero_fill(self, rng):
        """When the two paired rows have different block counts, the
        shorter one's surplus steps must not corrupt its result."""
        dense = np.zeros((16, 40), dtype=np.float32)
        dense[0, :] = 1.0  # top block row: 5 blocks
        dense[9, 0] = 2.0  # bottom block row: 1 block
        bit = BitBSRMatrix.from_coo(COOMatrix.from_dense(dense))
        mem = GlobalMemory()
        x = np.ones(40, dtype=np.float32)
        register_bitbsr_arrays(mem, bit, x)
        acc = pair_block_rows(Warp(mem), MMAUnit(Precision.FP16, mem.stats), bit, 0, 1)
        m = acc.to_matrix()
        assert m[0, 0] == 40.0
        assert m[9, 8] == 2.0

    def test_row_bounds(self, rng):
        _, bit, mem, _ = setup(rng)
        with pytest.raises(KernelError):
            pair_block_rows(Warp(mem), MMAUnit(), bit, bit.block_rows_count, None)

    def test_mma_count_is_max_of_row_lengths(self, rng):
        _, bit, mem, _ = setup(rng)
        lens = np.diff(bit.block_row_pointers)
        stats_before = mem.stats.mma_ops
        pair_block_rows(Warp(mem), MMAUnit(Precision.FP16, mem.stats), bit, 0, 1)
        assert mem.stats.mma_ops - stats_before == max(int(lens[0]), int(lens[1]))


class TestExtraction:
    def test_predicated_store_of_first_columns(self, rng):
        mem = GlobalMemory()
        mem.register("C_values", np.zeros(32, dtype=np.float32))
        acc = Fragment(FragmentKind.ACCUMULATOR)
        m = np.zeros((16, 16), dtype=np.float32)
        m[:8, 0] = np.arange(8)
        m[8:, 8] = np.arange(8) * 10
        acc.load_matrix(m)
        warp = Warp(mem)
        extract_result_vector(warp, acc, block_row_top=1, block_row_bottom=2)
        out = mem.array("C_values")
        assert np.array_equal(out[8:16], np.arange(8))
        assert np.array_equal(out[16:24], np.arange(8) * 10)
        assert not out[:8].any()

    def test_each_store_is_one_sector(self, rng):
        mem = GlobalMemory()
        mem.register("C_values", np.zeros(16, dtype=np.float32))
        acc = Fragment(FragmentKind.ACCUMULATOR)
        warp = Warp(mem)
        extract_result_vector(warp, acc, 0, 1)
        assert mem.stats.store_transactions == 2
        assert mem.stats.global_store_bytes == 64

    def test_requires_accumulator(self, rng):
        mem = GlobalMemory()
        mem.register("C_values", np.zeros(16, dtype=np.float32))
        with pytest.raises(KernelError):
            extract_result_vector(Warp(mem), Fragment(FragmentKind.MATRIX_A), 0, None)

"""Mixed-precision accuracy tests (the §2.2 claim)."""

import numpy as np
import pytest

from repro.core.precision import precision_study
from repro.formats.coo import COOMatrix
from repro.gpu.mma import Precision
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense


class TestPrecisionStudy:
    def test_fp16_exact_inputs_are_lossless(self, rng):
        """The paper's setting: half-representable values -> fp16 output
        'without impacting the result's final accuracy'."""
        dense = make_random_dense(rng, 64, 64, 0.2)  # fp16-exact values
        coo = COOMatrix.from_dense(dense)
        x = fp16_exact_values(rng, 64)
        reports = {r.precision: r for r in precision_study(coo, x)}
        # sums of fp16-exact products stay in fp32 range; tiny rounding only
        assert reports[Precision.FP16].max_rel_error < 1e-5
        assert reports[Precision.FP32].max_rel_error < 1e-6

    def test_general_values_show_precision_ladder(self, rng):
        """Irrational values: FP16 < TF32 < FP32 accuracy ordering."""
        dense = make_random_dense(rng, 64, 64, 0.3)
        mask = dense != 0
        dense = np.where(mask, rng.standard_normal(dense.shape), 0.0).astype(np.float32)
        coo = COOMatrix.from_dense(dense)
        x = rng.standard_normal(64).astype(np.float32)
        reports = {r.precision: r for r in precision_study(coo, x)}
        assert (
            reports[Precision.FP32].max_rel_error
            <= reports[Precision.TF32].max_rel_error
            <= reports[Precision.FP16].max_rel_error
        )
        # fp16 inputs keep ~10-11 bits, tf32 likewise but without range loss
        assert reports[Precision.FP16].max_rel_error < 1e-2
        assert reports[Precision.FP16].equivalent_bits > 6

    def test_empty_matrix(self):
        coo = COOMatrix((8, 8), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
        reports = precision_study(coo, np.ones(8))
        assert all(r.max_abs_error == 0.0 for r in reports)

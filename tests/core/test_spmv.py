"""End-to-end Spaden SpMV: simulator == vectorized == scipy reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv, spaden_spmv_simulated
from repro.errors import KernelError
from repro.formats.convert import to_scipy
from repro.formats.coo import COOMatrix
from repro.gpu.mma import Precision
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense


@st.composite
def spmv_cases(draw):
    nrows = draw(st.integers(1, 64))
    ncols = draw(st.integers(1, 64))
    density = draw(st.sampled_from([0.05, 0.2, 0.5]))
    seed = draw(st.integers(0, 2**31 - 1))
    return nrows, ncols, density, seed


class TestAgainstReference:
    @settings(max_examples=15, deadline=None)
    @given(spmv_cases())
    def test_simulated_equals_fast_equals_scipy(self, case):
        nrows, ncols, density, seed = case
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, nrows, ncols, density)
        coo = COOMatrix.from_dense(dense)
        bit = build_bitbsr(coo).matrix
        x = fp16_exact_values(rng, ncols)
        ref = to_scipy(coo).astype(np.float64) @ x.astype(np.float64)
        y_fast = spaden_spmv(bit, x)
        y_sim, _ = spaden_spmv_simulated(bit, x)
        assert np.allclose(y_fast, ref, rtol=1e-4, atol=1e-3)
        assert np.allclose(y_sim, ref, rtol=1e-4, atol=1e-3)
        assert np.allclose(y_sim, y_fast, rtol=1e-5, atol=1e-5)

    def test_precision_modes(self, rng):
        dense = make_random_dense(rng, 32, 32, 0.3)
        coo = COOMatrix.from_dense(dense)
        bit = build_bitbsr(coo, value_dtype=np.float32).matrix
        x = fp16_exact_values(rng, 32)
        ref = dense.astype(np.float64) @ x.astype(np.float64)
        for precision in (Precision.FP16, Precision.TF32, Precision.FP32):
            y = spaden_spmv(bit, x, precision=precision)
            assert np.allclose(y, ref, rtol=1e-3, atol=1e-2), precision

    def test_empty_matrix(self):
        coo = COOMatrix((16, 16), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
        bit = build_bitbsr(coo).matrix
        y, stats = spaden_spmv_simulated(bit, np.ones(16, dtype=np.float32))
        assert not y.any()
        assert stats.mma_ops == 0

    def test_shape_check(self, rng):
        dense = make_random_dense(rng, 16, 16, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        with pytest.raises(KernelError):
            spaden_spmv(bit, np.ones(17, dtype=np.float32))
        with pytest.raises(KernelError):
            spaden_spmv_simulated(bit, np.ones(17, dtype=np.float32))


class TestStatsSanity:
    def test_value_traffic_matches_nnz(self, rng):
        """Only true nonzeros travel: A_values bytes == nnz x 2."""
        dense = make_random_dense(rng, 40, 40, 0.15)
        coo = COOMatrix.from_dense(dense)
        bit = build_bitbsr(coo).matrix
        x = fp16_exact_values(rng, 40)
        _, stats = spaden_spmv_simulated(bit, x)
        overhead = (
            stats.global_load_bytes
            - bit.nnz * 2  # packed values
            - bit.nblocks * 32 * 16  # broadcast col/bitmap/offset
            - bit.nblocks * 2 * 32 * 2  # x segment reads
        )
        # what remains is the row-pointer broadcasts
        nbrows = bit.block_rows_count
        assert overhead == (4 * (nbrows // 2) + 2 * (nbrows % 2)) * 32 * 4

    def test_sixteen_rows_per_warp(self, rng):
        dense = make_random_dense(rng, 64, 64, 0.2)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        _, stats = spaden_spmv_simulated(bit, fp16_exact_values(rng, 64))
        assert stats.warps_launched == 4  # 8 block rows, 2 per warp

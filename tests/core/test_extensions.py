"""Tests for the §7 extensions: SpMM, SDDMM and the block-size ablation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ablation import block_size_ablation
from repro.core.builder import build_bitbsr
from repro.core.sddmm import spaden_sddmm
from repro.core.spmm import spaden_spmm, spmm_fragment_tiles
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.gpu.mma import Precision
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense


class TestSpMM:
    def test_matches_dense_reference(self, rng):
        dense = make_random_dense(rng, 40, 48, 0.2)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        X = fp16_exact_values(rng, 48 * 5).reshape(48, 5)
        Y = spaden_spmm(bit, X)
        ref = dense.astype(np.float64) @ X.astype(np.float64)
        assert np.allclose(Y, ref, rtol=1e-3, atol=1e-2)

    def test_single_column_equals_spmv(self, rng):
        from repro.core.spmv import spaden_spmv

        dense = make_random_dense(rng, 32, 32, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        x = fp16_exact_values(rng, 32)
        assert np.allclose(
            spaden_spmm(bit, x[:, None])[:, 0], spaden_spmv(bit, x), rtol=1e-5, atol=1e-5
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 20))
    def test_property_against_dense(self, seed, k):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, 24, 30, 0.25)
        bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
        X = fp16_exact_values(rng, 30 * k).reshape(30, k)
        Y = spaden_spmm(bit, X, precision=Precision.FP32)
        assert np.allclose(Y, dense.astype(np.float64) @ X.astype(np.float64), rtol=1e-4, atol=1e-3)

    def test_shape_check(self, rng):
        bit = build_bitbsr(COOMatrix.from_dense(make_random_dense(rng, 16, 16, 0.3))).matrix
        with pytest.raises(KernelError):
            spaden_spmm(bit, np.ones((17, 2), dtype=np.float32))

    def test_fragment_tiles_scale_with_panels(self, rng):
        bit = build_bitbsr(COOMatrix.from_dense(make_random_dense(rng, 40, 40, 0.2))).matrix
        t8 = spmm_fragment_tiles(bit, 8)
        t16 = spmm_fragment_tiles(bit, 16)
        t1 = spmm_fragment_tiles(bit, 1)
        assert t1 == t8  # one panel serves up to 8 columns
        assert t16 == 2 * t8
        with pytest.raises(KernelError):
            spmm_fragment_tiles(bit, 0)


class TestSDDMM:
    def test_matches_dense_reference(self, rng):
        dense = make_random_dense(rng, 32, 40, 0.2)
        bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
        U = fp16_exact_values(rng, 32 * 4).reshape(32, 4)
        V = fp16_exact_values(rng, 40 * 4).reshape(40, 4)
        Z = spaden_sddmm(bit, U, V, precision=Precision.FP32)
        full = U.astype(np.float64) @ V.astype(np.float64).T
        mask = (dense != 0)
        assert np.allclose(Z.todense(), np.where(mask, full, 0.0), rtol=1e-4, atol=1e-3)

    def test_pattern_preserved(self, rng):
        dense = make_random_dense(rng, 24, 24, 0.3)
        bit = build_bitbsr(COOMatrix.from_dense(dense)).matrix
        U = fp16_exact_values(rng, 24 * 3).reshape(24, 3)
        V = fp16_exact_values(rng, 24 * 3).reshape(24, 3)
        Z = spaden_sddmm(bit, U, V)
        assert np.array_equal(Z.bitmaps, bit.bitmaps)
        assert np.array_equal(Z.block_cols, bit.block_cols)
        assert Z.nnz == bit.nnz

    def test_shape_checks(self, rng):
        bit = build_bitbsr(COOMatrix.from_dense(make_random_dense(rng, 16, 16, 0.3))).matrix
        with pytest.raises(KernelError):
            spaden_sddmm(bit, np.ones((16, 3)), np.ones((16, 4)))
        with pytest.raises(KernelError):
            spaden_sddmm(bit, np.ones((15, 3)), np.ones((16, 3)))


class TestBlockSizeAblation:
    def test_eight_is_the_native_sweet_spot(self, rng):
        """8x8 is the largest size with a native (<= 64-bit) bitmap —
        the paper's §4.2 argument."""
        coo = COOMatrix.from_dense(make_random_dense(rng, 80, 80, 0.15))
        points = {p.block_dim: p for p in block_size_ablation(coo)}
        assert points[8].native_bitmap
        assert not points[16].native_bitmap
        assert points[2].native_bitmap and points[4].native_bitmap

    def test_fill_ratio_decreases_with_size(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 80, 80, 0.1))
        points = block_size_ablation(coo)
        fills = [p.fill_ratio for p in points]
        assert all(a >= b for a, b in zip(fills, fills[1:]))

    def test_small_blocks_pay_more_overhead_per_nnz(self, rng):
        """On a blocky matrix, 2x2 blocks cost more metadata than 8x8."""
        from repro.matrices.random import random_banded

        coo = random_banded(256, 24, fill=0.5, seed=9)
        points = {p.block_dim: p for p in block_size_ablation(coo)}
        assert points[2].bytes_per_nnz > points[8].bytes_per_nnz

    def test_rejects_bad_dim(self, small_coo):
        with pytest.raises(KernelError):
            block_size_ablation(small_coo, block_dims=(0,))

"""Algorithm 2 tests: lane-level bitBSR decoding against ground truth."""

import numpy as np
import pytest

from repro.core.decode import decode_matrix_lane_values, decode_vector_lane_values
from repro.core.spmv import register_bitbsr_arrays
from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.coo import COOMatrix
from repro.gpu.memory import GlobalMemory
from repro.gpu.warp import Warp

from tests.conftest import make_random_dense


def setup(rng, shape=(24, 24), density=0.3):
    dense = make_random_dense(rng, *shape, density)
    bit = BitBSRMatrix.from_coo(COOMatrix.from_dense(dense))
    mem = GlobalMemory()
    x = np.arange(shape[1], dtype=np.float32)
    register_bitbsr_arrays(mem, bit, x)
    return dense, bit, mem, x


class TestMatrixDecoding:
    def test_reconstructs_every_block(self, rng):
        dense, bit, mem, _ = setup(rng)
        blocks = bit.tobsr().blocks
        for b in range(bit.nblocks):
            warp = Warp(mem)
            v1, v2 = decode_matrix_lane_values(warp, bit, b)
            # lane l owns elements 2l and 2l+1 of the row-major block
            flat = blocks[b].reshape(-1)
            assert np.allclose(v1, flat[0::2], atol=1e-3)
            assert np.allclose(v2, flat[1::2], atol=1e-3)

    def test_zeros_not_loaded(self, rng):
        """Only set bits trigger value loads ('calculated instead of
        loading from memory')."""
        dense, bit, mem, _ = setup(rng, density=0.1)
        before = mem.stats.global_load_bytes
        warp = Warp(mem)
        decode_matrix_lane_values(warp, bit, 0)
        value_bytes = int(bit.block_nnz()[0]) * bit.values.itemsize
        # bitmap broadcast (32 x 8) + offset broadcast (32 x 4) + values
        assert mem.stats.global_load_bytes - before == 32 * 12 + value_bytes

    def test_block_index_bounds(self, rng):
        _, bit, mem, _ = setup(rng)
        with pytest.raises(KernelError):
            decode_matrix_lane_values(Warp(mem), bit, bit.nblocks)


class TestVectorDecoding:
    def test_repetitive_pattern(self, rng):
        """Lane lid reads positions (lid & 3) * 2 and +1 of the segment —
        each x element served to four lanes (Fig. 5's Frag B broadcast)."""
        _, bit, mem, x = setup(rng)
        warp = Warp(mem)
        seg = 1
        v1, v2 = decode_vector_lane_values(warp, seg)
        lid = np.arange(32)
        expected1 = x[seg * 8 + ((lid & 3) << 1)]
        expected2 = x[seg * 8 + ((lid & 3) << 1) + 1]
        assert np.allclose(v1, expected1)
        assert np.allclose(v2, expected2)

    def test_segment_load_is_two_transactions_or_less(self, rng):
        _, bit, mem, _ = setup(rng)
        warp = Warp(mem)
        before = mem.stats.load_transactions
        decode_vector_lane_values(warp, 0)
        assert mem.stats.load_transactions - before <= 2

"""Capability declarations and their registration-time verification."""

from __future__ import annotations

import dataclasses

import pytest

from repro.exec import ExecutionMode, KernelCapabilities
from repro.kernels import available_kernels, get_kernel
from repro.kernels.base import SpMVKernel, _verify_capabilities
from repro.kernels.csr_scalar import CSRScalarKernel
from repro.kernels.spaden import SpadenKernel


def test_supports_and_modes():
    plain = KernelCapabilities()
    assert plain.supports(ExecutionMode.NUMERIC)
    assert plain.supports(ExecutionMode.PROFILED)
    assert not plain.supports(ExecutionMode.SIMULATED)
    assert plain.modes == (ExecutionMode.NUMERIC, ExecutionMode.PROFILED)

    simulating = KernelCapabilities(simulate=True)
    assert simulating.supports(ExecutionMode.SIMULATED)
    assert simulating.modes == tuple(ExecutionMode)


def test_every_registered_kernel_declares_capabilities():
    for name in available_kernels():
        caps = get_kernel(name).capabilities
        assert isinstance(caps, KernelCapabilities), name


def test_spaden_declares_the_full_surface():
    caps = SpadenKernel.capabilities
    assert caps.tensor_cores and caps.batch
    assert caps.simulate and caps.simulate_batch and caps.overflow_check
    assert caps.fallback_tier == 0


def test_wmma_variant_stays_out_of_the_chain():
    from repro.kernels.spaden_wmma import SpadenWMMAKernel

    assert SpadenWMMAKernel.capabilities.fallback_tier is None


def test_declared_flag_without_backing_method_rejected():
    class Overclaiming(CSRScalarKernel):
        name = "test-overclaiming"
        capabilities = dataclasses.replace(
            CSRScalarKernel.capabilities, simulate_batch=True
        )

    with pytest.raises(ValueError, match="declares simulate_batch=True"):
        _verify_capabilities(Overclaiming)


def test_backing_method_without_declared_flag_rejected():
    class Underclaiming(CSRScalarKernel):
        name = "test-underclaiming"
        capabilities = dataclasses.replace(CSRScalarKernel.capabilities, simulate=False)

    with pytest.raises(ValueError, match="declares simulate=False"):
        _verify_capabilities(Underclaiming)


def test_simulate_batch_requires_simulate():
    class BatchOnly(SpMVKernel):
        name = "test-batch-only"
        capabilities = KernelCapabilities(simulate_batch=True)

        def simulate_many(self, prepared, X, check_overflow=False):  # pragma: no cover
            raise NotImplementedError

    with pytest.raises(ValueError, match="simulate_batch requires simulate"):
        _verify_capabilities(BatchOnly)


def test_overflow_check_requires_simulate():
    class OverflowOnly(SpMVKernel):
        name = "test-overflow-only"
        capabilities = KernelCapabilities(overflow_check=True)

    with pytest.raises(ValueError, match="overflow_check requires simulate"):
        _verify_capabilities(OverflowOnly)


def test_base_class_capabilities_are_empty():
    caps = SpMVKernel.capabilities
    assert caps == KernelCapabilities()
    assert caps.fallback_tier is None

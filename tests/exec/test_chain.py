"""Registry-derived fallback chains and the chain walker."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import KernelError
from repro.exec import (
    ChainExhaustedError,
    ExecutionMode,
    default_chain,
    execute_chain,
)
from repro.formats.csr import CSRMatrix
from repro.kernels.base import _REGISTRY, get_kernel, register_kernel
from repro.kernels.csr_scalar import CSRScalarKernel


@pytest.fixture
def csr(small_coo) -> CSRMatrix:
    return CSRMatrix.from_coo(small_coo)


def test_default_chain_order():
    """Tensor-core kernel first, always-works scalar baseline last."""
    assert default_chain() == ("spaden", "spaden-no-tc", "cusparse-csr", "csr-scalar")


def test_default_chain_reflects_capability_tiers():
    chain = default_chain()
    tiers = [get_kernel(name).capabilities.fallback_tier for name in chain]
    assert tiers == sorted(tiers)
    assert get_kernel(chain[0]).capabilities.tensor_cores
    assert not get_kernel(chain[-1]).capabilities.tensor_cores


def test_default_chain_legacy_reexports_are_live():
    """`DEFAULT_CHAIN` in the robustness package is the derived chain."""
    import repro.robustness as robustness
    from repro.robustness import dispatch

    assert dispatch.DEFAULT_CHAIN == default_chain()
    assert robustness.DEFAULT_CHAIN == default_chain()


def test_registering_a_kernel_extends_the_chain():
    class MidTierKernel(CSRScalarKernel):
        name = "test-mid-tier"
        label = "test kernel"
        capabilities = dataclasses.replace(CSRScalarKernel.capabilities, fallback_tier=15)

    try:
        register_kernel(MidTierKernel)
        assert default_chain() == (
            "spaden",
            "spaden-no-tc",
            "test-mid-tier",
            "cusparse-csr",
            "csr-scalar",
        )
    finally:
        _REGISTRY.pop("test-mid-tier", None)
    assert "test-mid-tier" not in default_chain()


def test_empty_chain_rejected(csr, x_small):
    with pytest.raises(KernelError, match="empty kernel chain"):
        execute_chain(csr, x_small, chain=())


def test_chain_first_kernel_wins(csr, x_small):
    result = execute_chain(csr, x_small)
    assert result.kernel == "spaden"
    assert result.attempts == ["spaden"]
    assert not result.degraded


def test_chain_degrades_past_faulted_kernel(csr, x_small):
    """A fault striking only the first kernel produces one degradation
    event (with the executor's stage tag) and a good result from the
    fallback."""

    def poison_spaden(kernel_name, prepared):
        if kernel_name == "spaden":
            raise KernelError("injected fault")

    result = execute_chain(csr, x_small, faults=(poison_spaden,))
    assert result.kernel == "spaden-no-tc"
    assert result.attempts == ["spaden", "spaden-no-tc"]
    assert len(result.events) == 1
    event = result.events[0]
    assert event.kernel == "spaden"
    assert event.stage == "prepare"
    assert event.cause == "KernelError"
    assert event.fallback == "spaden-no-tc"
    expected = get_kernel("spaden-no-tc")
    prepared = expected.prepare(csr)
    assert np.array_equal(result.y, expected.run(prepared, x_small))


def test_chain_exhaustion_carries_events(csr, x_small):
    def poison_all(kernel_name, prepared):
        raise KernelError("injected fault")

    with pytest.raises(ChainExhaustedError, match="all kernels in chain") as info:
        execute_chain(csr, x_small, chain=("spaden", "csr-scalar"), faults=(poison_all,))
    events = info.value.events
    assert [e.kernel for e in events] == ["spaden", "csr-scalar"]
    assert events[-1].fallback is None


def test_chain_invalidate_hook_called_per_failure(csr, x_small):
    dropped = []

    def poison_spaden(kernel_name, prepared):
        if kernel_name == "spaden":
            raise KernelError("injected fault")

    execute_chain(
        csr,
        x_small,
        faults=(poison_spaden,),
        invalidate=dropped.append,
    )
    assert dropped == ["spaden"]


def test_chain_per_kernel_mode_chooser(csr, x_small):
    """A callable mode receives each kernel and picks its path — the
    engine uses this to simulate only where a batched simulator exists."""
    seen = []

    def choose(kernel):
        seen.append(kernel.name)
        if kernel.capabilities.simulate:
            return ExecutionMode.SIMULATED
        return ExecutionMode.NUMERIC

    result = execute_chain(csr, x_small, chain=("spaden",), mode=choose)
    assert seen == ["spaden"]
    assert result.mode is ExecutionMode.SIMULATED
    assert result.stats is not None

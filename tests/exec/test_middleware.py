"""Tracer installation and fault hooks as composable middleware."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import (
    ExecutionMode,
    OperandFault,
    TracerStack,
    execute,
    install_tracers,
)
from repro.formats.csr import CSRMatrix
from repro.gpu import instrument
from repro.gpu.instrument import Tracer, tracing


class CountingTracer(Tracer):
    def __init__(self):
        self.warps = 0
        self.accesses = 0

    def on_warp_begin(self, warp) -> None:
        self.warps += 1

    def on_global_access(self, *args, **kwargs) -> None:
        self.accesses += 1


@pytest.fixture
def csr(small_coo) -> CSRMatrix:
    return CSRMatrix.from_coo(small_coo)


def test_execute_installs_tracer_for_run_stage_only(csr, x_small):
    tracer = CountingTracer()
    execute("spaden", csr, x_small, mode=ExecutionMode.SIMULATED, tracers=(tracer,))
    assert tracer.warps > 0
    assert tracer.accesses > 0
    # The installation is scoped to the run stage: the slot is empty after.
    assert instrument.get_tracer() is None


def test_tracer_stack_fans_out(csr, x_small):
    first, second = CountingTracer(), CountingTracer()
    execute(
        "spaden", csr, x_small, mode=ExecutionMode.SIMULATED, tracers=(first, second)
    )
    assert first.warps == second.warps > 0
    assert first.accesses == second.accesses > 0


def test_tracer_stack_forwards_in_order():
    order = []

    class Recorder(Tracer):
        def __init__(self, tag):
            self.tag = tag

        def on_warp_begin(self, warp) -> None:
            order.append(self.tag)

    stack = TracerStack([Recorder("a"), Recorder("b")])
    stack.on_warp_begin(None)
    assert order == ["a", "b"]


def test_empty_tracers_preserve_ambient_tracer(csr, x_small):
    """``execute(tracers=())`` must not clobber a tracer the caller has
    already installed (the sanitizer wraps whole engine calls this way)."""
    ambient = CountingTracer()
    with tracing(ambient):
        execute("spaden", csr, x_small, mode=ExecutionMode.SIMULATED)
    assert ambient.warps > 0


def test_nonempty_tracers_replace_ambient(csr, x_small):
    ambient, explicit = CountingTracer(), CountingTracer()
    with tracing(ambient):
        execute(
            "spaden", csr, x_small, mode=ExecutionMode.SIMULATED, tracers=(explicit,)
        )
    assert ambient.warps == 0
    assert explicit.warps > 0


def test_install_tracers_empty_is_noop():
    ambient = CountingTracer()
    with tracing(ambient):
        with install_tracers(()):
            assert instrument.get_tracer() is ambient


def test_operand_fault_bookkeeping(csr, x_small):
    log = []
    fault = OperandFault(lambda name, prepared: log.append(prepared.kernel_name))
    execute("spaden", csr, x_small, faults=(fault,))
    execute("csr-scalar", csr, x_small, faults=(fault,))
    assert fault.fired == ["spaden", "csr-scalar"]
    assert log == ["spaden", "csr-scalar"]


def test_faults_see_the_freshly_prepared_operand(csr, x_small):
    seen = {}

    def probe(kernel_name, prepared):
        seen["shape"] = prepared.shape

    result = execute("spaden", csr, x_small, faults=(probe,))
    assert seen["shape"] == (csr.nrows, csr.ncols)
    assert np.array_equal(result.y, execute("spaden", csr, x_small).y)

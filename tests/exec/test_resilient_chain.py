"""Resilience policies threaded through the chain walker.

Covers the four behaviors the serving layer leans on — open circuits
skipped without attempting, retries healing transient corruption,
deadlines terminal (no fallback), the recoverable-exception safelist —
plus the passivity contract: with no policy installed, results are
bitwise identical and the walk is byte-for-byte the pre-resilience one.
"""

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, ReproError, VerificationError
from repro.exec import ChainExhaustedError, execute_chain
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.obs import get_registry
from repro.resilience import (
    BreakerBoard,
    BreakerConfig,
    Deadline,
    ManualClock,
    RetryPolicy,
)

from tests.conftest import make_random_dense

CHAIN = ("spaden", "csr-scalar")


@pytest.fixture
def csr(rng) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, 48, 40, 0.12))
    )


@pytest.fixture
def x(rng, csr) -> np.ndarray:
    return rng.standard_normal(csr.ncols).astype(np.float32)


def _tripped_board(name: str) -> BreakerBoard:
    clock = ManualClock()
    board = BreakerBoard(
        BreakerConfig(window=4, min_volume=1, failure_threshold=0.5, cooldown_seconds=100.0),
        clock=clock,
    )
    board.record_failure(name)
    assert board.state(name).value == "open"
    return board


class TestCircuitSkip:
    def test_open_circuit_skipped_without_attempting(self, csr, x):
        board = _tripped_board("spaden")
        prepared_for = []

        result = execute_chain(
            csr,
            x,
            CHAIN,
            breakers=board,
            faults=(lambda name, prepared: prepared_for.append(name),),
        )
        # spaden was never prepared, verified, or run — only csr-scalar
        assert prepared_for == ["csr-scalar"]
        assert result.kernel == "csr-scalar"
        assert result.attempts == ["csr-scalar"]
        [event] = result.events
        assert event.kernel == "spaden"
        assert event.stage == "dispatch"
        assert event.cause == "circuit-open"
        assert event.fallback == "csr-scalar"
        assert np.allclose(result.y, csr.matvec(x), rtol=1e-2, atol=1e-2)

    def test_success_feeds_the_board(self, csr, x):
        board = BreakerBoard(BreakerConfig(window=4), clock=ManualClock())
        execute_chain(csr, x, CHAIN, breakers=board)
        assert board.states() == {"spaden": "closed"}
        assert board.breaker("spaden").failure_rate == 0.0

    def test_all_circuits_open_exhausts_the_chain(self, csr, x):
        board = _tripped_board("spaden")
        board.record_failure("csr-scalar")
        with pytest.raises(ChainExhaustedError) as info:
            execute_chain(csr, x, CHAIN, breakers=board)
        assert all(e.cause == "circuit-open" for e in info.value.events)


class TestRetry:
    def test_retry_heals_transient_corruption(self, csr, x):
        clock = ManualClock()
        failures = []

        def transient(name, prepared):
            # first attempt only: the retry re-prepares and sails through
            if not failures:
                failures.append(name)
                raise VerificationError("transient bit flip")

        retry = RetryPolicy(max_attempts=2, jitter=0.0, sleep=clock.sleep, seed=0)
        result = execute_chain(csr, x, CHAIN, faults=(transient,), retry=retry)
        assert failures == ["spaden"]
        assert result.kernel == "spaden"  # healed in place, no degradation
        assert result.events == []
        assert result.attempts == ["spaden"]
        assert clock.sleeps == [retry.base_delay]  # one backoff, jitter off

    def test_fatal_cause_degrades_without_retry(self, csr, x):
        calls = []

        def fatal(name, prepared):
            if name == "spaden":
                calls.append(name)
                raise ReproError("deterministic misconfiguration")

        retry = RetryPolicy(max_attempts=3, sleep=lambda s: None, seed=0)
        result = execute_chain(csr, x, CHAIN, faults=(fatal,), retry=retry)
        assert calls == ["spaden"]  # exactly one attempt, no retries
        assert result.kernel == "csr-scalar"
        assert [e.kernel for e in result.events] == ["spaden"]

    def test_exhausted_retries_degrade_with_the_last_cause(self, csr, x):
        clock = ManualClock()

        def always(name, prepared):
            if name == "spaden":
                raise VerificationError("persistent corruption")

        retry = RetryPolicy(max_attempts=3, jitter=0.0, sleep=clock.sleep, seed=0)
        result = execute_chain(csr, x, CHAIN, faults=(always,), retry=retry)
        assert result.kernel == "csr-scalar"
        [event] = result.events
        assert event.cause == "VerificationError"
        assert len(clock.sleeps) == 2  # attempts 1->2 and 2->3

    def test_backoff_never_overruns_the_deadline(self, csr, x):
        clock = ManualClock()

        def always(name, prepared):
            if name == "spaden":
                raise VerificationError("persistent corruption")

        deadline = Deadline(1.0, clock=clock)
        retry = RetryPolicy(
            max_attempts=5, base_delay=10.0, jitter=0.0, sleep=clock.sleep, seed=0
        )
        # delay (10s) exceeds remaining budget (1s): degrade immediately
        # instead of sleeping through the deadline
        result = execute_chain(
            csr, x, CHAIN, faults=(always,), retry=retry, deadline=deadline
        )
        assert result.kernel == "csr-scalar"
        assert clock.sleeps == []


class TestDeadline:
    def test_expired_deadline_is_terminal_not_degradable(self, csr, x):
        clock = ManualClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(10.0)
        with pytest.raises(DeadlineExceededError) as info:
            execute_chain(csr, x, CHAIN, deadline=deadline)
        # no fallback was consulted: the error names the dispatch boundary
        assert info.value.stage == "dispatch"

    def test_mid_attempt_expiry_skips_later_stages(self, csr, x):
        clock = ManualClock()
        deadline = Deadline(5.0, clock=clock)

        def stall(name, prepared):
            clock.advance(100.0)  # a wedged conversion

        with pytest.raises(DeadlineExceededError) as info:
            execute_chain(csr, x, CHAIN, faults=(stall,), deadline=deadline)
        assert info.value.stage == "run"  # caught at the next checkpoint
        assert info.value.elapsed >= 100.0

    def test_deadline_with_headroom_changes_nothing(self, csr, x):
        clock = ManualClock()
        plain = execute_chain(csr, x, CHAIN)
        guarded = execute_chain(csr, x, CHAIN, deadline=Deadline(1e9, clock=clock))
        assert np.array_equal(plain.y, guarded.y)


class TestRecoverableSafelist:
    @pytest.mark.parametrize("exc_type", [MemoryError, FloatingPointError])
    def test_safelisted_exceptions_degrade_with_stage_tag(self, csr, x, exc_type):
        def bomb(name, prepared):
            if name == "spaden":
                raise exc_type("resource fault")

        result = execute_chain(csr, x, CHAIN, faults=(bomb,))
        assert result.kernel == "csr-scalar"
        [event] = result.events
        assert event.kernel == "spaden"
        assert event.cause == exc_type.__name__
        assert event.stage == "prepare"  # fault hooks fire inside prepare

    def test_true_corruption_propagates_untouched(self, csr, x):
        def interrupt(name, prepared):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            execute_chain(csr, x, CHAIN, faults=(interrupt,))


class TestPassivity:
    def test_no_policy_is_bitwise_identical(self, csr, x):
        before = execute_chain(csr, x, CHAIN)
        after = execute_chain(
            csr, x, CHAIN, deadline=None, retry=None, breakers=None
        )
        assert np.array_equal(before.y, after.y)
        assert before.kernel == after.kernel
        assert before.attempts == after.attempts

    def test_no_policy_emits_no_resilience_metrics(self, csr, x):
        registry = get_registry()

        def series_total(name):
            metric = registry.get(name)
            if metric is None:
                return 0.0
            return sum(v for _labels, v in metric.labeled())

        baseline = {
            name: series_total(name)
            for name in (
                "exec_retries_total",
                "resilience_deadline_exceeded_total",
                "resilience_breaker_transitions_total",
            )
        }
        execute_chain(csr, x, CHAIN)
        for name, value in baseline.items():
            assert series_total(name) == value, name

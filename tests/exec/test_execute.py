"""Cross-kernel identity tests for the unified execution layer.

For every registered kernel, :func:`repro.exec.execute` must be a
behavior-preserving wrapper: NUMERIC results bitwise-equal to the legacy
``prepare + run`` path, batched execution equal to stacked
single-vector runs, and (where the capability is declared) SIMULATED
results matching NUMERIC with counters consistent with the analytic
profile.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError, NumericalError
from repro.exec import ExecutionMode, check_result, execute, spmv
from repro.formats.csr import CSRMatrix
from repro.kernels import available_kernels, get_kernel

ALL_KERNELS = available_kernels()
SIMULATE_KERNELS = [n for n in ALL_KERNELS if get_kernel(n).capabilities.simulate]


@pytest.fixture
def csr(small_coo) -> CSRMatrix:
    return CSRMatrix.from_coo(small_coo)


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_numeric_bitwise_equals_legacy_run(name, csr, x_small):
    kernel = get_kernel(name)
    legacy = kernel.run(kernel.prepare(csr), x_small)

    result = execute(name, csr, x_small)
    assert result.mode is ExecutionMode.NUMERIC
    assert result.kernel == name
    assert result.stats is None and result.profile is None
    assert not result.degraded and result.attempts == [name]
    assert np.array_equal(result.y, legacy)
    assert result.y.dtype == np.float32


@pytest.mark.parametrize("name", ALL_KERNELS)
def test_batched_equals_stacked_singles(name, csr, rng):
    X = rng.standard_normal((4, csr.ncols)).astype(np.float32)
    batched = execute(name, csr, X)
    assert batched.y.shape == (4, csr.nrows)
    singles = np.stack([execute(name, csr, x).y for x in X])
    assert np.array_equal(batched.y, singles)


@pytest.mark.parametrize("name", SIMULATE_KERNELS)
def test_simulated_matches_numeric_and_profile(name, csr, x_small):
    numeric = execute(name, csr, x_small)
    simulated = execute(name, csr, x_small, mode=ExecutionMode.SIMULATED)
    assert simulated.stats is not None
    np.testing.assert_allclose(simulated.y, numeric.y, rtol=1e-4, atol=1e-4)

    profiled = execute(name, csr, x_small, mode=ExecutionMode.PROFILED)
    assert profiled.profile is not None
    # The simulator measures what the profiler predicts: the stored
    # result bytes agree exactly on every simulate-capable kernel.
    assert simulated.stats.global_store_bytes == profiled.profile.stats.global_store_bytes


@pytest.mark.parametrize("name", [n for n in ALL_KERNELS if n not in SIMULATE_KERNELS])
def test_simulated_rejected_without_capability(name, csr, x_small):
    with pytest.raises(KernelError, match="does not support SIMULATED execution"):
        execute(name, csr, x_small, mode=ExecutionMode.SIMULATED)


def test_profiled_carries_profile_and_matches_numeric(csr, x_small):
    numeric = execute("spaden", csr, x_small)
    profiled = execute("spaden", csr, x_small, mode=ExecutionMode.PROFILED)
    assert profiled.profile is not None and profiled.profile.kernel_name == "spaden"
    assert np.array_equal(profiled.y, numeric.y)


def test_profiled_rejects_batches(csr, rng):
    X = rng.standard_normal((2, csr.ncols)).astype(np.float32)
    with pytest.raises(KernelError, match="PROFILED execution takes a single vector") as info:
        execute("spaden", csr, X, mode=ExecutionMode.PROFILED)
    # Regression: pure argument validation — nothing ran, so the error
    # must be tagged under "prepare", not "run" (a chain walker would
    # otherwise log a phantom run-stage degradation).
    assert info.value.exec_stage == "prepare"


def test_prepared_operand_is_reused_not_reprepared(csr, x_small):
    kernel = get_kernel("spaden")
    prepared = kernel.prepare(csr)
    result = execute(kernel, prepared, x_small)
    assert result.operand is prepared
    assert result.prepare_seconds == 0.0


def test_spmv_convenience_wrapper(csr, x_small):
    result = spmv(csr, x_small)
    assert result.kernel == "spaden"
    assert np.array_equal(result.y, execute("spaden", csr, x_small).y)


def test_exec_stage_tagging(csr, x_small):
    """Errors escape ``execute`` tagged with the stage they surfaced in."""
    prepared = get_kernel("csr-scalar").prepare(csr)
    with pytest.raises(KernelError) as info:
        execute("spaden", prepared, x_small)
    assert info.value.exec_stage == "run"


class TestUnifiedValidator:
    """`run`/`run_many`/`simulate`/`simulate_many` share one validator,
    so the rejection messages are identical regardless of entry point."""

    def test_mismatched_operand_message(self, csr, x_small):
        prepared = get_kernel("csr-scalar").prepare(csr)
        kernel = get_kernel("spaden")
        expected = "operand prepared for 'csr-scalar' passed to 'spaden'"
        for call in (
            lambda: kernel.run(prepared, x_small),
            lambda: kernel.run_many(prepared, np.stack([x_small])),
            lambda: kernel.simulate(prepared, x_small),
            lambda: kernel.simulate_many(prepared, np.stack([x_small])),
        ):
            with pytest.raises(KernelError) as info:
                call()
            assert str(info.value) == expected

    def test_bad_1d_shape_message(self, csr):
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        bad = np.ones(csr.ncols + 3, np.float32)
        expected = f"x has shape {bad.shape}, expected ({csr.ncols},)"
        for call in (lambda: kernel.run(prepared, bad), lambda: kernel.simulate(prepared, bad)):
            with pytest.raises(KernelError) as info:
                call()
            assert str(info.value) == expected

    def test_bad_2d_shape_message(self, csr):
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        bad = np.ones((2, csr.ncols + 3), np.float32)
        expected = f"X has shape {bad.shape}, expected (k, {csr.ncols})"
        for call in (
            lambda: kernel.run_many(prepared, bad),
            lambda: kernel.simulate_many(prepared, bad),
        ):
            with pytest.raises(KernelError) as info:
                call()
            assert str(info.value) == expected

    def test_1d_input_to_batch_entry_rejected(self, csr, x_small):
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        with pytest.raises(KernelError, match=r"X has shape .* expected \(k, "):
            kernel.run_many(prepared, x_small)


class TestCheckResult:
    def test_single_shape_mismatch(self):
        with pytest.raises(NumericalError, match=r"result has shape \(3,\), expected \(4,\)"):
            check_result(np.zeros(3), (4, 7))

    def test_single_non_finite(self):
        y = np.array([0.0, np.inf, 0.0])
        with pytest.raises(NumericalError, match=r"non-finite result: y\[1\]"):
            check_result(y, (3, 7))

    def test_batch_shape_mismatch(self):
        with pytest.raises(
            NumericalError, match=r"batch result has shape \(2, 3\), expected \(2, 4\)"
        ):
            check_result(np.zeros((2, 3)), (4, 7), k=2)

    def test_batch_non_finite(self):
        Y = np.zeros((2, 3))
        Y[1, 2] = np.nan
        with pytest.raises(NumericalError, match=r"non-finite batch result: Y\[1, 2\]"):
            check_result(Y, (3, 7), k=2)

    def test_valid_results_cast_to_float32(self):
        out = check_result(np.zeros(3, np.float64), (3, 7))
        assert out.dtype == np.float32

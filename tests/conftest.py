"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.matrices.generators import fp16_exact_values


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_random_dense(
    rng: np.random.Generator,
    nrows: int,
    ncols: int,
    density: float = 0.15,
) -> np.ndarray:
    """Random dense matrix with fp16-exact nonzero values."""
    mask = rng.random((nrows, ncols)) < density
    vals = fp16_exact_values(rng, nrows * ncols).reshape(nrows, ncols)
    return np.where(mask, vals, 0.0).astype(np.float32)


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A 40x56 random matrix (non-square, non-multiple-of-8 rows)."""
    return make_random_dense(rng, 40, 56)


@pytest.fixture
def small_coo(small_dense) -> COOMatrix:
    return COOMatrix.from_dense(small_dense)


@pytest.fixture
def medium_coo(rng) -> COOMatrix:
    return COOMatrix.from_dense(make_random_dense(rng, 200, 200, 0.05))


@pytest.fixture
def x_small(rng, small_dense) -> np.ndarray:
    return fp16_exact_values(rng, small_dense.shape[1])


@pytest.fixture
def x_medium(rng) -> np.ndarray:
    return fp16_exact_values(rng, 200)

"""L2 cache simulator and occupancy model tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.cache import CacheStats, SetAssociativeCache, replay_hit_rate
from repro.gpu.scheduler import (
    KernelResources,
    MAX_BLOCKS_PER_SM,
    MAX_WARPS_PER_SM,
    SHARED_MEMORY_PER_SM,
    occupancy,
)
from repro.gpu.spec import get_gpu


class TestCache:
    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, ways=2)
        assert not c.access(5)
        assert c.access(5)
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_capacity_eviction(self):
        c = SetAssociativeCache(32 * 4, ways=4)  # 4 lines, 1 set
        for sector in range(5):
            c.access(sector)
        assert c.stats.evictions == 1
        assert not c.access(0)  # LRU victim was sector 0

    def test_lru_order(self):
        c = SetAssociativeCache(32 * 2, ways=2)  # one set, two ways
        c.access(0)
        c.access(1)
        c.access(0)  # refresh 0 -> 1 is now LRU
        c.access(2)  # evicts 1
        assert c.access(0)
        assert not c.access(1)

    def test_streaming_has_no_reuse(self):
        stats = replay_hit_rate(np.arange(0, 32 * 1000, 32), capacity_bytes=1024)
        assert stats.hit_rate == 0.0
        assert stats.miss_bytes == 1000 * 32

    def test_working_set_within_capacity_hits(self):
        trace = np.tile(np.arange(0, 32 * 8, 32), 100)
        stats = replay_hit_rate(trace, capacity_bytes=32 * 64)
        assert stats.hit_rate > 0.98

    def test_invalid_configuration(self):
        with pytest.raises(SimulationError):
            SetAssociativeCache(0)
        with pytest.raises(SimulationError):
            SetAssociativeCache(32, ways=4)

    def test_validates_roofline_assumption_x_fits_l2(self):
        """The model's key assumption: a Table-1-sized x re-gathered by
        many warps stays L2-resident on both boards."""
        rng = np.random.default_rng(0)
        x_elements = 350_000  # F1-scale x vector, float32
        trace = rng.integers(0, x_elements, 200_000) * 4
        for gpu_name in ("L40", "V100"):
            l2 = get_gpu(gpu_name).l2_bytes
            stats = replay_hit_rate(trace, capacity_bytes=l2)
            # beyond cold misses, essentially everything hits
            cold = x_elements * 4 / 32
            assert stats.misses < 2.0 * cold, gpu_name


class TestOccupancy:
    def test_default_kernel_fills_sm(self):
        report = occupancy(KernelResources(), get_gpu("L40"))
        assert report.resident_warps_per_sm == MAX_WARPS_PER_SM
        assert report.occupancy == 1.0

    def test_register_pressure_limits(self):
        heavy = KernelResources(threads_per_block=256, registers_per_thread=128)
        report = occupancy(heavy, get_gpu("L40"))
        assert report.limiter == "registers"
        assert report.occupancy < 1.0

    def test_shared_memory_limits(self):
        shared_hog = KernelResources(shared_bytes_per_block=64 * 1024)
        report = occupancy(shared_hog, get_gpu("V100"))
        assert report.limiter == "shared"
        assert report.blocks_per_sm == 1

    def test_concurrency_caps_at_launch_size(self):
        report = occupancy(KernelResources(), get_gpu("L40"))
        assert report.concurrency(10) == 10
        assert report.concurrency(10**9) == report.resident_warps_total

    def test_oversubscription_rejected(self):
        with pytest.raises(SimulationError):
            occupancy(KernelResources(threads_per_block=2048), get_gpu("L40"))
        with pytest.raises(SimulationError):
            occupancy(
                KernelResources(shared_bytes_per_block=200 * 1024), get_gpu("L40")
            )

    def test_negative_shared_rejected(self):
        with pytest.raises(SimulationError, match="non-negative"):
            occupancy(KernelResources(shared_bytes_per_block=-500), get_gpu("L40"))

    def test_shared_over_sm_capacity_rejected_with_clear_message(self):
        with pytest.raises(SimulationError, match="shared memory of one SM"):
            occupancy(
                KernelResources(shared_bytes_per_block=SHARED_MEMORY_PER_SM + 1),
                get_gpu("L40"),
            )

    def test_shared_exactly_sm_capacity_allowed(self):
        report = occupancy(
            KernelResources(shared_bytes_per_block=SHARED_MEMORY_PER_SM),
            get_gpu("L40"),
        )
        assert report.blocks_per_sm == 1
        assert report.limiter == "shared"

    def test_blocks_limiter_branch(self):
        # 32-thread blocks: threads allow 48/SM, registers 64, blocks cap 24
        tiny = KernelResources(threads_per_block=32, registers_per_thread=32)
        report = occupancy(tiny, get_gpu("L40"))
        assert report.limiter == "blocks"
        assert report.blocks_per_sm == MAX_BLOCKS_PER_SM

    def test_threads_limiter_branch(self):
        wide = KernelResources(threads_per_block=512, registers_per_thread=16)
        report = occupancy(wide, get_gpu("L40"))
        assert report.limiter == "threads"
        assert report.blocks_per_sm == 3

    def test_registers_limiter_branch(self):
        heavy = KernelResources(threads_per_block=256, registers_per_thread=128)
        assert occupancy(heavy, get_gpu("L40")).limiter == "registers"

    def test_shared_limiter_branch_and_tie_break(self):
        # 64 KiB/block -> shared allows 1 block; registers also bind at 1
        # block for this config, and the tie must be reported as "shared"
        tied = KernelResources(
            threads_per_block=512,
            registers_per_thread=128,
            shared_bytes_per_block=64 * 1024,
        )
        report = occupancy(tied, get_gpu("L40"))
        assert report.limiter == "shared"
        assert report.blocks_per_sm == 1

"""MMA unit semantics: shapes, precisions, accumulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import Fragment, FragmentKind
from repro.gpu.mma import MMAUnit, Precision, to_tf32


def frags(a_matrix, b_matrix, c_matrix=None):
    a = Fragment(FragmentKind.MATRIX_A)
    b = Fragment(FragmentKind.MATRIX_B)
    c = Fragment(FragmentKind.ACCUMULATOR)
    a.load_matrix(a_matrix)
    b.load_matrix(b_matrix)
    if c_matrix is not None:
        c.load_matrix(c_matrix)
    return a, b, c


class TestMMA:
    def test_fp32_matches_numpy(self, rng):
        A = rng.standard_normal((16, 16)).astype(np.float32)
        B = rng.standard_normal((16, 16)).astype(np.float32)
        C = rng.standard_normal((16, 16)).astype(np.float32)
        d = MMAUnit(Precision.FP32).mma(*frags(A, B, C))
        assert np.allclose(d.to_matrix(), A @ B + C, atol=1e-4)

    def test_fp16_rounds_inputs(self, rng):
        A = rng.standard_normal((16, 16)).astype(np.float32)
        B = rng.standard_normal((16, 16)).astype(np.float32)
        d = MMAUnit(Precision.FP16).mma(*frags(A, B))
        ref = A.astype(np.float16).astype(np.float32) @ B.astype(np.float16).astype(np.float32)
        assert np.allclose(d.to_matrix(), ref, atol=1e-4)

    def test_fp16_exact_values_give_exact_result(self, rng):
        A = rng.integers(-8, 8, (16, 16)).astype(np.float32)
        B = rng.integers(-8, 8, (16, 16)).astype(np.float32)
        d = MMAUnit(Precision.FP16).mma(*frags(A, B))
        assert np.array_equal(d.to_matrix(), (A @ B).astype(np.float32))

    def test_operand_kind_enforced(self):
        a = Fragment(FragmentKind.MATRIX_A)
        b = Fragment(FragmentKind.MATRIX_B)
        c = Fragment(FragmentKind.ACCUMULATOR)
        unit = MMAUnit()
        with pytest.raises(SimulationError):
            unit.mma(b, b, c)
        with pytest.raises(SimulationError):
            unit.mma(a, a, c)
        with pytest.raises(SimulationError):
            unit.mma(a, b, a)

    def test_counts_ops(self):
        stats = ExecutionStats()
        unit = MMAUnit(Precision.FP32, stats=stats)
        unit.mma(*frags(np.eye(16, dtype=np.float32), np.eye(16, dtype=np.float32)))
        assert stats.mma_ops == 1

    def test_accumulation_chains(self, rng):
        """C += A_i @ B_i over several iterations (Algorithm 3's loop)."""
        unit = MMAUnit(Precision.FP32)
        acc = Fragment(FragmentKind.ACCUMULATOR)
        total = np.zeros((16, 16), dtype=np.float32)
        for i in range(4):
            A = rng.integers(-4, 4, (16, 16)).astype(np.float32)
            B = rng.integers(-4, 4, (16, 16)).astype(np.float32)
            a, b, _ = frags(A, B)
            acc = unit.mma(a, b, acc)
            total = total + A @ B
        assert np.allclose(acc.to_matrix(), total)

    def test_matmul_dense_tiling(self, rng):
        A = rng.integers(-4, 4, (32, 48)).astype(np.float32)
        B = rng.integers(-4, 4, (48, 16)).astype(np.float32)
        unit = MMAUnit(Precision.FP32)
        assert np.allclose(unit.matmul_dense(A, B), A @ B)
        assert unit.stats.mma_ops == (32 // 16) * (16 // 16) * (48 // 16)

    def test_matmul_dense_rejects_unaligned(self):
        with pytest.raises(SimulationError):
            MMAUnit().matmul_dense(np.zeros((10, 16)), np.zeros((16, 16)))


class TestTF32:
    def test_keeps_10_mantissa_bits(self):
        assert to_tf32(np.float32(1.0)) == 1.0
        # 1 + 2^-11 rounds away under a 10-bit mantissa
        assert to_tf32(np.float32(1.0 + 2**-11)) in (1.0, np.float32(1.0 + 2**-10))

    def test_idempotent(self, rng):
        x = rng.standard_normal(1000).astype(np.float32)
        once = to_tf32(x)
        assert np.array_equal(to_tf32(once), once)

    @given(
        st.floats(
            min_value=np.float32(-1e20),
            max_value=np.float32(1e20),
            width=32,
            allow_nan=False,
        )
    )
    def test_relative_error_bounded(self, value):
        out = float(to_tf32(np.float32(value)))
        # subnormals lose relative precision under mantissa truncation,
        # exactly as on hardware
        if abs(value) >= 2**-126:
            assert abs(out - value) <= abs(value) * 2**-10

    def test_exactly_representable_fixed(self):
        for v in (0.0, 0.5, -2.0, 1024.0, 0.375):
            assert to_tf32(np.float32(v)) == v

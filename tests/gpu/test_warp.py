"""Warp primitive tests: shuffles, ballot, reductions, op accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import LaneIndexError, SimulationError
from repro.gpu.memory import GlobalMemory
from repro.gpu.warp import Warp


@pytest.fixture
def warp():
    return Warp(GlobalMemory())


class TestShuffle:
    def test_identity(self, warp):
        v = np.arange(32, dtype=np.float64)
        assert np.array_equal(warp.shuffle(v, warp.lanes), v)

    def test_broadcast_from_lane(self, warp):
        v = np.arange(32, dtype=np.float64)
        assert (warp.shuffle(v, 5) == 5).all()

    def test_shuffle_down(self, warp):
        v = np.arange(32, dtype=np.float64)
        out = warp.shuffle_down(v, 16)
        assert np.array_equal(out[:16], v[16:])
        assert np.array_equal(out[16:], np.full(16, 31.0))

    def test_source_bounds(self, warp):
        with pytest.raises(SimulationError):
            warp.shuffle(np.zeros(32), 32)

    def test_source_bounds_reports_requesting_lane(self):
        warp = Warp(GlobalMemory(), warp_id=7)
        src = np.arange(32, dtype=np.int64)
        src[13] = 41
        with pytest.raises(LaneIndexError) as exc:
            warp.shuffle(np.zeros(32), src)
        assert exc.value.lane == 13
        assert exc.value.value == 41
        assert exc.value.warp_id == 7

    def test_negative_source_rejected(self, warp):
        src = np.arange(32, dtype=np.int64)
        src[0] = -1
        with pytest.raises(LaneIndexError) as exc:
            warp.shuffle(np.zeros(32), src)
        assert exc.value.lane == 0
        assert exc.value.value == -1

    def test_shuffle_down_delta_bounds(self):
        warp = Warp(GlobalMemory(), warp_id=3)
        for delta in (-1, 32, 100):
            with pytest.raises(LaneIndexError) as exc:
                warp.shuffle_down(np.zeros(32), delta)
            assert exc.value.value == delta
            assert exc.value.warp_id == 3

    def test_shape_enforced(self, warp):
        with pytest.raises(SimulationError):
            warp.shuffle(np.zeros(16), 0)


class TestBallotReduce:
    def test_ballot(self, warp):
        mask = warp.ballot(warp.lanes < 4)
        assert mask == 0b1111

    def test_ballot_empty(self, warp):
        assert warp.ballot(np.zeros(32, bool)) == 0

    def test_ballot_full_warp(self, warp):
        assert warp.ballot(np.ones(32, bool)) == (1 << 32) - 1

    def test_ballot_alternating(self, warp):
        assert warp.ballot(warp.lanes % 2 == 0) == 0x55555555

    def test_ballot_single_high_lane(self, warp):
        assert warp.ballot(warp.lanes == 31) == 1 << 31

    def test_reduce_sum_single_lane(self, warp):
        v = np.zeros(32)
        v[17] = 2.5
        assert warp.reduce_sum(v) == 2.5

    @given(st.lists(st.integers(-100, 100), min_size=32, max_size=32))
    def test_reduce_sum_matches_numpy(self, values):
        warp = Warp(GlobalMemory())
        assert warp.reduce_sum(np.array(values, dtype=np.float64)) == float(sum(values))


class TestMaskedAtomicAdd:
    @pytest.fixture
    def mem(self):
        m = GlobalMemory()
        m.register("y", np.zeros(8, dtype=np.float32))
        return m

    def test_all_false_mask_is_a_no_op(self, mem):
        warp = Warp(mem)
        warp.atomic_add("y", np.zeros(32, dtype=np.int64), np.ones(32, np.float32), mask=np.zeros(32, bool))
        assert (mem.array("y") == 0).all()
        assert mem.stats.atomic_ops == 0
        assert mem.stats.load_transactions == 0

    def test_all_false_mask_skips_bounds_check(self, mem):
        # predicated-off lanes may hold garbage indices, like real hardware
        warp = Warp(mem)
        warp.atomic_add("y", np.full(32, 999, dtype=np.int64), np.ones(32, np.float32), mask=np.zeros(32, bool))
        assert (mem.array("y") == 0).all()

    def test_single_lane_mask(self, mem):
        warp = Warp(mem)
        mask = np.zeros(32, bool)
        mask[11] = True
        idx = np.full(32, 3, dtype=np.int64)
        warp.atomic_add("y", idx, np.full(32, 2.0, np.float32), mask=mask)
        assert mem.array("y")[3] == 2.0
        assert mem.stats.atomic_ops == 1

    def test_duplicate_indices_accumulate(self, mem):
        # atomics serialize conflicting lanes instead of losing updates
        warp = Warp(mem)
        idx = np.full(32, 5, dtype=np.int64)
        warp.atomic_add("y", idx, np.ones(32, np.float32))
        assert mem.array("y")[5] == 32.0
        assert mem.stats.atomic_ops == 32


class TestAccounting:
    def test_flops_respect_mask(self, warp):
        warp.count_flops(3, mask=warp.lanes < 10)
        assert warp.stats.cuda_flops == 30

    def test_int_ops_full_warp(self, warp):
        warp.count_int_ops(2)
        assert warp.stats.cuda_int_ops == 64

    def test_warps_launched_increments(self):
        mem = GlobalMemory()
        Warp(mem, warp_id=0)
        Warp(mem, warp_id=1)
        assert mem.stats.warps_launched == 2

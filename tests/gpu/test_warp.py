"""Warp primitive tests: shuffles, ballot, reductions, op accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.gpu.memory import GlobalMemory
from repro.gpu.warp import Warp


@pytest.fixture
def warp():
    return Warp(GlobalMemory())


class TestShuffle:
    def test_identity(self, warp):
        v = np.arange(32, dtype=np.float64)
        assert np.array_equal(warp.shuffle(v, warp.lanes), v)

    def test_broadcast_from_lane(self, warp):
        v = np.arange(32, dtype=np.float64)
        assert (warp.shuffle(v, 5) == 5).all()

    def test_shuffle_down(self, warp):
        v = np.arange(32, dtype=np.float64)
        out = warp.shuffle_down(v, 16)
        assert np.array_equal(out[:16], v[16:])
        assert np.array_equal(out[16:], np.full(16, 31.0))

    def test_source_bounds(self, warp):
        with pytest.raises(SimulationError):
            warp.shuffle(np.zeros(32), 32)

    def test_shape_enforced(self, warp):
        with pytest.raises(SimulationError):
            warp.shuffle(np.zeros(16), 0)


class TestBallotReduce:
    def test_ballot(self, warp):
        mask = warp.ballot(warp.lanes < 4)
        assert mask == 0b1111

    def test_ballot_empty(self, warp):
        assert warp.ballot(np.zeros(32, bool)) == 0

    @given(st.lists(st.integers(-100, 100), min_size=32, max_size=32))
    def test_reduce_sum_matches_numpy(self, values):
        warp = Warp(GlobalMemory())
        assert warp.reduce_sum(np.array(values, dtype=np.float64)) == float(sum(values))


class TestAccounting:
    def test_flops_respect_mask(self, warp):
        warp.count_flops(3, mask=warp.lanes < 10)
        assert warp.stats.cuda_flops == 30

    def test_int_ops_full_warp(self, warp):
        warp.count_int_ops(2)
        assert warp.stats.cuda_int_ops == 64

    def test_warps_launched_increments(self):
        mem = GlobalMemory()
        Warp(mem, warp_id=0)
        Warp(mem, warp_id=1)
        assert mem.stats.warps_launched == 2

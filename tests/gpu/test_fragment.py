"""Fragment layout invariants — the simulated hardware of §3/Fig. 1-2."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import FRAGMENT_DIM, REGISTERS_PER_LANE, WARP_SIZE
from repro.errors import LayoutError
from repro.gpu.fragment import (
    Fragment,
    FragmentKind,
    element_owner,
    lane_register_element,
    portion_of_register,
    registers_of_portion,
)

KINDS = list(FragmentKind)


class TestMapping:
    @pytest.mark.parametrize("kind", KINDS)
    def test_bijection(self, kind):
        """Every (lane, register) owns exactly one element and vice versa."""
        seen = {}
        for lane in range(WARP_SIZE):
            for reg in range(REGISTERS_PER_LANE):
                rc = lane_register_element(kind, lane, reg)
                assert rc not in seen
                seen[rc] = (lane, reg)
                assert element_owner(kind, *rc) == (lane, reg)
        assert len(seen) == FRAGMENT_DIM * FRAGMENT_DIM

    @pytest.mark.parametrize("kind", KINDS)
    def test_lane_owns_consecutive_pair(self, kind):
        """Fig. 1: one thread controls two consecutive elements."""
        for lane in range(WARP_SIZE):
            for portion in range(4):
                r0, r1 = registers_of_portion(portion)
                a = lane_register_element(kind, lane, r0)
                b = lane_register_element(kind, lane, r1)
                if kind.row_major_pairs:
                    assert a[0] == b[0] and b[1] == a[1] + 1
                else:
                    assert a[1] == b[1] and b[0] == a[0] + 1

    def test_diagonal_portions_use_paper_registers(self):
        """x[0,1] address the top-left and x[6,7] the bottom-right portion
        in *every* operand layout — the property Algorithm 3 needs."""
        for kind in KINDS:
            for reg in (0, 1):
                r, c = lane_register_element(kind, 5, reg)
                assert r < 8 and c < 8
            for reg in (6, 7):
                r, c = lane_register_element(kind, 5, reg)
                assert r >= 8 and c >= 8

    def test_accumulator_matches_fig2(self):
        """Writing x[i] = i reproduces the exact Fig. 2 layout."""
        frag = Fragment(FragmentKind.ACCUMULATOR)
        for reg in range(REGISTERS_PER_LANE):
            frag.warp_write_register(reg, np.full(WARP_SIZE, float(reg)))
        m = frag.to_matrix()
        assert np.array_equal(np.unique(m[:8, :8]), [0, 1])
        assert np.array_equal(np.unique(m[:8, 8:]), [2, 3])
        assert np.array_equal(np.unique(m[8:, :8]), [4, 5])
        assert np.array_equal(np.unique(m[8:, 8:]), [6, 7])
        # within a portion, pairs alternate along rows
        assert m[0, 0] == 0 and m[0, 1] == 1 and m[0, 2] == 0

    def test_accumulator_lane_layout_matches_fig1(self):
        """Lane l owns row l//4, columns 2(l%4), 2(l%4)+1 of each portion."""
        for lane in range(WARP_SIZE):
            r, c = lane_register_element(FragmentKind.ACCUMULATOR, lane, 0)
            assert r == lane // 4
            assert c == 2 * (lane % 4)

    def test_b_operand_is_column_major(self):
        """§4.3: 'the vector is arranged vertically (in column-major
        order)' — lane pairs advance down a column."""
        r0, c0 = lane_register_element(FragmentKind.MATRIX_B, 0, 0)
        r1, c1 = lane_register_element(FragmentKind.MATRIX_B, 0, 1)
        assert c0 == c1 and r1 == r0 + 1

    def test_bounds(self):
        with pytest.raises(LayoutError):
            lane_register_element(FragmentKind.ACCUMULATOR, 32, 0)
        with pytest.raises(LayoutError):
            lane_register_element(FragmentKind.ACCUMULATOR, 0, 8)
        with pytest.raises(LayoutError):
            element_owner(FragmentKind.ACCUMULATOR, 16, 0)
        with pytest.raises(LayoutError):
            portion_of_register(-1)
        with pytest.raises(LayoutError):
            registers_of_portion(4)


class TestFragmentState:
    @pytest.mark.parametrize("kind", KINDS)
    def test_load_store_roundtrip(self, kind, rng):
        m = rng.standard_normal((16, 16)).astype(np.float32)
        frag = Fragment(kind)
        frag.load_matrix(m)
        assert np.array_equal(frag.to_matrix(), m)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("portion", range(4))
    def test_portion_roundtrip(self, kind, portion, rng):
        block = rng.standard_normal((8, 8)).astype(np.float32)
        frag = Fragment(kind)
        frag.set_portion(portion, block)
        assert np.array_equal(frag.portion(portion), block)
        # other portions untouched
        for other in range(4):
            if other != portion:
                assert not frag.portion(other).any()

    def test_register_write_lands_at_mapped_element(self, rng):
        frag = Fragment(FragmentKind.ACCUMULATOR)
        frag.write_register(13, 5, 42.0)
        r, c = lane_register_element(FragmentKind.ACCUMULATOR, 13, 5)
        assert frag.to_matrix()[r, c] == 42.0
        assert frag.read_register(13, 5) == 42.0

    def test_fill(self):
        frag = Fragment(FragmentKind.MATRIX_A)
        frag.fill(3.0)
        assert (frag.to_matrix() == 3.0).all()

    def test_warp_write_requires_full_warp(self):
        frag = Fragment(FragmentKind.MATRIX_A)
        with pytest.raises(LayoutError):
            frag.warp_write_register(0, np.zeros(31))

    @given(st.integers(0, 2**31 - 1))
    def test_roundtrip_property(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(-100, 100, (16, 16)).astype(np.float32)
        for kind in KINDS:
            frag = Fragment(kind)
            frag.load_matrix(m)
            assert np.array_equal(frag.to_matrix(), m)

    def test_copy_is_independent(self):
        a = Fragment(FragmentKind.ACCUMULATOR)
        a.fill(1.0)
        b = a.copy()
        b.fill(2.0)
        assert (a.to_matrix() == 1.0).all()

"""Coalescing analyzer and global-memory model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.gpu.memory import GlobalMemory, sector_count
from repro.gpu.warp import Warp


def fresh_warp(n=1024, dtype=np.float32):
    mem = GlobalMemory()
    mem.register("x", np.arange(n, dtype=dtype))
    mem.register("y", np.zeros(n, dtype=np.float32))
    return mem, Warp(mem)


class TestSectorCount:
    def test_empty(self):
        assert sector_count(np.array([])) == 0

    def test_single_sector(self):
        assert sector_count(np.arange(32)) == 1

    def test_boundary(self):
        assert sector_count(np.array([31, 32])) == 2

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=64))
    def test_matches_set_arithmetic(self, addresses):
        expected = len({a // 32 for a in addresses})
        assert sector_count(np.array(addresses)) == expected


class TestCoalescing:
    def test_fully_coalesced_float32(self):
        mem, w = fresh_warp()
        w.load("x", w.lanes)
        assert mem.stats.load_transactions == 4  # 32 lanes x 4 B = 4 sectors

    def test_broadcast_is_one_transaction(self):
        mem, w = fresh_warp()
        w.load("x", np.full(32, 7))
        assert mem.stats.load_transactions == 1

    def test_strided_is_worst_case(self):
        mem, w = fresh_warp()
        w.load("x", w.lanes * 8)  # 32 B apart: one sector per lane
        assert mem.stats.load_transactions == 32

    def test_masked_lanes_cost_nothing(self):
        """Predicated-off lanes skip both bytes and sectors — the
        mechanism Spaden's zero-skipping decode exploits."""
        mem, w = fresh_warp()
        mask = w.lanes < 8
        w.load("x", w.lanes, mask=mask)
        assert mem.stats.load_transactions == 1
        assert mem.stats.global_load_bytes == 8 * 4

    def test_all_masked_costs_nothing(self):
        mem, w = fresh_warp()
        w.load("x", w.lanes, mask=np.zeros(32, bool))
        assert mem.stats.load_transactions == 0

    def test_different_arrays_never_share_sectors(self):
        mem = GlobalMemory()
        mem.register("a", np.zeros(2, np.float32))
        mem.register("b", np.zeros(2, np.float32))
        w = Warp(mem)
        w.load("a", np.zeros(32, np.int64))
        w.load("b", np.zeros(32, np.int64))
        assert mem.stats.load_transactions == 2


class TestAccessSemantics:
    def test_load_returns_values_with_mask_zeros(self):
        mem, w = fresh_warp()
        out = w.load("x", w.lanes, mask=w.lanes % 2 == 0)
        assert np.array_equal(out[::2], np.arange(0, 32, 2, dtype=np.float32))
        assert (out[1::2] == 0).all()

    def test_store_then_load(self):
        mem, w = fresh_warp()
        w.store("y", w.lanes, np.arange(32, dtype=np.float32) * 2)
        assert np.array_equal(mem.array("y")[:32], np.arange(32) * 2)
        assert mem.stats.store_transactions == 4

    def test_store_conflict_detected(self):
        mem, w = fresh_warp()
        with pytest.raises(SimulationError):
            w.store("y", np.zeros(32, np.int64), np.ones(32, np.float32))

    def test_atomic_add_allows_conflicts(self):
        mem, w = fresh_warp()
        w.atomic_add("y", np.zeros(32, np.int64), np.ones(32, np.float32))
        assert mem.array("y")[0] == 32.0
        assert mem.stats.atomic_ops == 32

    def test_out_of_bounds_load_raises(self):
        mem, w = fresh_warp(8)
        with pytest.raises(SimulationError):
            w.load("x", np.full(32, 99))

    def test_out_of_bounds_store_raises(self):
        mem, w = fresh_warp(8)
        with pytest.raises(SimulationError):
            w.store("y", np.full(32, 99), np.ones(32, np.float32))

    def test_duplicate_registration_rejected(self):
        mem = GlobalMemory()
        mem.register("a", np.zeros(2))
        with pytest.raises(SimulationError):
            mem.register("a", np.zeros(2))

    def test_unknown_array_rejected(self):
        mem = GlobalMemory()
        with pytest.raises(SimulationError):
            mem.array("missing")

    def test_fp16_loads_half_the_sectors(self):
        mem = GlobalMemory()
        mem.register("h", np.arange(64, dtype=np.float16))
        w = Warp(mem)
        w.load("h", w.lanes)
        assert mem.stats.load_transactions == 2  # 64 B of fp16
        assert mem.stats.global_load_bytes == 64

"""Conventional WMMA API tests — the shared-memory path Spaden skips."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.counters import ExecutionStats
from repro.gpu.fragment import Fragment, FragmentKind
from repro.gpu.memory import GlobalMemory
from repro.gpu.mma import Precision
from repro.gpu.wmma import fill_fragment, load_matrix_sync, mma_sync, store_matrix_sync


@pytest.fixture
def tile_memory(rng):
    mem = GlobalMemory()
    data = rng.integers(-8, 8, (32, 32)).astype(np.float32)
    mem.register("m", data.reshape(-1))
    mem.register("out", np.zeros(32 * 32, dtype=np.float32))
    return mem, data


class TestLoadStore:
    def test_load_reads_tile(self, tile_memory):
        mem, data = tile_memory
        frag = Fragment(FragmentKind.MATRIX_A)
        load_matrix_sync(frag, mem, "m", offset=0, ldm=32)
        assert np.array_equal(frag.to_matrix(), data[:16, :16])

    def test_load_with_offset(self, tile_memory):
        mem, data = tile_memory
        frag = Fragment(FragmentKind.MATRIX_A)
        load_matrix_sync(frag, mem, "m", offset=16 * 32 + 16, ldm=32)
        assert np.array_equal(frag.to_matrix(), data[16:, 16:])

    def test_store_roundtrip(self, tile_memory):
        mem, data = tile_memory
        frag = Fragment(FragmentKind.ACCUMULATOR)
        frag.load_matrix(data[:16, :16])
        store_matrix_sync(mem, "out", offset=0, ldm=32, fragment=frag)
        out = mem.array("out").reshape(32, 32)
        assert np.array_equal(out[:16, :16], data[:16, :16])

    def test_conventional_path_charges_shared_memory(self, tile_memory):
        """The indirection cost §3 describes: 256 elements staged through
        shared memory in each direction."""
        mem, _ = tile_memory
        frag = Fragment(FragmentKind.MATRIX_A)
        load_matrix_sync(frag, mem, "m", offset=0, ldm=32)
        assert mem.stats.shared_bytes == 2 * 256 * 4
        # all 256 elements moved from global memory, zeros included
        assert mem.stats.global_load_bytes == 256 * 4

    def test_out_of_bounds_rejected(self, tile_memory):
        mem, _ = tile_memory
        frag = Fragment(FragmentKind.MATRIX_A)
        with pytest.raises(SimulationError):
            load_matrix_sync(frag, mem, "m", offset=32 * 32 - 8, ldm=32)


class TestMmaSync:
    def test_wrapper_matches_numpy(self, rng):
        A = rng.integers(-4, 4, (16, 16)).astype(np.float32)
        B = rng.integers(-4, 4, (16, 16)).astype(np.float32)
        a, b = Fragment(FragmentKind.MATRIX_A), Fragment(FragmentKind.MATRIX_B)
        c = Fragment(FragmentKind.ACCUMULATOR)
        a.load_matrix(A)
        b.load_matrix(B)
        stats = ExecutionStats()
        fill_fragment(c, 0.0, stats)
        d = mma_sync(a, b, c, precision=Precision.FP32, stats=stats)
        assert np.allclose(d.to_matrix(), A @ B)
        assert stats.mma_ops == 1


class TestSpec:
    def test_known_gpus(self):
        from repro.gpu.spec import get_gpu, known_gpus

        assert {"L40", "V100"} <= set(known_gpus())
        l40 = get_gpu("l40")
        assert l40.tensor_cores == 568  # paper §5.1
        assert get_gpu("V100").tensor_cores == 640

    def test_unknown_gpu(self):
        from repro.gpu.spec import get_gpu

        with pytest.raises(KeyError):
            get_gpu("H100x")

    def test_effective_rates_positive(self):
        from repro.gpu.spec import get_gpu

        for name in ("L40", "V100", "A100"):
            g = get_gpu(name)
            assert 0 < g.effective_bandwidth < g.mem_bandwidth_gbps * 1e9
            assert 0 < g.effective_tensor

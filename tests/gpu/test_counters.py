"""ExecutionStats accounting tests."""

import pytest

from repro.gpu.counters import ExecutionStats


class TestStats:
    def test_merge_accumulates_everything(self):
        a = ExecutionStats(global_load_bytes=10, mma_ops=1, warps_launched=2)
        b = ExecutionStats(global_load_bytes=5, cuda_flops=7)
        a.merge(b)
        assert a.global_load_bytes == 15
        assert a.mma_ops == 1
        assert a.cuda_flops == 7
        assert a.warps_launched == 2

    def test_scaled(self):
        s = ExecutionStats(global_load_bytes=10, load_transactions=3)
        t = s.scaled(2.5)
        assert t.global_load_bytes == 25
        assert t.load_transactions == 8  # rounded
        assert s.global_load_bytes == 10  # original untouched

    def test_copy_independent(self):
        s = ExecutionStats(mma_ops=4)
        c = s.copy()
        c.mma_ops = 9
        assert s.mma_ops == 4

    def test_dram_bytes_is_sector_based(self):
        s = ExecutionStats(load_transactions=3, store_transactions=2)
        assert s.dram_bytes == 5 * 32

    def test_total_flops_counts_mma(self):
        s = ExecutionStats(cuda_flops=100, mma_ops=2)
        assert s.total_flops == 100 + 2 * 8192

    def test_load_efficiency(self):
        s = ExecutionStats(global_load_bytes=64, load_transactions=4)
        assert s.load_efficiency == pytest.approx(0.5)
        assert ExecutionStats().load_efficiency == 1.0

    def test_as_dict_roundtrip(self):
        s = ExecutionStats(atomic_ops=3)
        d = s.as_dict()
        assert d["atomic_ops"] == 3
        assert set(d) >= {"global_load_bytes", "mma_ops", "warps_launched"}

"""Regressions for the PR-8 bugfix trio on the engine's front door.

Three historical hazards, each with a test that fails on the old code:

* **flush poison pill** — a shape-invalid request used to enter the
  submit queue, fail inside ``spmv_many``, and be *restored* by the
  flush recovery path, wedging the queue forever.  Now :meth:`submit`
  validates eagerly and :meth:`spmv_many` routes validation failures
  through ``return_errors`` per request, so the queue always drains.
* **stats inflation** — ``stats.requests`` / ``engine_requests_total``
  used to count a request before validating it, so rejected requests
  inflated throughput math.  Now only requests the engine actually
  attempts are counted.
* **operator stale fingerprint** — :meth:`operator` hashed the matrix
  once at bind time; mutating the CSR's storage in place afterwards
  silently served results for the *old* contents out of the operand
  cache.  Now each call runs a cheap shape/nnz check and re-fingerprints
  on a mismatch.
"""

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.obs import get_registry, reset_observability

from tests.conftest import make_random_dense


@pytest.fixture(autouse=True)
def clean_observability():
    reset_observability()
    yield
    reset_observability()


def _csr(rng, nrows=48, ncols=40) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, 0.12))
    )


def _requests_total(engine) -> float:
    return get_registry().counter(
        "engine_requests_total",
        "SpMV requests accepted by the engine.",
        labels=("kernel",),
    ).value(kernel=engine.kernel_name)


class TestPoisonPill:
    def test_submit_rejects_malformed_before_it_enters_the_queue(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        with pytest.raises(KernelError):
            engine.submit(csr, np.ones(csr.ncols + 3, np.float32))
        assert len(engine._queue) == 0
        assert engine.flush() == []

    def test_malformed_entry_cannot_wedge_flush(self, rng):
        """Even an entry that turns invalid *after* submission drains."""
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        good = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(3)]
        for x in good:
            engine.submit(csr, x)
        # sneak a poison entry past submit-time validation, the way an
        # in-place matrix mutation would: append to the queue directly
        engine._queue.insert(1, (csr, np.ones(csr.ncols + 1, np.float32)))

        results = engine.flush(return_errors=True)

        assert len(results) == 4
        assert isinstance(results[1], KernelError)
        reference = [csr.matvec(x) for x in good]
        served = [results[0], results[2], results[3]]
        for y, ref in zip(served, reference):
            assert np.allclose(y, ref, rtol=1e-2, atol=1e-2)
        # the queue drained — the poison entry was NOT restored
        assert len(engine._queue) == 0
        assert engine.flush() == []

    def test_spmv_many_positions_validation_errors_per_request(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        good = rng.standard_normal(csr.ncols).astype(np.float32)
        bad = np.ones(csr.ncols - 1, np.float32)

        results = engine.spmv_many(
            [(csr, good), (csr, bad), (csr, good)], return_errors=True
        )
        assert isinstance(results[1], KernelError)
        assert "request 1" in str(results[1])
        assert np.array_equal(results[0], results[2])

        with pytest.raises(KernelError):
            engine.spmv_many([(csr, good), (csr, bad)])


class TestStatsAccounting:
    def test_rejected_spmv_is_never_counted(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        with pytest.raises(KernelError):
            engine.spmv(csr, np.ones(csr.ncols + 1, np.float32))
        assert engine.stats.requests == 0
        assert _requests_total(engine) == 0

        engine.spmv(csr, rng.standard_normal(csr.ncols).astype(np.float32))
        assert engine.stats.requests == 1
        assert _requests_total(engine) == 1

    def test_spmv_many_counts_only_admitted_requests(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        good = rng.standard_normal(csr.ncols).astype(np.float32)
        bad = np.ones(csr.ncols + 2, np.float32)

        engine.spmv_many([(csr, good), (csr, bad), (csr, good)], return_errors=True)
        assert engine.stats.requests == 2
        assert _requests_total(engine) == 2

        # with return_errors=False the raise happens before anything is
        # counted — a rejected call leaves the books untouched
        with pytest.raises(KernelError):
            engine.spmv_many([(csr, bad), (csr, good)])
        assert engine.stats.requests == 2
        assert _requests_total(engine) == 2

    def test_operator_counts_after_validation(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        apply = engine.operator(csr)
        with pytest.raises(KernelError):
            apply(np.ones(csr.ncols + 1, np.float32))
        assert engine.stats.requests == 0
        assert _requests_total(engine) == 0

    def test_books_reconcile_across_mixed_traffic(self, rng):
        """stats.requests == engine_requests_total == attempts served."""
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        good = rng.standard_normal(csr.ncols).astype(np.float32)
        bad = np.ones(2, np.float32)

        engine.spmv(csr, good)
        engine.spmv_many([(csr, good), (csr, bad)], return_errors=True)
        with pytest.raises(KernelError):
            engine.spmv(csr, bad)
        engine.submit(csr, good)
        engine.flush()

        assert engine.stats.requests == 3
        assert _requests_total(engine) == engine.stats.requests


class TestOperatorRefingerprint:
    def test_in_place_mutation_with_nnz_change_is_detected(self, rng):
        dense_a = make_random_dense(rng, 32, 32, 0.10)
        dense_b = make_random_dense(rng, 32, 32, 0.25)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense_a))
        other = CSRMatrix.from_coo(COOMatrix.from_dense(dense_b))
        assert csr.nnz != other.nnz  # densities differ; mutation is visible

        engine = SpMVEngine("spaden")
        apply = engine.operator(csr)
        x = rng.standard_normal(32).astype(np.float32)
        y_before = apply(x)
        assert np.allclose(y_before, dense_a @ x, rtol=1e-2, atol=1e-2)

        # rebind the CSR's storage in place — same object, new contents
        csr.row_pointers = other.row_pointers
        csr.col_indices = other.col_indices
        csr.values = other.values

        y_after = apply(x)
        assert np.allclose(y_after, dense_b @ x, rtol=1e-2, atol=1e-2)
        assert not np.array_equal(y_after, y_before)

    def test_mutated_operator_matches_fresh_spmv_bitwise(self, rng):
        dense_a = make_random_dense(rng, 24, 24, 0.10)
        dense_b = make_random_dense(rng, 24, 24, 0.30)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense_a))
        other = CSRMatrix.from_coo(COOMatrix.from_dense(dense_b))

        engine = SpMVEngine("spaden")
        apply = engine.operator(csr)
        x = rng.standard_normal(24).astype(np.float32)
        apply(x)  # warm the cache with the original contents

        csr.row_pointers = other.row_pointers
        csr.col_indices = other.col_indices
        csr.values = other.values

        reference = SpMVEngine("spaden").spmv(other, x)
        assert np.array_equal(apply(x), reference)

"""peek(): the side-effect-free cache read, and the CLI that needs it."""

import numpy as np

from repro.cli import _served_kernel
from repro.engine import OperandCache, SpMVEngine, matrix_fingerprint
from repro.exec.result import DegradationEvent
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.base import PreparedOperand
from repro.obs import get_registry, reset_observability

from tests.conftest import make_random_dense


def _operand(name: str, device_bytes: int = 10) -> PreparedOperand:
    return PreparedOperand(
        kernel_name="spaden",
        data=name,
        shape=(8, 8),
        nnz=1,
        device_bytes=device_bytes,
        preprocessing_seconds=0.0,
    )


def _cache_event_count(cache_name: str) -> float:
    metric = get_registry().get("operand_cache_events_total")
    if metric is None:
        return 0.0
    return sum(
        value
        for labels, value in metric.labeled()
        if labels.get("cache") == cache_name
    )


class TestPeek:
    def test_peek_returns_resident_operand(self):
        cache = OperandCache(1000, name="peek-t1")
        op = _operand("a")
        cache.put(("spaden", "f"), op)
        assert cache.peek(("spaden", "f")) is op
        assert cache.peek(("spaden", "missing")) is None

    def test_peek_counts_nothing(self):
        reset_observability()
        cache = OperandCache(1000, name="peek-t2")
        cache.put(("spaden", "f"), _operand("a"))
        before = cache.stats.as_dict()
        events_before = _cache_event_count("peek-t2")
        cache.peek(("spaden", "f"))
        cache.peek(("spaden", "missing"))
        assert cache.stats.as_dict() == before
        assert _cache_event_count("peek-t2") == events_before

    def test_peek_leaves_lru_order_alone(self):
        cache = OperandCache(1000, name="peek-t3")
        cache.put(("spaden", "a"), _operand("a"))
        cache.put(("spaden", "b"), _operand("b"))
        order_before = cache.keys()
        cache.peek(("spaden", "a"))  # a get() would move "a" to MRU
        assert cache.keys() == order_before
        cache.get(("spaden", "a"))
        assert cache.keys() != order_before  # sanity: get() does move it


class TestServedKernel:
    def test_no_degradation_returns_preferred(self):
        assert _served_kernel("spaden", []) == "spaden"

    def test_follows_fallback_chain(self):
        log = [
            DegradationEvent(
                kernel="spaden", stage="run", cause="KernelError",
                detail="boom", fallback="spaden-no-tc",
            ),
            DegradationEvent(
                kernel="spaden-no-tc", stage="run", cause="KernelError",
                detail="boom", fallback="csr-scalar",
            ),
        ]
        assert _served_kernel("spaden", log) == "csr-scalar"

    def test_exhausted_tail_keeps_last_fallback(self):
        log = [
            DegradationEvent(
                kernel="spaden", stage="run", cause="KernelError",
                detail="boom", fallback="csr-scalar",
            ),
            DegradationEvent(
                kernel="csr-scalar", stage="run", cause="KernelError",
                detail="boom", fallback=None,
            ),
        ]
        # fallback=None means exhaustion; the last *named* kernel stands
        assert _served_kernel("spaden", log) == "csr-scalar"


class TestCliIntrospectionRegression:
    """The cli spmv flow must observe the cache without distorting it."""

    def _engine_after_one_request(self, rng):
        csr = CSRMatrix.from_coo(
            COOMatrix.from_dense(make_random_dense(rng, 24, 24))
        )
        engine = SpMVEngine("spaden")
        x = rng.standard_normal(24).astype(np.float32)
        engine.spmv(csr, x)
        return engine, csr

    def test_peek_based_introspection_keeps_counters_exact(self, rng):
        engine, csr = self._engine_after_one_request(rng)
        stats_before = engine.cache.stats.as_dict()
        served = _served_kernel("spaden", engine.stats.degradation_log)
        operand = engine.cache.peek((served, matrix_fingerprint(csr)))
        assert operand is not None
        # the old cache.get() here inflated hits by one
        assert engine.cache.stats.as_dict() == stats_before

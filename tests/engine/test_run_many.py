"""run_many across every kernel, plus degenerate-input consistency.

Two contracts:

* ``run_many`` equals stacked per-vector ``run`` results bitwise for
  every registered kernel (the base class guarantees it by looping; the
  vectorized overrides must preserve it);
* degenerate matrices (``nnz == 0``, zero rows, zero columns) produce a
  correctly shaped float32 zero ``y`` from ``run``, ``simulate`` and
  ``run_many`` alike.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import available_kernels, get_kernel

from tests.conftest import make_random_dense


def _csr(rng, nrows=40, ncols=48, density=0.12) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, density))
    )


@pytest.mark.parametrize("kernel_name", available_kernels())
class TestRunManyEveryKernel:
    def test_matches_stacked_runs_bitwise(self, kernel_name, rng):
        csr = _csr(rng)
        kernel = get_kernel(kernel_name)
        prepared = kernel.prepare(csr)
        X = rng.standard_normal((5, csr.ncols)).astype(np.float32)
        Y = kernel.run_many(prepared, X)
        assert Y.shape == (5, csr.nrows)
        assert Y.dtype == np.float32
        for j in range(5):
            assert np.array_equal(kernel.run(prepared, X[j]), Y[j]), kernel_name

    def test_empty_batch(self, kernel_name, rng):
        csr = _csr(rng)
        kernel = get_kernel(kernel_name)
        prepared = kernel.prepare(csr)
        Y = kernel.run_many(prepared, np.zeros((0, csr.ncols), np.float32))
        assert Y.shape == (0, csr.nrows)
        assert Y.dtype == np.float32

    def test_bad_batch_shape_raises(self, kernel_name, rng):
        csr = _csr(rng)
        kernel = get_kernel(kernel_name)
        prepared = kernel.prepare(csr)
        with pytest.raises(KernelError):
            kernel.run_many(prepared, np.zeros(csr.ncols, np.float32))  # 1-D
        with pytest.raises(KernelError):
            kernel.run_many(prepared, np.zeros((2, csr.ncols + 3), np.float32))


def _degenerate_cases():
    empty_vals = np.zeros(0, np.float32)
    empty_cols = np.zeros(0, np.int32)
    return {
        "nnz-zero": CSRMatrix((24, 16), np.zeros(25, np.int64), empty_cols, empty_vals),
        "zero-rows": CSRMatrix((0, 16), np.zeros(1, np.int64), empty_cols, empty_vals),
        "zero-cols": CSRMatrix((24, 0), np.zeros(25, np.int64), empty_cols, empty_vals),
    }


@pytest.mark.parametrize("kernel_name", available_kernels())
@pytest.mark.parametrize("case", sorted(_degenerate_cases()))
class TestDegenerateInputs:
    def test_zero_result_from_every_entry_point(self, kernel_name, case):
        csr = _degenerate_cases()[case]
        kernel = get_kernel(kernel_name)
        prepared = kernel.prepare(csr)
        x = np.ones(csr.ncols, np.float32)

        y = kernel.run(prepared, x)
        assert y.shape == (csr.nrows,) and y.dtype == np.float32
        assert not y.any()

        X = np.ones((3, csr.ncols), np.float32)
        Y = kernel.run_many(prepared, X)
        assert Y.shape == (3, csr.nrows) and Y.dtype == np.float32
        assert not Y.any()

        if kernel.capabilities.simulate:
            y_sim, stats = kernel.simulate(prepared, x)
            assert y_sim.shape == (csr.nrows,) and y_sim.dtype == np.float32
            assert not np.asarray(y_sim).any()
            assert stats.global_store_bytes >= 0

            Y_sim, _ = kernel.simulate_many(prepared, X)
            assert Y_sim.shape == (3, csr.nrows) and Y_sim.dtype == np.float32
            assert not np.asarray(Y_sim).any()


class TestSpadenBatchedSimulator:
    def test_simulate_many_matches_run_many_bitwise(self, rng):
        csr = _csr(rng, nrows=33, ncols=25)
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        X = rng.standard_normal((4, 25)).astype(np.float32)
        Y_sim, stats = kernel.simulate_many(prepared, X)
        assert np.array_equal(kernel.run_many(prepared, X), Y_sim)
        single_stats = kernel.simulate(prepared, X[0])[1]
        assert stats.warps_launched == 4 * single_stats.warps_launched

"""Operand cache: content keying, LRU order, budget, counters."""

import numpy as np
import pytest

from repro.engine import OperandCache, SpMVEngine, matrix_fingerprint
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.base import PreparedOperand

from tests.conftest import make_random_dense


def _operand(name: str, device_bytes: int) -> PreparedOperand:
    return PreparedOperand(
        kernel_name="spaden",
        data=name,
        shape=(8, 8),
        nnz=1,
        device_bytes=device_bytes,
        preprocessing_seconds=0.0,
    )


def _csr(rng, nrows=40, ncols=40, density=0.1) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, density))
    )


class TestFingerprint:
    def test_content_identical_matrices_share_a_key(self, rng):
        csr = _csr(rng)
        clone = CSRMatrix(
            csr.shape,
            csr.row_pointers.copy(),
            csr.col_indices.copy(),
            csr.values.copy(),
        )
        assert csr is not clone
        assert matrix_fingerprint(csr) == matrix_fingerprint(clone)

    def test_value_edit_changes_the_key(self, rng):
        csr = _csr(rng)
        before = matrix_fingerprint(csr)
        csr.values[0] += 1.0
        assert matrix_fingerprint(csr) != before

    def test_shape_disambiguates_empty_matrices(self):
        a = CSRMatrix((2, 5), np.zeros(3, np.int64), [], [])
        b = CSRMatrix((2, 6), np.zeros(3, np.int64), [], [])
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_dtype_disambiguates_identical_bytes(self):
        """Regression: the old hash covered only raw bytes, so an int32
        ``[1, 0]`` and an int64 ``[1]`` (same little-endian bytes)
        collided.  CSRMatrix coerces index dtypes at construction, so
        the collision is reproduced with a duck-typed stub carrying the
        exact four attributes the fingerprint reads."""
        import types

        def stub(col_indices):
            return types.SimpleNamespace(
                shape=(1, 2),
                row_pointers=np.array([0, 2], np.int64),
                col_indices=col_indices,
                values=np.array([1.5, 2.5], np.float32),
            )

        a = stub(np.array([1, 0], np.int32))
        b = stub(np.array([1], np.int64))
        assert a.col_indices.tobytes() == b.col_indices.tobytes()  # the trap
        assert matrix_fingerprint(a) != matrix_fingerprint(b)

    def test_array_boundary_pinned(self):
        """Bytes cannot shift between adjacent arrays and hash the same:
        the per-array length framing keeps ``indices=[1,2] values=[3]``
        apart from ``indices=[1] values=[2,3]``."""
        import types

        def stub(col_indices, values):
            # row_pointers held constant so only the boundary moves
            return types.SimpleNamespace(
                shape=(1, 4),
                row_pointers=np.array([0, 2], np.int64),
                col_indices=np.asarray(col_indices, np.int32),
                values=np.asarray(values, np.int32).view(np.float32),
            )

        a = stub([1, 2], [3])
        b = stub([1], [2, 3])
        assert matrix_fingerprint(a) != matrix_fingerprint(b)


class TestOperandCache:
    def test_hit_miss_counters(self):
        cache = OperandCache(1000)
        assert cache.get(("spaden", "a")) is None
        cache.put(("spaden", "a"), _operand("a", 100))
        assert cache.get(("spaden", "a")).data == "a"
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = OperandCache(300)
        for name in "abc":
            cache.put(("spaden", name), _operand(name, 100))
        cache.get(("spaden", "a"))  # refresh a -> b is now LRU
        cache.put(("spaden", "d"), _operand("d", 100))
        assert ("spaden", "b") not in cache
        assert ("spaden", "a") in cache
        assert cache.stats.evictions == 1
        assert cache.keys()[-1] == ("spaden", "d")  # MRU last

    def test_budget_enforced(self):
        cache = OperandCache(250)
        for name in "abcdef":
            cache.put(("spaden", name), _operand(name, 100))
            assert cache.resident_bytes <= 250
        assert len(cache) == 2

    def test_oversized_operand_rejected_not_retained(self):
        cache = OperandCache(100)
        cache.put(("spaden", "small"), _operand("small", 80))
        cache.put(("spaden", "huge"), _operand("huge", 101))
        assert ("spaden", "huge") not in cache
        assert ("spaden", "small") in cache  # nothing evicted for it
        assert cache.stats.rejected == 1
        assert cache.stats.evictions == 0

    def test_oversized_replacement_counts_the_displaced_entry(self):
        """Regression: an oversized ``put`` over a *resident* key used to
        drop the old entry without counting an eviction, so
        ``evictions`` understated every entry that left the cache."""
        cache = OperandCache(100)
        cache.put(("spaden", "a"), _operand("small", 80))
        cache.put(("spaden", "a"), _operand("huge", 101))
        assert ("spaden", "a") not in cache
        assert cache.stats.rejected == 1
        assert cache.stats.evictions == 1  # the displaced resident entry
        assert cache.resident_bytes == 0

    def test_resident_bytes_running_total_consistent(self):
        """The running total must equal the sum over resident operands
        after every mutation (regression for the O(n) recomputation it
        replaced), and never exceed the budget."""
        cache = OperandCache(250)

        def check():
            actual = sum(op.device_bytes for op in cache._entries.values())
            assert cache.resident_bytes == actual
            assert cache.resident_bytes <= 250

        for name, size in [("a", 100), ("b", 100), ("c", 60), ("a", 40), ("big", 999)]:
            cache.put(("spaden", name), _operand(name, size))
            check()
        cache.invalidate(("spaden", "c"))
        check()
        cache.invalidate(("spaden", "absent"))
        check()
        cache.clear()
        check()
        assert cache.resident_bytes == 0

    def test_same_key_replacement_does_not_leak_bytes(self):
        cache = OperandCache(1000)
        cache.put(("spaden", "a"), _operand("v1", 400))
        cache.put(("spaden", "a"), _operand("v2", 300))
        assert cache.resident_bytes == 300
        assert len(cache) == 1

    def test_invalidate(self):
        cache = OperandCache(1000)
        cache.put(("spaden", "a"), _operand("a", 10))
        assert cache.invalidate(("spaden", "a"))
        assert not cache.invalidate(("spaden", "a"))
        assert len(cache) == 0

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(KernelError):
            OperandCache(0)


class TestEngineCacheIntegration:
    def test_hit_skips_prepare(self, rng, monkeypatch):
        from repro.kernels.base import get_kernel

        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        engine = SpMVEngine("spaden")
        kernel = get_kernel("spaden")
        calls = []
        original = type(kernel).prepare

        def counting_prepare(self, matrix):
            calls.append(1)
            return original(self, matrix)

        monkeypatch.setattr(type(kernel), "prepare", counting_prepare)
        for _ in range(5):
            engine.spmv(csr, x)
        assert len(calls) == 1
        assert engine.stats.prepare_calls == 1
        assert engine.cache.stats.hits == 4 and engine.cache.stats.misses == 1

    def test_distinct_matrices_get_distinct_entries(self, rng):
        a, b = _csr(rng), _csr(rng)
        engine = SpMVEngine("spaden")
        engine.spmv(a, np.ones(a.ncols, np.float32))
        engine.spmv(b, np.ones(b.ncols, np.float32))
        assert len(engine.cache) == 2
        assert engine.stats.prepare_calls == 2

    def test_tiny_budget_thrashes_but_stays_correct(self, rng):
        a, b = _csr(rng), _csr(rng)
        engine = SpMVEngine("spaden", cache_bytes=1)  # everything rejected
        xa = rng.standard_normal(a.ncols).astype(np.float32)
        ya1 = engine.spmv(a, xa)
        engine.spmv(b, np.ones(b.ncols, np.float32))
        ya2 = engine.spmv(a, xa)
        assert np.array_equal(ya1, ya2)
        assert len(engine.cache) == 0
        assert engine.cache.stats.rejected >= 2

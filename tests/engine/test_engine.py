"""SpMVEngine: micro-batching, bitwise equality, degradation, metrics."""

import numpy as np
import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.engine import SpMVEngine, matrix_fingerprint
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.base import PreparedOperand, get_kernel

from tests.conftest import make_random_dense


def _csr(rng, nrows=48, ncols=40, density=0.12) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, density))
    )


class TestBatching:
    @pytest.mark.parametrize("kernel_name", ["spaden", "cusparse-csr", "csr-scalar"])
    def test_batched_results_bitwise_equal_per_vector_run(self, rng, kernel_name):
        csr = _csr(rng)
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(7)]
        engine = SpMVEngine(kernel_name)
        ys = engine.spmv_many([(csr, x) for x in xs])
        kernel = get_kernel(kernel_name)
        prepared = kernel.prepare(csr)
        for x, y in zip(xs, ys):
            assert y.dtype == np.float32
            assert np.array_equal(kernel.run(prepared, x), y)

    def test_same_matrix_requests_fold_into_one_batch(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        engine.spmv_many([(csr, np.ones(csr.ncols, np.float32))] * 6)
        assert engine.stats.batches == 1
        assert engine.stats.requests == 6
        assert engine.stats.batched_vectors == 6
        assert engine.stats.prepare_calls == 1

    def test_interleaved_matrices_return_in_request_order(self, rng):
        a, b = _csr(rng), _csr(rng, nrows=32, ncols=40)
        xs = [rng.standard_normal(40).astype(np.float32) for _ in range(6)]
        order = [a, b, a, b, b, a]
        engine = SpMVEngine("spaden")
        ys = engine.spmv_many(list(zip(order, xs)))
        for csr, x, y in zip(order, xs, ys):
            kernel = get_kernel("spaden")
            assert np.array_equal(kernel.run(kernel.prepare(csr), x), y)
        assert engine.stats.batches == 2  # one per distinct matrix

    def test_spmv_single_matches_batched_entry(self, rng):
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        a = SpMVEngine("spaden").spmv(csr, x)
        b = SpMVEngine("spaden").spmv_many([(csr, x)])[0]
        assert np.array_equal(a, b)

    def test_empty_request_list(self):
        assert SpMVEngine("spaden").spmv_many([]) == []

    def test_shape_mismatch_raises(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        with pytest.raises(KernelError, match="expected"):
            engine.spmv(csr, np.ones(csr.ncols + 1, np.float32))
        with pytest.raises(KernelError, match="request 1"):
            engine.spmv_many(
                [
                    (csr, np.ones(csr.ncols, np.float32)),
                    (csr, np.ones(3, np.float32)),
                ]
            )

    def test_submit_flush_queue(self, rng):
        csr = _csr(rng)
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(4)]
        engine = SpMVEngine("spaden")
        for x in xs:
            engine.submit(csr, x)
        ys = engine.flush()
        assert engine.flush() == []  # queue drained
        direct = SpMVEngine("spaden").spmv_many([(csr, x) for x in xs])
        assert all(np.array_equal(a, b) for a, b in zip(ys, direct))

    def test_operator_binds_matrix_once(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        op = engine.operator(csr)
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(3)]
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        for x in xs:
            assert np.array_equal(op(x), kernel.run(prepared, x))
        assert engine.stats.prepare_calls == 1


class TestSimulatedBatches:
    def test_batched_counters_are_k_times_single(self, rng):
        csr = _csr(rng)
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(3)]
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        single = [kernel.simulate(prepared, x)[1] for x in xs]
        engine = SpMVEngine("spaden")
        ys = engine.spmv_many([(csr, x) for x in xs], simulate=True)
        merged = engine.stats.execution
        for field in ("load_transactions", "mma_ops", "warps_launched", "global_load_bytes"):
            assert getattr(merged, field) == sum(getattr(s, field) for s in single), field
        for x, y in zip(xs, ys):
            assert np.array_equal(kernel.run(prepared, x), y)

    @pytest.mark.sanitizer
    def test_batched_simulation_is_sanitizer_clean(self, rng):
        from repro.matrices.generators import fp16_exact_values

        csr = _csr(rng, nrows=40, ncols=33)
        xs = [fp16_exact_values(rng, 33) for _ in range(3)]
        engine = SpMVEngine("spaden", degrade=False)
        with Sanitizer() as sanitizer:
            ys = engine.spmv_many([(csr, x) for x in xs], simulate=True)
        assert sanitizer.report.clean, sanitizer.report.summary()
        assert sanitizer.report.warps_observed > 0
        reference = [csr.matvec(x) for x in xs]
        for ref, y in zip(reference, ys):
            assert float(np.abs(ref - y).max(initial=0.0)) <= 1e-4


class TestDegradation:
    def _poison(self, engine, csr, kernel_name="spaden"):
        """Plant a cache entry whose batch execution must fail."""
        fingerprint = matrix_fingerprint(csr)
        bad = PreparedOperand(
            kernel_name=kernel_name,
            data=None,
            shape=(csr.nrows, csr.ncols + 1),  # forces the X-shape check to fail
            nnz=csr.nnz,
            device_bytes=64,
            preprocessing_seconds=0.0,
        )
        engine.cache.put((kernel_name, fingerprint), bad)
        return fingerprint

    def test_poisoned_operand_falls_back_and_is_evicted(self, rng):
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        engine = SpMVEngine("spaden")
        fingerprint = self._poison(engine, csr)
        y = engine.spmv(csr, x)
        # served by the fallback, correct to CSR reference
        assert np.allclose(y, csr.matvec(x), rtol=1e-2, atol=1e-2)
        [event] = engine.stats.degradation_log
        assert event.kernel == "spaden"
        assert event.stage == "run"
        assert event.fallback == "spaden-no-tc"
        assert ("spaden", fingerprint) not in engine.cache

    def test_recovers_with_fresh_prepare_after_eviction(self, rng):
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        engine = SpMVEngine("spaden")
        self._poison(engine, csr)
        engine.spmv(csr, x)  # degrades, evicts the poisoned entry
        y = engine.spmv(csr, x)  # re-prepares spaden cleanly
        kernel = get_kernel("spaden")
        assert np.array_equal(kernel.run(kernel.prepare(csr), x), y)
        assert engine.stats.degradations == 1  # no second fallback

    def test_degrade_false_raises_instead(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden", degrade=False)
        assert engine.chain == ("spaden",)
        self._poison(engine, csr)
        with pytest.raises(KernelError, match="all kernels in chain"):
            engine.spmv(csr, np.ones(csr.ncols, np.float32))

    def test_custom_chain_respected(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden", chain=("spaden", "csr-scalar"))
        self._poison(engine, csr)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        y = engine.spmv(csr, x)
        kernel = get_kernel("csr-scalar")
        assert np.array_equal(kernel.run(kernel.prepare(csr), x), y)
        assert engine.stats.degradation_log[0].fallback == "csr-scalar"

    def test_unknown_kernel_rejected_up_front(self):
        with pytest.raises(KernelError):
            SpMVEngine("no-such-kernel")


class TestMetrics:
    def test_as_dict_round_trip(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        engine.spmv_many([(csr, np.ones(csr.ncols, np.float32))] * 3)
        d = engine.stats.as_dict()
        assert d["requests"] == 3 and d["batches"] == 1
        assert d["prepare_seconds"] >= 0.0
        c = engine.cache.stats.as_dict()
        assert set(c) == {"hits", "misses", "evictions", "rejected", "invalidations"}
        assert engine.stats.amortized_run_seconds >= 0.0

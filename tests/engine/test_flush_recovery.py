"""Regression: a mid-flush failure must never lose queued requests.

The original ``flush()`` swapped the queue out *before* ``spmv_many``
ran, so a failing micro-batch dropped every request of that flush on the
floor.  The contract now: with ``return_errors=False`` the whole flushed
queue is restored (ahead of anything submitted meanwhile) before the
error propagates; with ``return_errors=True`` every request gets either
its result or the error instance at its position — zero lost either way.
"""

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.errors import ReproError, VerificationError
from repro.exec import ChainExhaustedError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

from tests.conftest import make_random_dense


def _csr(rng, nrows=48, ncols=40) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, 0.12))
    )


def _poison_everything(name, prepared):
    """A fault hook no kernel in the chain survives."""
    raise VerificationError(f"poisoned {name}")


class TestQueueRestoration:
    def test_failed_flush_restores_the_entire_queue(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden", chain=("spaden",))
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(4)]
        for x in xs:
            engine.submit(csr, x)

        with pytest.raises(ReproError):
            engine.flush(faults=(_poison_everything,))

        # nothing lost: the same four requests are queued, in order
        assert len(engine._queue) == 4
        restored = [x for _csr_, x in engine._queue]
        assert all(np.array_equal(a, b) for a, b in zip(restored, xs))

        # the condition cleared (no fault hook): the retry flush serves all
        ys = engine.flush()
        reference = [csr.matvec(x) for x in xs]
        assert len(ys) == 4
        for y, ref in zip(ys, reference):
            assert np.allclose(y, ref, rtol=1e-2, atol=1e-2)
        assert engine.flush() == []

    def test_restored_requests_precede_later_submissions(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden", chain=("spaden",))
        first = rng.standard_normal(csr.ncols).astype(np.float32)
        engine.submit(csr, first)
        with pytest.raises(ReproError):
            engine.flush(faults=(_poison_everything,))

        second = rng.standard_normal(csr.ncols).astype(np.float32)
        engine.submit(csr, second)
        queued = [x for _csr_, x in engine._queue]
        assert np.array_equal(queued[0], first)  # failed flush rides up front
        assert np.array_equal(queued[1], second)

    def test_clean_flush_still_drains(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden")
        engine.submit(csr, rng.standard_normal(csr.ncols).astype(np.float32))
        assert len(engine.flush()) == 1
        assert engine._queue == []


class TestPerRequestErrors:
    def test_return_errors_marks_failed_group_and_serves_the_rest(self, rng):
        healthy = _csr(rng)
        doomed = _csr(rng, nrows=32)

        def poison_doomed(name, prepared):
            if prepared.shape[0] == 32:
                raise VerificationError("poisoned the doomed group")

        engine = SpMVEngine("spaden", chain=("spaden",))
        xs = [rng.standard_normal(40).astype(np.float32) for _ in range(4)]
        order = [healthy, doomed, healthy, doomed]
        for matrix, x in zip(order, xs):
            engine.submit(matrix, x)

        results = engine.flush(return_errors=True, faults=(poison_doomed,))
        assert len(results) == 4  # zero lost
        assert engine._queue == []  # consumed: errors were delivered instead
        for matrix, x, result in zip(order, xs, results):
            if matrix is doomed:
                assert isinstance(result, ChainExhaustedError)
            else:
                assert np.allclose(
                    result, matrix.matvec(x), rtol=1e-2, atol=1e-2
                )

    def test_error_instances_are_shared_per_group(self, rng):
        csr = _csr(rng)
        engine = SpMVEngine("spaden", chain=("spaden",))
        for _ in range(3):
            engine.submit(csr, rng.standard_normal(csr.ncols).astype(np.float32))
        results = engine.flush(return_errors=True, faults=(_poison_everything,))
        assert len(results) == 3
        assert all(isinstance(r, ChainExhaustedError) for r in results)
        assert results[0] is results[1] is results[2]  # one failure, one object

"""Property test: the operand cache against a brute-force model.

Randomized ``put`` / ``get`` / ``invalidate`` sequences drive an
:class:`~repro.engine.cache.OperandCache` next to a trivially-correct
reference (an ordered dict re-summed from scratch), checking after every
operation that

* the LRU key order matches the model exactly,
* ``resident_bytes`` equals the re-summed total and never exceeds the
  budget,
* the four counters reconcile: every lookup is a hit or a miss, and
  every ``put`` either retains, rejects, or displaces counted entries.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import OperandCache
from repro.kernels.base import PreparedOperand

BUDGET = 500
KEYS = [("spaden", name) for name in "abcdef"]

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(1, 700)),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(0)),
        st.tuples(st.just("invalidate"), st.sampled_from(KEYS), st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


def _operand(size: int) -> PreparedOperand:
    return PreparedOperand(
        kernel_name="spaden",
        data=f"op-{size}",
        shape=(8, 8),
        nnz=1,
        device_bytes=size,
        preprocessing_seconds=0.0,
    )


class Model:
    """Straight-line reference implementation of the cache contract."""

    def __init__(self):
        self.entries: OrderedDict[tuple, int] = OrderedDict()
        self.hits = self.misses = self.evictions = self.rejected = 0

    def resident(self) -> int:
        return sum(self.entries.values())

    def get(self, key):
        if key in self.entries:
            self.entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1

    def put(self, key, size):
        if size > BUDGET:
            if self.entries.pop(key, None) is not None:
                self.evictions += 1
            self.rejected += 1
            return
        self.entries.pop(key, None)
        self.entries[key] = size
        while self.resident() > BUDGET:
            self.entries.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key):
        self.entries.pop(key, None)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_cache_matches_model(ops):
    cache = OperandCache(BUDGET, name="property")
    model = Model()
    lookups = 0
    for action, key, size in ops:
        if action == "put":
            cache.put(key, _operand(size))
            model.put(key, size)
        elif action == "get":
            cache.get(key)
            model.get(key)
            lookups += 1
        else:
            cache.invalidate(key)
            model.invalidate(key)

        # LRU order, residency, budget
        assert cache.keys() == list(model.entries)
        assert cache.resident_bytes == model.resident()
        assert cache.resident_bytes <= BUDGET

        # counter reconciliation
        s = cache.stats
        assert (s.hits, s.misses, s.evictions, s.rejected) == (
            model.hits,
            model.misses,
            model.evictions,
            model.rejected,
        )
        assert s.hits + s.misses == lookups

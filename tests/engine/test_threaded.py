"""Threaded stress tests for the hardened serving seams.

The static auditor (:mod:`repro.analysis.concurrency`) proves the lock
*contracts* hold lexically; these tests prove the locks do what the
contracts claim under real contention: N threads hammering one shared
engine (with metrics and a breaker board installed) must produce results
bitwise-equal to the serial run, counters that reconcile exactly, and no
lost or double-counted cache events.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine import SpMVEngine, matrix_fingerprint
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.obs import get_registry, get_span_log, reset_observability
from repro.resilience import BreakerBoard, ResiliencePolicy

from tests.conftest import make_random_dense

N_THREADS = 8
PER_THREAD = 6


@pytest.fixture(autouse=True)
def _scoped_observability():
    reset_observability()
    yield
    reset_observability()


def _csr(rng, nrows=48, ncols=40, density=0.12) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, density))
    )


def _matrices(rng, count=3):
    return [_csr(rng, nrows=40 + 8 * i) for i in range(count)]


def _engine() -> SpMVEngine:
    return SpMVEngine(
        "spaden",
        resilience=ResiliencePolicy(breakers=BreakerBoard()),
    )


def _cache_event_total(cache_name: str) -> dict[str, float]:
    metric = get_registry().get("operand_cache_events_total")
    if metric is None:
        return {}
    totals: dict[str, float] = {}
    for labels, value in metric.labeled():
        if labels["cache"] == cache_name:
            totals[labels["event"]] = totals.get(labels["event"], 0) + value
    return totals


class TestThreadedSpmv:
    def test_results_bitwise_equal_to_serial(self, rng):
        matrices = _matrices(rng)
        # one (matrix, x) workload per thread slot, reused across runs
        work = [
            (matrices[i % len(matrices)], rng.standard_normal(matrices[i % len(matrices)].ncols).astype(np.float32))
            for i in range(N_THREADS * PER_THREAD)
        ]

        serial = [_engine().spmv(csr, x) for csr, x in work]

        engine = _engine()
        barrier = threading.Barrier(N_THREADS)

        def worker(slot: int):
            barrier.wait()  # maximize overlap
            out = []
            for j in range(PER_THREAD):
                csr, x = work[slot * PER_THREAD + j]
                out.append(engine.spmv(csr, x))
            return out

        with ThreadPoolExecutor(N_THREADS) as pool:
            threaded = [y for chunk in pool.map(worker, range(N_THREADS)) for y in chunk]

        for expected, got in zip(serial, threaded):
            assert got.dtype == np.float32
            assert np.array_equal(expected, got)

    def test_counters_reconcile_exactly(self, rng):
        matrices = _matrices(rng)
        engine = _engine()
        barrier = threading.Barrier(N_THREADS)

        def worker(slot: int):
            barrier.wait()
            for j in range(PER_THREAD):
                csr = matrices[(slot + j) % len(matrices)]
                x = np.ones(csr.ncols, np.float32)
                engine.spmv(csr, x)

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        total = N_THREADS * PER_THREAD
        stats, cache = engine.stats, engine.cache.stats
        assert stats.requests == total
        assert stats.batches == total
        # every lookup is a hit or a miss, none dropped under the race
        assert cache.hits + cache.misses == cache.lookups == total
        # each miss triggered exactly one prepare (and vice versa)
        assert stats.prepare_calls == cache.misses
        # nothing was evicted/rejected, so every distinct operand stayed
        assert cache.evictions == cache.rejected == cache.invalidations == 0
        assert len(engine.cache) == len(matrices)
        assert stats.degradations == 0

    def test_no_lost_or_double_counted_cache_events(self, rng):
        matrices = _matrices(rng)
        engine = _engine()

        def worker(slot: int):
            for j in range(PER_THREAD):
                csr = matrices[(slot * 3 + j) % len(matrices)]
                engine.spmv(csr, np.ones(csr.ncols, np.float32))

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        # the metrics mirror and the lock-guarded stats must agree 1:1
        events = _cache_event_total(engine.cache.name)
        cache = engine.cache.stats
        assert events.get("hit", 0) == cache.hits
        assert events.get("miss", 0) == cache.misses
        assert events.get("eviction", 0) == cache.evictions
        assert events.get("rejected", 0) == cache.rejected
        requests = get_registry().get("engine_requests_total")
        assert requests is not None
        assert requests.value(kernel="spaden") == engine.stats.requests

    def test_breaker_board_stays_closed_under_healthy_traffic(self, rng):
        matrices = _matrices(rng)
        engine = _engine()

        def worker(slot: int):
            for j in range(PER_THREAD):
                csr = matrices[j % len(matrices)]
                engine.spmv(csr, np.ones(csr.ncols, np.float32))

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        board = engine.resilience.breakers
        assert board.transitions() == []
        assert all(state == "closed" for state in board.states().values())


class TestThreadedSubmitFlush:
    def test_concurrent_submit_flush_loses_nothing(self, rng):
        matrices = _matrices(rng)
        engine = _engine()
        # distinct scalings make every request's answer unique per (matrix, i)
        work = [
            (matrices[i % len(matrices)], (1.0 + i) * np.ones(matrices[i % len(matrices)].ncols, np.float32))
            for i in range(N_THREADS * PER_THREAD)
        ]
        expected = [_engine().spmv(csr, x) for csr, x in work]

        collected: list[np.ndarray] = []
        collected_lock = threading.Lock()
        barrier = threading.Barrier(N_THREADS)

        def worker(slot: int):
            barrier.wait()
            for j in range(PER_THREAD):
                csr, x = work[slot * PER_THREAD + j]
                engine.submit(csr, x)
                if j % 2 == 1:  # interleave flushes with other threads' submits
                    results = engine.flush()
                    with collected_lock:
                        collected.extend(results)

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))
        collected.extend(engine.flush())  # drain whatever the races left queued

        # every request answered exactly once: compare as multisets of bytes
        assert len(collected) == len(work)
        assert sorted(y.tobytes() for y in collected) == sorted(
            y.tobytes() for y in expected
        )
        assert engine.stats.requests == len(work)
        assert len(engine.flush()) == 0  # nothing left behind

    def test_submit_indices_unique_within_a_quiet_queue(self, rng):
        csr = _csr(rng)
        engine = _engine()
        x = np.ones(csr.ncols, np.float32)
        indices: list[int] = []
        indices_lock = threading.Lock()

        def worker(_slot: int):
            for _ in range(PER_THREAD):
                i = engine.submit(csr, x)
                with indices_lock:
                    indices.append(i)

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        # no flush ran, so indices must be a permutation of 0..N-1:
        # two threads can never claim the same queue slot
        assert sorted(indices) == list(range(N_THREADS * PER_THREAD))
        assert len(engine.flush()) == N_THREADS * PER_THREAD


class TestThreadedObservability:
    def test_span_log_keeps_every_thread_batch(self, rng):
        matrices = _matrices(rng)
        engine = _engine()

        def worker(slot: int):
            for j in range(PER_THREAD):
                csr = matrices[j % len(matrices)]
                engine.spmv(csr, np.ones(csr.ncols, np.float32))

        with ThreadPoolExecutor(N_THREADS) as pool:
            list(pool.map(worker, range(N_THREADS)))

        batches = get_span_log().by_name("engine.batch")
        assert len(batches) == N_THREADS * PER_THREAD
        # parent links stay intra-thread: every batch span is a root
        assert all(s.parent_id is None for s in batches)
        ids = [s.span_id for s in get_span_log().spans()]
        assert len(ids) == len(set(ids))  # no duplicated span ids

    def test_single_threaded_counters_unchanged_by_the_locks(self, rng):
        # the no-lock fast path contract: one thread, same numbers as ever
        csr = _csr(rng)
        engine = _engine()
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(5)]
        ys = engine.spmv_many([(csr, x) for x in xs])
        again = engine.spmv(csr, xs[0])
        assert np.array_equal(again, ys[0])
        assert engine.stats.requests == 6
        assert engine.stats.batches == 2
        assert engine.cache.stats.hits == 1
        assert engine.cache.stats.misses == 1
        assert engine.cache.resident_bytes > 0
        assert (("spaden", matrix_fingerprint(csr)) in engine.cache)

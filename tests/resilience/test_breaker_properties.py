"""Property test: the circuit breaker against a brute-force model.

Randomized ``allow`` / ``success`` / ``failure`` / ``advance`` sequences
drive a :class:`~repro.resilience.CircuitBreaker` next to a
trivially-correct reference that re-derives everything from first
principles (an explicit outcome list truncated to the window, the state
machine written as plain ifs), checking after every operation that

* the state and every ``allow`` verdict match the model exactly,
* the failure rate matches the re-computed window,
* transitions only ever walk legal edges (closed->open, open->half-open,
  half-open->open, half-open->closed) with non-decreasing timestamps.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.resilience import BreakerConfig, BreakerState, CircuitBreaker, ManualClock

CFG = BreakerConfig(
    window=4, failure_threshold=0.5, min_volume=2, cooldown_seconds=5.0, half_open_probes=1
)

_ops = st.lists(
    st.one_of(
        st.just(("allow", 0.0)),
        st.just(("success", 0.0)),
        st.just(("failure", 0.0)),
        st.tuples(st.just("advance"), st.floats(0.25, 10.0)),
    ),
    min_size=1,
    max_size=80,
)

_LEGAL_EDGES = {
    ("closed", "open"),
    ("open", "half-open"),
    ("half-open", "open"),
    ("half-open", "closed"),
}


class Model:
    """Straight-line reference implementation of the breaker contract."""

    def __init__(self, clock):
        self.clock = clock
        self.state = "closed"
        self.outcomes: list[bool] = []  # full history; window derived on read
        self.opened_at = 0.0
        self.probes = 0

    def window(self) -> list[bool]:
        return self.outcomes[-CFG.window :]

    def failure_rate(self) -> float:
        window = self.window()
        if not window:
            return 0.0
        return sum(1 for ok in window if not ok) / len(window)

    def allow(self) -> bool:
        if self.state == "open":
            if self.clock() - self.opened_at < CFG.cooldown_seconds:
                return False
            self.state = "half-open"
            self.probes = 0
        if self.state == "half-open":
            if self.probes >= CFG.half_open_probes:
                return False
            self.probes += 1
            return True
        return True

    def success(self):
        if self.state == "half-open":
            self.outcomes = []
            self.probes = 0
            self.state = "closed"
        elif self.state == "closed":
            self.outcomes.append(True)

    def failure(self):
        if self.state == "half-open":
            self.probes = 0
            self.opened_at = self.clock()
            self.state = "open"
        elif self.state == "closed":
            self.outcomes.append(False)
            if (
                len(self.window()) >= CFG.min_volume
                and self.failure_rate() >= CFG.failure_threshold
            ):
                self.outcomes = []
                self.opened_at = self.clock()
                self.state = "open"


@settings(max_examples=80, deadline=None)
@given(ops=_ops)
def test_breaker_matches_model(ops):
    clock = ManualClock()
    breaker = CircuitBreaker("property", CFG, clock=clock)
    model = Model(clock)
    for action, amount in ops:
        if action == "allow":
            assert breaker.allow() == model.allow()
        elif action == "success":
            breaker.record_success()
            model.success()
        elif action == "failure":
            breaker.record_failure()
            model.failure()
        else:
            clock.advance(amount)

        assert breaker.state.value == model.state
        assert breaker.failure_rate == model.failure_rate()

    for transition in breaker.transitions:
        assert (transition.old, transition.new) in _LEGAL_EDGES
    times = [t.at for t in breaker.transitions]
    assert times == sorted(times)
    assert breaker.state in (BreakerState.CLOSED, BreakerState.OPEN, BreakerState.HALF_OPEN)

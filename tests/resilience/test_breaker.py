"""Circuit-breaker lifecycle: closed -> open -> half-open -> closed."""

import pytest

from repro.errors import ResilienceError
from repro.resilience import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ManualClock,
)

CFG = BreakerConfig(window=4, failure_threshold=0.5, min_volume=4, cooldown_seconds=10.0)


def _trip(breaker: CircuitBreaker, failures: int = 4) -> None:
    for _ in range(failures):
        breaker.record_failure()


class TestLifecycle:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker("spaden", CFG, clock=ManualClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_at_threshold_with_min_volume(self):
        clock = ManualClock()
        breaker = CircuitBreaker("spaden", CFG, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # volume 3 < min_volume 4
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN  # 4/4 failures >= 0.5
        assert not breaker.allow()

    def test_mixed_window_trips_on_the_failure_that_crosses(self):
        breaker = CircuitBreaker("spaden", CFG, clock=ManualClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # 1/3, volume short
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN  # 2/4 reaches the 0.5 threshold

    def test_successes_keep_low_failure_rate_closed(self):
        breaker = CircuitBreaker("spaden", CFG, clock=ManualClock())
        for _ in range(10):
            breaker.record_success()
        breaker.record_failure()  # 1/4 of the window < 0.5
        assert breaker.state is BreakerState.CLOSED

    def test_cooldown_gates_the_half_open_probe(self):
        clock = ManualClock()
        breaker = CircuitBreaker("spaden", CFG, clock=clock)
        _trip(breaker)
        clock.advance(9.999)
        assert not breaker.allow()  # still cooling down
        clock.advance(0.001)
        assert breaker.allow()  # the probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow()  # only half_open_probes=1 trial admitted

    def test_probe_success_closes_and_clears_history(self):
        clock = ManualClock()
        breaker = CircuitBreaker("spaden", CFG, clock=clock)
        _trip(breaker)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        # sick-period history must not re-trip the fresh breaker
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        clock = ManualClock()
        breaker = CircuitBreaker("spaden", CFG, clock=clock)
        _trip(breaker)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.0)
        assert not breaker.allow()  # cooldown restarted at the probe failure
        clock.advance(1.0)
        assert breaker.allow()

    def test_transition_log_records_the_full_journey(self):
        clock = ManualClock()
        breaker = CircuitBreaker("spaden", CFG, clock=clock)
        _trip(breaker)
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        edges = [(t.old, t.new) for t in breaker.transitions]
        assert edges == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]
        assert [t.at for t in breaker.transitions] == [0.0, 10.0, 10.0]
        assert all(t.breaker == "spaden" for t in breaker.transitions)


class TestBoard:
    def test_unseen_kernels_answer_as_fresh_closed_breakers(self):
        board = BreakerBoard(CFG, clock=ManualClock())
        assert board.allow("never-seen")
        assert board.state("never-seen") is BreakerState.CLOSED

    def test_kernels_trip_independently(self):
        board = BreakerBoard(CFG, clock=ManualClock())
        for _ in range(4):
            board.record_failure("spaden")
            board.record_success("csr-scalar")
        assert not board.allow("spaden")
        assert board.allow("csr-scalar")

    def test_merged_transitions_sorted_by_clock(self):
        clock = ManualClock()
        board = BreakerBoard(CFG, clock=clock)
        _trip(board.breaker("a"))
        clock.advance(1.0)
        _trip(board.breaker("b"))
        merged = board.transitions()
        assert [(t.breaker, t.at) for t in merged] == [("a", 0.0), ("b", 1.0)]
        assert board.states() == {"a": "open", "b": "open"}


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_volume": 0},
            {"min_volume": 20, "window": 8},
            {"cooldown_seconds": -1.0},
            {"half_open_probes": 0},
        ],
    )
    def test_bad_thresholds_rejected(self, kwargs):
        with pytest.raises(ResilienceError):
            BreakerConfig(**kwargs)

"""The seeded chaos harness: reproducibility and the two hard invariants."""

import json

import pytest

from repro.bench.chaos import (
    append_chaos_trajectory,
    bench_chaos,
    format_chaos_report,
)
from repro.errors import ObservabilityError


@pytest.fixture(scope="module")
def campaign():
    """One moderately-stormy campaign shared by the read-only assertions."""
    return bench_chaos(96, 96, 0.05, requests=32, batch=8, seed=3)


class TestDeterminism:
    def test_same_seed_same_event_stream(self, campaign):
        replay = bench_chaos(96, 96, 0.05, requests=32, batch=8, seed=3)
        assert replay.event_stream() == campaign.event_stream()

    def test_different_seed_different_stream(self, campaign):
        other = bench_chaos(96, 96, 0.05, requests=32, batch=8, seed=4)
        assert other.event_stream() != campaign.event_stream()


class TestInvariants:
    def test_no_request_is_ever_lost(self, campaign):
        assert campaign.lost == 0
        for point in campaign.points:
            assert point.requests == 32
            accounted = (
                point.success
                + point.degraded
                + point.exhausted
                + point.deadline_miss
                + point.incorrect
                + point.lost
            )
            assert accounted == point.requests

    def test_no_served_result_is_ever_wrong(self, campaign):
        assert campaign.incorrect == 0

    def test_calm_point_is_all_clean(self, campaign):
        calm = campaign.points[0]
        assert calm.probability == 0.0
        assert calm.success == calm.requests
        assert calm.retries == 0
        assert calm.breaker_transitions == ()

    def test_storm_points_exercise_the_machinery(self, campaign):
        stormy = campaign.points[1:]
        assert any(p.degraded or p.exhausted or p.deadline_miss for p in stormy)
        assert any(p.breaker_transitions for p in stormy)
        opens = [
            t
            for p in stormy
            for t in p.breaker_transitions
            if t["new"] == "open"
        ]
        assert opens  # sustained pressure must trip at least one breaker


class TestTrajectory:
    def test_append_accumulates_and_round_trips(self, campaign, tmp_path):
        path = tmp_path / "BENCH_chaos.json"
        assert append_chaos_trajectory(path, campaign) == 1
        assert append_chaos_trajectory(path, campaign) == 2
        trajectory = json.loads(path.read_text())
        assert len(trajectory) == 2
        assert trajectory[0]["campaign"] == trajectory[1]["campaign"]
        assert trajectory[0]["campaign"]["points"] == campaign.event_stream()

    def test_refuses_to_clobber_foreign_files(self, campaign, tmp_path):
        path = tmp_path / "BENCH_chaos.json"
        path.write_text('{"not": "a trajectory"}')
        with pytest.raises(ObservabilityError):
            append_chaos_trajectory(path, campaign)
        path.write_text("not json at all")
        with pytest.raises(ObservabilityError):
            append_chaos_trajectory(path, campaign)


class TestReport:
    def test_report_names_the_outcomes_and_verdict(self, campaign):
        text = format_chaos_report(campaign)
        assert "chaos campaign" in text
        assert "verdict : PASS" in text
        assert "0 lost, 0 incorrect" in text
        for point in campaign.points:
            assert f"{point.probability:<5.2f}" in text

"""Retry taxonomy and the seeded, jittered backoff schedule."""

import pytest

from repro.errors import (
    ConversionError,
    DeadlineExceededError,
    KernelError,
    NumericalError,
    ResilienceError,
    VerificationError,
)
from repro.resilience import (
    RECOVERABLE_EXCEPTIONS,
    ManualClock,
    RetryClass,
    RetryPolicy,
    classify_exception,
)


class TestTaxonomy:
    @pytest.mark.parametrize(
        "exc",
        [
            VerificationError("corrupted bitmap"),
            NumericalError("fp16 accumulator overflow"),
            MemoryError("allocation failed"),
            FloatingPointError("overflow in multiply"),
            OverflowError("too big"),
        ],
    )
    def test_transient_causes_are_retryable(self, exc):
        assert classify_exception(exc) is RetryClass.RETRYABLE

    @pytest.mark.parametrize(
        "exc",
        [
            KernelError("x has the wrong shape"),
            ConversionError("block size mismatch"),
            DeadlineExceededError("budget spent", stage="run", elapsed=2.0, budget=1.0),
            TypeError("a programming error"),
            KeyboardInterrupt(),
        ],
    )
    def test_deterministic_causes_are_fatal(self, exc):
        # DeadlineExceededError is fatal *despite* being a ReproError:
        # retrying cannot un-spend the budget.
        assert classify_exception(exc) is RetryClass.FATAL

    def test_recoverable_safelist_is_narrow(self):
        assert MemoryError in RECOVERABLE_EXCEPTIONS
        assert ArithmeticError in RECOVERABLE_EXCEPTIONS
        assert not any(
            issubclass(KeyboardInterrupt, t) for t in RECOVERABLE_EXCEPTIONS
        )


class TestBackoff:
    def test_same_seed_same_schedule(self):
        a = [RetryPolicy(seed=7).delay(n) for n in range(4)]
        b = [RetryPolicy(seed=7).delay(n) for n in range(4)]
        assert a == b

    def test_different_seed_different_schedule(self):
        a = [RetryPolicy(seed=7).delay(n) for n in range(4)]
        b = [RetryPolicy(seed=8).delay(n) for n in range(4)]
        assert a != b

    def test_delays_grow_exponentially_within_jitter_bounds(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.5, seed=0
        )
        for attempt in range(5):
            base = 0.1 * 2.0**attempt
            delay = policy.delay(attempt)
            assert 0.5 * base <= delay <= 1.5 * base

    def test_delay_is_capped(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, max_delay=2.0, seed=0)
        assert policy.delay(50) <= 2.0 * 1.5  # cap, then jitter

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.25, multiplier=2.0, jitter=0.0, seed=0)
        assert [policy.delay(n) for n in range(3)] == [0.25, 0.5, 1.0]

    def test_backoff_sleeps_through_injected_clock(self):
        clock = ManualClock()
        policy = RetryPolicy(jitter=0.0, base_delay=0.5, sleep=clock.sleep, seed=0)
        slept = policy.backoff(0)
        assert slept == 0.5
        assert clock.sleeps == [0.5]
        assert clock() == 0.5  # backoff consumed virtual time, not wall time


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"base_delay": -0.1},
            {"max_delay": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
            {"jitter": -0.1},
        ],
    )
    def test_bad_configuration_rejected_at_construction(self, kwargs):
        with pytest.raises(ResilienceError):
            RetryPolicy(**kwargs)

"""Deadline semantics against the manual clock."""

import time

import pytest

from repro.errors import DeadlineExceededError, ReproError, ResilienceError
from repro.resilience import Deadline, ManualClock, ResiliencePolicy


class TestManualClock:
    def test_starts_at_origin_and_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5

    def test_sleep_advances_and_records(self):
        clock = ManualClock(start=10.0)
        clock.sleep(0.25)
        clock.sleep(1.0)
        assert clock() == 11.25
        assert clock.sleeps == [0.25, 1.0]


class TestDeadline:
    def test_elapsed_and_remaining_track_the_clock(self):
        clock = ManualClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(2.0)
        assert deadline.elapsed == 2.0
        assert deadline.remaining() == 3.0
        assert not deadline.expired()
        clock.advance(3.0)
        assert deadline.expired()

    def test_check_passes_inside_budget(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(0.999)
        deadline.check("run")  # must not raise

    def test_check_raises_structured_error_at_expiry(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.5)
        with pytest.raises(DeadlineExceededError) as info:
            deadline.check("run")
        exc = info.value
        assert exc.stage == "run"
        assert exc.elapsed == 1.5
        assert exc.budget == 1.0
        assert isinstance(exc, ReproError)
        assert "run" in str(exc)

    def test_exact_boundary_counts_as_expired(self):
        clock = ManualClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError):
            deadline.check("check")

    @pytest.mark.parametrize("budget", [0.0, -1.0])
    def test_non_positive_budget_rejected(self, budget):
        with pytest.raises(ResilienceError):
            Deadline(budget)

    def test_default_clock_is_monotonic_wall_time(self):
        deadline = Deadline(3600.0)
        before = deadline.elapsed
        time.sleep(0.001)
        assert deadline.elapsed > before
        assert not deadline.expired()


class TestPolicyMinting:
    def test_policy_mints_fresh_deadline_per_unit(self):
        clock = ManualClock()
        policy = ResiliencePolicy(deadline_seconds=2.0, clock=clock)
        first = policy.new_deadline()
        clock.advance(1.5)
        second = policy.new_deadline()
        assert first.remaining() == 0.5
        assert second.remaining() == 2.0  # each unit gets the full budget

    def test_empty_policy_mints_nothing(self):
        assert ResiliencePolicy().new_deadline() is None

"""Metrics, preprocessing model, and report formatting tests."""

import math

import pytest

from repro.perf.metrics import geomean, gflops, speedup_table, speedups_over
from repro.perf.preprocessing import model_preprocessing_seconds
from repro.perf.report import format_table, series_to_rows


class TestMetrics:
    def test_gflops_definition(self):
        # 2 flops per nnz
        assert gflops(500_000_000, 1.0) == pytest.approx(1.0)

    def test_gflops_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            gflops(10, 0.0)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_speedups_over(self):
        out = speedups_over({"a": 2.0, "b": 1.0}, "a")
        assert out == {"b": 2.0}

    def test_speedups_over_zero_time_is_structured(self):
        # a zero measurement must raise a ValueError naming the method,
        # not leak a bare ZeroDivisionError out of the dict comprehension
        with pytest.raises(ValueError, match="'b'"):
            speedups_over({"a": 2.0, "b": 0.0}, "a")

    def test_speedups_over_zero_baseline_is_structured(self):
        with pytest.raises(ValueError, match="'a'"):
            speedups_over({"a": 0.0, "b": 1.0}, "a")

    def test_speedup_table_zero_overlap(self):
        # no matrix holds both the target and another method: the table
        # is empty, never a geomean-of-empty crash (regression guard)
        times = {"m1": {"spaden": 1.0}, "m2": {"csr": 2.0}}
        assert speedup_table(times, "spaden") == {}

    def test_speedup_table_geomean(self):
        times = {
            "m1": {"spaden": 1.0, "csr": 2.0},
            "m2": {"spaden": 1.0, "csr": 8.0},
        }
        out = speedup_table(times, "spaden")
        assert out["csr"] == pytest.approx(4.0)

    def test_speedup_table_skips_missing(self):
        times = {"m1": {"spaden": 1.0, "csr": 3.0}, "m2": {"spaden": 1.0}}
        assert speedup_table(times, "spaden")["csr"] == pytest.approx(3.0)


class TestPreprocessingModel:
    def test_ordering_at_typical_density(self):
        nnz, nrows = 10_000_000, 300_000
        nblocks = nnz // 25
        csr = model_preprocessing_seconds("csr", nnz, nrows)
        bsr = model_preprocessing_seconds("bsr", nnz, nrows, nblocks=nblocks)
        bit = model_preprocessing_seconds("bitbsr", nnz, nrows, nblocks=nblocks)
        dasp = model_preprocessing_seconds("dasp", nnz, nrows, padded_nnz=int(nnz * 1.3))
        assert csr < bsr < bit < dasp

    def test_paper_magnitudes(self):
        """ns/nnz should land near the measured 1.21 / 3.31 / 4.95."""
        nnz, nrows = 10_000_000, 300_000
        bsr = model_preprocessing_seconds("bsr", nnz, nrows, nblocks=nnz // 25) * 1e9 / nnz
        bit = model_preprocessing_seconds("bitbsr", nnz, nrows, nblocks=nnz // 25) * 1e9 / nnz
        dasp = model_preprocessing_seconds("dasp", nnz, nrows, padded_nnz=int(nnz * 1.3)) * 1e9 / nnz
        assert 0.4 < bsr < 2.5
        assert 2.0 < bit < 5.0
        assert 3.0 < dasp < 8.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            model_preprocessing_seconds("ell", 10, 10)

    def test_negative_sizes(self):
        with pytest.raises(ValueError):
            model_preprocessing_seconds("csr", -1, 0)


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"m": "a", "v": 1.5}, {"m": "bb", "v": 10.25}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "m" in lines[1] and "v" in lines[1]
        assert "1.50" in text and "10.25" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_series_to_rows(self):
        rows = series_to_rows({"a": {"x": 1}}, index_name="mat")
        assert rows == [{"mat": "a", "x": 1}]

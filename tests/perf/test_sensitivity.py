"""Model-constant sensitivity tests: orderings survive perturbation."""

import pytest

from repro.bench import profile_suite, load_suite
from repro.perf.sensitivity import (
    PERTURBABLE,
    perturbed_constant,
    sensitivity_sweep,
)
from repro.perf import model as perf_model

SCALE = 0.03
METHODS = ("spaden", "cusparse-csr", "cusparse-bsr", "gunrock")


@pytest.fixture(scope="module")
def small_profiles(tmp_path_factory):
    import repro.bench.harness as harness

    harness._CACHE_DIR = tmp_path_factory.mktemp("cache")
    suite = load_suite(SCALE, names=["consph", "Si41Ge41H72", "pwtk"])
    return profile_suite(suite, METHODS, SCALE)


class TestSensitivity:
    def test_perturbation_restores_constant(self):
        original = perf_model.L2_BANDWIDTH_RATIO
        with perturbed_constant("L2_BANDWIDTH_RATIO", 2.0):
            assert perf_model.L2_BANDWIDTH_RATIO == original * 2.0
        assert perf_model.L2_BANDWIDTH_RATIO == original

    def test_unknown_constant_rejected(self):
        with pytest.raises(KeyError):
            with perturbed_constant("GRAVITY", 2.0):
                pass

    def test_geomeans_stable_under_20pct(self, small_profiles):
        """Every +-20-25% perturbation of every calibrated constant moves
        the Spaden-vs-baseline geomeans by less than ~35% — the headline
        conclusions do not hinge on a single knob."""
        points = sensitivity_sweep(small_profiles, "L40", factors=(0.8, 1.25))
        assert len(points) == 1 + 2 * len(PERTURBABLE)
        baseline = points[0].geomeans
        for point in points[1:]:
            for method, geomean in point.geomeans.items():
                drift = geomean / baseline[method]
                assert 0.65 < drift < 1.55, (point.constant, point.factor, method, drift)

    def test_relative_ordering_stable(self, small_profiles):
        """BSR stays the slower baseline and Gunrock the slowest under
        every perturbation (the Fig. 6/7 ordering claims)."""
        for point in sensitivity_sweep(small_profiles, "L40", factors=(0.8, 1.25)):
            g = point.geomeans
            assert g["gunrock"] > g["cusparse-csr"], point
            assert g["cusparse-bsr"] > g["cusparse-csr"], point

    def test_baseline_point_first(self, small_profiles):
        points = sensitivity_sweep(small_profiles, "L40")
        assert points[0].constant == "baseline"

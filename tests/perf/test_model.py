"""Roofline model unit tests."""

import numpy as np
import pytest

from repro.gpu.counters import ExecutionStats
from repro.gpu.spec import get_gpu
from repro.kernels.base import KernelProfile
from repro.perf.model import MMA_ARCH_PENALTY, TimeBreakdown, estimate_time


def profile_with(**kwargs) -> KernelProfile:
    stats = ExecutionStats()
    for key in ("cuda_flops", "cuda_int_ops", "mma_ops", "warps_launched",
                "warp_instructions", "atomic_ops", "shared_bytes",
                "load_transactions", "store_transactions"):
        if key in kwargs:
            setattr(stats, key, kwargs.pop(key))
    return KernelProfile(
        "test",
        stats,
        kwargs.pop("dram_load_bytes", 0),
        kwargs.pop("dram_store_bytes", 0),
        **kwargs,
    )


L40 = get_gpu("L40")
V100 = get_gpu("V100")


class TestTerms:
    def test_dram_term(self):
        p = profile_with(dram_load_bytes=708_000_000, warps_launched=10**6)
        tb = estimate_time(p, L40)
        assert tb.dram == pytest.approx(708e6 / L40.effective_bandwidth)
        assert tb.bound == "dram"

    def test_bandwidth_efficiency_derates(self):
        p1 = profile_with(dram_load_bytes=10**8)
        p2 = profile_with(dram_load_bytes=10**8, bandwidth_efficiency=0.5)
        assert estimate_time(p2, L40).dram == pytest.approx(2 * estimate_time(p1, L40).dram)

    def test_l2_term_punishes_transactions(self):
        p = profile_with(load_transactions=10**8)
        tb = estimate_time(p, L40)
        assert tb.l2 > 0
        assert tb.bound in ("l2", "issue")

    def test_tensor_term_and_arch_penalty(self):
        p_plain = profile_with(mma_ops=10**6)
        p_sensitive = profile_with(mma_ops=10**6, arch_sensitive_mma=True)
        on_l40 = estimate_time(p_sensitive, L40).tensor
        assert on_l40 == pytest.approx(MMA_ARCH_PENALTY * estimate_time(p_plain, L40).tensor)
        # no penalty on the architecture the shape was tuned for
        assert estimate_time(p_sensitive, V100).tensor == pytest.approx(
            estimate_time(p_plain, V100).tensor
        )

    def test_chain_term_scales_inverse_with_warps(self):
        few = profile_with(warps_launched=100, serial_steps=10**5)
        many = profile_with(warps_launched=10**6, serial_steps=10**5)
        assert estimate_time(few, L40).chain > estimate_time(many, L40).chain

    def test_atomic_term(self):
        p = profile_with(atomic_ops=10**7)
        assert estimate_time(p, L40).atomic > 0

    def test_launch_floor(self):
        p = profile_with()
        tb = estimate_time(p, L40)
        assert tb.total >= L40.launch_overhead_us * 1e-6

    def test_total_is_launch_plus_max(self):
        p = profile_with(dram_load_bytes=10**9, cuda_flops=10)
        tb = estimate_time(p, L40)
        assert tb.total == pytest.approx(tb.launch + tb.dram)

    def test_v100_slower_issue_rate(self):
        p = profile_with(warp_instructions=10**8)
        assert estimate_time(p, V100).issue > estimate_time(p, L40).issue

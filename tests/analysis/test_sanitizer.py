"""Dynamic-prong tests: race detection, lane ownership, coalescing."""

import numpy as np
import pytest

from repro.analysis import Sanitizer, sanitize_kernel, small_suite
from repro.errors import LaneOwnershipError, MemoryAccessError, RaceError
from repro.gpu.memory import GlobalMemory
from repro.gpu.warp import Warp
from repro.kernels import available_kernels
from repro.robustness.faults import inject_lane_fault


def _warp_with(name="y", size=64):
    mem = GlobalMemory()
    mem.register(name, np.zeros(size, dtype=np.float32))
    return mem, Warp(mem)


class TestIntraWarpRace:
    def test_duplicate_index_store_raises_with_coordinates(self):
        mem, warp = _warp_with()
        idx = warp.lanes.copy()
        idx[5] = idx[9] = 7
        with pytest.raises(RaceError) as exc:
            warp.store("y", idx, np.ones(32, dtype=np.float32))
        err = exc.value
        assert err.check == "intra-warp-race"
        assert err.array == "y"
        assert err.index == 7
        # lane 7 naturally targets index 7, so three lanes collide
        assert err.lanes == [5, 7, 9]

    def test_masked_off_duplicates_are_fine(self):
        mem, warp = _warp_with()
        idx = np.zeros(32, dtype=np.int64)
        mask = np.zeros(32, bool)
        mask[3] = True
        warp.store("y", idx, np.ones(32, dtype=np.float32), mask=mask)
        assert mem.array("y")[0] == 1.0

    def test_atomic_duplicates_allowed(self):
        mem, warp = _warp_with()
        warp.atomic_add("y", np.zeros(32, dtype=np.int64), np.ones(32, np.float32))
        assert mem.array("y")[0] == 32.0


class TestCrossWarpRace:
    def _mask(self, lane):
        m = np.zeros(32, bool)
        m[lane] = True
        return m

    def test_store_store_conflict_detected(self):
        mem = GlobalMemory()
        mem.register("y", np.zeros(8, dtype=np.float32))
        with Sanitizer() as san:
            w1 = Warp(mem, warp_id=0)
            w1.store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=self._mask(0))
            w2 = Warp(mem, warp_id=1)
            with pytest.raises(RaceError) as exc:
                w2.store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=self._mask(4))
        assert exc.value.check == "cross-warp-race"
        assert exc.value.warps == [0, 1]
        assert san.report.races

    def test_load_after_foreign_store_detected(self):
        mem = GlobalMemory()
        mem.register("y", np.zeros(8, dtype=np.float32))
        with Sanitizer():
            w1 = Warp(mem)
            w1.store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=self._mask(0))
            w2 = Warp(mem)
            with pytest.raises(RaceError):
                w2.load("y", np.zeros(32, np.int64), mask=self._mask(1))

    def test_same_warp_reuse_is_ordered(self):
        mem = GlobalMemory()
        mem.register("y", np.zeros(8, dtype=np.float32))
        with Sanitizer() as san:
            w = Warp(mem)
            w.store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=self._mask(0))
            w.load("y", np.zeros(32, np.int64), mask=self._mask(0))
        assert san.report.clean

    def test_cross_warp_atomics_allowed(self):
        mem = GlobalMemory()
        mem.register("y", np.zeros(8, dtype=np.float32))
        with Sanitizer() as san:
            for _ in range(3):
                w = Warp(mem)
                w.atomic_add("y", np.zeros(32, np.int64), np.ones(32, np.float32))
        assert san.report.clean
        assert mem.array("y")[0] == 96.0

    def test_reads_never_conflict(self):
        mem = GlobalMemory()
        mem.register("x", np.arange(32, dtype=np.float32))
        with Sanitizer() as san:
            for _ in range(2):
                Warp(mem).load("x", np.arange(32, dtype=np.int64))
        assert san.report.clean

    def test_collect_mode_records_instead_of_raising(self):
        mem = GlobalMemory()
        mem.register("y", np.zeros(8, dtype=np.float32))
        with Sanitizer(halt_on_violation=False) as san:
            Warp(mem).store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=self._mask(0))
            Warp(mem).store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=self._mask(0))
        assert len(san.report.races) == 1
        assert not san.report.clean
        assert "RACE" in san.report.summary()


class TestLaneOwnership:
    def test_injected_lane_fault_is_caught_with_coordinates(self):
        csr, x = small_suite()["random-40x56"]
        with inject_lane_fault(seed=3) as fault:
            with pytest.raises(LaneOwnershipError) as exc:
                sanitize_kernel("spaden", csr, x)
        err = exc.value
        assert err.check == "lane-ownership"
        assert err.fragment_kind == "accumulator"
        # the report names one of the two swapped (lane, register) slots
        lane_a, reg_a, lane_b, reg_b = fault.coord
        assert (err.lane, err.register) in {(lane_a, reg_a), (lane_b, reg_b)}
        assert err.portion == err.register // 2
        assert err.expected != err.actual

    def test_collect_mode_reports_both_swapped_slots(self):
        csr, x = small_suite()["random-40x56"]
        with inject_lane_fault(seed=3) as fault:
            result = sanitize_kernel("spaden", csr, x, halt_on_violation=False)
        assert not result.clean
        lane_a, reg_a, lane_b, reg_b = fault.coord
        slots = {(v.lane, v.register) for v in result.report.ownership_violations}
        assert slots == {(lane_a, reg_a), (lane_b, reg_b)}

    def test_unperturbed_tables_raise_nothing(self):
        csr, x = small_suite()["random-40x56"]
        assert sanitize_kernel("spaden", csr, x).clean


class TestCoalescingReport:
    def test_broadcast_load_is_fully_coalesced(self):
        mem = GlobalMemory()
        mem.register("p", np.arange(64, dtype=np.int32))
        with Sanitizer() as san:
            Warp(mem).load("p", np.zeros(32, dtype=np.int64))
        entry = san.report.coalescing[("p", "load")]
        assert entry.achieved_sectors == entry.ideal_sectors == 1
        assert entry.efficiency == 1.0

    def test_strided_gather_is_inefficient(self):
        mem = GlobalMemory()
        mem.register("v", np.zeros(32 * 16, dtype=np.float32))
        with Sanitizer() as san:
            Warp(mem).load("v", np.arange(32, dtype=np.int64) * 16)
        entry = san.report.coalescing[("v", "load")]
        assert entry.achieved_sectors == 32  # one sector per lane
        assert entry.ideal_sectors == 4  # 32 floats fit in 4 sectors
        assert entry.efficiency == pytest.approx(0.125)

    def test_host_accesses_excluded_from_races_but_counted(self):
        mem = GlobalMemory()
        mem.register("y", np.zeros(8, dtype=np.float32))
        mask = np.zeros(32, bool)
        mask[0] = True
        with Sanitizer() as san:
            # no Warp created yet: host-side access, exempt from race rules
            mem.warp_store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask)
            Warp(mem).store("y", np.zeros(32, np.int64), np.ones(32, np.float32), mask=mask)
        assert san.report.clean
        assert san.report.coalescing[("y", "store")].instructions == 2


class TestSanitizeKernel:
    def test_out_of_bounds_reports_lane_and_array(self):
        mem, warp = _warp_with(size=16)
        idx = np.zeros(32, dtype=np.int64)
        idx[21] = 99
        with pytest.raises(MemoryAccessError) as exc:
            warp.load("y", idx)
        err = exc.value
        assert (err.array, err.kind, err.lane, err.index, err.size) == ("y", "load", 21, 99, 16)

    @pytest.mark.sanitizer
    @pytest.mark.parametrize("kernel_name", available_kernels())
    def test_every_kernel_is_sanitizer_clean(self, kernel_name):
        for csr, x in small_suite().values():
            result = sanitize_kernel(kernel_name, csr, x)
            assert result.clean, result.report.summary()
            assert result.max_error <= 1e-4

    @pytest.mark.sanitizer
    def test_simulated_paths_are_exercised(self):
        csr, x = small_suite()["random-93x61"]
        result = sanitize_kernel("spaden", csr, x)
        assert result.simulated
        assert result.report.warps_observed > 0
        assert result.report.global_accesses > 0
        assert result.report.fragment_accesses > 0
        assert 0.0 < result.report.load_efficiency <= 1.0

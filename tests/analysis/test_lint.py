"""Static-prong tests: each lint rule on synthetic sources, waivers, and
the requirement that the shipped tree lints clean."""

import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import RULES, format_findings, lint_paths, lint_source


def _lint(code):
    return lint_source(textwrap.dedent(code), path="snippet.py")


def _rules(findings):
    return [f.rule for f in findings]


class TestPerLaneLoop:
    def test_range_warp_size_flagged(self):
        findings = _lint(
            """
            def f(warp):
                for lane in range(WARP_SIZE):
                    warp.count_flops(1)
            """
        )
        assert _rules(findings) == ["per-lane-loop"]
        assert findings[0].line == 3

    def test_literal_32_flagged(self):
        assert _rules(_lint("for lane in range(32):\n    pass\n")) == ["per-lane-loop"]

    def test_warp_stride_loop_is_fine(self):
        # range(0, n, 32) iterates *warps*, not lanes
        assert _lint("for first in range(0, n, 32):\n    pass\n") == []

    def test_uniform_small_range_is_fine(self):
        assert _lint("for chunk in range(8):\n    pass\n") == []


class TestUnmaskedDivergentAccess:
    def test_unmasked_load_under_if_flagged(self):
        findings = _lint(
            """
            def f(warp, idx):
                if idx.any():
                    warp.load("x", idx)
            """
        )
        assert _rules(findings) == ["unmasked-divergent-access"]

    def test_masked_load_under_if_is_fine(self):
        assert (
            _lint(
                """
                def f(warp, idx, m):
                    if m.any():
                        warp.load("x", idx, mask=m)
                """
            )
            == []
        )

    def test_positional_mask_counts(self):
        assert (
            _lint(
                """
                def f(warp, idx, m):
                    while m.any():
                        warp.store("y", idx, idx, m)
                """
            )
            == []
        )

    def test_unmasked_store_in_while_flagged(self):
        findings = _lint(
            """
            def f(memory, idx, v):
                while True:
                    memory.warp_store("y", idx, v)
            """
        )
        assert _rules(findings) == ["unmasked-divergent-access"]

    def test_top_level_unmasked_access_is_fine(self):
        assert _lint('def f(warp, idx):\n    warp.load("x", idx)\n') == []

    def test_unrelated_receivers_ignored(self):
        assert _lint("def f(pickle, s):\n    if s:\n        pickle.load(s)\n") == []


class TestRawMemoryMutation:
    def test_direct_subscript_assignment_flagged(self):
        findings = _lint('memory.array("y")[idx] = values\n')
        assert _rules(findings) == ["raw-memory-mutation"]

    def test_aliased_mutation_flagged(self):
        findings = _lint(
            """
            def f(memory, idx, v):
                arr = memory.array("y")
                arr[idx] = v
            """
        )
        assert _rules(findings) == ["raw-memory-mutation"]

    def test_augmented_assignment_flagged(self):
        findings = _lint(
            """
            def f(memory, idx, v):
                memory.array("y")[idx] += v
            """
        )
        assert _rules(findings) == ["raw-memory-mutation"]

    def test_reading_is_fine(self):
        assert _lint('y = memory.array("y")[:n].copy()\n') == []

    def test_numpy_array_constructor_ignored(self):
        assert _lint("a = np.array([1, 2])\na[0] = 3\n") == []


class TestFp64Upcast:
    SCOPED = "from repro.gpu.mma import MMAUnit\n"

    def test_flagged_in_tensor_core_module(self):
        findings = _lint(self.SCOPED + "acc = values.astype(np.float64)\n")
        assert _rules(findings) == ["fp64-upcast"]

    def test_module_import_also_scopes(self):
        findings = _lint(
            "from repro.gpu import fragment\nacc = np.zeros(4, dtype=np.float64)\n"
        )
        assert _rules(findings) == ["fp64-upcast"]

    def test_not_flagged_without_tensor_core_imports(self):
        assert _lint("acc = values.astype(np.float64)\n") == []

    def test_precision_enum_alone_does_not_scope(self):
        code = "from repro.gpu.mma import Precision\nref = x.astype(np.float64)\n"
        assert _lint(code) == []


class TestWaivers:
    def test_standalone_pragma_covers_next_code_line(self):
        code = (
            "# lint: ignore[per-lane-loop] -- builds the table\n"
            "for lane in range(WARP_SIZE):\n"
            "    pass\n"
        )
        assert lint_source(code) == []

    def test_pragma_skips_comment_continuation_lines(self):
        code = (
            "# lint: ignore[per-lane-loop] -- justification that is\n"
            "# long enough to wrap onto a second comment line\n"
            "for lane in range(WARP_SIZE):\n"
            "    pass\n"
        )
        assert lint_source(code) == []

    def test_trailing_pragma_covers_its_line(self):
        code = "for lane in range(32):  # lint: ignore[per-lane-loop] -- why\n    pass\n"
        assert lint_source(code) == []

    def test_pragma_for_other_rule_does_not_waive(self):
        code = "# lint: ignore[fp64-upcast] -- wrong rule\nfor lane in range(32):\n    pass\n"
        assert _rules(lint_source(code)) == ["per-lane-loop"]

    def test_unwaived_line_still_flagged(self):
        code = (
            "# lint: ignore[per-lane-loop] -- only the first\n"
            "for lane in range(32):\n"
            "    for reg in range(32):\n"
            "        pass\n"
        )
        findings = lint_source(code)
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_trailing_pragma_does_not_leak_to_next_line(self):
        code = (
            "x = 1  # lint: ignore[per-lane-loop] -- wrong line\n"
            "for lane in range(32):\n"
            "    pass\n"
        )
        assert _rules(lint_source(code)) == ["per-lane-loop"]

    def test_standalone_pragma_skips_blank_lines(self):
        code = (
            "# lint: ignore[per-lane-loop] -- why\n"
            "\n"
            "for lane in range(32):\n"
            "    pass\n"
        )
        assert lint_source(code) == []

    def test_pragma_at_eof_covers_nothing(self):
        code = (
            "for lane in range(32):\n"
            "    pass\n"
            "# lint: ignore[per-lane-loop] -- dangles past the last code line\n"
        )
        assert _rules(lint_source(code)) == ["per-lane-loop"]

    def test_one_pragma_waives_multiple_rules(self):
        code = (
            "from repro.gpu.mma import MMAUnit\n"
            "# lint: ignore[per-lane-loop, fp64-upcast] -- reference table build\n"
            "for lane in range(32):\n"
            "    acc = np.float64(0)\n"
        )
        # the loop line is waived for both rules; the fp64 use sits on
        # the *inner* line, which the pragma does not cover
        findings = lint_source(code)
        assert _rules(findings) == ["fp64-upcast"]
        assert findings[0].line == 4


class TestIntraProceduralLimitation:
    """Pin the documented blind spots so a future fix shows up as a diff."""

    def test_unmasked_access_in_helper_called_under_divergence_not_flagged(self):
        # the checker is intra-procedural: divergence at the call site
        # does not propagate into the helper's body
        code = textwrap.dedent(
            """
            def f(warp, idx, flag):
                if flag:
                    _helper(warp, idx)

            def _helper(warp, idx):
                warp.load("x", idx)
            """
        )
        assert lint_source(code) == []

    def test_alias_through_chained_assignment_not_tracked(self):
        # alias tracking follows direct single-name assignments only
        code = textwrap.dedent(
            """
            def f(memory, idx, v):
                a = b = memory.array("y")
                a[idx] = v
            """
        )
        assert lint_source(code) == []

    def test_alias_does_not_cross_function_boundaries(self):
        code = textwrap.dedent(
            """
            def make(memory):
                return memory.array("y")

            def f(memory, idx, v):
                arr = make(memory)
                arr[idx] = v
            """
        )
        assert lint_source(code) == []


class TestHarness:
    def test_parse_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert _rules(findings) == ["parse-error"]

    def test_format_findings_is_grep_friendly(self):
        findings = _lint("for lane in range(32):\n    pass\n")
        line = format_findings(findings)
        assert line.startswith("snippet.py:1:")
        assert "[per-lane-loop]" in line

    def test_rules_registry_documents_every_rule(self):
        findings = _lint("from repro.gpu.mma import MMAUnit\nx = a.astype(np.float64)\n")
        assert findings and all(f.rule in RULES for f in findings)

    def test_shipped_tree_lints_clean(self):
        findings = lint_paths([Path(repro.__path__[0])])
        assert findings == [], format_findings(findings)

"""Thread-safety auditor: each rule on synthetic sources, pragma
placement, the lock-ordering graph, and the requirement that the
shipped serving packages audit clean."""

import textwrap
from pathlib import Path

import repro
from repro.analysis import (
    AUDITED_PACKAGES,
    CONCURRENCY_RULES,
    audit_package,
    audit_paths,
    audit_source,
    format_findings,
)


def _audit(code):
    return audit_source(textwrap.dedent(code), path="snippet.py")


def _rules(findings):
    return [f.rule for f in findings]


GUARDED_CLEAN = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {}  # concurrency: guarded-by(self._lock)

        def put(self, key, value):
            with self._lock:
                self._entries[key] = value
"""


class TestSharedStateDiscovery:
    def test_unguarded_write_outside_init_flagged(self):
        findings = _audit(
            """
            class Engine:
                def __init__(self):
                    self.stats = {}

                def bump(self):
                    self.stats["n"] = 1
            """
        )
        assert _rules(findings) == ["unguarded-mutable-state"]
        assert findings[0].cls == "Engine"
        assert findings[0].field == "stats"

    def test_augassign_through_attribute_chain_resolves_base_field(self):
        # self.stats.hits += 1 mutates state reachable from self.stats
        findings = _audit(
            """
            class Cache:
                def __init__(self):
                    self.stats = Stats()

                def hit(self):
                    self.stats.hits += 1
            """
        )
        assert _rules(findings) == ["unguarded-mutable-state"]
        assert findings[0].field == "stats"

    def test_subscript_store_resolves_base_field(self):
        findings = _audit(
            """
            class Cache:
                def __init__(self):
                    self._entries = {}

                def put(self, k, v):
                    self._entries[k] = v
            """
        )
        assert _rules(findings) == ["unguarded-mutable-state"]
        assert findings[0].field == "_entries"

    def test_init_writes_are_exempt(self):
        assert _audit("class A:\n    def __init__(self):\n        self.xs = []\n") == []

    def test_post_init_counts_as_init(self):
        assert (
            _audit(
                """
                class Policy:
                    def __post_init__(self):
                        self._rng = {}
                """
            )
            == []
        )

    def test_mutable_global_flagged(self):
        findings = _audit("_REGISTRY = {}\n")
        assert _rules(findings) == ["mutable-global"]
        assert findings[0].field == "_REGISTRY"

    def test_dunder_globals_exempt(self):
        assert _audit('__all__ = ["a", "b"]\n') == []

    def test_immutable_global_is_fine(self):
        assert _audit("LIMIT = 100\nNAMES = (1, 2)\n") == []

    def test_mutable_class_attribute_flagged(self):
        findings = _audit("class Registry:\n    _KINDS = {}\n")
        assert _rules(findings) == ["mutable-class-attribute"]
        assert findings[0].cls == "Registry"

    def test_reads_of_uncontracted_fields_are_fine(self):
        assert (
            _audit(
                """
                class Engine:
                    def __init__(self):
                        self.name = "spaden"

                    def label(self):
                        return self.name.upper()
                """
            )
            == []
        )


class TestLockContract:
    def test_guarded_write_inside_lock_is_clean(self):
        assert _audit(GUARDED_CLEAN) == []

    def test_guarded_write_outside_lock_escapes(self):
        findings = _audit(
            """
            import threading

            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}  # concurrency: guarded-by(self._lock)

                def put(self, key, value):
                    self._entries[key] = value
            """
        )
        assert _rules(findings) == ["guarded-field-escape"]
        assert "write" in findings[0].message

    def test_guarded_read_outside_lock_escapes(self):
        findings = _audit(
            """
            class Cache:
                def __init__(self):
                    self._entries = {}  # concurrency: guarded-by(self._lock)

                def size(self):
                    return len(self._entries)
            """
        )
        assert _rules(findings) == ["guarded-field-escape"]
        assert "read" in findings[0].message

    def test_wrong_lock_still_escapes(self):
        findings = _audit(
            """
            class Cache:
                def __init__(self):
                    self._entries = {}  # concurrency: guarded-by(self._lock)

                def put(self, k, v):
                    with self._other_lock:
                        self._entries[k] = v
            """
        )
        assert _rules(findings) == ["guarded-field-escape"]

    def test_nested_function_does_not_inherit_held_lock(self):
        # the closure body runs when *called*, not where it is written;
        # lexically holding the lock around `def` proves nothing
        findings = _audit(
            """
            class Engine:
                def __init__(self):
                    self.stats = {}  # concurrency: guarded-by(self._lock)

                def operator(self):
                    with self._lock:
                        def bound():
                            self.stats["n"] = 1
                        return bound
            """
        )
        assert _rules(findings) == ["guarded-field-escape"]

    def test_helper_method_is_flagged_even_if_callers_hold_the_lock(self):
        # the documented intra-procedural limitation: pass values into
        # helpers instead of reading guarded fields from them
        findings = _audit(
            """
            class Cache:
                def __init__(self):
                    self._resident = 0  # concurrency: guarded-by(self._lock)

                def put(self):
                    with self._lock:
                        self._resident += 1
                        self._publish()

                def _publish(self):
                    return self._resident
            """
        )
        assert _rules(findings) == ["guarded-field-escape"]
        assert findings[0].field == "_resident"

    def test_contract_inherited_from_same_module_base(self):
        clean = _audit(
            """
            class Metric:
                def __init__(self):
                    self._series = {}  # concurrency: guarded-by(self._lock)

            class Counter(Metric):
                def inc(self, key):
                    with self._lock:
                        self._series[key] = 1
            """
        )
        assert clean == []
        escaped = _audit(
            """
            class Metric:
                def __init__(self):
                    self._series = {}  # concurrency: guarded-by(self._lock)

            class Counter(Metric):
                def inc(self, key):
                    self._series[key] = 1
            """
        )
        assert _rules(escaped) == ["guarded-field-escape"]
        assert escaped[0].cls == "Counter"


class TestPragmas:
    def test_trailing_pragma_covers_its_own_line(self):
        assert _audit(GUARDED_CLEAN) == []

    def test_standalone_pragma_covers_next_code_line(self):
        assert (
            _audit(
                """
                class Cache:
                    def __init__(self):
                        # concurrency: guarded-by(self._lock)
                        self._entries = {}

                    def put(self, k, v):
                        with self._lock:
                            self._entries[k] = v
                """
            )
            == []
        )

    def test_standalone_pragma_skips_comment_continuations(self):
        assert (
            _audit(
                """
                class Log:
                    def __init__(self):
                        # concurrency: not-shared -- per-thread live stack,
                        # each thread only ever touches its own
                        self._stack = []

                    def push(self, item):
                        self._stack.append(item)
                        self._stack[0] = item
                """
            )
            == []
        )

    def test_not_shared_waiver_without_justification_is_a_finding(self):
        findings = _audit(
            """
            class Clock:
                def __init__(self):
                    self.now = 0.0

                def advance(self, s):
                    self.now += s  # concurrency: not-shared
            """
        )
        # the bad waiver is reported AND waives nothing
        assert sorted(_rules(findings)) == [
            "missing-justification",
            "unguarded-mutable-state",
        ]

    def test_waiver_on_access_line_suppresses(self):
        assert (
            _audit(
                """
                class Clock:
                    def __init__(self):
                        self.now = 0.0

                    def advance(self, s):
                        # concurrency: not-shared -- test clock, single driver thread
                        self.now += s
                """
            )
            == []
        )

    def test_waived_mutable_global(self):
        code = "# concurrency: not-shared -- import-time only\n_REGISTRY = {}\n"
        assert audit_source(code) == []

    def test_waived_class_attribute(self):
        code = (
            "class R:\n"
            "    _KINDS = {}  # concurrency: not-shared -- written once at class creation\n"
        )
        assert audit_source(code) == []

    def test_dangling_guarded_by_is_bad_pragma(self):
        findings = _audit(
            """
            class Cache:
                def put(self, k):
                    pass  # concurrency: guarded-by(self._lock)
            """
        )
        assert _rules(findings) == ["bad-pragma"]

    def test_unrecognized_pragma_is_bad_pragma(self):
        findings = _audit("x = 1  # concurrency: lockless-wizardry\n")
        assert _rules(findings) == ["bad-pragma"]

    def test_pragma_covering_no_code_is_bad_pragma(self):
        findings = audit_source("x = 1\n# concurrency: guarded-by(self._lock)\n")
        assert _rules(findings) == ["bad-pragma"]


class TestLockOrdering:
    CYCLE = """
        class Worker:
            def transfer(self):
                with self._lock_a:
                    with self._lock_b:
                        pass

            def refund(self):
                with self._lock_b:
                    with self._lock_a:
                        pass
    """

    def test_opposite_nesting_orders_form_a_cycle(self):
        findings = _audit(self.CYCLE)
        assert _rules(findings) == ["lock-order-cycle"]
        assert "self._lock_a" in findings[0].message
        assert "self._lock_b" in findings[0].message

    def test_consistent_order_is_clean(self):
        assert (
            _audit(
                """
                class Worker:
                    def f(self):
                        with self._lock_a:
                            with self._lock_b:
                                pass

                    def g(self):
                        with self._lock_a:
                            with self._lock_b:
                                pass
                """
            )
            == []
        )

    def test_reentrant_same_lock_is_not_an_edge(self):
        assert (
            _audit(
                """
                class Breaker:
                    def allow(self):
                        with self._lock:
                            with self._lock:
                                pass
                """
            )
            == []
        )

    def test_same_lock_name_in_two_classes_stays_two_locks(self):
        # Cache takes its lock inside Engine's in one file; the reverse
        # nesting in the other class is a different pair of locks
        assert (
            _audit(
                """
                class A:
                    def f(self):
                        with self._lock:
                            with other_lock:
                                pass

                class B:
                    def g(self):
                        with other_lock:
                            with self._lock:
                                pass
                """
            )
            == []
        )

    def test_cycle_detected_across_files(self, tmp_path):
        one = tmp_path / "one.py"
        two = tmp_path / "two.py"
        one.write_text(
            "class P:\n"
            "    def f(self):\n"
            "        with A_LOCK:\n"
            "            with B_LOCK:\n"
            "                pass\n"
        )
        two.write_text(
            "class Q:\n"
            "    def g(self):\n"
            "        with B_LOCK:\n"
            "            with A_LOCK:\n"
            "                pass\n"
        )
        findings = audit_paths([one, two])
        assert _rules(findings) == ["lock-order-cycle"]


class TestHarness:
    def test_parse_error_is_a_finding(self):
        findings = audit_source("def broken(:\n", path="bad.py")
        assert _rules(findings) == ["parse-error"]

    def test_findings_are_grep_friendly(self):
        findings = _audit(
            """
            class Engine:
                def __init__(self):
                    self.stats = {}

                def bump(self):
                    self.stats["n"] = 1
            """
        )
        line = format_findings(findings)
        assert line.startswith("snippet.py:")
        assert "[unguarded-mutable-state]" in line
        assert "Engine.stats" in line

    def test_rules_registry_documents_every_rule(self):
        produced = set()
        produced.update(_rules(_audit(TestLockOrdering.CYCLE)))
        produced.update(_rules(audit_source("_G = []\n")))
        produced.update(_rules(audit_source("def broken(:\n")))
        assert produced <= set(CONCURRENCY_RULES)

    def test_audited_packages_exist(self):
        root = Path(repro.__path__[0])
        for name in AUDITED_PACKAGES:
            assert (root / name).is_dir(), name

    def test_shipped_serving_packages_audit_clean(self):
        findings = audit_package(Path(repro.__path__[0]))
        assert findings == [], format_findings(findings)

"""Unit + property tests for the 64-bit bitmap primitives."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bitops import (
    bit_positions,
    bitmap_from_coords,
    bitmap_from_dense,
    bitmap_to_dense,
    bitmap_row,
    extract_bit,
    popcount,
    popcount_below,
)

U64 = st.integers(min_value=0, max_value=2**64 - 1)


class TestPopcount:
    def test_scalar_matches_python(self):
        for value in (0, 1, 0xFF, 0xFFFFFFFFFFFFFFFF, 0x8000000000000001):
            assert popcount(value) == bin(value).count("1")

    @given(U64)
    def test_property_matches_python(self, value):
        assert popcount(value) == value.bit_count()

    def test_vectorized(self):
        arr = np.array([0, 1, 3, 2**64 - 1], dtype=np.uint64)
        assert popcount(arr).tolist() == [0, 1, 2, 64]

    @given(st.lists(U64, min_size=1, max_size=50))
    def test_vector_property(self, values):
        arr = np.array(values, dtype=np.uint64)
        expected = [v.bit_count() for v in values]
        assert popcount(arr).tolist() == expected


class TestPopcountBelow:
    @given(U64, st.integers(min_value=0, max_value=64))
    def test_matches_mask_and_count(self, value, position):
        mask = (1 << position) - 1
        assert popcount_below(value, position) == (value & mask).bit_count()

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            popcount_below(np.uint64(1), 65)

    def test_full_width(self):
        assert popcount_below(2**64 - 1, 64) == 64

    def test_zero_position(self):
        assert popcount_below(2**64 - 1, 0) == 0


class TestExtractBit:
    @given(U64, st.integers(min_value=0, max_value=63))
    def test_matches_shift(self, value, position):
        assert extract_bit(value, position) == (value >> position) & 1


class TestBitPositions:
    @given(U64)
    def test_roundtrip(self, value):
        positions = bit_positions(value)
        rebuilt = sum(1 << int(p) for p in positions)
        assert rebuilt == value
        assert (np.diff(positions) > 0).all()  # strictly ascending

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_positions(-1)


class TestBitmapDense:
    def test_example_from_paper(self):
        # Fig. 4: row0 has only its first element nonzero -> 0x01
        block = np.zeros((8, 8), dtype=np.float32)
        block[0, 0] = 5.0
        bitmap = bitmap_from_dense(block)
        assert bitmap_row(bitmap, 0) == 0x01
        assert all(bitmap_row(bitmap, r) == 0 for r in range(1, 8))

    def test_lsb_is_top_left_msb_is_bottom_right(self):
        block = np.zeros((8, 8), dtype=np.float32)
        block[0, 0] = 1.0
        block[7, 7] = 1.0
        bitmap = bitmap_from_dense(block)
        assert bitmap == (1 | (1 << 63))

    def test_roundtrip(self, rng):
        block = (rng.random((8, 8)) < 0.4).astype(np.float32)
        mask = bitmap_to_dense(bitmap_from_dense(block))
        assert np.array_equal(mask, block != 0)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            bitmap_from_dense(np.zeros((4, 4)))

    @given(st.lists(st.integers(0, 63), min_size=0, max_size=64, unique=True))
    def test_coords_roundtrip(self, positions):
        pos = np.array(positions, dtype=np.int64)
        bitmap = bitmap_from_coords(pos // 8, pos % 8)
        assert popcount(bitmap) == len(positions)
        assert sorted(bit_positions(bitmap).tolist()) == sorted(positions)

    def test_bitmap_row_bounds(self):
        with pytest.raises(ValueError):
            bitmap_row(0, 8)

"""Tests for prefix scans and segment expansion."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.scan import exclusive_scan, inclusive_scan, segment_ids

COUNTS = st.lists(st.integers(0, 50), min_size=0, max_size=40)


class TestExclusiveScan:
    def test_example(self):
        assert exclusive_scan([2, 0, 3]).tolist() == [0, 2, 2, 5]

    def test_without_total(self):
        assert exclusive_scan([2, 0, 3], total=False).tolist() == [0, 2, 2]

    def test_empty(self):
        assert exclusive_scan([]).tolist() == [0]

    @given(COUNTS)
    def test_matches_cumsum(self, counts):
        out = exclusive_scan(counts)
        assert out[0] == 0
        assert out[-1] == sum(counts)
        assert np.array_equal(np.diff(out), counts)


class TestInclusiveScan:
    @given(COUNTS.filter(lambda c: len(c) > 0))
    def test_matches_cumsum(self, counts):
        assert inclusive_scan(counts).tolist() == np.cumsum(counts).tolist()


class TestSegmentIds:
    def test_example(self):
        assert segment_ids([0, 2, 2, 5]).tolist() == [0, 0, 2, 2, 2]

    def test_empty_pointer_rejected(self):
        with pytest.raises(ValueError):
            segment_ids([])

    @given(COUNTS)
    def test_inverse_of_pointers(self, counts):
        ptr = exclusive_scan(counts)
        ids = segment_ids(ptr)
        assert ids.size == sum(counts)
        rebuilt = np.bincount(ids, minlength=len(counts)) if ids.size else np.zeros(len(counts))
        assert np.array_equal(rebuilt[: len(counts)], counts)

"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.utils.validation import (
    ensure_1d,
    ensure_dtype,
    ensure_nonnegative,
    ensure_shape,
    ensure_sorted,
)


class TestEnsure1D:
    def test_passes(self):
        assert ensure_1d(np.arange(3), "a").tolist() == [0, 1, 2]

    def test_rejects_2d(self):
        with pytest.raises(FormatError):
            ensure_1d(np.zeros((2, 2)), "a")


class TestEnsureDtype:
    def test_safe_cast(self):
        out = ensure_dtype(np.array([1, 2], dtype=np.int64), np.int32, "a")
        assert out.dtype == np.int32

    def test_rejects_lossy_int_cast(self):
        with pytest.raises(FormatError):
            ensure_dtype(np.array([2**40]), np.int32, "a")

    def test_float_cast_allowed(self):
        out = ensure_dtype(np.array([1.5], dtype=np.float64), np.float32, "a")
        assert out.dtype == np.float32


class TestEnsureShape:
    def test_rejects_mismatch(self):
        with pytest.raises(FormatError):
            ensure_shape(np.zeros(3), (4,), "a")


class TestEnsureNonnegative:
    def test_rejects_negative(self):
        with pytest.raises(FormatError):
            ensure_nonnegative(np.array([1, -1]), "a")

    def test_empty_ok(self):
        ensure_nonnegative(np.array([]), "a")


class TestEnsureSorted:
    def test_non_decreasing_ok(self):
        ensure_sorted(np.array([0, 0, 1]), "a")

    def test_strict_rejects_ties(self):
        with pytest.raises(FormatError):
            ensure_sorted(np.array([0, 0, 1]), "a", strict=True)

    def test_rejects_decreasing(self):
        with pytest.raises(FormatError):
            ensure_sorted(np.array([1, 0]), "a")

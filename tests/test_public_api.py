"""Public-API surface tests: imports, __all__ consistency, registries."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.formats",
    "repro.gpu",
    "repro.core",
    "repro.kernels",
    "repro.perf",
    "repro.matrices",
    "repro.apps",
    "repro.bench",
    "repro.analysis",
    "repro.engine",
    "repro.exec",
    "repro.persist",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_package_imports(package):
    importlib.import_module(package)


def _iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                yield f"{pkg_name}.{info.name}"


@pytest.mark.parametrize("module", sorted(set(_iter_modules())))
def test_every_module_imports_and_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.__all__ lists missing {name!r}"


def test_version():
    assert repro.__version__


def test_format_registry_complete():
    from repro.formats import available_formats

    expected = {
        "coo", "csr", "csc", "ell", "sell", "hyb", "dia", "bsr",
        "bitbsr", "bitbsr-generic", "bitcoo",
    }
    assert expected <= set(available_formats())


def test_kernel_registry_complete():
    from repro.kernels import available_kernels

    expected = {
        "spaden", "spaden-no-tc", "spaden-wmma",
        "cusparse-csr", "cusparse-bsr", "lightspmv", "gunrock", "dasp",
        "csr-scalar", "csr-warp16", "coo", "ell", "hyb", "sell",
    }
    assert expected <= set(available_kernels())


def test_every_kernel_has_label_and_docstring():
    from repro.kernels import available_kernels, get_kernel

    for name in available_kernels():
        kernel = get_kernel(name)
        assert kernel.label, name
        assert type(kernel).__doc__ or type(kernel).__module__, name


def test_every_public_class_documented():
    """Doc-comment coverage: every public class/function in __all__ of
    the core packages carries a docstring."""
    undocumented = []
    for module in sorted(set(_iter_modules())):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) and not isinstance(obj, (int, float, str, tuple, dict)):
                if not getattr(obj, "__doc__", None):
                    undocumented.append(f"{module}.{name}")
    assert not undocumented, undocumented

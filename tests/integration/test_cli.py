"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_probe(self, capsys):
        assert main(["probe"]) == 0
        out = capsys.readouterr().out
        assert "(0, 1)" in out and "(6, 7)" in out

    def test_spmv(self, capsys):
        assert main(["spmv", "--matrix", "raefsky3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "GFLOPS" in out and "Spaden" in out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "webbase1M" in out

    def test_formats(self, capsys):
        assert main(["formats", "--matrix", "raefsky3", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "bitbsr" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_kernel_fails_cleanly(self):
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            main(["spmv", "--kernel", "nope", "--scale", "0.02"])

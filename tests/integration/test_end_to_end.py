"""Integration tests: the full pipeline from dataset to figures."""

import numpy as np
import pytest

from repro.bench import (
    EVALUATED_METHODS,
    FIG8_METHODS,
    load_suite,
    modeled_times,
    profile_suite,
)
from repro.core.analysis import categorize_blocks
from repro.kernels import get_kernel
from repro.perf.metrics import gflops, speedup_table

SCALE = 0.02


@pytest.fixture(scope="module")
def tiny_suite():
    return load_suite(scale=SCALE, names=["raefsky3", "consph", "Si41Ge41H72", "TSOPF"])


@pytest.fixture(scope="module")
def tiny_profiles(tiny_suite, tmp_path_factory, monkeypatch_module=None):
    import repro.bench.harness as harness

    # isolate the on-disk cache
    harness._CACHE_DIR = tmp_path_factory.mktemp("bench_cache")
    return profile_suite(tiny_suite, EVALUATED_METHODS, SCALE)


class TestPipeline:
    def test_all_methods_numerically_agree_on_suite(self, tiny_suite):
        for name, g in tiny_suite.items():
            x = g.dense_vector()
            ref = g.csr.matvec(x)
            for method in EVALUATED_METHODS:
                kernel = get_kernel(method)
                y = kernel.run(kernel.prepare(g.csr), x)
                rel = np.abs(y - ref).max() / max(1.0, np.abs(ref).max())
                assert rel < 1e-3, (name, method, rel)

    def test_modeled_times_are_finite_and_ordered(self, tiny_profiles):
        for gpu in ("L40", "V100"):
            times = modeled_times(tiny_profiles, gpu)
            for name, per_method in times.items():
                for method, t in per_method.items():
                    assert np.isfinite(t) and t > 0, (gpu, name, method)

    def test_speedup_table_runs(self, tiny_profiles):
        times = modeled_times(tiny_profiles, "L40")
        su = speedup_table(times, "spaden")
        assert set(su) == set(EVALUATED_METHODS) - {"spaden"}

    def test_gflops_in_plausible_gpu_range(self, tiny_profiles, tiny_suite):
        """Modeled SpMV throughput must land in the regime real GPUs
        show: between 1 and 1000 GFLOPS."""
        times = modeled_times(tiny_profiles, "L40")
        for name, per_method in times.items():
            nnz = tiny_suite[name].nnz
            for method, t in per_method.items():
                g = gflops(nnz, t)
                assert 0.5 < g < 1500, (name, method, g)

    def test_profile_cache_roundtrip(self, tiny_suite, tmp_path):
        import repro.bench.harness as harness

        old = harness._CACHE_DIR
        harness._CACHE_DIR = tmp_path / "cache"
        try:
            p1 = profile_suite(tiny_suite, ("spaden",), SCALE)
            p2 = profile_suite(tiny_suite, ("spaden",), SCALE)  # from cache
            for name in tiny_suite:
                assert (
                    p1[name]["spaden"].stats.as_dict()
                    == p2[name]["spaden"].stats.as_dict()
                )
        finally:
            harness._CACHE_DIR = old

    def test_structure_signals_survive_pipeline(self, tiny_suite):
        """Fig. 9a categories propagate from generator -> bitBSR -> stats."""
        dense_heavy = categorize_blocks(tiny_suite["raefsky3"].bitbsr)
        sparse_heavy = categorize_blocks(tiny_suite["Si41Ge41H72"].bitbsr)
        assert dense_heavy.dense_ratio > 0.9
        assert sparse_heavy.sparse_ratio > 0.9


class TestSimulatorAgainstSuite:
    def test_spaden_simulation_on_real_structure(self):
        """Lane-level simulation on a (very small) Table-1 analog."""
        suite = load_suite(scale=0.004, names=["consph"])
        g = suite["consph"]
        x = g.dense_vector()
        kernel = get_kernel("spaden")
        prep = kernel.prepare(g.csr)
        y_sim, stats = kernel.simulate(prep, x)
        y_fast = kernel.run(prep, x)
        ref = g.csr.matvec(x)
        assert np.allclose(y_sim, y_fast, rtol=1e-4, atol=1e-3)
        assert np.allclose(y_sim, ref, rtol=1e-3, atol=1e-2)
        profile = kernel.profile(prep, x)
        assert profile.stats.mma_ops == stats.mma_ops
        assert profile.stats.load_transactions == stats.load_transactions

"""Engine + persistent store: restart semantics, sharing, warm-up."""

import pickle
import threading

import numpy as np
import pytest

from repro.engine import OPERAND_CODEC, SpMVEngine, matrix_fingerprint
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.obs import reset_observability
from repro.persist import OperandStore
from repro.serve.frontend import ServeFrontend

from tests.conftest import make_random_dense


@pytest.fixture(autouse=True)
def clean_observability():
    reset_observability()
    yield
    reset_observability()


def _csr(rng, nrows=32, ncols=32, density=0.2) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, density))
    )


class TestRestart:
    def test_fresh_process_serves_from_disk_with_zero_conversions(self, rng, tmp_path):
        """The tentpole contract, with exact counter reconciliation."""
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)

        cold = SpMVEngine("spaden", store=OperandStore(tmp_path, name="cold"))
        y_cold = cold.spmv(csr, x)
        assert cold.stats.prepare_calls == 1
        assert cold.store.stats.puts == 1
        assert cold.store.stats.hits == 0
        # the one convert was spilled: exactly one entry on disk
        assert cold.store.keys() == [("spaden", matrix_fingerprint(csr))]

        # "restart": new engine, new store instance, same directory
        warm = SpMVEngine("spaden", store=OperandStore(tmp_path, name="warm"))
        y_warm = warm.spmv(csr, x)
        assert warm.stats.prepare_calls == 0  # zero conversions
        assert warm.store.stats.hits == 1
        assert warm.store.stats.misses == 0
        assert warm.store.stats.puts == 0  # nothing re-spilled
        # memory-cache accounting: the disk hit populated the cache,
        # so the request itself was an in-memory miss then a put
        assert warm.cache.stats.misses == 1
        assert np.array_equal(y_cold, y_warm)

        # second request on the restarted engine: pure memory hit,
        # the disk tier is not consulted again
        warm.spmv(csr, x)
        assert warm.store.stats.hits == 1
        assert warm.cache.stats.hits == 1

    def test_warm_prepares_without_counting_traffic(self, rng, tmp_path):
        csr = _csr(rng)
        seed = SpMVEngine("spaden", store=OperandStore(tmp_path, name="seed"))
        seed.warm(csr)
        assert seed.stats.prepare_calls == 1
        assert seed.stats.requests == 0 and seed.stats.batches == 0

        restarted = SpMVEngine("spaden", store=OperandStore(tmp_path, name="re"))
        operand = restarted.warm(csr)
        assert operand is not None
        assert restarted.stats.prepare_calls == 0
        assert restarted.stats.requests == 0
        assert restarted.store.stats.hits == 1

    def test_no_store_engine_unchanged(self, rng):
        engine = SpMVEngine("spaden")
        assert engine.store is None
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        engine.spmv(csr, x)
        assert engine.stats.prepare_calls == 1


class TestCorruptionAtEngineLevel:
    def test_corrupt_entry_heals_via_reconversion(self, rng, tmp_path):
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        cold = SpMVEngine("spaden", store=OperandStore(tmp_path, name="c"))
        y_cold = cold.spmv(csr, x)

        path = cold.store._path("spaden", matrix_fingerprint(csr))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))

        healed = SpMVEngine("spaden", store=OperandStore(tmp_path, name="h"))
        y = healed.spmv(csr, x)
        assert healed.store.stats.miss_reasons == {"digest": 1}
        assert healed.stats.prepare_calls == 1  # re-converted
        assert healed.store.stats.puts == 1  # fresh spill replaced it
        assert np.array_equal(y, y_cold)

    def test_decode_failure_is_discarded_then_reconverted(self, rng, tmp_path):
        """Frame-valid bytes the codec rejects: counted 'decode' miss."""
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        store = OperandStore(tmp_path, name="poison")
        # a perfectly framed entry whose payload is not a PreparedOperand
        store.put(
            "spaden",
            matrix_fingerprint(csr),
            pickle.dumps({"not": "an operand"}),
            codec=OPERAND_CODEC,
        )
        engine = SpMVEngine("spaden", store=OperandStore(tmp_path, name="e"))
        y = engine.spmv(csr, x)
        assert engine.store.stats.hits == 1  # frame was valid
        assert engine.store.stats.miss_reasons == {"decode": 1}
        assert engine.stats.prepare_calls == 1
        np.testing.assert_allclose(
            y, csr.matvec(x.astype(np.float64)).astype(np.float32),
            rtol=1e-2, atol=1e-2,
        )

    def test_invalidate_keeps_disk_copy(self, rng, tmp_path):
        """Poison-invalidate drops memory only; disk snapshot heals it."""
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        engine = SpMVEngine("spaden", store=OperandStore(tmp_path, name="i"))
        engine.spmv(csr, x)
        engine._invalidate_operand("spaden", matrix_fingerprint(csr))
        assert engine.cache.peek(("spaden", matrix_fingerprint(csr))) is None
        assert len(engine.store) == 1  # pristine snapshot survives
        engine.spmv(csr, x)
        assert engine.stats.prepare_calls == 1  # reloaded, not reconverted
        assert engine.store.stats.hits == 1


class TestSharedStoreDir:
    def test_two_engines_share_one_directory(self, rng, tmp_path):
        """Concurrent engines over one store dir: no tears, no re-prepares
        beyond the first per matrix-kernel pair across both engines'
        disk tiers."""
        matrices = [_csr(rng, 24 + 8 * i, 24 + 8 * i) for i in range(4)]
        vectors = [
            rng.standard_normal(m.ncols).astype(np.float32) for m in matrices
        ]
        reference = [
            SpMVEngine("spaden").spmv(m, x) for m, x in zip(matrices, vectors)
        ]

        engines = [
            SpMVEngine("spaden", store=OperandStore(tmp_path, name=f"eng{i}"))
            for i in range(2)
        ]
        results: dict = {}
        errors: list = []

        def worker(engine_idx: int):
            engine = engines[engine_idx]
            try:
                for j, (m, x) in enumerate(zip(matrices, vectors)):
                    results[(engine_idx, j)] = engine.spmv(m, x)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        for (engine_idx, j), y in results.items():
            assert np.array_equal(y, reference[j]), (engine_idx, j)
        # the store never served corrupt bytes to either engine
        assert all(e.store.stats.corrupt == 0 for e in engines)
        # every prepared operand ended up on disk exactly once per pair
        store = OperandStore(tmp_path, name="audit")
        assert len(store) == len(matrices)
        # disk tier saved work: total prepares across engines is less
        # than the no-store worst case of one per engine per matrix
        total_prepares = sum(e.stats.prepare_calls for e in engines)
        assert len(matrices) <= total_prepares <= 2 * len(matrices)


class TestFrontendWarmup:
    def test_register_matrix_warms_store_backed_engine(self, rng, tmp_path):
        csr = _csr(rng)
        engine = SpMVEngine("spaden", store=OperandStore(tmp_path, name="fe"))
        frontend = ServeFrontend(engine)
        try:
            frontend.register_matrix("m", csr)  # warm defaults to True here
            assert engine.stats.prepare_calls == 1
            assert engine.stats.requests == 0
            assert engine.store.stats.puts == 1
            # the tenant's first request pays nothing
            x = rng.standard_normal(csr.ncols).astype(np.float32)
            y = frontend.submit("m", x, tenant="t").result(timeout=5)
            assert engine.stats.prepare_calls == 1
            assert y.shape == (csr.nrows,)
        finally:
            frontend.close()

    def test_register_matrix_warm_default_off_without_store(self, rng):
        engine = SpMVEngine("spaden")
        frontend = ServeFrontend(engine)
        try:
            frontend.register_matrix("m", _csr(rng))
            assert engine.stats.prepare_calls == 0  # lazy, as before
        finally:
            frontend.close()

    def test_register_matrix_warm_forced_on(self, rng):
        engine = SpMVEngine("spaden")
        frontend = ServeFrontend(engine)
        try:
            frontend.register_matrix("m", _csr(rng), warm=True)
            assert engine.stats.prepare_calls == 1
        finally:
            frontend.close()

    def test_restarted_frontend_serves_from_disk(self, rng, tmp_path):
        csr = _csr(rng)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        first = ServeFrontend(
            SpMVEngine("spaden", store=OperandStore(tmp_path, name="a"))
        )
        try:
            first.register_matrix("m", csr)
            y_first = first.submit("m", x, tenant="t").result(timeout=5)
        finally:
            first.close()

        second = ServeFrontend(
            SpMVEngine("spaden", store=OperandStore(tmp_path, name="b"))
        )
        try:
            second.register_matrix("m", csr)
            assert second.engine.stats.prepare_calls == 0  # warmed from disk
            y_second = second.submit("m", x, tenant="t").result(timeout=5)
            assert np.array_equal(y_first, y_second)
        finally:
            second.close()

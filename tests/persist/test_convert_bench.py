"""bench_convert: verdict, trajectory artifact, refuse-to-clobber."""

import json

import pytest

from repro.bench import (
    ConvertBenchResult,
    append_convert_trajectory,
    bench_convert,
    format_convert_report,
)
from repro.errors import ObservabilityError
from repro.obs import reset_observability


@pytest.fixture(autouse=True)
def clean_observability():
    reset_observability()
    yield
    reset_observability()


@pytest.fixture(scope="module")
def result():
    reset_observability()
    return bench_convert(96, 96, 0.05, rounds=2, seed=7)


class TestBenchConvert:
    def test_small_run_passes(self, result):
        assert isinstance(result, ConvertBenchResult)
        assert result.passed
        assert result.bitwise_identical
        assert result.results_bitwise_equal
        assert result.cold_prepare_calls == 1
        assert result.warm_prepare_calls == 0
        assert result.persistent_warm_prepare_calls == 0
        assert result.persist.get("hits", 0) >= 1
        assert result.nnz > 0
        assert result.direct_seconds > 0 and result.via_coo_seconds > 0

    def test_as_dict_carries_verdict_and_derived_rates(self, result):
        d = result.as_dict()
        assert d["passed"] is True
        assert d["direct_speedup"] == pytest.approx(
            result.via_coo_seconds / result.direct_seconds, rel=1e-6
        )
        assert "run_report" in d

    def test_report_is_human_readable(self, result):
        text = format_convert_report(result)
        assert "PASS" in text
        assert "persistent-warm" in text
        assert "bitwise-equal across all tiers" in text

    def test_explicit_store_dir_is_used(self, tmp_path):
        reset_observability()
        res = bench_convert(64, 64, 0.05, rounds=1, seed=3, store_dir=tmp_path)
        assert res.passed
        assert list(tmp_path.glob("*.operand"))  # the spill landed here


class TestTrajectory:
    def test_append_creates_and_extends(self, result, tmp_path):
        path = tmp_path / "BENCH_convert.json"
        assert append_convert_trajectory(path, result) == 1
        assert append_convert_trajectory(path, result) == 2
        trajectory = json.loads(path.read_text())
        assert len(trajectory) == 2
        entry = trajectory[0]
        assert set(entry) == {"recorded_unix", "bench", "report"}
        assert entry["bench"]["passed"] is True
        assert "run_report" not in entry["bench"]  # lifted to "report"

    def test_refuses_to_clobber_non_json(self, result, tmp_path):
        path = tmp_path / "BENCH_convert.json"
        path.write_text("not json at all")
        with pytest.raises(ObservabilityError):
            append_convert_trajectory(path, result)
        assert path.read_text() == "not json at all"

    def test_refuses_to_clobber_non_list(self, result, tmp_path):
        path = tmp_path / "BENCH_convert.json"
        path.write_text('{"some": "dict"}')
        with pytest.raises(ObservabilityError):
            append_convert_trajectory(path, result)

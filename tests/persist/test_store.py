"""OperandStore adversarial suite: every bad entry is a counted miss."""

import os
import threading

import pytest

from repro.errors import PersistError
from repro.obs import get_registry, reset_observability
from repro.persist import SCHEMA_VERSION, OperandStore

CODEC = "test-codec/v1"


@pytest.fixture(autouse=True)
def clean_observability():
    reset_observability()
    yield
    reset_observability()


def _metric_total(name: str, **want) -> float:
    metric = get_registry().get(name)
    if metric is None:
        return 0.0
    return sum(
        value
        for labels, value in metric.labeled()
        if all(labels.get(k) == v for k, v in want.items())
    )


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = OperandStore(tmp_path, name="rt")
        assert store.put("spaden", "f1", b"payload-bytes", codec=CODEC)
        assert store.get("spaden", "f1", codec=CODEC) == b"payload-bytes"
        assert store.stats.hits == 1 and store.stats.puts == 1
        assert _metric_total("persist_hits_total", store="rt") == 1

    def test_absent_is_structured_miss(self, tmp_path):
        store = OperandStore(tmp_path, name="ab")
        assert store.get("spaden", "nope", codec=CODEC) is None
        assert store.stats.misses == 1
        assert store.stats.miss_reasons == {"absent": 1}
        assert store.stats.corrupt == 0
        assert _metric_total("persist_misses_total", store="ab", reason="absent") == 1

    def test_keys_and_residency(self, tmp_path):
        store = OperandStore(tmp_path, name="keys")
        store.put("spaden", "f1", b"x" * 64, codec=CODEC)
        store.put("csr-scalar", "f2", b"y" * 64, codec=CODEC)
        assert store.keys() == [("csr-scalar", "f2"), ("spaden", "f1")]
        assert len(store) == 2
        assert store.resident_bytes > 128

    def test_cross_instance_same_dir(self, tmp_path):
        writer = OperandStore(tmp_path, name="w")
        reader = OperandStore(tmp_path, name="r")
        writer.put("spaden", "f1", b"shared", codec=CODEC)
        assert reader.get("spaden", "f1", codec=CODEC) == b"shared"

    def test_bad_config_raises(self, tmp_path):
        with pytest.raises(PersistError):
            OperandStore(tmp_path, size_budget_bytes=0)
        with pytest.raises(PersistError):
            OperandStore(tmp_path, name="")


class TestAdversarial:
    """Truncation, bit flips, version skew, key mismatch: counted misses."""

    def _seed(self, tmp_path, name):
        store = OperandStore(tmp_path, name=name)
        store.put("spaden", "f1", b"sensitive-payload" * 8, codec=CODEC)
        return store, store._path("spaden", "f1")

    def test_truncated_file(self, tmp_path):
        store, path = self._seed(tmp_path, "tr")
        path.write_bytes(path.read_bytes()[:-5])
        assert store.get("spaden", "f1", codec=CODEC) is None
        assert store.stats.miss_reasons == {"truncated": 1}
        assert store.stats.corrupt == 1
        assert not path.exists()  # bad entry unlinked
        assert _metric_total("persist_corrupt_total", store="tr") == 1

    def test_truncated_below_fixed_header(self, tmp_path):
        store, path = self._seed(tmp_path, "tr2")
        path.write_bytes(path.read_bytes()[:6])
        assert store.get("spaden", "f1", codec=CODEC) is None
        assert store.stats.miss_reasons == {"truncated": 1}

    def test_flipped_payload_byte(self, tmp_path):
        store, path = self._seed(tmp_path, "flip")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get("spaden", "f1", codec=CODEC) is None
        assert store.stats.miss_reasons == {"digest": 1}
        assert store.stats.corrupt == 1

    def test_flipped_magic(self, tmp_path):
        store, path = self._seed(tmp_path, "mag")
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.get("spaden", "f1", codec=CODEC) is None
        assert store.stats.miss_reasons == {"magic": 1}

    def test_junk_header_json(self, tmp_path):
        store, path = self._seed(tmp_path, "hdr")
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # first header byte: breaks the JSON
        path.write_bytes(bytes(data))
        assert store.get("spaden", "f1", codec=CODEC) is None
        assert store.stats.corrupt == 1

    def test_schema_version_skew(self, tmp_path):
        old = OperandStore(tmp_path, name="old", schema_version=SCHEMA_VERSION)
        old.put("spaden", "f1", b"payload", codec=CODEC)
        new = OperandStore(tmp_path, name="new", schema_version=SCHEMA_VERSION + 1)
        assert new.get("spaden", "f1", codec=CODEC) is None
        assert new.stats.miss_reasons == {"schema": 1}
        assert new.stats.corrupt == 0  # skew is not corruption
        assert not old._path("spaden", "f1").exists()  # unreadable: reclaimed

    def test_fingerprint_mismatch_inside_frame(self, tmp_path):
        store, path = self._seed(tmp_path, "key")
        # file renamed to another key: frame validates, header key does not
        other = store._path("spaden", "f2")
        os.rename(path, other)
        assert store.get("spaden", "f2", codec=CODEC) is None
        assert store.stats.miss_reasons == {"key-mismatch": 1}
        assert store.stats.corrupt == 1

    def test_codec_skew(self, tmp_path):
        store, path = self._seed(tmp_path, "cod")
        assert store.get("spaden", "f1", codec="other-codec/v9") is None
        assert store.stats.miss_reasons == {"codec": 1}
        assert store.stats.corrupt == 0

    def test_discard_counts_decode_miss(self, tmp_path):
        store, path = self._seed(tmp_path, "dec")
        store.discard("spaden", "f1")
        assert store.stats.miss_reasons == {"decode": 1}
        assert not path.exists()

    def test_every_miss_falls_through_to_a_good_put(self, tmp_path):
        """After any miss, a re-put serves bitwise-correct bytes."""
        store, path = self._seed(tmp_path, "heal")
        path.write_bytes(b"garbage")
        assert store.get("spaden", "f1", codec=CODEC) is None
        assert store.put("spaden", "f1", b"fresh-payload", codec=CODEC)
        assert store.get("spaden", "f1", codec=CODEC) == b"fresh-payload"


class TestEviction:
    def test_lru_by_mtime(self, tmp_path):
        store = OperandStore(tmp_path, name="ev", size_budget_bytes=10**9)
        store.put("k", "a", b"x" * 100, codec=CODEC)
        entry = store._path("k", "a").stat().st_size
        store = OperandStore(tmp_path, name="ev", size_budget_bytes=entry * 2 + 8)
        store.put("k", "b", b"y" * 100, codec=CODEC)
        os.utime(store._path("k", "a"), (1, 1))  # make "a" the LRU
        store.put("k", "c", b"z" * 100, codec=CODEC)
        assert store.stats.evictions == 1
        assert store.get("k", "a", codec=CODEC) is None
        assert store.get("k", "c", codec=CODEC) == b"z" * 100
        assert _metric_total("persist_evictions_total", store="ev") == 1

    def test_hit_refreshes_recency(self, tmp_path):
        store = OperandStore(tmp_path, name="ev2", size_budget_bytes=10**9)
        store.put("k", "a", b"x" * 100, codec=CODEC)
        entry = store._path("k", "a").stat().st_size
        store = OperandStore(tmp_path, name="ev2", size_budget_bytes=entry * 2 + 8)
        store.put("k", "b", b"y" * 100, codec=CODEC)
        os.utime(store._path("k", "a"), (1, 1))
        os.utime(store._path("k", "b"), (2, 2))
        assert store.get("k", "a", codec=CODEC) is not None  # refresh "a"
        store.put("k", "c", b"z" * 100, codec=CODEC)
        assert store.get("k", "a", codec=CODEC) is not None  # survived
        assert store.get("k", "b", codec=CODEC) is None      # evicted

    def test_oversized_payload_rejected_not_written(self, tmp_path):
        store = OperandStore(tmp_path, name="rej", size_budget_bytes=64)
        assert not store.put("k", "big", b"x" * 1000, codec=CODEC)
        assert store.stats.rejected == 1 and store.stats.puts == 0
        assert len(store) == 0
        assert _metric_total("persist_puts_total", store="rej", outcome="rejected") == 1


class TestConcurrency:
    def test_threaded_put_get_never_tears(self, tmp_path):
        """Concurrent writers/readers see complete frames or clean misses."""
        store = OperandStore(tmp_path, name="thr")
        payloads = {f"f{i}": bytes([i]) * (200 + i) for i in range(8)}
        stop = threading.Event()
        bad: list = []

        def writer():
            while not stop.is_set():
                for fp, payload in payloads.items():
                    store.put("k", fp, payload, codec=CODEC)

        def reader():
            while not stop.is_set():
                for fp, payload in payloads.items():
                    got = store.get("k", fp, codec=CODEC)
                    if got is not None and got != payload:
                        bad.append(fp)

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        import time as _time

        _time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join()
        assert not bad  # a served payload is always bitwise what was put
        assert store.stats.corrupt == 0

"""Graceful-degradation dispatcher tests.

The dispatcher's contract: injecting *any* registered fault into an
SpMV run yields a correct ``y`` through the fallback chain — degraded,
logged, never crashed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import KernelError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.robustness import (
    DEFAULT_CHAIN,
    available_faults,
    corrupt,
    dispatch_spmv,
    get_fault,
    inject_lane_fault,
)

from tests.conftest import make_random_dense


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(2024)
    dense = make_random_dense(rng, 72, 80, density=0.1)
    csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
    x = rng.standard_normal(dense.shape[1]).astype(np.float32)
    return csr, x, dense.astype(np.float64) @ x.astype(np.float64)


def _close(y, ref):
    return np.allclose(y, ref, rtol=1e-3, atol=1e-2)


def _hook_for(fault_name, seed=9, once=True):
    """Corrupt the first prepared operand the fault applies to.

    ``once`` models a single corruption event: later kernels re-prepare
    from the pristine CSR and see healthy data, which is exactly the
    scenario the fallback chain exists for.
    """
    model = get_fault(fault_name)
    fired = []

    def hook(kernel_name, prepared):
        if once and fired:
            return
        data = prepared.data
        if isinstance(data, SparseMatrix) and data.format_name in model.formats:
            prepared.data, _ = corrupt(data, fault_name, seed=seed)
            fired.append(kernel_name)

    return hook


def test_clean_dispatch_uses_primary(problem):
    csr, x, ref = problem
    result = dispatch_spmv(csr, x)
    assert result.kernel == DEFAULT_CHAIN[0]
    assert not result.degraded and result.events == []
    assert result.attempts == ["spaden"]
    assert result.stats.degradations == 0
    assert _close(result.y, ref)


@pytest.mark.parametrize(
    "fault", [f for f in available_faults() if get_fault(f).formats]
)
def test_any_fault_still_yields_correct_y(problem, fault):
    """ISSUE acceptance: inject each named fault into an spmv run; the
    chain must degrade (when the fault touches an attempted kernel's
    operand) and the result must stay correct."""
    csr, x, ref = problem
    result = dispatch_spmv(csr, x, corrupt_hook=_hook_for(fault))
    assert _close(result.y, ref)
    touched = get_fault(fault).formats
    if "bitbsr" in touched:
        # the primary kernel rides on bitBSR: it must have been
        # abandoned with the fault's own detection error recorded
        assert result.kernel != "spaden"
        assert result.degraded
        causes = {e.cause for e in result.events}
        detected = {t.__name__ for t in get_fault(fault).detected_by}
        assert causes & detected
        assert result.stats.degradation_log == result.events


def test_lane_fault_degrades_tensor_core_kernels(problem):
    csr, x, ref = problem
    with inject_lane_fault(seed=4):
        result = dispatch_spmv(csr, x)
    assert result.kernel == "spaden-no-tc"
    assert [e.kernel for e in result.events] == ["spaden"]
    assert result.events[0].stage == "verify"
    assert result.events[0].cause == "LayoutError"
    assert result.events[0].fallback == "spaden-no-tc"
    assert _close(result.y, ref)


def test_events_record_stage_cause_fallback(problem):
    csr, x, ref = problem
    # a persistent corruption: every bitBSR conversion comes out damaged
    result = dispatch_spmv(
        csr, x, corrupt_hook=_hook_for("bitmap-bit-flip", once=False)
    )
    assert len(result.events) == 2  # spaden and spaden-no-tc both fail
    for event, expected_kernel in zip(result.events, ("spaden", "spaden-no-tc")):
        assert event.kernel == expected_kernel
        assert event.stage == "verify"
        assert event.cause == "BitmapPopcountError"
    assert result.events[-1].fallback == "cusparse-csr"
    assert result.attempts == ["spaden", "spaden-no-tc", "cusparse-csr"]
    assert result.kernel == "cusparse-csr"
    assert _close(result.y, ref)


def test_overflow_surfaces_at_run_stage_when_verify_skipped(problem):
    """With verification off, an Inf operand reaches the tensor-core
    accumulator and the MMA overflow check triggers the fallback."""
    csr, x, ref = problem
    result = dispatch_spmv(
        csr,
        x,
        chain=("spaden", "csr-scalar"),
        deep_verify=False,
        simulate=True,
        corrupt_hook=_hook_for("value-inf"),
    )
    assert result.kernel == "csr-scalar"
    assert result.events[0].stage in ("run", "check")
    assert result.events[0].kernel == "spaden"
    assert _close(result.y, ref)


def test_chain_exhaustion_raises_kernel_error(problem):
    csr, x, _ = problem

    def poison_everything(kernel_name, prepared):
        data = prepared.data
        if isinstance(data, SparseMatrix):
            fault = "value-nan" if data.format_name in ("csr", "bitbsr") else None
            if fault:
                prepared.data, _ = corrupt(data, fault, seed=1)

    with pytest.raises(KernelError, match="all kernels in chain"):
        dispatch_spmv(csr, x, chain=("spaden", "cusparse-csr"), corrupt_hook=poison_everything)


def test_empty_chain_rejected(problem):
    csr, x, _ = problem
    with pytest.raises(KernelError, match="empty"):
        dispatch_spmv(csr, x, chain=())


def test_simulated_dispatch_returns_real_stats(problem):
    csr, x, ref = problem
    result = dispatch_spmv(csr, x, simulate=True)
    assert result.kernel == "spaden"
    assert result.stats.mma_ops > 0
    assert result.stats.warps_launched > 0
    assert _close(result.y, ref)

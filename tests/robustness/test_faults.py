"""Fault-matrix suite: every named fault model is caught by a verifier.

The central contract of :mod:`repro.robustness.faults`: for every
registered fault model and every format it claims to corrupt, injecting
the fault into a healthy instance makes ``verify(deep=True)`` raise one
of the exception types the model declares — and leaves the pristine
instance untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_bitbsr
from repro.errors import LayoutError, ReproError, VerificationError
from repro.formats.bitcoo import BitCOOMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.fragment import verify_lane_mapping
from repro.robustness import (
    available_faults,
    corrupt,
    faults_for_format,
    get_fault,
    inject_lane_fault,
)

from tests.conftest import make_random_dense


@pytest.fixture(scope="module")
def targets():
    """One healthy instance of every corruptible format."""
    rng = np.random.default_rng(77)
    dense = make_random_dense(rng, 96, 104, density=0.08)
    coo = COOMatrix.from_dense(dense)
    csr = CSRMatrix.from_coo(coo)
    return {
        "csr": csr,
        "coo": coo,
        "bitbsr": build_bitbsr(csr).matrix,
        "bitcoo": BitCOOMatrix.from_coo(coo),
    }


def _format_fault_pairs():
    pairs = []
    for name in available_faults():
        for fmt in get_fault(name).formats:
            pairs.append((name, fmt))
    return pairs


@pytest.mark.parametrize("fault,fmt", _format_fault_pairs())
def test_every_fault_is_detected(targets, fault, fmt):
    model = get_fault(fault)
    pristine = targets[fmt]
    corrupted, report = corrupt(pristine, fault, seed=11)
    assert report.fault == fault and report.target == fmt
    with pytest.raises(model.detected_by):
        corrupted.verify(deep=True)
    # injection worked on a deep copy: the original still verifies clean
    pristine.verify(deep=True)


@pytest.mark.parametrize("fault,fmt", _format_fault_pairs())
def test_detection_error_is_structured(targets, fault, fmt):
    corrupted, _ = corrupt(targets[fmt], fault, seed=11)
    with pytest.raises(ReproError) as excinfo:
        corrupted.verify(deep=True)
    exc = excinfo.value
    if isinstance(exc, VerificationError):
        assert exc.format_name == fmt
        assert exc.check


def test_injection_is_seeded(targets):
    a, ra = corrupt(targets["bitbsr"], "bitmap-bit-flip", seed=5)
    b, rb = corrupt(targets["bitbsr"], "bitmap-bit-flip", seed=5)
    assert ra == rb
    assert np.array_equal(a.bitmaps, b.bitmaps)
    _, rc = corrupt(targets["bitbsr"], "bitmap-bit-flip", seed=6)
    assert rc != ra


def test_fault_rejects_inapplicable_format(targets):
    with pytest.raises(ValueError, match="does not apply"):
        get_fault("bitmap-bit-flip").inject(targets["csr"], np.random.default_rng(0))


def test_unknown_fault_name(targets):
    with pytest.raises(ValueError, match="unknown fault"):
        corrupt(targets["csr"], "no-such-fault")


def test_faults_for_format_listing():
    assert "bitmap-bit-flip" in faults_for_format("bitbsr")
    assert "bitmap-bit-flip" not in faults_for_format("csr")
    assert "pointer-shuffle" in faults_for_format("csr")


def test_lane_mapping_fault_detected_and_restored():
    verify_lane_mapping()  # healthy before
    with inject_lane_fault(seed=3) as report:
        assert report.fault == "lane-mapping-perturb"
        with pytest.raises(LayoutError, match="lane"):
            verify_lane_mapping()
    verify_lane_mapping()  # restored after


def test_lane_mapping_restored_on_error():
    with pytest.raises(RuntimeError, match="boom"):
        with inject_lane_fault(seed=3):
            raise RuntimeError("boom")
    verify_lane_mapping()


@pytest.mark.parametrize("fmt", ["bitbsr", "bitcoo"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_round_trip_convert_corrupt_verify(fmt, seed):
    """Seeded convert -> corrupt -> verify round trip for both bitmap formats."""
    rng = np.random.default_rng(1000 + seed)
    dense = make_random_dense(rng, 64, 72, density=0.1)
    coo = COOMatrix.from_dense(dense)
    if fmt == "bitbsr":
        matrix = build_bitbsr(CSRMatrix.from_coo(coo)).matrix
    else:
        matrix = BitCOOMatrix.from_coo(coo)
    matrix.verify(deep=True)  # fresh conversion is clean
    for fault in faults_for_format(fmt):
        corrupted, _ = corrupt(matrix, fault, seed=seed)
        model = get_fault(fault)
        with pytest.raises(model.detected_by):
            corrupted.verify(deep=True)
    matrix.verify(deep=True)  # still clean after every injection

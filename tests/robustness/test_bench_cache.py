"""Bench-cache hardening: a damaged cache must never crash a run."""

from __future__ import annotations

import pickle

import pytest

import repro.bench.harness as harness
from repro.kernels.base import KernelProfile
from repro.matrices import generate_matrix


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "_CACHE_DIR", tmp_path)
    return tmp_path


@pytest.fixture(scope="module")
def tiny_matrix():
    return generate_matrix("scircuit", scale=0.01)


def _entry_path(cache_dir, matrix, method, scale):
    return cache_dir / f"{matrix.name}-{scale}-{method}.pkl"


def test_cache_round_trip(cache_dir, tiny_matrix):
    first = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    path = _entry_path(cache_dir, tiny_matrix, "csr-scalar", 0.01)
    assert path.exists()
    payload = pickle.loads(path.read_bytes())
    assert payload["version"] == harness._CACHE_VERSION
    second = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    assert isinstance(second, KernelProfile)
    assert second.stats.as_dict() == first.stats.as_dict()


def test_corrupt_entry_warns_and_recomputes(cache_dir, tiny_matrix):
    path = _entry_path(cache_dir, tiny_matrix, "csr-scalar", 0.01)
    path.write_bytes(b"\x80garbage not a pickle")
    with pytest.warns(UserWarning, match="corrupt bench cache"):
        profile = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    assert isinstance(profile, KernelProfile)
    # the rewritten entry is healthy again
    assert pickle.loads(path.read_bytes())["version"] == harness._CACHE_VERSION


def test_truncated_entry_warns_and_recomputes(cache_dir, tiny_matrix):
    good = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    path = _entry_path(cache_dir, tiny_matrix, "csr-scalar", 0.01)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
    with pytest.warns(UserWarning, match="corrupt bench cache"):
        profile = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    assert profile.stats.as_dict() == good.stats.as_dict()


def test_stale_version_warns_and_recomputes(cache_dir, tiny_matrix):
    profile = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    path = _entry_path(cache_dir, tiny_matrix, "csr-scalar", 0.01)
    path.write_bytes(pickle.dumps({"version": -1, "profile": profile}))
    with pytest.warns(UserWarning, match="stale bench cache"):
        harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)


def test_legacy_raw_profile_treated_as_stale(cache_dir, tiny_matrix):
    """Entries written before versioning (a bare KernelProfile pickle)
    are evicted, not deserialized into objects missing new fields."""
    profile = harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    path = _entry_path(cache_dir, tiny_matrix, "csr-scalar", 0.01)
    path.write_bytes(pickle.dumps(profile))
    with pytest.warns(UserWarning, match="stale bench cache"):
        harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)


def test_prune_bench_cache(cache_dir, tiny_matrix):
    harness._cached_profile(tiny_matrix, "csr-scalar", 0.01)
    (cache_dir / "junk1.pkl").write_bytes(b"nope")
    (cache_dir / "junk2.pkl").write_bytes(pickle.dumps({"version": 0}))
    assert harness.prune_bench_cache() == 2
    assert sorted(p.name for p in cache_dir.glob("*.pkl")) == [
        _entry_path(cache_dir, tiny_matrix, "csr-scalar", 0.01).name
    ]
    assert harness.prune_bench_cache() == 0


def test_prune_missing_dir_is_noop(tmp_path, monkeypatch):
    monkeypatch.setattr(harness, "_CACHE_DIR", tmp_path / "never-created")
    assert harness.prune_bench_cache() == 0

"""Chaos matrix: every registered fault against the resilient engine.

The PR-1 dispatcher tests prove each fault is survivable through a bare
chain walk.  This matrix raises the bar to the serving configuration:
an :class:`~repro.engine.SpMVEngine` carrying a full
:class:`~repro.resilience.ResiliencePolicy` (deadline + retries +
breakers + deep verify) takes every registered format fault injected
into the first applicable kernel's freshly prepared operand, and for
each one either serves a ``y`` matching the reference or returns a
structured :class:`~repro.errors.ReproError` — never a wrong answer,
never an unstructured crash, never a poisoned cache entry left behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SpMVEngine, matrix_fingerprint
from repro.errors import ReproError
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.resilience import (
    BreakerBoard,
    BreakerConfig,
    ManualClock,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.robustness import available_faults, corrupt, get_fault, inject_lane_fault

from tests.conftest import make_random_dense

FORMAT_FAULTS = [f for f in available_faults() if get_fault(f).formats]


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(77)
    dense = make_random_dense(rng, 72, 80, density=0.1)
    csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
    x = rng.standard_normal(dense.shape[1]).astype(np.float32)
    return csr, x, dense.astype(np.float64) @ x.astype(np.float64)


def _resilient_engine() -> tuple[SpMVEngine, ManualClock]:
    clock = ManualClock()
    policy = ResiliencePolicy(
        deadline_seconds=60.0,
        retry=RetryPolicy(max_attempts=2, jitter=0.0, sleep=clock.sleep, seed=0),
        breakers=BreakerBoard(BreakerConfig(window=8, min_volume=4), clock=clock),
        deep_verify=True,
        clock=clock,
    )
    return SpMVEngine("spaden", resilience=policy), clock


def _persistent_hook(fault_name: str, seed: int = 9):
    """Corrupt every applicable prepared operand — retries see it too,
    so the chain must actually degrade past the sick kernel."""
    model = get_fault(fault_name)

    def hook(kernel_name, prepared):
        data = prepared.data
        if isinstance(data, SparseMatrix) and data.format_name in model.formats:
            prepared.data, _ = corrupt(data, fault_name, seed=seed)

    return hook


@pytest.mark.parametrize("fault", FORMAT_FAULTS)
def test_every_fault_yields_correct_y_or_structured_error(problem, fault):
    csr, x, ref = problem
    engine, _clock = _resilient_engine()
    results = engine.spmv_many(
        [(csr, x)], return_errors=True, faults=(_persistent_hook(fault),)
    )
    [result] = results
    if isinstance(result, ReproError):
        # structured failure is acceptable; silent wrongness is not
        assert type(result).__name__ != "Exception"
    else:
        assert np.allclose(result, ref, rtol=1e-3, atol=1e-2)
    # whatever happened, no poisoned operand stayed resident
    fingerprint = matrix_fingerprint(csr)
    for kernel_name in engine.chain:
        cached = engine.cache.get((kernel_name, fingerprint))
        if cached is not None and isinstance(cached.data, SparseMatrix):
            cached.data.verify(deep=True)


@pytest.mark.parametrize("fault", FORMAT_FAULTS)
def test_transient_fault_heals_via_retry_without_degrading(problem, fault):
    """A single corruption event + a retry policy: the re-prepared second
    attempt must succeed on the *same* kernel — no fallback consulted."""
    csr, x, ref = problem
    model = get_fault(fault)
    engine, _clock = _resilient_engine()
    fired = []

    def once(kernel_name, prepared):
        data = prepared.data
        if fired or not isinstance(data, SparseMatrix):
            return
        if data.format_name in model.formats:
            prepared.data, _ = corrupt(data, fault, seed=9)
            fired.append(kernel_name)

    [y] = engine.spmv_many([(csr, x)], return_errors=True, faults=(once,))
    assert not isinstance(y, ReproError)
    assert np.allclose(y, ref, rtol=1e-3, atol=1e-2)
    if fired:
        # healed by the retry (cache invalidated, fresh prepare) — the
        # faulted kernel itself served, so no degradation was recorded
        assert engine.stats.degradation_log == []


def test_lane_fault_degrades_resilient_engine(problem):
    csr, x, ref = problem
    engine, _clock = _resilient_engine()
    with inject_lane_fault(seed=4):
        [y] = engine.spmv_many([(csr, x)], return_errors=True)
    assert not isinstance(y, ReproError)
    assert np.allclose(y, ref, rtol=1e-3, atol=1e-2)
    # the tensor-core kernel was abandoned at verify; the breaker saw it
    assert any(e.cause == "LayoutError" for e in engine.stats.degradation_log)
    board = engine.resilience.breakers
    assert board.breaker("spaden").failure_rate > 0.0

"""Deep-verifier protocol tests.

Every registered format must verify a fresh conversion clean, and the
errors raised on hand-made corruption must carry usable coordinates —
that is what distinguishes a verifier from an assert.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv_simulated
from repro.errors import (
    BitmapPopcountError,
    IndexRangeError,
    NonFiniteValueError,
    NumericalError,
    OffsetScanError,
    PointerMonotonicityError,
)
from repro.formats import available_formats, convert
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

from tests.conftest import make_random_dense


@pytest.fixture(scope="module")
def coo():
    rng = np.random.default_rng(99)
    return COOMatrix.from_dense(make_random_dense(rng, 80, 88, density=0.1))


def test_all_formats_verify_clean(coo):
    for fmt in available_formats():
        if fmt == "dia":
            continue  # scattered matrices overflow DIA
        matrix = convert(coo, fmt)
        assert matrix.verify(deep=True) is matrix  # chains


def test_dia_verifies_clean():
    rng = np.random.default_rng(7)
    n = 40
    dense = np.zeros((n, n), dtype=np.float32)
    for off in (-2, 0, 3):
        idx = np.arange(n)
        keep = (idx + off >= 0) & (idx + off < n)
        dense[idx[keep], idx[keep] + off] = rng.standard_normal(keep.sum()).astype(np.float32)
    convert(COOMatrix.from_dense(dense), "dia").verify(deep=True)


def test_shallow_verify_is_default(coo):
    csr = convert(coo, "csr")
    csr.values[0] = np.nan
    csr.verify()  # shallow: frame only, NaN not scanned
    with pytest.raises(NonFiniteValueError):
        csr.verify(deep=True)


def test_nan_error_carries_coordinates(coo):
    csr = convert(coo, "csr")
    pos = csr.nnz // 2
    csr.values[pos] = np.nan
    with pytest.raises(NonFiniteValueError) as excinfo:
        csr.verify(deep=True)
    row, col = excinfo.value.coord
    assert csr.row_pointers[row] <= pos < csr.row_pointers[row + 1]
    assert col == csr.col_indices[pos]


def test_monotonicity_error_names_the_row(coo):
    csr = convert(coo, "csr")
    csr.row_pointers[10] = csr.row_pointers[11] + 2
    with pytest.raises(PointerMonotonicityError) as excinfo:
        csr.verify(deep=True)
    assert excinfo.value.coord == (10,)


def test_index_range_error_names_the_slot(coo):
    csr = convert(coo, "csr")
    csr.col_indices[5] = csr.ncols + 1
    with pytest.raises(IndexRangeError) as excinfo:
        csr.verify(deep=True)
    assert 5 in excinfo.value.coord or excinfo.value.coord  # slot recorded


def test_bitmap_popcount_mismatch(coo):
    bit = build_bitbsr(CSRMatrix.from_coo(coo)).matrix
    bit.bitmaps[0] ^= np.uint64(1) << np.uint64(63)
    with pytest.raises((BitmapPopcountError, OffsetScanError)):
        bit.verify(deep=True)


def test_offset_scan_mismatch(coo):
    bit = build_bitbsr(CSRMatrix.from_coo(coo)).matrix
    bit.block_offsets[1] += 2
    with pytest.raises(OffsetScanError) as excinfo:
        bit.verify(deep=True)
    assert excinfo.value.coord  # identifies the offending block


def test_hyb_delegates_to_parts(coo):
    hyb = convert(coo, "hyb")
    hyb.verify(deep=True)
    if hyb.tail.nnz:
        hyb.tail.values[0] = np.inf
        with pytest.raises(NonFiniteValueError):
            hyb.verify(deep=True)


def test_mma_overflow_names_lane_and_register():
    """fp16 overflow in the simulated accumulator raises with the owning
    lane/register coordinate (the §3 mapping in reverse)."""
    rng = np.random.default_rng(5)
    dense = make_random_dense(rng, 32, 32, density=0.3)
    bit = build_bitbsr(CSRMatrix.from_coo(COOMatrix.from_dense(dense))).matrix
    with np.errstate(over="ignore"):
        bit.values[0] = np.float16(np.inf)
    x = np.ones(bit.ncols, dtype=np.float32)
    with pytest.raises(NumericalError, match=r"lane \d+, register"):
        spaden_spmv_simulated(bit, x, check_overflow=True)


def test_mma_overflow_check_off_by_default():
    rng = np.random.default_rng(5)
    dense = make_random_dense(rng, 32, 32, density=0.3)
    bit = build_bitbsr(CSRMatrix.from_coo(COOMatrix.from_dense(dense))).matrix
    with np.errstate(over="ignore"):
        bit.values[0] = np.float16(np.inf)
    y, _ = spaden_spmv_simulated(bit, np.ones(bit.ncols, dtype=np.float32))
    assert not np.isfinite(y).all()  # silent poison without the check

"""Crossover bench tests: sweep generator, tolerance verdict, artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.plan import (
    append_plan_trajectory,
    bench_plan_crossover,
    block_sweep_csr,
    format_plan_report,
)
from repro.errors import ObservabilityError, PlanError


class TestBlockSweepMatrix:
    @pytest.mark.parametrize("per_block", [64, 16, 1])
    def test_exact_block_density(self, per_block):
        csr = block_sweep_csr(per_block, nnz_target=1024, seed=2)
        prof = csr.structure_profile()
        assert prof.mean_block_nnz == pytest.approx(per_block)
        assert csr.nnz == (1024 // per_block) * per_block

    def test_seeded_reproducible(self):
        a = block_sweep_csr(8, seed=4)
        b = block_sweep_csr(8, seed=4)
        assert a.structure_profile().fingerprint == b.structure_profile().fingerprint

    def test_rejects_impossible_density(self):
        with pytest.raises(PlanError):
            block_sweep_csr(65)
        with pytest.raises(PlanError):
            block_sweep_csr(0)

    def test_rejects_unaligned_shape(self):
        with pytest.raises(PlanError):
            block_sweep_csr(8, nrows=100, ncols=96)


class TestCrossoverBench:
    @pytest.fixture(scope="class")
    def result(self):
        # a short sweep keeps the measured-counter ground truth cheap:
        # one dense point (agreement expected) and one hypersparse point
        # (the planner should reorder)
        return bench_plan_crossover(
            (64, 2), nrows=256, ncols=256, nnz_target=1024, seed=0
        )

    def test_within_tolerance_everywhere(self, result):
        assert result.within_tolerance
        assert result.worst_margin <= result.tolerance

    def test_dense_point_agrees_with_static(self, result):
        dense = result.points[0]
        assert dense.per_block_nnz == 64
        assert dense.planner_pick == dense.static_pick == "spaden"
        assert dense.margin == pytest.approx(0.0)

    def test_hypersparse_point_reorders_and_wins(self, result):
        sparse = result.points[1]
        assert sparse.per_block_nnz == 2
        assert sparse.planner_pick != sparse.static_pick
        # the reorder must be a ground-truth *win*, not just a flip
        assert sparse.margin < 0
        assert result.reorder_points == 1

    def test_truth_covers_whole_chain(self, result):
        for point in result.points:
            assert set(point.truth_seconds) == set(point.plan["kernels"])
            assert all(t > 0 for t in point.truth_seconds.values())

    def test_report_format(self, result):
        text = format_plan_report(result)
        assert "plan crossover" in text
        assert "OK" in text
        for point in result.points:
            assert point.planner_pick in text


class TestTrajectoryArtifact:
    @pytest.fixture(scope="class")
    def result(self):
        return bench_plan_crossover((64,), nrows=128, ncols=128, nnz_target=256, seed=1)

    def test_appends_and_grows(self, tmp_path, result):
        path = tmp_path / "BENCH_plan.json"
        assert append_plan_trajectory(path, result) == 1
        assert append_plan_trajectory(path, result) == 2
        doc = json.loads(path.read_text())
        assert isinstance(doc, list) and len(doc) == 2
        assert doc[0]["bench"]["within_tolerance"] is True
        assert doc[0]["bench"]["points"][0]["planner_pick"]

    def test_refuses_non_list(self, tmp_path, result):
        path = tmp_path / "BENCH_plan.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ObservabilityError):
            append_plan_trajectory(path, result)
        assert path.read_text() == '{"not": "a list"}'  # untouched

    def test_refuses_invalid_json(self, tmp_path, result):
        path = tmp_path / "BENCH_plan.json"
        path.write_text("not json at all")
        with pytest.raises(ObservabilityError):
            append_plan_trajectory(path, result)

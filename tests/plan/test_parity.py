"""Planner-off parity: no planner and StaticPlanner are the same path.

The refactor's safety contract: executing through an
:class:`~repro.plan.ExecutionPlan` that carries the static chain must be
*bitwise indistinguishable* from executing through the plain name tuple
— numeric results, simulator counters and degradation events all
field-identical — across every kernel in the fallback chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.exec import ExecutionMode, default_chain, execute_chain
from repro.formats.base import SparseMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.base import get_kernel
from repro.plan import StaticPlanner
from repro.robustness import corrupt, dispatch_spmv, get_fault

from tests.conftest import make_random_dense


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(77)
    dense = make_random_dense(rng, 72, 80, density=0.12)
    csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
    x = rng.standard_normal(80).astype(np.float32)
    return csr, x


def _simulating_kernels():
    return [
        name
        for name in default_chain()
        if get_kernel(name).capabilities.simulate
    ]


class TestChainWalkerParity:
    @pytest.mark.parametrize("kernel", default_chain())
    def test_numeric_bitwise_per_kernel(self, problem, kernel):
        csr, x = problem
        bare = execute_chain(csr, x, (kernel,))
        planned = execute_chain(csr, x, StaticPlanner((kernel,)).plan(csr))
        assert np.array_equal(bare.y, planned.y)
        assert bare.kernel == planned.kernel == kernel
        assert bare.attempts == planned.attempts
        assert bare.events == planned.events == []

    def test_full_chain_default_vs_static_plan(self, problem):
        csr, x = problem
        bare = execute_chain(csr, x)  # chain=None -> registry default
        planned = execute_chain(csr, x, StaticPlanner().plan(csr))
        assert np.array_equal(bare.y, planned.y)
        assert bare.kernel == planned.kernel
        assert bare.attempts == planned.attempts

    @pytest.mark.parametrize("kernel", default_chain())
    def test_simulated_counters_identical(self, problem, kernel):
        if kernel not in _simulating_kernels():
            pytest.skip(f"{kernel} has no simulator")
        csr, x = problem
        bare = execute_chain(
            csr, x, (kernel,), mode=ExecutionMode.SIMULATED, check_overflow=True
        )
        planned = execute_chain(
            csr,
            x,
            StaticPlanner((kernel,)).plan(csr),
            mode=ExecutionMode.SIMULATED,
            check_overflow=True,
        )
        assert np.array_equal(bare.y, planned.y)
        # ExecutionStats is a dataclass: field-wise equality covers every
        # counter (loads, stores, mma_ops, warp_instructions, ...)
        assert bare.stats == planned.stats


class TestEngineParity:
    def test_spmv_bitwise(self, problem):
        csr, x = problem
        plain = SpMVEngine()
        planned = SpMVEngine(planner=StaticPlanner())
        assert np.array_equal(plain.spmv(csr, x), planned.spmv(csr, x))
        assert plain.stats.degradation_log == planned.stats.degradation_log

    def test_spmv_many_bitwise_and_counters(self, problem):
        csr, x = problem
        rng = np.random.default_rng(5)
        requests = [
            (csr, rng.standard_normal(csr.ncols).astype(np.float32))
            for _ in range(6)
        ]
        plain = SpMVEngine()
        planned = SpMVEngine(planner=StaticPlanner())
        for a, b in zip(plain.spmv_many(requests), planned.spmv_many(requests)):
            assert np.array_equal(a, b)
        assert plain.stats.batches == planned.stats.batches
        assert plain.stats.requests == planned.stats.requests
        assert plain.cache.stats.as_dict() == planned.cache.stats.as_dict()

    def test_simulated_batch_counters_identical(self, problem):
        csr, x = problem
        plain = SpMVEngine()
        planned = SpMVEngine(planner=StaticPlanner())
        a = plain.spmv(csr, x, simulate=True)
        b = planned.spmv(csr, x, simulate=True)
        assert np.array_equal(a, b)
        assert plain.stats.execution == planned.stats.execution

    def test_run_report_names_planner_only_when_configured(self, problem):
        csr, x = problem
        plain = SpMVEngine()
        planned = SpMVEngine(planner=StaticPlanner())
        plain.spmv(csr, x)
        planned.spmv(csr, x)
        assert "planner" not in plain.run_report().meta
        assert planned.run_report().meta["planner"] == "static"


class TestDegradationParity:
    def _corrupting_hook(self):
        model = get_fault("bitmap-bit-flip")
        fired = []

        def hook(kernel_name, prepared):
            if fired:
                return
            data = prepared.data
            if isinstance(data, SparseMatrix) and data.format_name in model.formats:
                prepared.data, _ = corrupt(data, "bitmap-bit-flip", seed=11)
                fired.append(kernel_name)

        return hook

    def test_degradation_events_field_identical(self, problem):
        csr, x = problem
        bare = dispatch_spmv(csr, x, corrupt_hook=self._corrupting_hook())
        planned = dispatch_spmv(
            csr, x, planner=StaticPlanner(), corrupt_hook=self._corrupting_hook()
        )
        assert bare.degraded and planned.degraded
        assert np.array_equal(bare.y, planned.y)
        assert bare.kernel == planned.kernel
        assert bare.attempts == planned.attempts
        # DegradationEvent is a dataclass: == compares kernel, stage,
        # cause, detail and fallback per event
        assert bare.events == planned.events

    def test_explicit_chain_still_wins_over_planner(self, problem):
        csr, x = problem
        result = dispatch_spmv(
            csr, x, chain=("csr-scalar",), planner=StaticPlanner()
        )
        assert result.kernel == "csr-scalar"
        assert result.attempts == ["csr-scalar"]

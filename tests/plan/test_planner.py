"""Planner tests: ranking, capability filters, feedback, thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import PlanError
from repro.exec import default_chain
from repro.obs import get_registry, reset_observability
from repro.plan import ExecutionPlan, StaticPlanner, StructurePlanner
from repro.bench.plan import block_sweep_csr


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_observability()
    yield
    reset_observability()


def _counter(name, labels):
    return get_registry().counter(name, "", labels=tuple(labels)).value(**labels)


@pytest.fixture(scope="module")
def dense_csr():
    return block_sweep_csr(64, seed=3)


@pytest.fixture(scope="module")
def hypersparse_csr():
    return block_sweep_csr(1, seed=3)


class TestStaticPlanner:
    def test_emits_registry_chain(self, dense_csr):
        plan = StaticPlanner().plan(dense_csr)
        assert plan.kernels == default_chain()
        assert plan.planner == "static"
        assert plan.ranking == ()
        assert plan.batch_hint is None and plan.max_wait_hint_seconds is None

    def test_explicit_chain(self, dense_csr):
        plan = StaticPlanner(("csr-scalar", "spaden")).plan(dense_csr)
        assert plan.kernels == ("csr-scalar", "spaden")

    def test_empty_chain_rejected(self, dense_csr):
        with pytest.raises(PlanError):
            StaticPlanner(()).plan(dense_csr)


class TestStructurePlannerRanking:
    def test_dense_blocks_keep_spaden_first(self, dense_csr):
        plan = StructurePlanner("L40").plan(dense_csr)
        assert plan.kernels[0] == "spaden"
        # the plan reorders the chain, never shortens it
        assert sorted(plan.kernels) == sorted(default_chain())

    def test_hypersparse_promotes_scalar(self, hypersparse_csr):
        plan = StructurePlanner("L40").plan(hypersparse_csr)
        assert plan.kernels[0] == "csr-scalar"

    def test_mixed_density_sweep_crossover(self):
        picks = {
            per_block: StructurePlanner("L40").plan(
                block_sweep_csr(per_block, seed=0)
            ).kernels[0]
            for per_block in (64, 32, 16, 8, 4, 2, 1)
        }
        for per_block in (64, 32, 16, 8):
            assert picks[per_block] == "spaden", picks
        for per_block in (4, 2, 1):
            assert picks[per_block] == "csr-scalar", picks

    def test_ranking_carries_evidence(self, dense_csr):
        plan = StructurePlanner("L40").plan(dense_csr)
        assert [entry.name for entry in plan.ranking] == list(plan.kernels)
        assert all(entry.predicted_seconds > 0 for entry in plan.ranking)
        assert plan.ranking[0].score == pytest.approx(1.0)
        assert plan.profile is not None and plan.profile.nnz == dense_csr.nnz

    def test_explain_mentions_every_kernel(self, dense_csr):
        text = StructurePlanner("L40").plan(dense_csr).explain()
        for name in default_chain():
            assert name in text
        assert "structure:" in text and "hints:" in text

    def test_plan_walks_like_a_chain(self, dense_csr):
        plan = StructurePlanner("L40").plan(dense_csr)
        assert isinstance(plan, ExecutionPlan)
        assert tuple(plan.kernels) == plan.kernels  # duck-type contract


class TestCapabilityFilter:
    def test_simulated_mode_drops_non_simulating_kernels(self, dense_csr):
        plan = StructurePlanner("L40", mode="simulated").plan(dense_csr)
        assert "cusparse-csr" not in plan.kernels
        assert set(plan.kernels) == {"spaden", "spaden-no-tc", "csr-scalar"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(PlanError):
            StructurePlanner("L40", mode="quantum")

    def test_unknown_candidate_rejected(self):
        with pytest.raises(PlanError):
            StructurePlanner("L40", candidates=("spaden", "no-such-kernel"))

    def test_candidates_restrict_pool(self, dense_csr):
        plan = StructurePlanner(
            "L40", candidates=("csr-scalar", "spaden")
        ).plan(dense_csr)
        assert set(plan.kernels) == {"spaden", "csr-scalar"}

    def test_filter_that_empties_pool_rejected(self):
        with pytest.raises(PlanError):
            StructurePlanner(
                "L40", mode="simulated", candidates=("cusparse-csr",)
            )


class TestFeedback:
    def test_observations_demote_a_slow_kernel(self, dense_csr):
        planner = StructurePlanner("L40")
        assert planner.plan(dense_csr).kernels[0] == "spaden"
        for _ in range(20):
            planner.observe("spaden", 5e-3)
            planner.observe("csr-scalar", 1e-5)
        plan = planner.plan(dense_csr)
        # the slow evidence sinks spaden to the bottom; fast evidence
        # lifts csr-scalar above it (unobserved kernels keep their
        # model-only scores and may still outrank both)
        assert plan.kernels[0] != "spaden"
        assert plan.kernels[-1] == "spaden"
        assert plan.kernels.index("csr-scalar") < plan.kernels.index("spaden")
        spaden = next(e for e in plan.ranking if e.name == "spaden")
        assert spaden.observations == 20
        assert spaden.observed_seconds == pytest.approx(5e-3, rel=0.2)

    def test_observe_normalizes_per_vector(self):
        planner = StructurePlanner("L40")
        planner.observe("spaden", 8e-3, vectors=8)
        assert planner.observed()["spaden"][0] == pytest.approx(1e-3)

    def test_negative_observation_rejected(self):
        with pytest.raises(PlanError):
            StructurePlanner("L40").observe("spaden", -1.0)

    def test_model_never_fully_silenced(self, dense_csr):
        # even unbounded evidence keeps MAX_FEEDBACK_WEIGHT < 1, so the
        # score still moves when the model prediction changes
        planner = StructurePlanner("L40")
        for _ in range(1000):
            planner.observe("spaden", 1e-3)
        plan = planner.plan(dense_csr)
        spaden = next(e for e in plan.ranking if e.name == "spaden")
        assert spaden.observations == 1000
        assert np.isfinite(spaden.score)


class TestPlannerMetrics:
    def test_decisions_counted(self, dense_csr):
        planner = StructurePlanner("L40")
        planner.plan(dense_csr)
        assert (
            _counter(
                "planner_decisions_total",
                {"planner": "structure", "kernel": "spaden"},
            )
            == 1
        )

    def test_rank_flip_counted(self, dense_csr):
        planner = StructurePlanner("L40")
        planner.plan(dense_csr)
        assert _counter("planner_rank_flips_total", {"planner": "structure"}) == 0
        for _ in range(20):
            planner.observe("spaden", 5e-3)
            planner.observe("csr-scalar", 1e-5)
        planner.plan(dense_csr)
        assert _counter("planner_rank_flips_total", {"planner": "structure"}) == 1


class TestThreadSafety:
    def test_concurrent_plan_and_observe(self, dense_csr, hypersparse_csr):
        planner = StructurePlanner("L40")
        matrices = [dense_csr, hypersparse_csr]
        errors = []
        barrier = threading.Barrier(8)

        def worker(index):
            try:
                barrier.wait()
                for i in range(40):
                    plan = planner.plan(matrices[(index + i) % 2])
                    assert sorted(plan.kernels) == sorted(default_chain())
                    planner.observe(plan.kernels[0], 1e-5 * (i + 1))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # profile cache holds exactly the two distinct matrices
        assert len(planner._profiles) == 2

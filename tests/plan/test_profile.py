"""Structure-profile tests: exact block statistics from CSR, one pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.plan.profile import (
    BLOCK_NNZ_BUCKETS,
    StructureProfile,
    compute_structure_profile,
    matrix_fingerprint,
)


def csr_from_cells(shape, cells):
    """Build a CSRMatrix from explicit (row, col) cells, value 1.0."""
    rows = np.array([r for r, _ in cells], dtype=np.int32)
    cols = np.array([c for _, c in cells], dtype=np.int32)
    vals = np.ones(len(cells), dtype=np.float32)
    return CSRMatrix.from_coo(COOMatrix(shape, rows, cols, vals))


@pytest.fixture
def two_block_csr():
    """16x16: block (0,0) completely full, block (1,1) holding 3 nnz."""
    cells = [(r, c) for r in range(8) for c in range(8)]
    cells += [(8, 9), (10, 12), (15, 15)]
    return csr_from_cells((16, 16), cells)


class TestComputeStructureProfile:
    def test_block_statistics_exact(self, two_block_csr):
        prof = compute_structure_profile(two_block_csr)
        assert (prof.nrows, prof.ncols, prof.nnz) == (16, 16, 67)
        assert prof.fill_ratio == pytest.approx(67 / 256)
        assert prof.nonzero_blocks == 2
        assert prof.nonzero_block_rows == 2
        assert prof.mean_block_nnz == pytest.approx(33.5)
        assert prof.mean_block_density == pytest.approx(33.5 / 64)

    def test_histogram_buckets(self, two_block_csr):
        prof = compute_structure_profile(two_block_csr)
        # buckets bounded by BLOCK_NNZ_BUCKETS: 3 nnz lands in the first
        # (<= 8), a full block in the last (57..64)
        assert len(prof.block_nnz_hist) == len(BLOCK_NNZ_BUCKETS)
        assert prof.block_nnz_hist[0] == 1
        assert prof.block_nnz_hist[-1] == 1
        assert sum(prof.block_nnz_hist) == prof.nonzero_blocks

    def test_dense_block_fraction(self, two_block_csr):
        prof = compute_structure_profile(two_block_csr)
        # one of the two blocks is >= half full (>= 33 nnz)
        assert prof.dense_block_fraction == pytest.approx(0.5)

    def test_paired_steps_both_rows_occupied(self, two_block_csr):
        # §4.3 pairs block-rows (0,1): each holds one block -> max(1,1)
        prof = compute_structure_profile(two_block_csr)
        assert prof.paired_steps == 1

    def test_paired_steps_odd_block_rows(self):
        # 24x8: blocks only in block-rows 0 and 2; pairs (0,1) and
        # (2,pad) each cost max(1,0) = 1
        cells = [(0, 0), (16, 0)]
        prof = compute_structure_profile(csr_from_cells((24, 8), cells))
        assert prof.paired_steps == 2

    def test_row_statistics_match_numpy(self, two_block_csr):
        prof = compute_structure_profile(two_block_csr)
        lengths = np.diff(two_block_csr.row_pointers)
        assert prof.row_nnz_min == int(lengths.min())
        assert prof.row_nnz_max == int(lengths.max())
        assert prof.row_nnz_mean == pytest.approx(float(lengths.mean()))
        assert prof.row_nnz_std == pytest.approx(float(lengths.std()))
        assert prof.empty_rows == int((lengths == 0).sum())

    def test_empty_matrix_profile(self):
        csr = CSRMatrix.from_coo(
            COOMatrix(
                (8, 8),
                np.array([], dtype=np.int32),
                np.array([], dtype=np.int32),
                np.array([], dtype=np.float32),
            )
        )
        prof = compute_structure_profile(csr)
        assert prof.nnz == 0
        assert prof.nonzero_blocks == 0
        assert prof.paired_steps == 0
        assert prof.empty_rows == 8
        assert all(count == 0 for count in prof.block_nnz_hist)

    def test_fingerprint_attached_when_given(self, two_block_csr):
        fp = matrix_fingerprint(two_block_csr)
        prof = compute_structure_profile(two_block_csr, fingerprint=fp)
        assert prof.fingerprint == fp
        assert compute_structure_profile(two_block_csr).fingerprint is None

    def test_as_dict_round_trip_fields(self, two_block_csr):
        prof = compute_structure_profile(two_block_csr)
        doc = prof.as_dict()
        assert doc["nnz"] == 67
        assert doc["block_nnz_hist"] == list(prof.block_nnz_hist)
        assert doc["dense_block_fraction"] == pytest.approx(0.5)

    def test_profile_is_frozen(self, two_block_csr):
        prof = compute_structure_profile(two_block_csr)
        assert isinstance(prof, StructureProfile)
        with pytest.raises(AttributeError):
            prof.nnz = 0


class TestFingerprint:
    def test_content_addressed(self, two_block_csr):
        same = csr_from_cells(
            (16, 16),
            [(r, c) for r in range(8) for c in range(8)]
            + [(8, 9), (10, 12), (15, 15)],
        )
        assert matrix_fingerprint(two_block_csr) == matrix_fingerprint(same)

    def test_value_change_changes_fingerprint(self, two_block_csr):
        other = two_block_csr.tocoo()
        other.values[0] = 2.0
        changed = CSRMatrix.from_coo(other)
        assert matrix_fingerprint(two_block_csr) != matrix_fingerprint(changed)

    def test_engine_reexport_is_canonical(self):
        from repro.engine.cache import matrix_fingerprint as engine_fingerprint

        assert engine_fingerprint is matrix_fingerprint


class TestCSRAccessor:
    def test_structure_profile_method(self, two_block_csr):
        prof = two_block_csr.structure_profile()
        assert prof == compute_structure_profile(
            two_block_csr, fingerprint=matrix_fingerprint(two_block_csr)
        )
        assert prof.fingerprint == matrix_fingerprint(two_block_csr)


class TestValidation:
    def test_bad_row_pointers_rejected(self):
        class Fake:
            shape = (4, 4)
            nnz = 1
            row_pointers = np.array([0, 1], dtype=np.int64)  # wrong length
            col_indices = np.array([0], dtype=np.int32)

        with pytest.raises(PlanError):
            compute_structure_profile(Fake())

    def test_bad_shape_rejected(self):
        class Fake:
            shape = (0, 4)
            nnz = 0
            row_pointers = np.array([0], dtype=np.int64)
            col_indices = np.array([], dtype=np.int32)

        with pytest.raises(PlanError):
            compute_structure_profile(Fake())

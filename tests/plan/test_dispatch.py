"""Planner wiring through the dispatch consumers: engine, robustness, serve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.plan import StructurePlanner
from repro.robustness import dispatch_spmv
from repro.serve import ServeFrontend
from repro.serve.policy import FlushPolicy
from repro.bench.plan import block_sweep_csr


class CountingPlanner(StructurePlanner):
    """StructurePlanner that counts plan() calls (co-caching probe)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan_calls = 0

    def plan(self, csr, *, fingerprint=None):
        self.plan_calls += 1
        return super().plan(csr, fingerprint=fingerprint)


@pytest.fixture
def problem():
    csr = block_sweep_csr(32, nrows=128, ncols=128, nnz_target=512, seed=6)
    rng = np.random.default_rng(7)
    x = rng.standard_normal(csr.ncols).astype(np.float32)
    return csr, x


class TestEnginePlanner:
    def test_results_stay_correct(self, problem):
        csr, x = problem
        engine = SpMVEngine(planner=StructurePlanner("L40"))
        y = engine.spmv(csr, x)
        assert np.allclose(y, csr.matvec(x), rtol=1e-3, atol=1e-2)

    def test_plan_cached_next_to_operand(self, problem):
        csr, x = problem
        planner = CountingPlanner("L40")
        engine = SpMVEngine(planner=planner)
        engine.spmv(csr, x)
        engine.spmv(csr, x)
        engine.spmv_many([(csr, x), (csr, x)])
        # one plan for one matrix content, however many requests
        assert planner.plan_calls == 1

    def test_invalidation_drops_plan_with_operand(self, problem):
        csr, x = problem
        planner = CountingPlanner("L40")
        engine = SpMVEngine(planner=planner)
        engine.spmv(csr, x)
        assert planner.plan_calls == 1
        from repro.engine import matrix_fingerprint

        fingerprint = matrix_fingerprint(csr)
        engine._invalidate_operand(engine.kernel_name, fingerprint)
        engine.spmv(csr, x)
        assert planner.plan_calls == 2

    def test_latency_feedback_reaches_planner(self, problem):
        csr, x = problem
        planner = StructurePlanner("L40")
        engine = SpMVEngine(planner=planner)
        engine.spmv(csr, x)
        observed = planner.observed()
        assert observed, "engine must feed run latency back to the planner"
        (kernel, (seconds, count)), = observed.items()
        assert count == 1 and seconds >= 0

    def test_per_call_override_not_co_cached(self, problem):
        csr, x = problem
        override = CountingPlanner("L40")
        engine = SpMVEngine()  # no engine-level planner
        baseline = engine.spmv(csr, x)
        engine.spmv_many([(csr, x)], planner=override)
        engine.spmv_many([(csr, x)], planner=override)
        assert override.plan_calls == 2  # override plans are not cached
        # and the override path computes the same numbers
        assert np.array_equal(
            engine.spmv_many([(csr, x)], planner=override)[0], baseline
        )


class TestRobustnessPlanner:
    def test_dispatch_accepts_planner(self, problem):
        csr, x = problem
        result = dispatch_spmv(csr, x, planner=StructurePlanner("L40"))
        assert np.allclose(result.y, csr.matvec(x), rtol=1e-3, atol=1e-2)
        assert not result.degraded

    def test_planner_order_drives_attempts(self, problem):
        csr, x = problem
        planner = StructurePlanner("L40", candidates=("csr-scalar",))
        result = dispatch_spmv(csr, x, planner=planner)
        assert result.kernel == "csr-scalar"
        assert result.attempts == ["csr-scalar"]


class TestServePlanner:
    def test_plan_hints_specialize_flush_policy(self):
        dense = block_sweep_csr(64, nrows=128, ncols=128, nnz_target=1024, seed=8)
        sparse = block_sweep_csr(1, nrows=128, ncols=128, nnz_target=256, seed=8)
        with ServeFrontend(planner=StructurePlanner("L40")) as frontend:
            frontend.register_matrix("dense", dense)
            frontend.register_matrix("sparse", sparse)
            dense_policy = frontend._policies["dense"]
            sparse_policy = frontend._policies["sparse"]
        assert dense_policy.max_batch == 64
        assert sparse_policy.max_batch == 16
        assert sparse_policy.max_wait_seconds < dense_policy.max_wait_seconds

    def test_no_planner_keeps_default_policy(self):
        csr = block_sweep_csr(8, nrows=64, ncols=64, nnz_target=128, seed=9)
        policy = FlushPolicy(max_batch=5, max_wait_seconds=0.002)
        with ServeFrontend(flush_policy=policy) as frontend:
            frontend.register_matrix("m", csr)
            assert frontend._policies["m"] == policy

    def test_tenant_override_routes_through_engine(self, problem):
        csr, x = problem
        override = StructurePlanner("L40")
        with ServeFrontend() as frontend:
            frontend.register_matrix("m", csr)
            frontend.set_tenant_planner("vip", override)
            assert frontend.tenant_planner("vip") is override
            plain = frontend.submit("m", x, tenant="default")
            routed = frontend.submit("m", x, tenant="vip")
            y_plain = plain.result(timeout=30)
            y_routed = routed.result(timeout=30)
        assert np.array_equal(y_plain, y_routed)
        # the override collected feedback, proving its path was taken
        assert override.observed()

    def test_override_removal(self, problem):
        csr, _x = problem
        override = StructurePlanner("L40")
        with ServeFrontend() as frontend:
            frontend.register_matrix("m", csr)
            frontend.set_tenant_planner("t", override)
            frontend.set_tenant_planner("t", None)
            assert frontend.tenant_planner("t") is None


class TestFlushPolicyHints:
    def test_with_hints_applies_both(self):
        policy = FlushPolicy().with_hints(max_batch=64, max_wait_seconds=0.02)
        assert policy.max_batch == 64
        assert policy.max_wait_seconds == pytest.approx(0.02)

    def test_none_hints_keep_fields(self):
        base = FlushPolicy(max_batch=7, max_wait_seconds=0.003)
        assert base.with_hints() is base
        assert base.with_hints(max_batch=None).max_batch == 7

    def test_hints_revalidate(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            FlushPolicy().with_hints(max_batch=0)

"""Cross-format round-trip properties: every format preserves the matrix."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats import available_formats, convert
from repro.formats.coo import COOMatrix

from tests.conftest import make_random_dense


@st.composite
def dense_matrices(draw):
    nrows = draw(st.integers(1, 40))
    ncols = draw(st.integers(1, 40))
    seed = draw(st.integers(0, 2**31 - 1))
    density = draw(st.sampled_from([0.0, 0.05, 0.2, 0.6]))
    rng = np.random.default_rng(seed)
    return make_random_dense(rng, nrows, ncols, density)


@pytest.mark.parametrize("name", sorted(set(available_formats())))
def test_roundtrip_small(name, small_dense):
    coo = COOMatrix.from_dense(small_dense)
    m = convert(coo, name)
    assert np.allclose(m.todense(), small_dense, rtol=1e-3, atol=1e-6)
    assert m.nnz == coo.nnz


@pytest.mark.parametrize("name", sorted(set(available_formats())))
def test_matvec_matches_dense(name, small_dense, x_small):
    coo = COOMatrix.from_dense(small_dense)
    m = convert(coo, name)
    ref = small_dense.astype(np.float64) @ x_small.astype(np.float64)
    got = m.matvec(x_small)
    # bitmap formats store fp16 values; inputs are fp16-exact so only
    # accumulation order differs
    assert np.allclose(got, ref, rtol=1e-4, atol=1e-3)


@settings(max_examples=25, deadline=None)
@given(dense_matrices())
def test_all_formats_preserve_dense(dense):
    coo = COOMatrix.from_dense(dense)
    for name in available_formats():
        m = convert(coo, name)
        assert np.allclose(m.todense(), dense, rtol=1e-3, atol=1e-6), name


@settings(max_examples=25, deadline=None)
@given(dense_matrices())
def test_conversions_commute_through_any_format(dense):
    """coo -> F -> coo is the identity on canonical COO, for every F."""
    coo = COOMatrix.from_dense(dense)
    for name in available_formats():
        back = convert(coo, name).tocoo()
        assert back.shape == coo.shape
        assert np.array_equal(back.rows, coo.rows), name
        assert np.array_equal(back.cols, coo.cols), name
        assert np.allclose(back.values, coo.values, rtol=1e-3), name


def test_empty_matrix_supported_everywhere():
    coo = COOMatrix((7, 9), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
    x = np.ones(9, dtype=np.float32)
    for name in available_formats():
        m = convert(coo, name)
        assert m.nnz == 0
        assert np.array_equal(m.matvec(x), np.zeros(7, dtype=np.float32)), name

"""COO-specific behaviour: canonicalization, duplicates, validation."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.coo import COOMatrix


class TestCanonicalization:
    def test_duplicates_are_summed(self):
        coo = COOMatrix(
            (3, 3),
            np.array([0, 0, 1], dtype=np.int32),
            np.array([1, 1, 2], dtype=np.int32),
            np.array([2.0, 3.0, 4.0], dtype=np.float32),
        )
        assert coo.nnz == 2
        assert coo.todense()[0, 1] == 5.0

    def test_explicit_zeros_dropped(self):
        coo = COOMatrix(
            (2, 2),
            np.array([0, 1], dtype=np.int32),
            np.array([0, 1], dtype=np.int32),
            np.array([0.0, 1.0], dtype=np.float32),
        )
        assert coo.nnz == 1

    def test_cancelling_duplicates_dropped(self):
        coo = COOMatrix(
            (2, 2),
            np.array([0, 0], dtype=np.int32),
            np.array([0, 0], dtype=np.int32),
            np.array([2.0, -2.0], dtype=np.float32),
        )
        assert coo.nnz == 0

    def test_entries_sorted_row_major(self, small_coo):
        keys = small_coo.rows.astype(np.int64) * small_coo.ncols + small_coo.cols
        assert (np.diff(keys) > 0).all()


class TestValidation:
    def test_row_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([2], np.int32), np.array([0], np.int32), np.array([1.0], np.float32))

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([0], np.int32), np.array([5], np.int32), np.array([1.0], np.float32))

    def test_negative_index(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([-1], np.int32), np.array([0], np.int32), np.array([1.0], np.float32))

    def test_length_mismatch(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), np.array([0], np.int32), np.array([0, 1], np.int32), np.array([1.0], np.float32))


class TestOperations:
    def test_transpose(self, small_coo, small_dense):
        assert np.array_equal(small_coo.transpose().todense(), small_dense.T)

    def test_row_counts(self, small_coo, small_dense):
        assert np.array_equal(small_coo.row_counts(), (small_dense != 0).sum(axis=1))

    def test_density(self, small_coo, small_dense):
        expected = (small_dense != 0).sum() / small_dense.size
        assert small_coo.density == pytest.approx(expected)

    def test_matvec_shape_check(self, small_coo):
        with pytest.raises(FormatError):
            small_coo.matvec(np.ones(small_coo.ncols + 1))

"""Failure injection: every corrupted storage array must be rejected.

A format whose validator misses corruption turns bad data into silent
wrong answers downstream; these tests corrupt each array of the central
formats one way at a time and assert construction fails loudly.
"""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.bsr import BSRMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.sell import SELLMatrix

from tests.conftest import make_random_dense


@pytest.fixture
def clean(rng):
    dense = make_random_dense(rng, 40, 40, 0.2)
    coo = COOMatrix.from_dense(dense)
    return {
        "coo": coo,
        "csr": CSRMatrix.from_coo(coo),
        "bsr": BSRMatrix.from_coo(coo),
        "bitbsr": BitBSRMatrix.from_coo(coo),
        "sell": SELLMatrix.from_coo(coo, c=8, sigma=16),
    }


class TestBitBSRCorruption:
    def test_truncated_values(self, clean):
        b = clean["bitbsr"]
        with pytest.raises(FormatError):
            BitBSRMatrix(b.shape, b.block_row_pointers, b.block_cols, b.bitmaps, b.values[:-1])

    def test_extra_values(self, clean):
        b = clean["bitbsr"]
        padded = np.concatenate([b.values, b.values[:1]])
        with pytest.raises(FormatError):
            BitBSRMatrix(b.shape, b.block_row_pointers, b.block_cols, b.bitmaps, padded)

    def test_zeroed_bitmap(self, clean):
        b = clean["bitbsr"]
        bad = b.bitmaps.copy()
        bad[0] = 0
        with pytest.raises(FormatError):
            BitBSRMatrix(b.shape, b.block_row_pointers, b.block_cols, bad, b.values)

    def test_flipped_bit_changes_count(self, clean):
        b = clean["bitbsr"]
        bad = b.bitmaps.copy()
        bad[0] ^= np.uint64(1) << np.uint64(int(np.log2(int(bad[0]) & -int(bad[0]))) + 1 & 63)
        # flipping any bit breaks popcount-vs-values agreement
        if int(np.diff(b.block_offsets).sum()) == b.values.size:
            with pytest.raises(FormatError):
                BitBSRMatrix(b.shape, b.block_row_pointers, b.block_cols, bad, b.values)

    def test_pointer_truncation(self, clean):
        b = clean["bitbsr"]
        with pytest.raises(FormatError):
            BitBSRMatrix(b.shape, b.block_row_pointers[:-1], b.block_cols, b.bitmaps, b.values)

    def test_decreasing_pointers(self, clean):
        b = clean["bitbsr"]
        bad = b.block_row_pointers.copy()
        if bad.size > 2:
            bad[1], bad[2] = bad[2], bad[1]
            if (np.diff(bad) < 0).any():
                with pytest.raises(FormatError):
                    BitBSRMatrix(b.shape, bad, b.block_cols, b.bitmaps, b.values)

    def test_column_out_of_grid(self, clean):
        b = clean["bitbsr"]
        bad = b.block_cols.copy()
        bad[0] = b.block_cols_count
        with pytest.raises(FormatError):
            BitBSRMatrix(b.shape, b.block_row_pointers, bad, b.bitmaps, b.values)


class TestCSRCorruption:
    def test_swapped_pointer_pair(self, clean):
        c = clean["csr"]
        bad = c.row_pointers.copy()
        bad[1] = bad[2] + 1
        if (np.diff(bad) < 0).any():
            with pytest.raises(FormatError):
                CSRMatrix(c.shape, bad, c.col_indices, c.values)

    def test_negative_column(self, clean):
        c = clean["csr"]
        bad = c.col_indices.copy()
        bad[0] = -1
        with pytest.raises(FormatError):
            CSRMatrix(c.shape, c.row_pointers, bad, c.values)

    def test_value_length_mismatch(self, clean):
        c = clean["csr"]
        with pytest.raises(FormatError):
            CSRMatrix(c.shape, c.row_pointers, c.col_indices, c.values[:-1])


class TestBSRCorruption:
    def test_wrong_block_shape(self, clean):
        b = clean["bsr"]
        with pytest.raises(FormatError):
            BSRMatrix(b.shape, b.block_row_pointers, b.block_cols, b.blocks[:, :4, :4])

    def test_block_count_mismatch(self, clean):
        b = clean["bsr"]
        with pytest.raises(FormatError):
            BSRMatrix(b.shape, b.block_row_pointers, b.block_cols[:-1], b.blocks)


class TestSELLCorruption:
    def test_broken_permutation(self, clean):
        s = clean["sell"]
        bad = s.permutation.copy()
        bad[0] = bad[1]
        with pytest.raises(FormatError):
            SELLMatrix(s.shape, bad, s.slice_pointers, s.slice_widths, s.col_indices, s.values, c=s.c)

    def test_grid_width_mismatch(self, clean):
        s = clean["sell"]
        with pytest.raises(FormatError):
            SELLMatrix(
                s.shape, s.permutation, s.slice_pointers, s.slice_widths,
                s.col_indices[:-1], s.values[:-1], c=s.c,
            )

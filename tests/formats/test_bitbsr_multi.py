"""Generalized bitmap-block format tests (2x2 through 16x16)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.bitbsr_multi import GenericBitBSRMatrix
from repro.formats.coo import COOMatrix

from tests.conftest import make_random_dense


class TestGenericBitBSR:
    @pytest.mark.parametrize("block_dim", [2, 3, 4, 8, 11, 16])
    def test_roundtrip(self, rng, block_dim):
        dense = make_random_dense(rng, 45, 37, 0.2)
        m = GenericBitBSRMatrix.from_coo(COOMatrix.from_dense(dense), block_dim=block_dim)
        assert np.allclose(m.todense(), dense, rtol=1e-3)
        assert m.nnz == int(np.count_nonzero(dense))

    @pytest.mark.parametrize("block_dim", [4, 8, 16])
    def test_matvec(self, rng, block_dim):
        dense = make_random_dense(rng, 40, 40, 0.25)
        m = GenericBitBSRMatrix.from_coo(COOMatrix.from_dense(dense), block_dim=block_dim)
        x = np.ones(40, dtype=np.float32)
        ref = dense.astype(np.float64) @ x.astype(np.float64)
        assert np.allclose(m.matvec(x), ref, rtol=1e-3, atol=1e-2)

    def test_dim8_matches_specialized_bitbsr(self, rng):
        """At d=8 the generic format must agree with the paper's bitBSR
        bit for bit."""
        dense = make_random_dense(rng, 48, 48, 0.2)
        coo = COOMatrix.from_dense(dense)
        generic = GenericBitBSRMatrix.from_coo(coo, block_dim=8)
        special = BitBSRMatrix.from_coo(coo)
        assert np.array_equal(generic.bitmaps[:, 0], special.bitmaps)
        assert np.array_equal(generic.block_cols, special.block_cols)
        assert np.array_equal(generic.values, special.values)
        assert np.array_equal(generic.block_offsets, special.block_offsets)

    def test_word_counts(self, rng):
        dense = make_random_dense(rng, 32, 32, 0.3)
        coo = COOMatrix.from_dense(dense)
        assert GenericBitBSRMatrix.from_coo(coo, block_dim=4).words == 1
        assert GenericBitBSRMatrix.from_coo(coo, block_dim=8).words == 1
        assert GenericBitBSRMatrix.from_coo(coo, block_dim=16).words == 4

    def test_memory_tradeoff_matches_ablation(self, rng):
        """Small blocks pay metadata, big blocks only bitmap bits; the
        runnable formats agree with core.ablation's cost model ordering."""
        from repro.matrices.random import random_banded

        coo = random_banded(256, 24, fill=0.5, seed=9)
        sizes = {
            d: GenericBitBSRMatrix.from_coo(coo, block_dim=d).nbytes
            for d in (2, 4, 8, 16)
        }
        assert sizes[2] > sizes[8]  # per-block overhead dominates at 2x2

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([2, 4, 8, 16]))
    def test_property_roundtrip(self, seed, block_dim):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, int(rng.integers(1, 50)), int(rng.integers(1, 50)), 0.25)
        m = GenericBitBSRMatrix.from_coo(COOMatrix.from_dense(dense), block_dim=block_dim)
        assert np.allclose(m.todense(), dense, rtol=1e-3)

    def test_validation(self, small_coo):
        with pytest.raises(FormatError):
            GenericBitBSRMatrix.from_coo(small_coo, block_dim=0)
        with pytest.raises(FormatError):
            GenericBitBSRMatrix.from_coo(small_coo, block_dim=65)

    def test_registered(self, small_coo, small_dense):
        from repro.formats import convert

        m = convert(small_coo, "bitbsr-generic")
        assert np.allclose(m.todense(), small_dense, rtol=1e-3)

"""Footprint reporting and MatrixMarket I/O tests."""

import io

import numpy as np
import pytest

from repro.errors import FormatError
from repro.formats import convert, format_footprint
from repro.formats.memory import compare_footprints
from repro.formats.mmio import read_matrix_market, write_matrix_market


class TestFootprint:
    def test_report_fields_sum_to_total(self, small_coo):
        report = format_footprint(small_coo)
        assert report.total_bytes == sum(report.breakdown().values())
        assert report.nnz == small_coo.nnz
        assert report.bytes_per_nnz == pytest.approx(report.total_bytes / small_coo.nnz)

    def test_compare_footprints_convention(self, small_coo):
        """result[other] > 1 means 'other' uses more memory than baseline
        — the paper's 'Spaden saves 2.83x over CSR' convention."""
        reports = [
            format_footprint(convert(small_coo, name)) for name in ("bitbsr", "csr", "bsr")
        ]
        savings = compare_footprints(reports, "bitbsr")
        assert savings["csr"] > 1
        assert savings["bsr"] > savings["csr"]

    def test_compare_unknown_baseline(self, small_coo):
        with pytest.raises(KeyError):
            compare_footprints([format_footprint(small_coo)], "csr")

    def test_str_rendering(self, small_coo):
        text = str(format_footprint(small_coo))
        assert "coo" in text and "B/nnz" in text


class TestMatrixMarket:
    def test_roundtrip(self, small_coo, tmp_path):
        path = tmp_path / "m.mtx"
        write_matrix_market(small_coo, path, comment="roundtrip test")
        back = read_matrix_market(path)
        assert np.allclose(back.todense(), small_coo.todense(), rtol=1e-5)

    def test_symmetric_expansion(self):
        text = """%%MatrixMarket matrix coordinate real symmetric
3 3 2
1 1 2.0
3 1 5.0
"""
        m = read_matrix_market(io.StringIO(text))
        d = m.todense()
        assert d[0, 0] == 2.0
        assert d[2, 0] == 5.0 and d[0, 2] == 5.0
        assert m.nnz == 3

    def test_pattern_values_are_unit(self):
        text = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
"""
        m = read_matrix_market(io.StringIO(text))
        assert np.array_equal(np.sort(m.values), [1.0, 1.0])

    def test_comment_lines_skipped(self):
        text = """%%MatrixMarket matrix coordinate real general
% a comment
% another
2 2 1
1 1 3.5
"""
        m = read_matrix_market(io.StringIO(text))
        assert m.todense()[0, 0] == pytest.approx(3.5)

    @pytest.mark.parametrize(
        "header",
        [
            "not a header\n1 1 0\n",
            "%%MatrixMarket matrix array real general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
            "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
        ],
    )
    def test_rejects_unsupported(self, header):
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(header))

    def test_rejects_count_mismatch(self):
        text = """%%MatrixMarket matrix coordinate real general
2 2 3
1 1 1.0
"""
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))

    def test_rejects_missing_value_column(self):
        text = """%%MatrixMarket matrix coordinate real general
2 2 1
1 1
"""
        with pytest.raises(FormatError):
            read_matrix_market(io.StringIO(text))

"""CSR-specific behaviour (the Algorithm 1 substrate)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import FormatError
from repro.formats.csr import CSRMatrix
from repro.formats.convert import from_scipy, to_scipy


class TestConstruction:
    def test_pointer_length_enforced(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1]), np.array([0], np.int32), np.array([1.0], np.float32))

    def test_pointer_monotonicity(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0, 1], np.int32), np.array([1.0, 1.0], np.float32))

    def test_endpoint_consistency(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1, 3]), np.array([0, 1], np.int32), np.array([1.0, 1.0], np.float32))

    def test_column_bounds(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), np.array([0, 1, 1]), np.array([7], np.int32), np.array([1.0], np.float32))


class TestAgainstScipy:
    def test_matvec_matches_scipy(self, small_coo, x_small):
        csr = CSRMatrix.from_coo(small_coo)
        s = to_scipy(csr)
        assert np.allclose(csr.matvec(x_small), s @ x_small, rtol=1e-5, atol=1e-5)

    def test_from_scipy_roundtrip(self, small_dense):
        s = sp.csr_matrix(small_dense)
        csr = from_scipy(s, "csr")
        assert np.allclose(csr.todense(), small_dense)
        back = to_scipy(csr)
        assert (back != s).nnz == 0

    def test_row_lengths(self, small_coo, small_dense):
        csr = CSRMatrix.from_coo(small_coo)
        assert np.array_equal(csr.row_lengths(), (small_dense != 0).sum(axis=1))

    def test_row_slice(self, small_coo, small_dense):
        csr = CSRMatrix.from_coo(small_coo)
        cols, vals = csr.row_slice(3)
        expected_cols = np.flatnonzero(small_dense[3])
        assert np.array_equal(cols, expected_cols)
        assert np.allclose(vals, small_dense[3, expected_cols])


class TestMemory:
    def test_device_bytes_are_8ish_per_nnz(self, medium_coo):
        csr = CSRMatrix.from_coo(medium_coo)
        # 8 B/nnz for indices+values plus the pointer array (Fig. 10b: 8.06)
        expected = csr.nnz * 8 + (csr.nrows + 1) * 4
        assert csr.nbytes == expected

"""bitBSR invariants — the paper's format (§4.2, Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.constants import BLOCK_SIZE
from repro.errors import FormatError
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.bsr import BSRMatrix
from repro.formats.coo import COOMatrix
from repro.utils.bitops import popcount

from tests.conftest import make_random_dense


def bit_of(rng, shape=(40, 56), density=0.2):
    return BitBSRMatrix.from_coo(COOMatrix.from_dense(make_random_dense(rng, *shape, density)))


class TestStructuralInvariants:
    def test_popcount_equals_nnz(self, rng):
        bit = bit_of(rng)
        assert int(popcount(bit.bitmaps).sum()) == bit.nnz

    def test_offsets_are_exclusive_scan_of_counts(self, rng):
        bit = bit_of(rng)
        counts = popcount(bit.bitmaps).astype(np.int64)
        assert np.array_equal(np.diff(bit.block_offsets), counts)
        assert bit.block_offsets[0] == 0
        assert bit.block_offsets[-1] == bit.nnz

    def test_no_empty_blocks_stored(self, rng):
        bit = bit_of(rng)
        assert (bit.bitmaps != 0).all()

    def test_block_cols_sorted_within_rows(self, rng):
        bit = bit_of(rng)
        for row in range(bit.block_rows_count):
            lo, hi = bit.block_row_pointers[row], bit.block_row_pointers[row + 1]
            cols = bit.block_cols[lo:hi]
            assert (np.diff(cols) > 0).all()

    def test_values_packed_in_bit_order(self, rng, small_dense):
        bit = BitBSRMatrix.from_coo(COOMatrix.from_dense(small_dense), value_dtype=np.float32)
        dense = bit.tobsr().blocks
        for b in range(bit.nblocks):
            lo, hi = bit.block_offsets[b], bit.block_offsets[b + 1]
            flat = dense[b].reshape(-1)
            assert np.array_equal(bit.values[lo:hi], flat[flat != 0])

    def test_compression_rate_bounds(self, rng):
        bit = bit_of(rng)
        rate = bit.compression_rate_vs_coo()
        assert (rate >= 1).all() and (rate <= BLOCK_SIZE).all()


class TestConversions:
    def test_from_bsr_equals_from_coo(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        via_coo = BitBSRMatrix.from_coo(coo)
        via_bsr = BitBSRMatrix.from_bsr(BSRMatrix.from_coo(coo))
        assert np.array_equal(via_coo.bitmaps, via_bsr.bitmaps)
        assert np.array_equal(via_coo.block_cols, via_bsr.block_cols)
        assert np.array_equal(via_coo.values, via_bsr.values)

    def test_tobsr_decodes_exactly(self, small_dense):
        coo = COOMatrix.from_dense(small_dense)
        bit = BitBSRMatrix.from_coo(coo, value_dtype=np.float32)
        assert np.allclose(bit.tobsr().todense(), small_dense)

    def test_entry_coordinates_in_storage_order(self, rng):
        bit = bit_of(rng)
        rows, cols = bit.entry_coordinates()
        assert rows.size == bit.nnz
        coo = bit.tocoo()
        assert coo.nnz == bit.nnz

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.sampled_from([0.02, 0.1, 0.5]))
    def test_dense_roundtrip_property(self, seed, density):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, 33, 25, density)
        bit = BitBSRMatrix.from_coo(COOMatrix.from_dense(dense), value_dtype=np.float32)
        assert np.allclose(bit.todense(), dense)


class TestValidation:
    def test_rejects_empty_bitmap(self):
        with pytest.raises(FormatError):
            BitBSRMatrix(
                (8, 8),
                np.array([0, 1]),
                np.array([0], np.int32),
                np.array([0], np.uint64),
                np.zeros(0, np.float16),
            )

    def test_rejects_count_mismatch(self):
        with pytest.raises(FormatError):
            BitBSRMatrix(
                (8, 8),
                np.array([0, 1]),
                np.array([0], np.int32),
                np.array([3], np.uint64),  # two bits set
                np.ones(1, np.float16),  # but one value
            )

    def test_rejects_bad_value_dtype(self):
        with pytest.raises(FormatError):
            BitBSRMatrix(
                (8, 8),
                np.array([0, 1]),
                np.array([0], np.int32),
                np.array([1], np.uint64),
                np.ones(1, np.float64),
                value_dtype=np.float64,
            )


class TestMemoryModel:
    def test_bytes_formula(self, rng):
        """2 B per nonzero + 16 B per block + pointers (Fig. 10b)."""
        bit = bit_of(rng)
        expected = (
            bit.nnz * 2
            + bit.nblocks * (8 + 4 + 4)
            + (bit.block_rows_count + 1) * 4
        )
        assert bit.nbytes == expected

    def test_fp16_halves_value_storage(self, small_coo):
        b16 = BitBSRMatrix.from_coo(small_coo, value_dtype=np.float16)
        b32 = BitBSRMatrix.from_coo(small_coo, value_dtype=np.float32)
        assert b32.nbytes - b16.nbytes == 2 * b16.nnz

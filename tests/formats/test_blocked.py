"""BSR / bitCOO / ELL / HYB / DIA specific behaviour."""

import numpy as np
import pytest

from repro.constants import BLOCK_DIM
from repro.errors import FormatError
from repro.formats.bitcoo import BitCOOMatrix
from repro.formats.bsr import BSRMatrix
from repro.formats.coo import COOMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix

from tests.conftest import make_random_dense


class TestBSR:
    def test_block_grid_geometry(self, small_coo):
        bsr = BSRMatrix.from_coo(small_coo)
        assert bsr.block_rows_count == -(-small_coo.nrows // BLOCK_DIM)
        assert bsr.block_cols_count == -(-small_coo.ncols // BLOCK_DIM)

    def test_fill_ratio_counts_zero_padding(self, small_coo):
        bsr = BSRMatrix.from_coo(small_coo)
        assert bsr.fill_ratio == pytest.approx(bsr.nnz / (bsr.nblocks * 64))
        assert 0 < bsr.fill_ratio <= 1

    def test_blocks_match_dense_slices(self, small_dense):
        bsr = BSRMatrix.from_coo(COOMatrix.from_dense(small_dense))
        brow = bsr.block_row_of()
        padded = np.zeros((48, 56), dtype=np.float32)
        padded[:40] = small_dense
        for b in range(bsr.nblocks):
            r0, c0 = brow[b] * 8, bsr.block_cols[b] * 8
            assert np.array_equal(bsr.blocks[b], padded[r0 : r0 + 8, c0 : c0 + 8])

    def test_custom_block_dim(self, small_coo):
        bsr = BSRMatrix.from_coo(small_coo, block_dim=4)
        assert bsr.block_dim == 4
        assert np.allclose(bsr.todense(), small_coo.todense())

    def test_bsr_stores_zeros_its_weakness(self, rng):
        """The redundant zero storage bitBSR eliminates (§5.3)."""
        dense = make_random_dense(rng, 64, 64, 0.05)
        bsr = BSRMatrix.from_coo(COOMatrix.from_dense(dense))
        stored = bsr.nblocks * 64
        assert stored > 2 * bsr.nnz  # mostly padding at this sparsity


class TestBitCOO:
    def test_matches_bitbsr_semantics(self, small_coo, x_small):
        bc = BitCOOMatrix.from_coo(small_coo)
        assert np.allclose(bc.matvec(x_small), small_coo.matvec(x_small), rtol=1e-3, atol=1e-3)

    def test_tobitbsr_roundtrip(self, small_coo):
        bc = BitCOOMatrix.from_coo(small_coo)
        bit = bc.tobitbsr()
        assert bit.nnz == bc.nnz
        assert np.allclose(bit.todense(), small_coo.todense(), rtol=1e-3)

    def test_explicit_coordinates(self, small_coo):
        bc = BitCOOMatrix.from_coo(small_coo)
        assert bc.block_rows.size == bc.nblocks
        assert bc.nbytes > 0


class TestELL:
    def test_width_is_max_row_length(self, small_coo):
        ell = small_coo.convert("ell")
        assert ell.width == int(small_coo.row_counts().max())

    def test_padding_ratio(self, small_coo):
        ell = small_coo.convert("ell")
        expected = 1 - small_coo.nnz / (small_coo.nrows * ell.width)
        assert ell.padding_ratio == pytest.approx(expected)

    def test_rejects_nonzero_padding_values(self):
        with pytest.raises(FormatError):
            ELLMatrix((1, 4), np.array([[-1]], np.int32), np.array([[2.0]], np.float32))


class TestHYB:
    def test_split_preserves_total(self, medium_coo):
        hyb = medium_coo.convert("hyb")
        assert hyb.ell.nnz + hyb.tail.nnz == medium_coo.nnz

    def test_custom_width(self, medium_coo):
        hyb = HYBMatrix.from_coo(medium_coo, width=2)
        assert hyb.ell.width == 2
        assert np.allclose(hyb.todense(), medium_coo.todense())

    def test_ell_fraction_bounds(self, medium_coo):
        hyb = medium_coo.convert("hyb")
        assert 0 < hyb.ell_fraction <= 1


class TestDIA:
    def test_banded_matrix_is_compact(self):
        n = 32
        dense = np.zeros((n, n), dtype=np.float32)
        for off in (-1, 0, 2):
            idx = np.arange(n - abs(off))
            dense[idx + max(0, -off), idx + max(0, off)] = 5.0 + off
        dia = DIAMatrix.from_coo(COOMatrix.from_dense(dense))
        assert dia.ndiags == 3
        assert sorted(dia.offsets.tolist()) == [-1, 0, 2]
        assert np.allclose(dia.todense(), dense)

    def test_refuses_scatter_explosion(self, rng):
        DIAMatrix.MAX_DIAGONALS, saved = 4, DIAMatrix.MAX_DIAGONALS
        try:
            dense = make_random_dense(rng, 30, 30, 0.5)
            with pytest.raises(FormatError):
                DIAMatrix.from_coo(COOMatrix.from_dense(dense))
        finally:
            DIAMatrix.MAX_DIAGONALS = saved

"""SELL-C-sigma format tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.sell import SELLMatrix

from tests.conftest import make_random_dense


class TestSELL:
    def test_roundtrip(self, small_coo, small_dense):
        sell = SELLMatrix.from_coo(small_coo, c=8, sigma=16)
        assert np.allclose(sell.todense(), small_dense)
        assert sell.nnz == small_coo.nnz

    def test_matvec(self, small_coo, small_dense, x_small):
        sell = SELLMatrix.from_coo(small_coo, c=8, sigma=16)
        ref = small_dense.astype(np.float64) @ x_small.astype(np.float64)
        assert np.allclose(sell.matvec(x_small), ref, rtol=1e-4, atol=1e-4)

    def test_padding_never_worse_than_ell(self, rng):
        """The whole point of slicing: padding bounded by per-slice max."""
        # skewed row lengths: one heavy row per 64
        dense = make_random_dense(rng, 128, 128, 0.02)
        dense[::64, :] = 1.0
        coo = COOMatrix.from_dense(dense)
        ell = ELLMatrix.from_coo(coo)
        sell = SELLMatrix.from_coo(coo, c=8, sigma=128)
        assert sell.col_indices.size < ell.col_indices.size
        assert sell.padding_ratio < ell.padding_ratio

    def test_sigma_sorting_reduces_padding(self, rng):
        dense = make_random_dense(rng, 256, 64, 0.05)
        dense[::16, :] = 1.0  # heavy rows scattered through the window
        coo = COOMatrix.from_dense(dense)
        unsorted = SELLMatrix.from_coo(coo, c=16, sigma=1)  # no sorting
        sorted_ = SELLMatrix.from_coo(coo, c=16, sigma=256)
        assert sorted_.col_indices.size <= unsorted.col_indices.size

    def test_permutation_is_bijection(self, medium_coo):
        sell = SELLMatrix.from_coo(medium_coo, c=32, sigma=64)
        assert np.sort(sell.permutation).tolist() == list(range(medium_coo.nrows))

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([1, 4, 8, 32]),
        st.sampled_from([1, 16, 256]),
    )
    def test_property_roundtrip(self, seed, c, sigma):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, int(rng.integers(1, 60)), int(rng.integers(1, 60)), 0.2)
        coo = COOMatrix.from_dense(dense)
        sell = SELLMatrix.from_coo(coo, c=c, sigma=sigma)
        assert np.allclose(sell.todense(), dense)

    def test_validation(self, small_coo):
        with pytest.raises(FormatError):
            SELLMatrix.from_coo(small_coo, c=0)
        with pytest.raises(FormatError):
            SELLMatrix.from_coo(small_coo, sigma=0)

    def test_registered_format(self, small_coo, small_dense):
        from repro.formats import available_formats, convert

        assert "sell" in available_formats()
        m = convert(small_coo, "sell")
        assert np.allclose(m.todense(), small_dense)

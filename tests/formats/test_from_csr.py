"""Direct CSR -> bitBSR conversion: bitwise identity and fast paths."""

import numpy as np
import pytest

from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.bsr import BSRMatrix
from repro.formats.convert import convert
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

from tests.conftest import make_random_dense

ARRAYS = ("block_row_pointers", "block_cols", "bitmaps", "values")

SHAPES = [
    (1, 1),
    (8, 8),
    (7, 9),       # sub-block, ragged
    (17, 23),     # crosses block boundaries unevenly
    (64, 64),
    (100, 3),     # tall
    (3, 100),     # wide
    (40, 40),
]


def _csr(rng, nrows, ncols, density=0.2) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, density))
    )


class TestBitwiseIdentity:
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("value_dtype", [np.float16, np.float32])
    def test_from_csr_matches_coo_route_bitwise(self, rng, shape, value_dtype):
        csr = _csr(rng, *shape)
        direct = BitBSRMatrix.from_csr(csr, value_dtype=value_dtype)
        via_coo = BitBSRMatrix.from_coo(csr.tocoo(), value_dtype=value_dtype)
        assert direct.shape == via_coo.shape
        assert direct.value_dtype == via_coo.value_dtype
        for name in ARRAYS:
            a, b = getattr(direct, name), getattr(via_coo, name)
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name

    def test_empty_matrix(self):
        csr = CSRMatrix.from_coo(COOMatrix((0, 0), [], [], []))
        direct = BitBSRMatrix.from_csr(csr)
        assert direct.nnz == 0 and direct.nblocks == 0

    def test_empty_rows_and_cols(self, rng):
        for shape in [(5, 0), (0, 5)]:
            csr = CSRMatrix.from_coo(
                COOMatrix(shape, [], [], [])
            )
            direct = BitBSRMatrix.from_csr(csr)
            via_coo = BitBSRMatrix.from_coo(csr.tocoo())
            for name in ARRAYS:
                assert np.array_equal(getattr(direct, name), getattr(via_coo, name))

    def test_matvec_agrees_with_csr_reference(self, rng):
        csr = _csr(rng, 33, 47)
        x = rng.standard_normal(47).astype(np.float32)
        got = BitBSRMatrix.from_csr(csr, value_dtype=np.float32).matvec(x)
        np.testing.assert_allclose(got, csr.matvec(x), rtol=1e-5, atol=1e-5)

    def test_deep_verify_passes(self, rng):
        BitBSRMatrix.from_csr(_csr(rng, 40, 40)).verify(deep=True)


class TestConvertFastPaths:
    def test_convert_routes_csr_directly(self, rng, monkeypatch):
        """convert(csr, "bitbsr") must not materialize a COO."""
        csr = _csr(rng, 24, 24)

        def boom(cls, coo, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("COO route taken for a CSR source")

        monkeypatch.setattr(BitBSRMatrix, "from_coo", classmethod(boom))
        bit = convert(csr, "bitbsr")
        assert bit.nnz == csr.nnz

    def test_builder_routes_csr_directly(self, rng, monkeypatch):
        from repro.core.builder import build_bitbsr

        csr = _csr(rng, 24, 24)

        def boom(cls, coo, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("COO route taken for a CSR source")

        monkeypatch.setattr(BitBSRMatrix, "from_coo", classmethod(boom))
        report = build_bitbsr(csr)
        assert report.matrix.nnz == csr.nnz

    def test_non_csr_sources_still_use_coo_route(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 16, 16))
        bit = convert(coo, "bitbsr")
        assert bit.nnz == coo.nnz


class TestConvertNoOp:
    """Matching kwargs must return the *same object*, not a rebuild."""

    def test_bitbsr_same_dtype_is_identity(self, rng):
        bit = convert(_csr(rng, 24, 24), "bitbsr")
        assert convert(bit, "bitbsr") is bit
        assert convert(bit, "bitbsr", value_dtype=np.float16) is bit
        assert convert(bit, "bitbsr", value_dtype="float16") is bit

    def test_bitbsr_dtype_change_rebuilds(self, rng):
        bit = convert(_csr(rng, 24, 24), "bitbsr")
        rebuilt = convert(bit, "bitbsr", value_dtype=np.float32)
        assert rebuilt is not bit
        assert rebuilt.value_dtype == np.dtype(np.float32)

    def test_bsr_block_dim(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 24, 24))
        bsr = convert(coo, "bsr", block_dim=4)
        assert convert(bsr, "bsr", block_dim=4) is bsr
        assert convert(bsr, "bsr", block_dim=8) is not bsr

    def test_bitbsr_generic_both_kwargs(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 24, 24))
        g = convert(coo, "bitbsr-generic", block_dim=4, value_dtype=np.float16)
        assert convert(g, "bitbsr-generic", block_dim=4) is g
        assert convert(g, "bitbsr-generic", block_dim=4, value_dtype=np.float16) is g
        assert convert(g, "bitbsr-generic", block_dim=8) is not g
        assert convert(g, "bitbsr-generic", block_dim=4, value_dtype=np.float32) is not g

    def test_bitcoo_value_dtype(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 24, 24))
        bc = convert(coo, "bitcoo")
        assert convert(bc, "bitcoo", value_dtype=np.float16) is bc
        assert convert(bc, "bitcoo", value_dtype=np.float32) is not bc

    def test_hyb_width(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 24, 24))
        hyb = convert(coo, "hyb", width=3)
        assert convert(hyb, "hyb", width=3) is hyb
        assert convert(hyb, "hyb", width=4) is not hyb
        # width=None re-derives from the data: conservatively a rebuild
        assert convert(hyb, "hyb", width=None) is not hyb

    def test_sell_c_and_sigma(self, rng):
        coo = COOMatrix.from_dense(make_random_dense(rng, 64, 24))
        sell = convert(coo, "sell", c=8)
        assert convert(sell, "sell", c=8) is sell
        assert convert(sell, "sell", c=4) is not sell
        # sigma is not recorded on the instance: conservatively a rebuild
        assert convert(sell, "sell", c=8, sigma=16) is not sell

    def test_unknown_kwargs_rebuild_not_raise_in_matcher(self, rng):
        bit = convert(_csr(rng, 16, 16), "bitbsr")
        assert bit.config_matches(bogus=1) is False
        assert bit.config_matches(value_dtype="not-a-dtype") is False

    def test_base_formats_no_kwargs_identity(self, rng):
        csr = _csr(rng, 16, 16)
        assert convert(csr, "csr") is csr
        coo = csr.tocoo()
        assert convert(coo, "coo") is coo

"""Application tests: PageRank / BFS / CG against networkx and scipy."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.bfs import bfs_levels
from repro.apps.cg import conjugate_gradient
from repro.apps.pagerank import pagerank, transition_matrix
from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv
from repro.gpu.mma import Precision
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix


@pytest.fixture
def graph():
    return nx.gnp_random_graph(60, 0.08, seed=42, directed=True)


def adjacency_coo(g: nx.DiGraph) -> COOMatrix:
    n = g.number_of_nodes()
    edges = np.array(list(g.edges), dtype=np.int32)
    if edges.size == 0:
        edges = np.zeros((0, 2), dtype=np.int32)
    return COOMatrix((n, n), edges[:, 0], edges[:, 1], np.ones(len(edges), dtype=np.float32))


class TestPageRank:
    def test_matches_networkx(self, graph):
        adj = adjacency_coo(graph)
        n = adj.nrows
        P = transition_matrix(adj)
        dangling = adj.row_counts() == 0
        result = pagerank(P.matvec, n, dangling_mask=dangling, tol=1e-10)
        assert result.converged
        expected = nx.pagerank(graph, alpha=0.85, tol=1e-12)
        got = result.ranks / result.ranks.sum()
        for node, value in expected.items():
            assert got[node] == pytest.approx(value, abs=2e-4)

    def test_runs_on_spaden(self, graph):
        """The whole point: PageRank with Spaden in the inner loop."""
        adj = adjacency_coo(graph)
        P = transition_matrix(adj)
        # fp32 bitBSR keeps the stochastic weights exact enough
        bit = build_bitbsr(P.tocoo(), value_dtype=np.float32).matrix
        dangling = adj.row_counts() == 0
        reference = pagerank(P.matvec, adj.nrows, dangling_mask=dangling)
        via_spaden = pagerank(
            lambda v: spaden_spmv(bit, v, precision=Precision.FP32),
            adj.nrows,
            dangling_mask=dangling,
        )
        assert via_spaden.converged
        assert np.allclose(via_spaden.ranks, reference.ranks, atol=1e-3)

    def test_ranks_sum_to_one(self, graph):
        adj = adjacency_coo(graph)
        P = transition_matrix(adj)
        dangling = adj.row_counts() == 0
        result = pagerank(P.matvec, adj.nrows, dangling_mask=dangling)
        assert result.ranks.sum() == pytest.approx(1.0, abs=1e-3)

    def test_damping_bounds(self):
        with pytest.raises(KernelError):
            pagerank(lambda v: v, 4, damping=1.5)

    def test_nonsquare_rejected(self):
        bad = COOMatrix((2, 3), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
        with pytest.raises(KernelError):
            transition_matrix(bad)


class TestBFS:
    def test_matches_networkx_levels(self, graph):
        adj = adjacency_coo(graph)
        at = CSRMatrix.from_coo(adj.transpose())
        levels = bfs_levels(at.matvec, adj.nrows, source=0)
        expected = nx.single_source_shortest_path_length(graph, 0)
        for node in range(adj.nrows):
            assert levels[node] == expected.get(node, -1)

    def test_runs_on_spaden(self, graph):
        adj = adjacency_coo(graph)
        at = adj.transpose()
        bit = build_bitbsr(at, value_dtype=np.float32).matrix
        ref = bfs_levels(CSRMatrix.from_coo(at).matvec, adj.nrows, source=0)
        got = bfs_levels(lambda v: spaden_spmv(bit, v), adj.nrows, source=0)
        assert np.array_equal(ref, got)

    def test_source_bounds(self):
        with pytest.raises(KernelError):
            bfs_levels(lambda v: v, 4, source=9)

    def test_disconnected_marked_unreachable(self):
        coo = COOMatrix((3, 3), np.array([0], np.int32), np.array([1], np.int32), np.ones(1, np.float32))
        levels = bfs_levels(CSRMatrix.from_coo(coo.transpose()).matvec, 3, source=0)
        assert levels.tolist() == [0, 1, -1]


class TestCG:
    @pytest.fixture
    def spd_system(self, rng):
        n = 48
        # diagonally dominant tridiagonal SPD with fp16-exact entries
        dense = np.zeros((n, n), dtype=np.float32)
        np.fill_diagonal(dense, 4.0)
        idx = np.arange(n - 1)
        dense[idx, idx + 1] = -1.0
        dense[idx + 1, idx] = -1.0
        b = rng.standard_normal(n).astype(np.float32)
        return dense, b

    def test_solves_system(self, spd_system):
        dense, b = spd_system
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        result = conjugate_gradient(csr.matvec, b, tol=1e-8)
        assert result.converged
        assert np.allclose(dense.astype(np.float64) @ result.x, b, atol=1e-5)

    def test_runs_on_spaden(self, spd_system):
        dense, b = spd_system
        bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
        result = conjugate_gradient(
            lambda v: spaden_spmv(bit, v, precision=Precision.FP32), b, tol=1e-7
        )
        assert result.converged
        assert np.allclose(dense.astype(np.float64) @ result.x, b, atol=1e-4)

    def test_residual_history_decreases(self, spd_system):
        dense, b = spd_system
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        result = conjugate_gradient(csr.matvec, b, tol=1e-8)
        assert result.residual_history[-1] < result.residual_history[0]

    def test_rejects_indefinite(self):
        dense = -np.eye(8, dtype=np.float32)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        with pytest.raises(KernelError):
            conjugate_gradient(csr.matvec, np.ones(8, dtype=np.float32))

    def test_zero_rhs(self):
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(np.eye(4, dtype=np.float32)))
        result = conjugate_gradient(csr.matvec, np.zeros(4))
        assert result.converged and result.iterations == 0

"""Semiring SpMV tests: algebra instances vs independent references."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    semiring_spmv,
    sssp_bellman_ford,
)
from repro.core.builder import build_bitbsr
from repro.errors import KernelError
from repro.formats.coo import COOMatrix

from tests.conftest import make_random_dense


@pytest.fixture
def bit_and_dense(rng):
    dense = np.abs(make_random_dense(rng, 40, 40, 0.15))
    bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
    return bit, dense


class TestSemirings:
    def test_plus_times_matches_matvec(self, bit_and_dense, rng):
        bit, dense = bit_and_dense
        x = rng.standard_normal(40)
        y = semiring_spmv(bit, x, PLUS_TIMES)
        assert np.allclose(y, dense.astype(np.float64) @ x, rtol=1e-5, atol=1e-6)

    def test_min_plus(self, bit_and_dense, rng):
        bit, dense = bit_and_dense
        x = np.abs(rng.standard_normal(40))
        y = semiring_spmv(bit, x, MIN_PLUS)
        expected = np.full(40, np.inf)
        for i in range(40):
            cols = np.flatnonzero(dense[i])
            if cols.size:
                expected[i] = np.min(dense[i, cols].astype(np.float64) + x[cols])
        assert np.allclose(y, expected)

    def test_max_times(self, bit_and_dense, rng):
        bit, dense = bit_and_dense
        x = np.abs(rng.standard_normal(40)) + 0.1
        y = semiring_spmv(bit, x, MAX_TIMES)
        expected = np.full(40, -np.inf)
        for i in range(40):
            cols = np.flatnonzero(dense[i])
            if cols.size:
                expected[i] = np.max(dense[i, cols].astype(np.float64) * x[cols])
        assert np.allclose(y, expected)

    def test_or_and_is_reachability_step(self, bit_and_dense):
        bit, dense = bit_and_dense
        frontier = np.zeros(40)
        frontier[:5] = 1.0
        y = semiring_spmv(bit, frontier, OR_AND)
        expected = ((dense[:, :5] != 0).any(axis=1)).astype(np.float64)
        assert np.array_equal(y, expected)

    def test_empty_rows_get_zero_element(self):
        dense = np.zeros((16, 16), dtype=np.float32)
        dense[0, 0] = 2.0
        bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
        y = semiring_spmv(bit, np.ones(16), MIN_PLUS)
        assert y[0] == 3.0
        assert np.isinf(y[1:]).all()

    def test_shape_check(self, bit_and_dense):
        bit, _ = bit_and_dense
        with pytest.raises(KernelError):
            semiring_spmv(bit, np.ones(41))

    def test_custom_semiring(self, bit_and_dense, rng):
        bit, dense = bit_and_dense
        plus_plus = Semiring("plus-plus", np.add, np.add, 0.0)
        x = rng.standard_normal(40)
        y = semiring_spmv(bit, x, plus_plus)
        mask = dense != 0
        expected = (dense.astype(np.float64) * mask + x[None, :] * mask).sum(axis=1)
        assert np.allclose(y[mask.any(axis=1)], expected[mask.any(axis=1)])


class TestSSSP:
    def test_matches_networkx_dijkstra(self, rng):
        g = nx.gnp_random_graph(40, 0.12, seed=7, directed=True)
        for u, v in g.edges:
            g[u][v]["weight"] = float(1 + (u * 7 + v) % 5)
        n = 40
        rows, cols, vals = [], [], []
        for u, v, w in g.edges(data="weight"):
            # distance relaxes along edges: d[v] = min(d[v], A[v,u] + d[u])
            rows.append(v)
            cols.append(u)
            vals.append(w)
        coo = COOMatrix(
            (n, n),
            np.array(rows, np.int32),
            np.array(cols, np.int32),
            np.array(vals, np.float32),
        )
        bit = build_bitbsr(coo, value_dtype=np.float32).matrix
        distances = sssp_bellman_ford(bit, source=0)
        expected = nx.single_source_dijkstra_path_length(g, 0)
        for node in range(n):
            if node in expected:
                assert distances[node] == pytest.approx(expected[node])
            else:
                assert np.isinf(distances[node])

    def test_validation(self, bit_and_dense):
        bit, _ = bit_and_dense
        with pytest.raises(KernelError):
            sssp_bellman_ford(bit, source=400)
        neg = COOMatrix(
            (8, 8), np.array([0], np.int32), np.array([1], np.int32), np.array([-1.0], np.float32)
        )
        nbit = build_bitbsr(neg, value_dtype=np.float32).matrix
        with pytest.raises(KernelError):
            sssp_bellman_ford(nbit, source=0)

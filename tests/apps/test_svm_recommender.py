"""SVM inference and collaborative-filtering app tests."""

import numpy as np
import pytest

from repro.apps.recommender import ItemRecommender
from repro.apps.svm import LinearSVM, train_reference_svm
from repro.core.builder import build_bitbsr
from repro.errors import KernelError
from repro.formats.coo import COOMatrix

from tests.conftest import make_random_dense


def sparse_samples(rng, n_samples, n_features, density=0.2):
    dense = make_random_dense(rng, n_samples, n_features, density)
    bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
    return dense, bit


class TestSVM:
    def test_decision_function_matches_dense(self, rng):
        dense, bit = sparse_samples(rng, 40, 24)
        svm = LinearSVM(
            weights=rng.standard_normal((24, 3)).astype(np.float32),
            bias=rng.standard_normal(3).astype(np.float32),
        )
        scores = svm.decision_function(bit)
        ref = dense.astype(np.float64) @ svm.weights.astype(np.float64) + svm.bias
        assert np.allclose(scores, ref, rtol=1e-3, atol=1e-3)

    def test_binary_classifier_path(self, rng):
        dense, bit = sparse_samples(rng, 30, 16)
        svm = LinearSVM(weights=rng.standard_normal((16, 1)).astype(np.float32), bias=np.zeros(1))
        labels = svm.predict(bit)
        ref = (dense @ svm.weights[:, 0] > 0).astype(np.int64)
        assert np.array_equal(labels, ref)

    def test_trained_svm_separates_blobs(self, rng):
        """End-to-end: train on two separable blobs, score sparsely."""
        n, d = 120, 16
        centers = np.zeros((2, d))
        centers[0, :4] = 3.0
        centers[1, 4:8] = 3.0
        labels = rng.integers(0, 2, n)
        dense = (centers[labels] + rng.standard_normal((n, d)) * 0.4).astype(np.float32)
        dense = dense.astype(np.float16).astype(np.float32)  # fp16-exact
        svm = train_reference_svm(dense, labels, classes=2)
        bit = build_bitbsr(COOMatrix.from_dense(dense), value_dtype=np.float32).matrix
        predictions = svm.predict(bit)
        accuracy = (predictions == labels).mean()
        assert accuracy > 0.95

    def test_feature_count_checked(self, rng):
        _, bit = sparse_samples(rng, 20, 16)
        svm = LinearSVM(weights=np.zeros((17, 2), np.float32), bias=np.zeros(2))
        with pytest.raises(KernelError):
            svm.decision_function(bit)

    def test_shape_validation(self):
        with pytest.raises(KernelError):
            LinearSVM(weights=np.zeros((4, 2)), bias=np.zeros(3))


class TestRecommender:
    @pytest.fixture
    def interactions(self, rng):
        dense = (rng.random((32, 24)) < 0.25).astype(np.float32)
        return COOMatrix.from_dense(dense)

    def test_scores_match_dense_reference(self, interactions):
        rec = ItemRecommender(interactions, top_k_similar=24)
        scores = rec.score_all()
        R = interactions.todense().astype(np.float64)
        assert np.allclose(scores, R @ rec._similarity.astype(np.float64), rtol=1e-3, atol=1e-3)

    def test_recommend_excludes_seen(self, interactions):
        rec = ItemRecommender(interactions)
        user = 3
        seen = set(interactions.cols[interactions.rows == user].tolist())
        picks = rec.recommend(user, count=5)
        assert not (set(picks.tolist()) & seen)

    def test_recommend_bounds(self, interactions):
        rec = ItemRecommender(interactions)
        with pytest.raises(KernelError):
            rec.recommend(99)

    def test_similarity_diagonal_zero(self, interactions):
        rec = ItemRecommender(interactions)
        assert not np.diagonal(rec._similarity).any()

    def test_topk_truncation(self, interactions):
        dense_rec = ItemRecommender(interactions, top_k_similar=24)
        sparse_rec = ItemRecommender(interactions, top_k_similar=3)
        nnz_dense = np.count_nonzero(dense_rec._similarity)
        nnz_sparse = np.count_nonzero(sparse_rec._similarity)
        assert nnz_sparse < nnz_dense

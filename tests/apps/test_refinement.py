"""Mixed-precision iterative refinement tests."""

import numpy as np
import pytest

from repro.apps.refinement import iterative_refinement, jacobi_preconditioner
from repro.core.builder import build_bitbsr
from repro.core.spmv import spaden_spmv
from repro.errors import KernelError
from repro.formats.coo import COOMatrix


@pytest.fixture
def dominant_system(rng):
    """A diagonally dominant system with fp16-exact entries."""
    n = 64
    dense = np.zeros((n, n), dtype=np.float32)
    off = (rng.random((n, n)) < 0.1).astype(np.float32) * 0.25
    np.fill_diagonal(off, 0.0)
    dense += off
    np.fill_diagonal(dense, 8.0)
    x_true = (rng.integers(-16, 17, n) / 8.0).astype(np.float64)
    b = dense.astype(np.float64) @ x_true
    return dense, b, x_true


def operators(dense):
    coo = COOMatrix.from_dense(dense)
    bit = build_bitbsr(coo, value_dtype=np.float16).matrix
    low = lambda v: spaden_spmv(bit, v)
    high = lambda v: dense.astype(np.float64) @ np.asarray(v, dtype=np.float64)
    return coo, low, high


class TestRefinement:
    def test_fp16_operator_reaches_fp64_accuracy(self, dominant_system):
        """The headline property: fp16 inner sweeps + fp64 residuals
        converge to ~fp64 solution accuracy."""
        dense, b, x_true = dominant_system
        coo, low, high = operators(dense)
        result = iterative_refinement(low, high, jacobi_preconditioner(coo), b, tol=1e-12)
        assert result.converged
        assert np.abs(result.x - x_true).max() < 1e-9
        assert result.inner_spmv_calls > result.outer_iterations  # fp16 did the work

    def test_low_precision_only_stalls_above_fp16_floor(self, dominant_system, rng):
        """Counterfactual: using the fp16 operator for the *residual* too
        caps accuracy — the reason the outer loop must be high precision.
        (Needs a non-fp16-exact solution, else fp16 evaluation is exact.)"""
        dense, _, _ = dominant_system
        x_irr = rng.standard_normal(dense.shape[0])
        b = dense.astype(np.float64) @ x_irr
        coo, low, _ = operators(dense)
        result = iterative_refinement(low, low, jacobi_preconditioner(coo), b, tol=1e-12, max_outer=50)
        assert not result.converged  # fp16 rounding floors the residual

    def test_converges_monotonically_with_tolerance(self, dominant_system):
        dense, b, _ = dominant_system
        coo, low, high = operators(dense)
        precond = jacobi_preconditioner(coo)
        loose = iterative_refinement(low, high, precond, b, tol=1e-4)
        tight = iterative_refinement(low, high, precond, b, tol=1e-11)
        assert loose.converged and tight.converged
        assert loose.outer_iterations <= tight.outer_iterations

    def test_missing_diagonal_rejected(self):
        coo = COOMatrix(
            (4, 4), np.array([0], np.int32), np.array([1], np.int32), np.array([1.0], np.float32)
        )
        with pytest.raises(KernelError):
            jacobi_preconditioner(coo)

    def test_shape_and_sweeps_validated(self, dominant_system):
        dense, b, _ = dominant_system
        _, low, high = operators(dense)
        with pytest.raises(KernelError):
            iterative_refinement(low, high, np.ones(3), b)
        with pytest.raises(KernelError):
            iterative_refinement(low, high, np.ones(b.size), b, inner_sweeps=0)

    def test_nonconvergence_reported(self, dominant_system):
        dense, b, _ = dominant_system
        coo, low, high = operators(dense)
        result = iterative_refinement(
            low, high, jacobi_preconditioner(coo), b, tol=1e-14, max_outer=1
        )
        assert not result.converged
        assert result.outer_iterations == 1

"""Cross-validation: simulated baseline kernels vs analytic profiles.

The Spaden profile is validated against its simulator elsewhere; this
module does the same for the scalar CSR baseline, which exercises the
*other* traffic helpers (grouped/stream transaction counting) against
the lane-level memory model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import get_kernel
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense

COMPARED = (
    "global_load_bytes",
    "global_store_bytes",
    "load_transactions",
    "store_transactions",
    "cuda_flops",
    "cuda_int_ops",
    "warps_launched",
)


class TestScalarCSRSimulation:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([0.03, 0.2, 0.5]),
        st.integers(5, 90),
        st.integers(5, 90),
    )
    def test_profile_equals_simulation(self, seed, density, nrows, ncols):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, nrows, ncols, density)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, ncols)
        kernel = get_kernel("csr-scalar")
        prep = kernel.prepare(csr)
        y_sim, stats = kernel.simulate(prep, x)
        profile = kernel.profile(prep, x)
        assert np.allclose(y_sim, csr.matvec(x), rtol=1e-4, atol=1e-4)
        for field in COMPARED:
            assert getattr(profile.stats, field) == getattr(stats, field), field

    def test_simulation_result_matches_run(self, rng):
        dense = make_random_dense(rng, 70, 50, 0.15)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 50)
        kernel = get_kernel("csr-scalar")
        prep = kernel.prepare(csr)
        y_sim, _ = kernel.simulate(prep, x)
        y_run = kernel.run(prep, x)
        assert np.allclose(y_sim, y_run, rtol=1e-5, atol=1e-5)

    def test_empty_matrix_simulates(self):
        coo = COOMatrix((40, 40), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
        csr = CSRMatrix.from_coo(coo)
        kernel = get_kernel("csr-scalar")
        prep = kernel.prepare(csr)
        y, stats = kernel.simulate(prep, np.ones(40, dtype=np.float32))
        assert not y.any()
        assert stats.cuda_flops == 0


class TestWarp16Simulation:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([0.05, 0.3]),
        st.integers(5, 80),
        st.integers(5, 80),
    )
    def test_profile_equals_simulation(self, seed, density, nrows, ncols):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, nrows, ncols, density)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, ncols)
        kernel = get_kernel("csr-warp16")
        prep = kernel.prepare(csr)
        y_sim, stats = kernel.simulate(prep, x)
        profile = kernel.profile(prep, x)
        assert np.allclose(y_sim, csr.matvec(x), rtol=1e-4, atol=1e-4)
        for field in COMPARED:
            assert getattr(profile.stats, field) == getattr(stats, field), field

    def test_uncoalesced_loads_measured(self, rng):
        """The Fig. 8 mechanism, observed in the simulator: Warp16 issues
        many times more load transactions than the merge-style layout."""
        dense = make_random_dense(rng, 64, 64, 0.4)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 64)
        warp16 = get_kernel("csr-warp16")
        _, w16_stats = warp16.simulate(warp16.prepare(csr), x)
        scalar = get_kernel("csr-scalar")
        _, sc_stats = scalar.simulate(scalar.prepare(csr), x)
        # same matrix, same useful bytes — different coalescing
        assert w16_stats.global_load_bytes == sc_stats.global_load_bytes
        assert w16_stats.load_transactions > sc_stats.load_transactions


class TestBSRSimulation:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([0.05, 0.25]),
        st.integers(8, 70),
        st.integers(8, 70),
    )
    def test_profile_equals_simulation(self, seed, density, nrows, ncols):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, nrows, ncols, density)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, ncols)
        kernel = get_kernel("cusparse-bsr")
        prep = kernel.prepare(csr)
        y_sim, stats = kernel.simulate(prep, x)
        profile = kernel.profile(prep, x)
        assert np.allclose(y_sim, csr.matvec(x), rtol=1e-4, atol=1e-4)
        for field in COMPARED:
            assert getattr(profile.stats, field) == getattr(stats, field), field

    def test_simulation_matches_run(self, rng):
        dense = make_random_dense(rng, 48, 56, 0.1)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 56)
        kernel = get_kernel("cusparse-bsr")
        prep = kernel.prepare(csr)
        y_sim, _ = kernel.simulate(prep, x)
        assert np.allclose(y_sim, kernel.run(prep, x), rtol=1e-4, atol=1e-4)

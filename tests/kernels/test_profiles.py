"""Analytic profile validity: exact vs simulator for Spaden, sanity
bounds for every kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import available_kernels, get_kernel
from repro.kernels.base import gather_transactions, grouped_transactions, stream_transactions, touched_sector_bytes
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense

COMPARED_FIELDS = (
    "global_load_bytes",
    "global_store_bytes",
    "load_transactions",
    "store_transactions",
    "cuda_flops",
    "cuda_int_ops",
    "mma_ops",
    "warps_launched",
)


class TestSpadenAnalyticExactness:
    """The flagship property: the analytic profile equals the
    lane-level simulator's measured counters, field for field."""

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.sampled_from([0.03, 0.15, 0.45]),
        st.integers(8, 70),
        st.integers(8, 70),
    )
    def test_profile_equals_simulation(self, seed, density, nrows, ncols):
        rng = np.random.default_rng(seed)
        dense = make_random_dense(rng, nrows, ncols, density)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, ncols)
        kernel = get_kernel("spaden")
        prep = kernel.prepare(csr)
        profile = kernel.profile(prep, x)
        _, simulated = kernel.simulate(prep, x)
        for field in COMPARED_FIELDS:
            assert getattr(profile.stats, field) == getattr(simulated, field), field

    def test_no_tc_variant_shares_memory_side(self, rng):
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(make_random_dense(rng, 48, 48, 0.2)))
        x = fp16_exact_values(rng, 48)
        spaden = get_kernel("spaden")
        notc = get_kernel("spaden-no-tc")
        p1 = spaden.profile(spaden.prepare(csr), x)
        p2 = notc.profile(notc.prepare(csr), x)
        assert p1.dram_bytes == p2.dram_bytes
        assert p1.stats.load_transactions == p2.stats.load_transactions
        assert p2.stats.mma_ops == 0 and p1.stats.mma_ops > 0
        assert p2.stats.cuda_flops > 0 and p1.stats.cuda_flops == 0


@pytest.mark.parametrize("name", available_kernels())
class TestProfileSanity:
    def test_bounds(self, name, rng):
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(make_random_dense(rng, 64, 64, 0.1)))
        x = fp16_exact_values(rng, 64)
        kernel = get_kernel(name)
        prep = kernel.prepare(csr)
        p = kernel.profile(prep, x)
        s = p.stats
        # a transaction moves at most 32 useful bytes
        assert s.global_load_bytes <= s.load_transactions * 32 * 32  # broadcasts replicate
        assert s.load_transactions >= s.global_load_bytes / (32 * 32)
        assert p.dram_load_bytes > 0
        assert p.dram_store_bytes > 0
        assert s.warps_launched > 0
        assert s.warp_instructions > 0
        # every kernel must at least read each nonzero's value once
        assert p.dram_load_bytes >= csr.nnz * 2

    def test_flops_account_for_all_nonzeros(self, name, rng):
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(make_random_dense(rng, 64, 64, 0.1)))
        x = fp16_exact_values(rng, 64)
        kernel = get_kernel(name)
        p = kernel.profile(kernel.prepare(csr), x)
        # 2 flops per nnz, on whichever engine executes them
        assert p.stats.total_flops >= 2 * csr.nnz


class TestTrafficHelpers:
    def test_stream(self):
        assert stream_transactions(8, 4) == 1
        assert stream_transactions(9, 4) == 2
        assert stream_transactions(0, 4) == 0

    def test_gather_coalesced(self):
        assert gather_transactions(np.arange(32), 4) == 4

    def test_gather_scattered(self):
        assert gather_transactions(np.arange(32) * 8, 4) == 32

    def test_gather_padding_never_adds(self):
        # 33 elements: one full group + one singleton
        assert gather_transactions(np.arange(33), 4) == 4 + 1

    @given(st.lists(st.integers(0, 2000), min_size=1, max_size=100))
    def test_grouped_matches_bruteforce(self, indices):
        idx = np.array(indices, dtype=np.int64)
        groups = np.arange(idx.size) // 32
        expected = len({(g, i * 4 // 32) for g, i in zip(groups, idx)})
        assert grouped_transactions(groups, idx, 4) == expected

    def test_touched_sector_bytes(self):
        assert touched_sector_bytes(np.array([0, 1, 7]), 4) == 32
        assert touched_sector_bytes(np.array([0, 8]), 4) == 64
        assert touched_sector_bytes(np.array([]), 4) == 0

"""Per-kernel storage footprints reproduce the Fig. 10b orderings."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import get_kernel
from repro.matrices.generators import fp16_exact_values
from repro.matrices.random import random_banded

from tests.conftest import make_random_dense


@pytest.fixture
def typical_csr(rng):
    """A matrix in Spaden's effective scope: banded, nnz/nrow > 32,
    mostly *sparse* blocks (the regime where BSR's zero padding hurts)."""
    coo = random_banded(512, 48, fill=0.35, seed=7)
    return CSRMatrix.from_coo(coo)


class TestFig10bOrdering:
    def test_memory_ordering_matches_paper(self, typical_csr):
        """Spaden < CSR < DASP < BSR bytes/nnz on blocky matrices."""
        x = None
        sizes = {}
        for name in ("spaden", "cusparse-csr", "dasp", "cusparse-bsr"):
            kernel = get_kernel(name)
            prep = kernel.prepare(typical_csr)
            sizes[name] = prep.bytes_per_nnz
        assert sizes["spaden"] < sizes["cusparse-csr"] < sizes["dasp"] < sizes["cusparse-bsr"]

    def test_spaden_memory_saving_magnitude(self, typical_csr):
        """Paper: ~2.83x saving over cuSPARSE CSR on blocky matrices."""
        spaden = get_kernel("spaden").prepare(typical_csr)
        csr = get_kernel("cusparse-csr").prepare(typical_csr)
        saving = csr.device_bytes / spaden.device_bytes
        assert 1.8 < saving < 4.0

    def test_spaden_bytes_per_nnz_near_paper(self, typical_csr):
        """Paper: 2.85 B/nnz average over its dataset."""
        prep = get_kernel("spaden").prepare(typical_csr)
        assert 2.0 < prep.bytes_per_nnz < 4.5

    def test_csr_bytes_per_nnz_near_paper(self, typical_csr):
        """Paper: 8.06 B/nnz."""
        prep = get_kernel("cusparse-csr").prepare(typical_csr)
        assert 7.5 < prep.bytes_per_nnz < 9.0


class TestFig10aOrdering:
    def test_preprocessing_ordering(self, typical_csr):
        """BSR < Spaden < DASP conversion cost per nnz (Fig. 10a)."""
        costs = {}
        for name in ("cusparse-bsr", "spaden", "dasp"):
            prep = get_kernel(name).prepare(typical_csr)
            costs[name] = prep.preprocessing_ns_per_nnz
        assert costs["cusparse-bsr"] < costs["spaden"] < costs["dasp"]

    def test_magnitudes_in_paper_range(self, typical_csr):
        """Paper: BSR 1.21, Spaden 3.31, DASP 4.95 ns/nnz."""
        for name, (lo, hi) in {
            "cusparse-bsr": (0.3, 3.0),
            "spaden": (2.0, 6.0),
            "dasp": (3.0, 8.0),
        }.items():
            prep = get_kernel(name).prepare(typical_csr)
            assert lo < prep.preprocessing_ns_per_nnz < hi, name

    def test_csr_preprocessing_is_cheapest(self, typical_csr):
        csr = get_kernel("cusparse-csr").prepare(typical_csr)
        spaden = get_kernel("spaden").prepare(typical_csr)
        assert csr.preprocessing_seconds < spaden.preprocessing_seconds


class TestDASPOperand:
    def test_padding_is_multiple_of_k(self, typical_csr):
        prep = get_kernel("dasp").prepare(typical_csr)
        op = prep.data
        assert (np.diff(op.padded_pointers) % 4 == 0).all()
        assert op.padded_nnz >= typical_csr.nnz

    def test_padding_values_are_zero(self, rng):
        dense = make_random_dense(rng, 40, 40, 0.1)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        prep = get_kernel("dasp").prepare(csr)
        op = prep.data
        assert float(np.abs(op.values.astype(np.float64)).sum()) == pytest.approx(
            float(np.abs(csr.values.astype(np.float64)).sum()), rel=1e-3
        )

    def test_padding_columns_stay_in_range(self, rng):
        dense = make_random_dense(rng, 40, 40, 0.1)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        op = get_kernel("dasp").prepare(csr).data
        assert op.cols.min() >= 0 and op.cols.max() < 40

"""Behavioural tests specific to the format-zoo kernels (COO/ELL/HYB/
SELL) and the WMMA-path Spaden variant."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import get_kernel
from repro.matrices.generators import fp16_exact_values
from repro.matrices.random import random_banded

from tests.conftest import make_random_dense


def skewed_csr(rng, n=256):
    """A few heavy rows on a sparse background — ELL's nightmare."""
    dense = make_random_dense(rng, n, n, 0.01)
    dense[::64, :] = 1.0
    return CSRMatrix.from_coo(COOMatrix.from_dense(dense))


class TestELLvsSELL:
    def test_sell_moves_less_data_on_skew(self, rng):
        csr = skewed_csr(rng)
        x = fp16_exact_values(rng, csr.ncols)
        ell = get_kernel("ell")
        sell = get_kernel("sell")
        p_ell = ell.profile(ell.prepare(csr), x)
        p_sell = sell.profile(sell.prepare(csr), x)
        assert p_sell.dram_load_bytes < p_ell.dram_load_bytes

    def test_ell_fine_on_uniform_rows(self, rng):
        coo = random_banded(256, 12, fill=1.0, seed=5)  # constant row length
        csr = CSRMatrix.from_coo(coo)
        x = fp16_exact_values(rng, 256)
        ell = get_kernel("ell")
        prep = ell.prepare(csr)
        assert prep.data.padding_ratio < 0.05

    def test_sell_memory_bounded_by_ell(self, rng):
        csr = skewed_csr(rng)
        ell_bytes = get_kernel("ell").prepare(csr).device_bytes
        sell_bytes = get_kernel("sell").prepare(csr).device_bytes
        assert sell_bytes < ell_bytes


class TestCOOKernel:
    def test_atomics_counted_per_nonzero(self, rng):
        dense = make_random_dense(rng, 64, 64, 0.1)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 64)
        kernel = get_kernel("coo")
        profile = kernel.profile(kernel.prepare(csr), x)
        assert profile.stats.atomic_ops == csr.nnz

    def test_atomic_pressure_slows_it_down(self, rng):
        from repro.gpu.spec import get_gpu
        from repro.perf import estimate_time

        dense = make_random_dense(rng, 128, 128, 0.2)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 128)
        coo_k = get_kernel("coo")
        csr_k = get_kernel("cusparse-csr")
        t_coo = estimate_time(coo_k.profile(coo_k.prepare(csr), x), get_gpu("L40"))
        t_csr = estimate_time(csr_k.profile(csr_k.prepare(csr), x), get_gpu("L40"))
        assert t_coo.atomic > t_csr.atomic


class TestHYBKernel:
    def test_tail_fraction_drives_atomics(self, rng):
        csr = skewed_csr(rng)
        x = fp16_exact_values(rng, csr.ncols)
        kernel = get_kernel("hyb")
        prep = kernel.prepare(csr)
        profile = kernel.profile(prep, x)
        assert profile.stats.atomic_ops == prep.data.tail.nnz
        assert prep.data.tail.nnz > 0  # the heavy rows overflow the width


class TestSpadenWMMAVariant:
    def test_stages_shared_memory_spaden_does_not(self, rng):
        dense = make_random_dense(rng, 64, 64, 0.2)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 64)
        direct = get_kernel("spaden")
        wmma = get_kernel("spaden-wmma")
        p_direct = direct.profile(direct.prepare(csr), x)
        p_wmma = wmma.profile(wmma.prepare(csr), x)
        assert p_direct.stats.shared_bytes == 0
        assert p_wmma.stats.shared_bytes > 0
        # identical global traffic: the difference is pure staging
        assert p_direct.dram_bytes == p_wmma.dram_bytes

    def test_numerics_identical_to_spaden(self, rng):
        dense = make_random_dense(rng, 48, 48, 0.25)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, 48)
        direct = get_kernel("spaden")
        wmma = get_kernel("spaden-wmma")
        y1 = direct.run(direct.prepare(csr), x)
        y2 = wmma.run(wmma.prepare(csr), x)
        assert np.array_equal(y1, y2)

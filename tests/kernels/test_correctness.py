"""Every kernel computes the same SpMV as the scipy reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import KernelError
from repro.formats.convert import to_scipy
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import available_kernels, get_kernel
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense

ALL_KERNELS = available_kernels()


def build_case(rng, nrows=60, ncols=60, density=0.1):
    dense = make_random_dense(rng, nrows, ncols, density)
    csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
    x = fp16_exact_values(rng, ncols)
    ref = to_scipy(csr).astype(np.float64) @ x.astype(np.float64)
    return csr, x, ref


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestEveryKernel:
    def test_matches_reference(self, name, rng):
        csr, x, ref = build_case(rng)
        kernel = get_kernel(name)
        prep = kernel.prepare(csr)
        y = kernel.run(prep, x)
        assert np.allclose(y, ref, rtol=1e-3, atol=1e-2), name

    def test_prepared_operand_metadata(self, name, rng):
        csr, x, _ = build_case(rng)
        kernel = get_kernel(name)
        prep = kernel.prepare(csr)
        assert prep.kernel_name == name
        assert prep.shape == csr.shape
        assert prep.nnz == csr.nnz
        assert prep.device_bytes > 0
        assert prep.preprocessing_seconds > 0
        assert prep.bytes_per_nnz > 0

    def test_rejects_foreign_operand(self, name, rng):
        csr, x, _ = build_case(rng)
        kernel = get_kernel(name)
        other = next(k for k in ALL_KERNELS if k != name)
        foreign = get_kernel(other).prepare(csr)
        with pytest.raises(KernelError):
            kernel.run(foreign, x)

    def test_rejects_bad_x_shape(self, name, rng):
        csr, x, _ = build_case(rng)
        kernel = get_kernel(name)
        prep = kernel.prepare(csr)
        with pytest.raises(KernelError):
            kernel.run(prep, np.ones(csr.ncols + 3, dtype=np.float32))


@settings(max_examples=10, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.sampled_from([0.02, 0.15, 0.4]),
    st.integers(9, 80),
    st.integers(9, 80),
)
def test_all_kernels_agree_property(seed, density, nrows, ncols):
    """Property: all kernels produce the same y on arbitrary matrices."""
    rng = np.random.default_rng(seed)
    csr, x, ref = build_case(rng, nrows, ncols, density)
    results = {}
    for name in ALL_KERNELS:
        kernel = get_kernel(name)
        y = kernel.run(kernel.prepare(csr), x)
        assert np.allclose(y, ref, rtol=1e-3, atol=1e-2), name
        results[name] = y
    baseline = results["cusparse-csr"]
    for name, y in results.items():
        assert np.allclose(y, baseline, rtol=1e-3, atol=1e-2), name


def test_unknown_kernel_rejected():
    with pytest.raises(KernelError):
        get_kernel("warp-drive")


def test_registry_contains_all_evaluated_methods():
    expected = {
        "spaden",
        "spaden-no-tc",
        "cusparse-csr",
        "cusparse-bsr",
        "lightspmv",
        "gunrock",
        "dasp",
        "csr-warp16",
        "csr-scalar",
    }
    assert expected <= set(ALL_KERNELS)

"""Regression pins for the unpaired-final-block-row and tiny-shape paths.

Spaden pairs block rows two per warp; an odd block-row count leaves a
final *unpaired* block row whose warp issues only 2 broadcast pointer
reads instead of 4.  These tests pin the analytic profile == simulator
identity (every compared counter, exactly) on the shapes where that
path and other boundaries are exercised: odd/even block-row counts, a
single block row, a single warp, and empty matrices.
"""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import get_kernel
from repro.matrices.generators import fp16_exact_values

from tests.conftest import make_random_dense
from tests.kernels.test_profiles import COMPARED_FIELDS

# (nrows, ncols): 1 block row (unpaired), 2 (one full pair), 3 (pair +
# unpaired), 5 and 7 (odd counts, several warps), non-multiple-of-8 edges
EDGE_SHAPES = [
    (8, 16),  # exactly one block row -> one warp, odd
    (5, 12),  # one partial block row
    (16, 16),  # one full pair, no unpaired row
    (24, 16),  # 3 block rows: full pair + unpaired final
    (17, 9),  # 3 block rows with ragged edges
    (40, 8),  # 5 block rows
    (56, 24),  # 7 block rows
]


@pytest.mark.parametrize("nrows,ncols", EDGE_SHAPES)
class TestUnpairedFinalBlockRow:
    def test_profile_equals_simulator(self, nrows, ncols, rng):
        dense = make_random_dense(rng, nrows, ncols, 0.3)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, ncols)
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        profile = kernel.profile(prepared, x)
        y_sim, simulated = kernel.simulate(prepared, x)
        for field in COMPARED_FIELDS:
            assert getattr(profile.stats, field) == getattr(simulated, field), (
                f"{field} mismatch on {nrows}x{ncols}"
            )
        assert np.array_equal(kernel.run(prepared, x), y_sim)

    def test_odd_block_row_count_charges_two_pointer_loads(self, nrows, ncols, rng):
        """The final unpaired warp reads 2 row pointers, not 4."""
        dense = make_random_dense(rng, nrows, ncols, 0.3)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        nbrows = prepared.data.block_rows_count
        expected_warps = -(-nbrows // 2)
        profile = kernel.profile(prepared, fp16_exact_values(rng, ncols))
        assert profile.stats.warps_launched == expected_warps


class TestEmptyMatrixProfile:
    @pytest.mark.parametrize(
        "shape",
        [(24, 16), (8, 8), (0, 16), (24, 0)],
        ids=["nnz-zero", "one-block", "zero-rows", "zero-cols"],
    )
    def test_profile_equals_simulator_on_empty(self, shape):
        nrows, ncols = shape
        csr = CSRMatrix(
            shape, np.zeros(nrows + 1, np.int64), np.zeros(0, np.int32), np.zeros(0, np.float32)
        )
        kernel = get_kernel("spaden")
        prepared = kernel.prepare(csr)
        x = np.ones(ncols, np.float32)
        profile = kernel.profile(prepared, x)
        y_sim, simulated = kernel.simulate(prepared, x)
        for field in COMPARED_FIELDS:
            assert getattr(profile.stats, field) == getattr(simulated, field), field
        assert y_sim.shape == (nrows,)
        assert not np.asarray(y_sim).any()

"""SuiteSparse loader tests (real-file path exercised via tmp files)."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.formats.mmio import write_matrix_market
from repro.matrices.loader import load_matrix, suitesparse_dir
from repro.matrices.random import random_coo
from repro.matrices.registry import get_spec


class TestLoader:
    def test_synthetic_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
        loaded = load_matrix("raefsky3", scale=0.02)
        assert loaded.source == "synthetic"
        assert loaded.path is None
        assert loaded.coo.nnz > 0

    def test_real_file_preferred(self, monkeypatch, tmp_path):
        spec = get_spec("raefsky3")
        fake = random_coo(spec.nrow, spec.nrow, 1e-5, seed=3)
        write_matrix_market(fake, tmp_path / "raefsky3.mtx")
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
        loaded = load_matrix("raefsky3")
        assert loaded.source == "suitesparse"
        assert loaded.path == tmp_path / "raefsky3.mtx"
        assert loaded.coo.nnz == fake.nnz

    def test_stem_mapping(self, monkeypatch, tmp_path):
        spec = get_spec("conf5")
        fake = random_coo(spec.nrow, spec.nrow, 1e-6, seed=4)
        write_matrix_market(fake, tmp_path / "conf5_4-8x8-05.mtx")
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
        assert load_matrix("conf5").source == "suitesparse"

    def test_dimension_mismatch_rejected(self, monkeypatch, tmp_path):
        fake = random_coo(10, 10, 0.2, seed=5)
        write_matrix_market(fake, tmp_path / "raefsky3.mtx")
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
        with pytest.raises(DatasetError):
            load_matrix("raefsky3")

    def test_missing_file_falls_back(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", str(tmp_path))
        assert load_matrix("cant", scale=0.02).source == "synthetic"

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_matrix("not-a-matrix")

    def test_suitesparse_dir_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITESPARSE_DIR", raising=False)
        assert suitesparse_dir() is None
        monkeypatch.setenv("REPRO_SUITESPARSE_DIR", "/data")
        assert str(suitesparse_dir()) == "/data"

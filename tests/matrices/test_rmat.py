"""R-MAT generator tests."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.matrices.rmat import rmat_graph


class TestRMAT:
    def test_shape_and_size(self):
        g = rmat_graph(8, edge_factor=8, seed=1)
        assert g.shape == (256, 256)
        assert 0 < g.nnz <= 8 * 256

    def test_pattern_weights_are_unit(self):
        g = rmat_graph(7, seed=2)
        assert set(np.unique(g.values)) == {1.0}

    def test_weighted_values_positive_fp16_exact(self):
        g = rmat_graph(7, seed=3, weighted=True)
        assert (g.values > 0).all()
        assert np.array_equal(g.values, g.values.astype(np.float16).astype(np.float32))

    def test_skewed_degree_distribution(self):
        """a >> b,c,d concentrates edges on low vertex ids (hub skew)."""
        g = rmat_graph(10, edge_factor=16, seed=4)
        degrees = np.bincount(g.rows, minlength=1024)
        top = np.sort(degrees)[::-1]
        # the top 10% of vertices hold well over half the edges
        assert top[:102].sum() > 0.4 * g.nnz

    def test_uniform_probabilities_are_not_skewed(self):
        g = rmat_graph(10, edge_factor=16, a=0.25, b=0.25, c=0.25, seed=5)
        degrees = np.bincount(g.rows, minlength=1024)
        top = np.sort(degrees)[::-1]
        assert top[:102].sum() < 0.3 * g.nnz

    def test_reproducible(self):
        a = rmat_graph(7, seed=9)
        b = rmat_graph(7, seed=9)
        assert np.array_equal(a.rows, b.rows) and np.array_equal(a.cols, b.cols)

    def test_validation(self):
        with pytest.raises(DatasetError):
            rmat_graph(0)
        with pytest.raises(DatasetError):
            rmat_graph(5, a=0.9, b=0.2, c=0.2)

    def test_feeds_spmv_pipeline(self):
        from repro.core.builder import build_bitbsr
        from repro.core.spmv import spaden_spmv

        g = rmat_graph(9, seed=11, weighted=True)
        bit = build_bitbsr(g).matrix
        x = np.ones(g.ncols, dtype=np.float32)
        y = spaden_spmv(bit, x)
        ref = g.matvec(x)
        assert np.allclose(y, ref, rtol=1e-3, atol=1e-2)

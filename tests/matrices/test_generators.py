"""Dataset generator tests: calibration against Table 1 and Fig. 9a."""

import numpy as np
import pytest

from repro.core.analysis import categorize_blocks
from repro.errors import DatasetError
from repro.matrices import (
    generate_matrix,
    get_spec,
    in_scope_names,
    matrix_names,
    matrix_stats,
    random_banded,
    random_coo,
)

SCALE = 0.03


class TestRegistry:
    def test_fourteen_matrices(self):
        assert len(matrix_names()) == 14

    def test_twelve_in_scope(self):
        """The two bottom matrices do NOT meet the selection criteria."""
        assert len(in_scope_names()) == 12
        assert "scircuit" not in in_scope_names()
        assert "webbase1M" not in in_scope_names()

    def test_table1_values_preserved(self):
        spec = get_spec("pwtk")
        assert (spec.nrow, spec.nnz, spec.block_nrow, spec.block_nnz) == (
            217_918, 11_634_424, 27_240, 357_758,
        )

    def test_selection_criteria_consistent(self):
        """In-scope specs satisfy nrow > 10,000 and nnz/nrow > 32."""
        for name in in_scope_names():
            spec = get_spec(name)
            assert spec.nrow > 10_000
            assert spec.nnz_per_row > 32

    def test_out_of_scope_are_low_degree(self):
        for name in ("scircuit", "webbase1M"):
            assert get_spec(name).nnz_per_row < 6

    def test_unknown_matrix(self):
        with pytest.raises(DatasetError):
            get_spec("bcsstk99")


@pytest.mark.parametrize("name", matrix_names())
class TestCalibration:
    def test_nnz_and_block_count_hit_targets(self, name):
        g = generate_matrix(name, scale=SCALE)
        spec = g.spec
        assert abs(g.nnz - spec.nnz * SCALE) / (spec.nnz * SCALE) < 0.03
        assert abs(g.block_nnz - spec.block_nnz * SCALE) / (spec.block_nnz * SCALE) < 0.03

    def test_block_mix_matches_fig9a(self, name):
        g = generate_matrix(name, scale=SCALE)
        prof = categorize_blocks(g.bitbsr)
        fs, fm, fd = g.spec.mix
        assert abs(prof.sparse_ratio - fs) < 0.08
        assert abs(prof.dense_ratio - fd) < 0.08

    def test_reproducible(self, name):
        a = generate_matrix(name, scale=SCALE)
        b = generate_matrix(name, scale=SCALE)
        assert np.array_equal(a.bitbsr.bitmaps, b.bitbsr.bitmaps)
        assert np.array_equal(a.bitbsr.values, b.bitbsr.values)

    def test_csr_view_agrees(self, name):
        g = generate_matrix(name, scale=SCALE)
        assert g.csr.nnz == g.bitbsr.nnz
        x = g.dense_vector()
        y1 = g.csr.matvec(x)
        y2 = g.bitbsr.matvec(x)
        assert np.allclose(y1, y2, rtol=1e-3, atol=1e-2)


class TestScaling:
    def test_scale_bounds(self):
        with pytest.raises(DatasetError):
            generate_matrix("pwtk", scale=0.0)
        with pytest.raises(DatasetError):
            generate_matrix("pwtk", scale=1.5)

    def test_structure_is_scale_invariant(self):
        """Block-density mixes survive scaling (what makes reduced-scale
        benchmarking valid for Figs. 9/10b)."""
        small = categorize_blocks(generate_matrix("consph", scale=0.02).bitbsr)
        large = categorize_blocks(generate_matrix("consph", scale=0.08).bitbsr)
        assert abs(small.sparse_ratio - large.sparse_ratio) < 0.05


class TestMatrixStats:
    def test_stats_from_csr_and_bitbsr_agree(self):
        g = generate_matrix("cant", scale=SCALE)
        s1 = matrix_stats(g.bitbsr)
        s2 = matrix_stats(g.csr)
        assert s1.nnz == s2.nnz
        assert s1.block_nnz == s2.block_nnz
        assert s1.table1_row("cant")["Bnnz"] == g.block_nnz


class TestRandomGenerators:
    def test_random_coo_density(self):
        coo = random_coo(100, 100, 0.1, seed=3)
        assert coo.nnz == pytest.approx(1000, abs=50)

    def test_random_coo_bounds(self):
        with pytest.raises(DatasetError):
            random_coo(10, 10, 1.5)

    def test_random_banded_band(self):
        coo = random_banded(64, 3, fill=1.0, seed=1)
        assert (np.abs(coo.rows.astype(int) - coo.cols.astype(int)) <= 3).all()

    def test_fp16_exact_values(self):
        coo = random_coo(50, 50, 0.2, seed=5)
        as16 = coo.values.astype(np.float16).astype(np.float32)
        assert np.array_equal(as16, coo.values)

"""The concurrent multi-tenant front-end: correctness under real threads.

The contract under test is the serving restatement of the engine's
batching guarantee: however requests arrive — many threads, many
tenants, coalesced into whatever micro-batches the flush policy picks —
every admitted request resolves with either the bitwise-identical
result a serial :meth:`~repro.engine.SpMVEngine.spmv` would produce or
a structured error.  Plus the front-door behaviors around it: admission
control, quotas, deadlines, drain-on-close, and the ``serve_*``
metrics.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    KernelError,
    ServeError,
)
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.obs import get_registry, reset_observability
from repro.resilience import ManualClock
from repro.serve import FlushPolicy, ServeFrontend, TenantQuota

from tests.conftest import make_random_dense


@pytest.fixture(autouse=True)
def clean_observability():
    reset_observability()
    yield
    reset_observability()


def _csr(rng, nrows=48, ncols=40) -> CSRMatrix:
    return CSRMatrix.from_coo(
        COOMatrix.from_dense(make_random_dense(rng, nrows, ncols, 0.12))
    )


def _counter_value(name, help_text, label_names, **labels) -> float:
    return get_registry().counter(name, help_text, labels=label_names).value(**labels)


class TestRegistration:
    def test_duplicate_matrix_name_is_rejected(self, rng):
        with ServeFrontend(SpMVEngine("spaden"), workers=1) as frontend:
            frontend.register_matrix("A", _csr(rng))
            with pytest.raises(ServeError):
                frontend.register_matrix("A", _csr(rng))
            assert frontend.matrices() == ["A"]

    def test_unknown_matrix_is_rejected_at_submit(self, rng):
        with ServeFrontend(SpMVEngine("spaden"), workers=1) as frontend:
            with pytest.raises(ServeError):
                frontend.submit("nope", np.ones(8, np.float32))

    def test_closed_frontend_rejects_submissions(self, rng):
        frontend = ServeFrontend(SpMVEngine("spaden"), workers=1)
        frontend.register_matrix("A", _csr(rng))
        frontend.close()
        with pytest.raises(ServeError):
            frontend.submit("A", np.ones(40, np.float32))
        frontend.close()  # idempotent


class TestMalformedRequests:
    def test_shape_invalid_vector_rejected_before_admission(self, rng):
        csr = _csr(rng)
        with ServeFrontend(SpMVEngine("spaden"), workers=1) as frontend:
            frontend.register_matrix("A", csr)
            with pytest.raises(KernelError):
                frontend.submit("A", np.ones(csr.ncols + 1, np.float32))
            # nothing admitted, nothing counted, nothing in flight
            assert frontend.queue_depth("default") == 0
            assert frontend.engine.stats.requests == 0

            # the queue still drains: a valid request after the rejection
            x = rng.standard_normal(csr.ncols).astype(np.float32)
            ticket = frontend.submit("A", x)
            assert np.array_equal(ticket.result(timeout=10), SpMVEngine("spaden").spmv(csr, x))


class TestBitwiseCorrectness:
    def test_concurrent_multitenant_traffic_matches_serial_bitwise(self, rng):
        """The acceptance scenario: >=4 threads, >=2 tenants, many matrices."""
        csrs = {"A": _csr(rng, 48, 40), "B": _csr(rng, 56, 40), "C": _csr(rng, 64, 40)}
        serial = SpMVEngine("spaden")
        xs = [rng.standard_normal(40).astype(np.float32) for _ in range(6)]
        names = list(csrs)
        plan = [
            (names[i % 3], xs[i % len(xs)], f"tenant-{i % 3}") for i in range(60)
        ]
        references = {
            (name, j): serial.spmv(csrs[name], xs[j])
            for name in names
            for j in range(len(xs))
        }

        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=4,
            flush_policy=FlushPolicy(max_batch=8, max_wait_seconds=0.002),
        )
        for name, csr in csrs.items():
            frontend.register_matrix(name, csr)

        tickets = []
        ticket_lock = threading.Lock()

        def client(share):
            for name, x, tenant in share:
                ticket = frontend.submit(name, x, tenant=tenant)
                with ticket_lock:
                    tickets.append((name, x, ticket))

        with ThreadPoolExecutor(4) as pool:
            list(pool.map(client, [plan[i::4] for i in range(4)]))
        frontend.close()

        assert len(tickets) == len(plan)  # zero lost
        for name, x, ticket in tickets:
            assert ticket.error() is None
            j = next(k for k, cand in enumerate(xs) if cand is x)
            assert np.array_equal(ticket.result(), references[(name, j)])

    def test_traffic_actually_coalesced(self, rng):
        csr = _csr(rng)
        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=2,
            flush_policy=FlushPolicy(max_batch=16, max_wait_seconds=0.05),
        )
        frontend.register_matrix("A", csr)
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(16)]
        tickets = [frontend.submit("A", x) for x in xs]
        frontend.close()
        assert all(t.error() is None for t in tickets)
        stats = frontend.engine.stats
        assert stats.requests == 16
        assert stats.batches < 16  # coalescing factor > 1
        assert (
            _counter_value(
                "serve_admitted_total",
                "Requests admitted by the serving front-end.",
                ("tenant",),
                tenant="default",
            )
            == 16
        )


class TestQuotas:
    def test_queue_depth_quota_rejects_structurally(self, rng):
        csr = _csr(rng)
        clock = ManualClock()
        # a frozen clock never ages the group past max_wait, and the
        # batch never fills: admitted requests stay in flight
        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=1,
            flush_policy=FlushPolicy(max_batch=64, max_wait_seconds=5.0),
            clock=clock,
        )
        frontend.register_matrix("A", csr)
        frontend.set_quota("t0", TenantQuota(max_queue_depth=2))
        x = rng.standard_normal(csr.ncols).astype(np.float32)

        frontend.submit("A", x, tenant="t0")
        frontend.submit("A", x, tenant="t0")
        assert frontend.queue_depth("t0") == 2
        with pytest.raises(AdmissionError) as excinfo:
            frontend.submit("A", x, tenant="t0")
        err = excinfo.value
        assert err.tenant == "t0"
        assert err.reason == "queue-depth"
        assert err.limit == 2.0
        assert err.current == 2.0
        # other tenants are unaffected by t0's quota
        other = frontend.submit("A", x, tenant="t1")
        assert (
            _counter_value(
                "serve_admission_rejected_total",
                "Requests rejected by admission control, by quota reason.",
                ("tenant", "reason"),
                tenant="t0",
                reason="queue-depth",
            )
            == 1
        )
        clock.advance(6.0)
        frontend.poke()
        frontend.close()
        assert other.error() is None

    def test_rate_quota_uses_the_injected_clock(self, rng):
        csr = _csr(rng)
        clock = ManualClock()
        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=1,
            flush_policy=FlushPolicy(max_batch=4, max_wait_seconds=0.0),
            clock=clock,
        )
        frontend.register_matrix("A", csr)
        frontend.set_quota("t0", TenantQuota(max_requests_per_second=1.0, burst=2))
        x = rng.standard_normal(csr.ncols).astype(np.float32)

        frontend.submit("A", x, tenant="t0")
        frontend.submit("A", x, tenant="t0")
        with pytest.raises(AdmissionError) as excinfo:
            frontend.submit("A", x, tenant="t0")
        assert excinfo.value.reason == "rate"
        clock.advance(1.0)  # one token refills at 1 req/s
        ticket = frontend.submit("A", x, tenant="t0")
        frontend.close()
        assert ticket.error() is None


class TestDeadlines:
    def test_expired_request_resolves_with_deadline_error(self, rng):
        csr = _csr(rng)
        clock = ManualClock()
        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=1,
            flush_policy=FlushPolicy(max_batch=64, max_wait_seconds=100.0),
            clock=clock,
        )
        frontend.register_matrix("A", csr)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        doomed = frontend.submit("A", x, tenant="t0", deadline_seconds=5.0)
        clock.advance(6.0)  # past the deadline, before any flush trigger
        frontend.poke()
        assert isinstance(doomed.error(timeout=10), DeadlineExceededError)
        frontend.close()
        assert (
            _counter_value(
                "serve_requests_total",
                "Requests resolved by the front-end, by final outcome.",
                ("tenant", "outcome"),
                tenant="t0",
                outcome="deadline",
            )
            == 1
        )

    def test_deadline_pressure_flushes_early(self, rng):
        csr = _csr(rng)
        clock = ManualClock()
        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=1,
            flush_policy=FlushPolicy(
                max_batch=64, max_wait_seconds=100.0, deadline_slack_seconds=2.0
            ),
            clock=clock,
        )
        frontend.register_matrix("A", csr)
        x = rng.standard_normal(csr.ncols).astype(np.float32)
        ticket = frontend.submit("A", x, deadline_seconds=10.0)
        clock.advance(9.0)  # 1s of budget left, inside the 2s slack
        frontend.poke()
        # flushed by deadline pressure with budget remaining: it succeeds
        assert ticket.error(timeout=10) is None
        assert np.array_equal(ticket.result(), SpMVEngine("spaden").spmv(csr, x))
        frontend.close()


class TestDrain:
    def test_close_resolves_everything_pending(self, rng):
        csr = _csr(rng)
        clock = ManualClock()
        frontend = ServeFrontend(
            SpMVEngine("spaden"),
            workers=2,
            flush_policy=FlushPolicy(max_batch=64, max_wait_seconds=100.0),
            clock=clock,
        )
        frontend.register_matrix("A", csr)
        xs = [rng.standard_normal(csr.ncols).astype(np.float32) for _ in range(5)]
        tickets = [frontend.submit("A", x) for x in xs]
        # nothing is due under the frozen clock; close() must drain
        frontend.close()
        for ticket, x in zip(tickets, xs):
            assert ticket.error() is None
            assert np.array_equal(ticket.result(), SpMVEngine("spaden").spmv(csr, x))

    def test_run_report_carries_frontend_meta(self, rng):
        with ServeFrontend(SpMVEngine("spaden"), workers=1) as frontend:
            frontend.register_matrix("A", _csr(rng))
            report = frontend.run_report(meta={"suite": "unit"})
        assert report.meta["frontend"] == "serve"
        assert report.meta["matrices"] == ["A"]
        assert report.meta["suite"] == "unit"

"""Unit coverage for the pure serving pieces: flush policy and quotas.

Both are deliberately thread-free and clock-injected, so every branch
is exercised here against a :class:`~repro.resilience.ManualClock`
without spawning the front-end at all.
"""

import pytest

from repro.errors import ServeError
from repro.resilience import ManualClock
from repro.serve import FlushPolicy, TenantQuota, TokenBucket


class TestFlushPolicy:
    def test_triggers_fire_in_priority_order(self):
        policy = FlushPolicy(max_batch=4, max_wait_seconds=0.5, deadline_slack_seconds=0.1)
        # full batch wins even with time pressure present
        assert (
            policy.decide(size=4, oldest_age=9.0, min_expires_in=0.0) == "max-batch"
        )
        assert policy.decide(size=2, oldest_age=0.6, min_expires_in=0.0) == "max-wait"
        assert policy.decide(size=2, oldest_age=0.1, min_expires_in=0.05) == "deadline"
        assert policy.decide(size=2, oldest_age=0.1, min_expires_in=None) is None
        assert policy.decide(size=0, oldest_age=99.0, min_expires_in=0.0) is None

    def test_deadline_slack_leaves_execution_budget(self):
        eager = FlushPolicy(max_batch=8, max_wait_seconds=10.0, deadline_slack_seconds=2.0)
        assert eager.decide(size=1, oldest_age=0.0, min_expires_in=1.5) == "deadline"
        assert eager.decide(size=1, oldest_age=0.0, min_expires_in=2.5) is None

    def test_due_in_tracks_the_nearest_time_trigger(self):
        policy = FlushPolicy(max_batch=8, max_wait_seconds=1.0, deadline_slack_seconds=0.25)
        assert policy.due_in(oldest_age=0.2, min_expires_in=None) == pytest.approx(0.8)
        assert policy.due_in(oldest_age=0.2, min_expires_in=0.5) == pytest.approx(0.25)
        # already due clamps at zero, never negative
        assert policy.due_in(oldest_age=5.0, min_expires_in=None) == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_wait_seconds": -0.1},
            {"deadline_slack_seconds": -1.0},
        ],
    )
    def test_misconfiguration_is_a_structured_error(self, kwargs):
        with pytest.raises(ServeError):
            FlushPolicy(**kwargs)


class TestTenantQuota:
    def test_capacity_defaults_to_one_second_of_rate(self):
        assert TenantQuota(max_requests_per_second=5.0).capacity == 5.0
        assert TenantQuota(max_requests_per_second=0.5).capacity == 1.0
        assert TenantQuota(max_requests_per_second=5.0, burst=2).capacity == 2.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_requests_per_second": 0.0},
            {"max_requests_per_second": -1.0},
            {"burst": 0},
        ],
    )
    def test_misconfiguration_is_a_structured_error(self, kwargs):
        with pytest.raises(ServeError):
            TenantQuota(**kwargs)


class TestTokenBucket:
    def test_starts_full_then_rejects_past_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=1.0, capacity=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(5)] == [
            True,
            True,
            True,
            False,
            False,
        ]

    def test_refills_continuously_at_rate(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(0.25)  # half a token: still short
        assert not bucket.try_acquire()
        clock.advance(0.25)  # now a full token has accrued
        assert bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(2.0)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_invalid_parameters_are_structured_errors(self):
        clock = ManualClock()
        with pytest.raises(ServeError):
            TokenBucket(rate=0.0, capacity=1.0, clock=clock)
        with pytest.raises(ServeError):
            TokenBucket(rate=1.0, capacity=0.5, clock=clock)

"""The seeded load generator: invariants, shape, and the trajectory file.

The load harness is the serving acceptance gate, so its own invariants
get tested: no admitted request may be lost, no served vector may
differ bitwise from the serial reference, percentiles must be ordered,
quota probing must produce structured rejections, and campaigns must
round-trip through the ``BENCH_serve.json`` trajectory.
"""

import json

import numpy as np
import pytest

from repro.bench.load import (
    append_serve_trajectory,
    bench_load,
    format_load_report,
    zipf_weights,
)
from repro.errors import ObservabilityError, ServeError
from repro.obs import reset_observability


@pytest.fixture(autouse=True)
def clean_observability():
    reset_observability()
    yield
    reset_observability()


@pytest.fixture(scope="module")
def campaign():
    """One small open-loop campaign shared by the read-only assertions."""
    return bench_load(
        48, 48, 0.08, matrices=2, requests=24, workers=4, tenants=2, seed=7
    )


class TestZipfWeights:
    def test_normalized_and_rank_decreasing(self):
        weights = zipf_weights(5, 1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        assert np.allclose(zipf_weights(4, 0.0), 0.25)

    def test_needs_at_least_one_rank(self):
        with pytest.raises(ServeError):
            zipf_weights(0, 1.1)


class TestInvariants:
    def test_nothing_lost_nothing_incorrect(self, campaign):
        assert campaign.lost == 0
        assert campaign.incorrect == 0
        assert campaign.admitted == campaign.completed + campaign.errors

    def test_quota_probe_produces_structured_rejections(self, campaign):
        assert campaign.rejected.get("rate", 0) >= 1

    def test_percentiles_are_ordered(self, campaign):
        assert 0.0 <= campaign.latency_p50 <= campaign.latency_p95 <= campaign.latency_p99

    def test_traffic_coalesces(self, campaign):
        assert campaign.batches >= 1
        assert campaign.coalescing > 1.0

    def test_report_folds_observability(self, campaign):
        names = {m["name"] for m in campaign.run_report["metrics"]["metrics"]}
        assert "serve_admitted_total" in names
        assert "serve_admission_rejected_total" in names

    def test_closed_loop_holds_the_same_invariants(self):
        result = bench_load(
            48, 48, 0.08, matrices=2, requests=16, workers=2, tenants=2,
            mode="closed", seed=11,
        )
        assert result.mode == "closed"
        assert result.lost == 0
        assert result.incorrect == 0
        assert result.rejected.get("rate", 0) >= 1

    def test_invalid_configuration_is_structured(self):
        with pytest.raises(ServeError):
            bench_load(16, 16, 0.1, mode="sideways")
        with pytest.raises(ServeError):
            bench_load(16, 16, 0.1, workers=0)


class TestTrajectory:
    def test_append_accumulates_and_round_trips(self, campaign, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        assert append_serve_trajectory(path, campaign) == 1
        assert append_serve_trajectory(path, campaign) == 2
        trajectory = json.loads(path.read_text())
        assert len(trajectory) == 2
        assert trajectory[0]["campaign"] == trajectory[1]["campaign"]
        entry = trajectory[0]["campaign"]
        assert entry["mode"] == "open"
        assert entry["lost"] == 0
        assert entry["incorrect"] == 0
        assert "run_report" not in entry  # folded report lives beside it
        assert trajectory[0]["report"] == campaign.run_report

    def test_refuses_to_clobber_foreign_files(self, campaign, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text('{"not": "a trajectory"}')
        with pytest.raises(ObservabilityError):
            append_serve_trajectory(path, campaign)
        path.write_text("not json at all")
        with pytest.raises(ObservabilityError):
            append_serve_trajectory(path, campaign)


class TestReport:
    def test_report_names_the_verdict_and_tallies(self, campaign):
        text = format_load_report(campaign)
        assert "serve load campaign" in text
        assert "PASS" in text
        assert "0 lost, 0 bitwise-incorrect" in text
        assert "rate=" in text
        assert "coalescing x" in text

"""Exporters: Prometheus text rendering and the JSON-lines codec."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, read_jsonl, to_prometheus, write_jsonl


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestPrometheus:
    def test_counter_and_gauge_lines(self, registry):
        registry.counter("events_total", "Events seen.", labels=("kind",)).inc(
            2, kind="hit"
        )
        registry.gauge("resident_bytes", "Bytes held.").set(640)
        text = to_prometheus(registry)
        assert "# HELP events_total Events seen." in text
        assert "# TYPE events_total counter" in text
        assert 'events_total{kind="hit"} 2' in text
        assert "# TYPE resident_bytes gauge" in text
        assert "resident_bytes 640" in text
        assert text.endswith("\n")

    def test_histogram_expansion(self, registry):
        h = registry.histogram("stage_seconds", labels=("stage",), buckets=(0.1, 1.0))
        h.observe(0.05, stage="run")
        h.observe(0.5, stage="run")
        text = to_prometheus(registry)
        assert 'stage_seconds_bucket{stage="run",le="0.1"} 1' in text
        assert 'stage_seconds_bucket{stage="run",le="1"} 2' in text
        assert 'stage_seconds_bucket{stage="run",le="+Inf"} 2' in text
        assert 'stage_seconds_sum{stage="run"} 0.55' in text
        assert 'stage_seconds_count{stage="run"} 2' in text

    def test_label_escaping(self, registry):
        registry.counter("c_total", labels=("detail",)).inc(detail='say "hi"\nbye')
        text = to_prometheus(registry)
        assert r'c_total{detail="say \"hi\"\nbye"} 1' in text

    def test_empty_registry_renders_empty(self, registry):
        assert to_prometheus(registry) == ""


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = [{"record": "meta", "data": {"k": 1}}, {"record": "span", "data": {}}]
        path = tmp_path / "events.jsonl"
        assert write_jsonl(path, events) == 2
        assert read_jsonl(path) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"b": 2}]

    def test_malformed_line_names_its_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"a": 1}\n{not json\n')
        with pytest.raises(ObservabilityError, match="events.jsonl:2"):
            read_jsonl(path)

    def test_non_object_event_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ObservabilityError, match="must be a JSON object"):
            read_jsonl(path)

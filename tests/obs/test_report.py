"""RunReport: building from live producers and lossless round trips."""

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.errors import ObservabilityError
from repro.formats.csr import CSRMatrix
from repro.obs import (
    SCHEMA_VERSION,
    RunReport,
    build_run_report,
    format_run_report,
)


@pytest.fixture
def engine_report(small_coo, rng) -> RunReport:
    csr = CSRMatrix.from_coo(small_coo)
    X = rng.standard_normal((3, csr.ncols)).astype(np.float32)
    engine = SpMVEngine("spaden")
    engine.spmv_many([(csr, x) for x in X])
    engine.spmv(csr, X[0])
    return engine.run_report(meta={"source": "test"})


class TestBuild:
    def test_engine_supplies_every_section(self, engine_report):
        report = engine_report
        assert report.schema_version == SCHEMA_VERSION
        assert report.meta["source"] == "test"
        assert report.meta["kernel"] == "spaden"
        assert report.engine_stats["requests"] == 4
        assert report.engine_stats["batches"] == 2
        # nested silos live in their own sections, not inside engine_stats
        assert "execution" not in report.engine_stats
        assert "degradation_log" not in report.engine_stats
        assert report.cache_stats["hits"] == 1 and report.cache_stats["misses"] == 1
        assert report.degradation_events == []
        assert any(s["name"] == "engine.batch" for s in report.spans)
        names = [m["name"] for m in report.metrics["metrics"]]
        assert "engine_requests_total" in names
        assert "operand_cache_events_total" in names

    def test_all_payloads_json_native(self, engine_report):
        import json

        d = engine_report.as_dict()
        assert json.loads(json.dumps(d)) == d

    def test_empty_build_defaults(self):
        report = build_run_report(meta={"only": "meta"})
        assert report.kernel_stats == {}
        assert report.cache_stats == {}
        assert report.engine_stats == {}
        assert report.sanitizer == {}
        assert report.degradation_events == []


class TestRoundTrip:
    def test_jsonl_lines_round_trip_equal(self, engine_report):
        lines = engine_report.to_jsonl_lines()
        assert engine_report == RunReport.from_jsonl_lines(lines)

    def test_file_round_trip_equal(self, engine_report, tmp_path):
        path = tmp_path / "report.jsonl"
        n = engine_report.write_jsonl(path)
        assert n == len(engine_report.to_events())
        assert RunReport.load_jsonl(path) == engine_report

    def test_event_stream_shape(self, engine_report):
        events = engine_report.to_events()
        assert events[0]["record"] == "meta"
        assert events[0]["schema_version"] == SCHEMA_VERSION
        records = {e["record"] for e in events}
        assert {"kernel_stats", "cache_stats", "engine_stats", "metrics", "span"} <= records

    def test_unknown_record_rejected(self):
        events = [
            {"record": "meta", "schema_version": SCHEMA_VERSION, "data": {}},
            {"record": "surprise", "data": {}},
        ]
        with pytest.raises(ObservabilityError, match="unknown run-report record"):
            RunReport.from_events(events)

    def test_missing_meta_rejected(self):
        with pytest.raises(ObservabilityError, match="no 'meta' header"):
            RunReport.from_events([{"record": "span", "data": {}}])

    def test_schema_mismatch_rejected(self):
        events = [{"record": "meta", "schema_version": SCHEMA_VERSION + 1, "data": {}}]
        with pytest.raises(ObservabilityError, match="unsupported"):
            RunReport.from_events(events)

    def test_malformed_line_rejected_with_lineno(self):
        with pytest.raises(ObservabilityError, match="line 2"):
            RunReport.from_jsonl_lines(['{"record": "meta"}', "{oops"])


class TestFormat:
    def test_summary_mentions_every_populated_section(self, engine_report):
        text = format_run_report(engine_report)
        assert text.startswith("== RunReport ==")
        assert "source=test" in text
        assert "engine: 4 requests in 2 batches" in text
        assert "cache: 1 hits / 1 misses" in text
        assert "degradations: 0" in text
        assert "engine.batch" in text
        assert "metrics:" in text

    def test_degradation_lines(self):
        report = RunReport(
            meta={"m": 1},
            degradation_events=[
                {
                    "kernel": "spaden",
                    "stage": "verify",
                    "cause": "BitmapPopcountError",
                    "detail": "bad popcount",
                    "fallback": "spaden-no-tc",
                }
            ],
        )
        text = format_run_report(report)
        assert "degradations: 1" in text
        assert "[spaden/verify] BitmapPopcountError: bad popcount -> spaden-no-tc" in text

"""Metrics registry semantics: kinds, labels, idempotency, snapshots."""

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_metrics,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_accumulates_per_label_series(self, registry):
        c = registry.counter("events_total", "Events.", labels=("kind",))
        c.inc(kind="hit")
        c.inc(3, kind="hit")
        c.inc(kind="miss")
        assert c.value(kind="hit") == 4
        assert c.value(kind="miss") == 1
        assert c.value(kind="never") == 0

    def test_rejects_decrease(self, registry):
        c = registry.counter("events_total")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            c.inc(-1)

    def test_rejects_label_mismatch(self, registry):
        c = registry.counter("events_total", labels=("kind",))
        with pytest.raises(ObservabilityError, match="takes labels"):
            c.inc(flavor="hit")
        with pytest.raises(ObservabilityError, match="takes labels"):
            c.inc()  # missing the declared label

    def test_label_values_stringified(self, registry):
        c = registry.counter("events_total", labels=("position",))
        c.inc(position=0)
        assert c.value(position="0") == 1


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("resident_bytes", labels=("cache",))
        g.set(100, cache="a")
        g.inc(50, cache="a")
        g.dec(25, cache="a")
        assert g.value(cache="a") == 125
        assert g.value(cache="b") == 0


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        h = registry.histogram("seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        series = h.series()[()]
        # cumulative: <=0.1 -> 1, <=1.0 -> 3, <=10.0 -> 4; count holds all 5
        assert series["buckets"] == [1, 3, 4]
        assert series["count"] == 5
        assert series["sum"] == pytest.approx(56.05)
        assert h.count() == 5 and h.sum() == pytest.approx(56.05)

    def test_needs_buckets(self, registry):
        with pytest.raises(ObservabilityError, match="at least one bucket"):
            registry.histogram("seconds", buckets=())

    def test_buckets_sorted(self, registry):
        h = registry.histogram("seconds", buckets=(10.0, 0.1, 1.0))
        assert h.buckets == (0.1, 1.0, 10.0)


class TestRegistry:
    def test_registration_idempotent(self, registry):
        a = registry.counter("x_total", "Help.", labels=("k",))
        b = registry.counter("x_total", "Help.", labels=("k",))
        assert a is b
        assert len(registry) == 1

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ObservabilityError, match="already registered as counter"):
            registry.gauge("x_total")

    def test_label_schema_conflict_rejected(self, registry):
        registry.counter("x_total", labels=("a",))
        with pytest.raises(ObservabilityError, match="already registered with labels"):
            registry.counter("x_total", labels=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ObservabilityError, match="invalid metric name"):
            registry.counter("1bad")
        with pytest.raises(ObservabilityError, match="invalid label name"):
            registry.counter("ok_total", labels=("bad-label",))

    def test_as_dict_is_json_ready(self, registry):
        c = registry.counter("x_total", "Help.", labels=("k",))
        c.inc(k="a")
        snapshot = registry.as_dict()
        [metric] = snapshot["metrics"]
        assert metric["name"] == "x_total"
        assert metric["kind"] == "counter"
        assert metric["series"] == [{"labels": {"k": "a"}, "value": 1}]

    def test_contains_and_get(self, registry):
        registry.gauge("g")
        assert "g" in registry and isinstance(registry.get("g"), Gauge)
        assert "absent" not in registry and registry.get("absent") is None

    def test_metric_kinds(self, registry):
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)


class TestGlobalRegistry:
    def test_reset_drops_registrations(self):
        get_registry().counter("tmp_total").inc()
        assert "tmp_total" in get_registry()
        reset_metrics()
        assert "tmp_total" not in get_registry()
        assert len(get_registry()) == 0

"""The seam is wired: every producer emits spans and metrics, and none
of it perturbs numeric results or simulator counters (the bitwise
identity contract)."""

import numpy as np
import pytest

from repro.engine import SpMVEngine
from repro.errors import KernelError
from repro.exec import ExecutionMode, execute, execute_chain
from repro.formats.csr import CSRMatrix
from repro.obs import get_registry, get_span_log, reset_observability
from repro.robustness import dispatch_spmv


@pytest.fixture
def csr(small_coo) -> CSRMatrix:
    return CSRMatrix.from_coo(small_coo)


class TestExecutorInstrumentation:
    def test_execute_emits_stage_spans(self, csr, x_small):
        execute("spaden", csr, x_small, deep_verify=True)
        log = get_span_log()
        [root] = log.by_name("exec.execute")
        assert root.attributes == {"kernel": "spaden", "mode": "NUMERIC"}
        children = {s.name for s in log.children_of(root)}
        assert children == {"exec.prepare", "exec.verify", "exec.run", "exec.check"}
        [run] = log.by_name("exec.run")
        assert run.attributes["exec_stage"] == "run"
        assert run.attributes["batched"] is False
        [prep] = log.by_name("exec.prepare")
        assert prep.attributes["cached"] is False

    def test_cached_operand_marks_prepare_span(self, csr, x_small):
        from repro.kernels.base import get_kernel

        prepared = get_kernel("spaden").prepare(csr)
        reset_observability()
        execute("spaden", prepared, x_small)
        [prep] = get_span_log().by_name("exec.prepare")
        assert prep.attributes["cached"] is True

    def test_success_counted_ok(self, csr, x_small):
        execute("spaden", csr, x_small)
        counter = get_registry().get("exec_executions_total")
        assert counter.value(kernel="spaden", mode="NUMERIC", status="ok") == 1

    def test_failure_counted_under_its_stage(self, csr, x_small):
        def poison(kernel_name, prepared):
            raise KernelError("injected fault")

        with pytest.raises(KernelError):
            execute("spaden", csr, x_small, faults=(poison,))
        counter = get_registry().get("exec_executions_total")
        assert counter.value(kernel="spaden", mode="NUMERIC", status="error:prepare") == 1
        [root] = get_span_log().by_name("exec.execute")
        assert root.status == "error"
        assert "injected fault" in root.error

    def test_stage_seconds_histogram_populated(self, csr, x_small):
        execute("spaden", csr, x_small)
        hist = get_registry().get("exec_stage_seconds")
        assert hist.count(exec_stage="prepare", kernel="spaden") == 1
        assert hist.count(exec_stage="run", kernel="spaden") == 1


class TestChainInstrumentation:
    def test_clean_walk_annotates_chain_span(self, csr, x_small):
        execute_chain(csr, x_small)
        [chain_span] = get_span_log().by_name("exec.chain")
        assert chain_span.attributes["kernel"] == "spaden"
        assert chain_span.attributes["degradations"] == 0
        [attempt] = get_span_log().by_name("exec.attempt")
        assert attempt.attributes["outcome"] == "ok"

    def test_degradation_counted_by_stage_and_cause(self, csr, x_small):
        def poison_spaden(kernel_name, prepared):
            if kernel_name == "spaden":
                raise KernelError("injected fault")

        execute_chain(csr, x_small, faults=(poison_spaden,))
        counter = get_registry().get("exec_degradations_total")
        assert counter.value(kernel="spaden", exec_stage="prepare", cause="KernelError") == 1
        [chain_span] = get_span_log().by_name("exec.chain")
        assert chain_span.attributes["kernel"] == "spaden-no-tc"
        assert chain_span.attributes["degradations"] == 1

    def test_exhaustion_counted_and_flagged(self, csr, x_small):
        def poison_all(kernel_name, prepared):
            raise KernelError("injected fault")

        with pytest.raises(KernelError):
            execute_chain(csr, x_small, chain=("spaden",), faults=(poison_all,))
        assert get_registry().get("exec_chain_exhausted_total").value() == 1
        [chain_span] = get_span_log().by_name("exec.chain")
        assert chain_span.attributes["exhausted"] is True


class TestEngineAndDispatchInstrumentation:
    def test_engine_batch_spans_and_counters(self, csr, rng):
        X = rng.standard_normal((4, csr.ncols)).astype(np.float32)
        engine = SpMVEngine("spaden")
        engine.spmv_many([(csr, x) for x in X])
        [batch] = get_span_log().by_name("engine.batch")
        assert batch.attributes["kernel"] == "spaden"
        assert batch.attributes["k"] == 4
        assert batch.attributes["served_by"] == "spaden"
        registry = get_registry()
        assert registry.get("engine_requests_total").value(kernel="spaden") == 4
        assert registry.get("engine_batches_total").value(kernel="spaden") == 1
        assert registry.get("engine_batch_size").count(kernel="spaden") == 1
        assert registry.get("engine_batch_size").sum(kernel="spaden") == 4

    def test_engine_cache_metrics_labeled_by_name(self, csr, x_small):
        engine = SpMVEngine("spaden")
        engine.spmv(csr, x_small)
        engine.spmv(csr, x_small)
        events = get_registry().get("operand_cache_events_total")
        assert events.value(cache="engine:spaden", event="miss") == 1
        assert events.value(cache="engine:spaden", event="hit") == 1
        resident = get_registry().get("operand_cache_resident_bytes")
        assert resident.value(cache="engine:spaden") == engine.cache.resident_bytes > 0

    def test_dispatch_status_counter(self, csr, x_small):
        dispatch_spmv(csr, x_small)
        counter = get_registry().get("dispatch_total")
        assert counter.value(status="clean") == 1
        assert counter.value(status="degraded") == 0


class TestBitwiseIdentity:
    """Enabling observability must not change a single bit of output."""

    def test_numeric_results_identical_with_and_without_state(self, csr, x_small):
        reset_observability()
        y_fresh = execute("spaden", csr, x_small).y
        # run again on a now-populated registry/span log
        y_warm = execute("spaden", csr, x_small).y
        assert np.array_equal(y_fresh, y_warm)
        assert len(get_span_log()) > 0  # observability was genuinely on

    def test_simulated_counters_identical_across_obs_state(self, csr, x_small):
        reset_observability()
        first = execute("spaden", csr, x_small, mode=ExecutionMode.SIMULATED)
        second = execute("spaden", csr, x_small, mode=ExecutionMode.SIMULATED)
        assert np.array_equal(first.y, second.y)
        assert first.stats.as_dict() == second.stats.as_dict()

    def test_engine_results_match_bare_execute(self, csr, rng):
        X = rng.standard_normal((3, csr.ncols)).astype(np.float32)
        engine = SpMVEngine("spaden")
        batched = engine.spmv_many([(csr, x) for x in X])
        singles = [execute("spaden", csr, x).y for x in X]
        for warm, cold in zip(batched, singles):
            assert np.array_equal(warm, cold)

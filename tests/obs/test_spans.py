"""Span log semantics: nesting, error status, bounds, global helpers."""

import pytest

from repro.obs import SpanLog, get_span_log, span


class TestSpanLog:
    def test_nesting_links_parent(self):
        log = SpanLog()
        with log.span("outer") as outer:
            with log.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # children finish (and record) before parents
        assert [s.name for s in log.spans()] == ["inner", "outer"]
        assert log.children_of(outer) == [inner]

    def test_attributes_and_duration(self):
        log = SpanLog()
        with log.span("work", kernel="spaden", batch=4) as s:
            s.attributes["outcome"] = "ok"
        assert s.attributes == {"kernel": "spaden", "batch": 4, "outcome": "ok"}
        assert s.duration_seconds >= 0.0
        assert s.status == "ok" and s.error is None

    def test_exception_marks_error_and_propagates(self):
        log = SpanLog()
        with pytest.raises(ValueError, match="boom"):
            with log.span("work"):
                raise ValueError("boom")
        [s] = log.spans()
        assert s.status == "error"
        assert s.error == "ValueError: boom"
        assert s.end_seconds is not None

    def test_error_in_child_does_not_poison_parent(self):
        log = SpanLog()
        with log.span("outer") as outer:
            try:
                with log.span("inner"):
                    raise RuntimeError("inner only")
            except RuntimeError:
                pass
        assert outer.status == "ok"
        assert log.by_name("inner")[0].status == "error"

    def test_bounded_with_dropped_counter(self):
        log = SpanLog(limit=3)
        for i in range(5):
            with log.span(f"s{i}"):
                pass
        assert len(log) == 3
        assert log.dropped == 2
        assert [s.name for s in log.spans()] == ["s2", "s3", "s4"]

    def test_as_dicts_shape(self):
        log = SpanLog()
        with log.span("work", kernel="spaden"):
            pass
        [d] = log.as_dicts()
        assert d["name"] == "work"
        assert d["attributes"] == {"kernel": "spaden"}
        assert d["status"] == "ok"
        assert set(d) == {
            "span_id", "parent_id", "name", "attributes",
            "start_seconds", "duration_seconds", "status", "error",
        }

    def test_clear(self):
        log = SpanLog(limit=1)
        for _ in range(3):
            with log.span("s"):
                pass
        log.clear()
        assert len(log) == 0 and log.dropped == 0


class TestGlobalSpan:
    def test_span_helper_records_on_global_log(self):
        with span("global.work", mode="NUMERIC"):
            pass
        [s] = get_span_log().by_name("global.work")
        assert s.attributes["mode"] == "NUMERIC"

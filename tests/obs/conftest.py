"""Observability tests run against pristine process-wide state."""

import pytest

from repro.obs import reset_observability


@pytest.fixture(autouse=True)
def clean_observability():
    """Reset the global registry and span log around every test."""
    reset_observability()
    yield
    reset_observability()

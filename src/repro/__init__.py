"""repro — reproduction of "Bitmap-Based Sparse Matrix-Vector
Multiplication with Tensor Cores" (Spaden, ICPP 2024).

Public entry points:

* :mod:`repro.formats` — sparse storage formats incl. the paper's bitBSR,
* :mod:`repro.gpu` — the SIMT / tensor-core simulator substrate,
* :mod:`repro.core` — Spaden itself (builder, decode, pairing, extract),
* :mod:`repro.kernels` — Spaden and all evaluated baselines,
* :mod:`repro.perf` — the roofline performance model (V100 / L40),
* :mod:`repro.matrices` — Table-1 synthetic dataset analogs,
* :mod:`repro.apps` — PageRank / BFS / CG built on the SpMV API,
* :mod:`repro.robustness` — fault injection, deep format verification,
  and graceful-degradation kernel dispatch.
"""

__version__ = "1.0.0"

from repro.constants import BLOCK_DIM, BLOCK_SIZE, FRAGMENT_DIM, WARP_SIZE

__all__ = ["BLOCK_DIM", "BLOCK_SIZE", "FRAGMENT_DIM", "WARP_SIZE", "__version__"]

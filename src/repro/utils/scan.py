"""Prefix-scan helpers used by format builders and kernels."""

from __future__ import annotations

import numpy as np

__all__ = ["exclusive_scan", "inclusive_scan", "segment_ids"]


def inclusive_scan(counts: np.ndarray) -> np.ndarray:
    """Inclusive prefix sum with the input's integer dtype widened to i64."""
    return np.cumsum(np.asarray(counts, dtype=np.int64))


def exclusive_scan(counts: np.ndarray, total: bool = True) -> np.ndarray:
    """Exclusive prefix sum.

    The paper uses an exclusive scan over per-block nonzero counts to find
    each block's offset into the packed value array (§4.2).  With
    ``total=True`` the returned array has ``len(counts) + 1`` entries so it
    doubles as a CSR-style pointer array.
    """
    c = np.asarray(counts, dtype=np.int64)
    out = np.zeros(c.size + 1, dtype=np.int64)
    np.cumsum(c, out=out[1:])
    return out if total else out[:-1]


def segment_ids(pointers: np.ndarray) -> np.ndarray:
    """Expand a CSR-style pointer array into one segment id per element.

    ``segment_ids([0, 2, 2, 5]) == [0, 0, 2, 2, 2]`` — the inverse of
    building row pointers, used by COO<->CSR conversions and load-balancing
    kernels (LightSpMV-style binary-search row lookup, vectorized).
    """
    ptr = np.asarray(pointers, dtype=np.int64)
    if ptr.size == 0:
        raise ValueError("pointer array must be non-empty")
    nseg = ptr.size - 1
    total = int(ptr[-1])
    ids = np.repeat(np.arange(nseg, dtype=np.int64), np.diff(ptr))
    if ids.size != total:
        raise ValueError("pointer array is not monotonically consistent")
    return ids

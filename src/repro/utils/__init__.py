"""Shared low-level utilities: bit manipulation, validation, scans."""

from repro.utils.bitops import (
    bit_positions,
    bitmap_from_coords,
    bitmap_from_dense,
    bitmap_to_dense,
    bitmap_row,
    extract_bit,
    popcount,
    popcount_below,
)
from repro.utils.scan import exclusive_scan, inclusive_scan, segment_ids
from repro.utils.validation import (
    ensure_1d,
    ensure_contiguous,
    ensure_dtype,
    ensure_nonnegative,
    ensure_shape,
    ensure_sorted,
)

__all__ = [
    "bit_positions",
    "bitmap_from_coords",
    "bitmap_from_dense",
    "bitmap_to_dense",
    "bitmap_row",
    "extract_bit",
    "popcount",
    "popcount_below",
    "exclusive_scan",
    "inclusive_scan",
    "segment_ids",
    "ensure_1d",
    "ensure_contiguous",
    "ensure_dtype",
    "ensure_nonnegative",
    "ensure_shape",
    "ensure_sorted",
]

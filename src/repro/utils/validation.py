"""Small argument-validation helpers shared by format constructors."""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

__all__ = [
    "ensure_1d",
    "ensure_contiguous",
    "ensure_dtype",
    "ensure_nonnegative",
    "ensure_shape",
    "ensure_sorted",
]


def ensure_1d(array: np.ndarray, name: str) -> np.ndarray:
    """Require a 1-D array."""
    a = np.asarray(array)
    if a.ndim != 1:
        raise FormatError(f"{name} must be 1-D, got {a.ndim}-D")
    return a


def ensure_dtype(array: np.ndarray, dtype: np.dtype | type, name: str) -> np.ndarray:
    """Cast to ``dtype``, rejecting lossy integer conversions."""
    a = np.asarray(array)
    want = np.dtype(dtype)
    if a.dtype != want:
        try:
            converted = a.astype(want)
        except (TypeError, ValueError) as exc:
            raise FormatError(f"{name} cannot be converted to {want}") from exc
        if np.issubdtype(want, np.integer) and not np.array_equal(converted, a):
            raise FormatError(f"{name} loses information when cast to {want}")
        return converted
    return a


def ensure_shape(array: np.ndarray, shape: tuple[int, ...], name: str) -> np.ndarray:
    """Require an exact shape."""
    a = np.asarray(array)
    if a.shape != shape:
        raise FormatError(f"{name} must have shape {shape}, got {a.shape}")
    return a


def ensure_nonnegative(array: np.ndarray, name: str) -> np.ndarray:
    """Reject arrays containing negative entries."""
    a = np.asarray(array)
    if a.size and a.min() < 0:
        raise FormatError(f"{name} contains negative entries")
    return a


def ensure_sorted(array: np.ndarray, name: str, strict: bool = False) -> np.ndarray:
    """Require a (strictly) non-decreasing array."""
    a = np.asarray(array)
    if a.size > 1:
        diffs = np.diff(a)
        if strict and (diffs <= 0).any():
            raise FormatError(f"{name} must be strictly increasing")
        if not strict and (diffs < 0).any():
            raise FormatError(f"{name} must be non-decreasing")
    return a


def ensure_contiguous(array: np.ndarray, name: str) -> np.ndarray:
    """Return a C-contiguous view or copy."""
    a = np.asarray(array)
    return np.ascontiguousarray(a)

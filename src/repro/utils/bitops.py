"""Vectorized 64-bit bitmap primitives.

The bitBSR format (paper §4.2) encodes each 8x8 block as one 64-bit
unsigned integer: bit ``r * 8 + c`` is set when element ``(r, c)`` of the
block is nonzero.  The least significant bit is the block's top-left
element and the most significant bit its bottom-right one (Fig. 4).

Everything here operates on NumPy ``uint64`` arrays so whole matrices can
be encoded or decoded without Python-level loops, per the vectorization
guidance for numerical Python.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM, BLOCK_SIZE

__all__ = [
    "popcount",
    "popcount_below",
    "extract_bit",
    "bit_positions",
    "bitmap_from_coords",
    "bitmap_from_dense",
    "bitmap_to_dense",
    "bitmap_row",
]

_U64 = np.uint64

# Magic constants of the classic SWAR popcount, as uint64 scalars so the
# arithmetic below never falls back to Python ints.
_M1 = _U64(0x5555555555555555)
_M2 = _U64(0x3333333333333333)
_M4 = _U64(0x0F0F0F0F0F0F0F0F)
_H01 = _U64(0x0101010101010101)


def popcount(bitmaps: np.ndarray | int) -> np.ndarray | int:
    """Count set bits of each 64-bit bitmap (vectorized SWAR popcount).

    Accepts a scalar or an array; returns the same shape with dtype
    ``uint64`` (Python ``int`` for scalar input).
    """
    scalar = np.isscalar(bitmaps)
    x = np.asarray(bitmaps, dtype=_U64)
    with np.errstate(over="ignore"):  # SWAR relies on modular arithmetic
        x = x - ((x >> _U64(1)) & _M1)
        x = (x & _M2) + ((x >> _U64(2)) & _M2)
        x = (x + (x >> _U64(4))) & _M4
        x = (x * _H01) >> _U64(56)
    return int(x) if scalar else x


def popcount_below(bitmaps: np.ndarray | int, position: np.ndarray | int) -> np.ndarray | int:
    """Count set bits strictly below ``position`` in each bitmap.

    This is the rank operation bitBSR decoding relies on: the value of the
    nonzero at bit ``p`` lives at index ``rank(p)`` inside the block's
    packed value array.  ``position`` may be 0..64; 64 counts all bits.
    """
    scalar = np.isscalar(bitmaps) and np.isscalar(position)
    x = np.asarray(bitmaps, dtype=_U64)
    p = np.asarray(position, dtype=_U64)
    if np.any(p > _U64(BLOCK_SIZE)):
        raise ValueError("bit position out of range [0, 64]")
    # (x << (64 - p)) would shift by 64 for p == 0, which is undefined in C
    # and wraps in NumPy; mask explicitly instead.  The shift for p == 64
    # wraps too (its lane is discarded by the where), hence the errstate.
    with np.errstate(over="ignore"):
        mask = np.where(
            p == _U64(BLOCK_SIZE),
            _U64(0xFFFFFFFFFFFFFFFF),
            (_U64(1) << p) - _U64(1),
        )
    counts = popcount(x & mask)
    return int(counts) if scalar else counts


def extract_bit(bitmaps: np.ndarray | int, position: np.ndarray | int) -> np.ndarray | int:
    """Return bit ``position`` (0 = LSB) of each bitmap as 0/1 uint64."""
    scalar = np.isscalar(bitmaps) and np.isscalar(position)
    x = np.asarray(bitmaps, dtype=_U64)
    p = np.asarray(position, dtype=_U64)
    out = (x >> p) & _U64(1)
    return int(out) if scalar else out


def bit_positions(bitmap: int | np.unsignedinteger) -> np.ndarray:
    """Positions (ascending) of set bits in a single 64-bit bitmap."""
    b = int(bitmap)
    if not 0 <= b <= 0xFFFFFFFFFFFFFFFF:
        raise ValueError("bitmap out of 64-bit range")
    positions = []
    while b:
        low = b & -b
        positions.append(low.bit_length() - 1)
        b ^= low
    return np.asarray(positions, dtype=np.int64)


def bitmap_from_coords(rows: np.ndarray, cols: np.ndarray) -> int:
    """Build one block bitmap from in-block (row, col) coordinates."""
    r = np.asarray(rows, dtype=np.int64)
    c = np.asarray(cols, dtype=np.int64)
    if r.shape != c.shape:
        raise ValueError("rows and cols must have the same shape")
    if r.size and (r.min() < 0 or r.max() >= BLOCK_DIM or c.min() < 0 or c.max() >= BLOCK_DIM):
        raise ValueError("block coordinates out of range")
    bits = np.uint64(0)
    for p in np.unique(r * BLOCK_DIM + c):
        bits |= _U64(1) << _U64(p)
    return int(bits)


def bitmap_from_dense(block: np.ndarray) -> int:
    """Encode an 8x8 dense block's nonzero pattern as a 64-bit bitmap."""
    b = np.asarray(block)
    if b.shape != (BLOCK_DIM, BLOCK_DIM):
        raise ValueError(f"expected an {BLOCK_DIM}x{BLOCK_DIM} block, got {b.shape}")
    flags = (b != 0).ravel()
    weights = _U64(1) << np.arange(BLOCK_SIZE, dtype=_U64)
    return int(np.bitwise_or.reduce(weights[flags], initial=_U64(0)))


def bitmap_to_dense(bitmap: int | np.unsignedinteger) -> np.ndarray:
    """Decode a bitmap into an 8x8 boolean occupancy mask."""
    x = _U64(int(bitmap))
    shifts = np.arange(BLOCK_SIZE, dtype=_U64)
    mask = ((x >> shifts) & _U64(1)).astype(bool)
    return mask.reshape(BLOCK_DIM, BLOCK_DIM)


def bitmap_row(bitmap: int | np.unsignedinteger, row: int) -> int:
    """Extract one 8-bit row of the block bitmap (paper's ``0x01`` example)."""
    if not 0 <= row < BLOCK_DIM:
        raise ValueError("row out of range")
    return (int(bitmap) >> (row * BLOCK_DIM)) & 0xFF

"""Command-line interface for the reproduction harness.

Usage::

    python -m repro.cli table1  [--scale 0.08]
    python -m repro.cli spmv    --matrix consph [--kernel spaden] [--gpu L40]
    python -m repro.cli figures [--scale 0.08] [--gpu L40]
    python -m repro.cli probe
    python -m repro.cli formats --matrix cant
    python -m repro.cli verify  --matrix consph [--fault bitmap-bit-flip]
    python -m repro.cli analyze [--kernels spaden,csr-scalar] [--no-lint]
                                [--concurrency] [--paths src/repro/engine]
    python -m repro.cli engine  [--batch 32] [--nrows 2048] [--kernel spaden]
                                [--obs-out BENCH_obs.json]
    python -m repro.cli report  --matrix consph [--batch 8] [--simulate]
                                [--fault bitmap-bit-flip] [--sanitize]
                                [--jsonl run_report.jsonl] [--prometheus metrics.txt]
    python -m repro.cli chaos   [--seed 0] [--requests 48] [--batch 8]
                                [--probabilities 0,0.5,0.9] [--out BENCH_chaos.json]
    python -m repro.cli serve-bench [--mode open] [--workers 4] [--tenants 2]
                                [--zipf-s 1.1] [--out BENCH_serve.json]
    python -m repro.cli convert-bench [--nrows 1024] [--density 0.02]
                                [--rounds 5] [--out BENCH_convert.json]
    python -m repro.cli plan    --matrix consph [--gpu L40] [--simulate]
    python -m repro.cli plan-bench [--sweep 64,32,16,8,4,2,1] [--gpu L40]
                                [--tolerance 0.15] [--out BENCH_plan.json]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args) -> int:
    from repro.matrices import generate_matrix, get_spec, matrix_names
    from repro.perf.report import format_table

    rows = []
    for name in matrix_names():
        g = generate_matrix(name, scale=args.scale)
        spec = get_spec(name)
        rows.append(
            {
                "Matrix": name,
                "nrow": g.nrows,
                "nnz": g.nnz,
                "Bnrow": g.bitbsr.block_rows_count,
                "Bnnz": g.block_nnz,
                "nnz/blk": round(g.nnz / g.block_nnz, 1),
                "paper nnz/blk": round(spec.mean_block_nnz, 1),
            }
        )
    print(format_table(rows, title=f"Table 1 analogs (scale={args.scale})"))
    return 0


def _served_kernel(preferred: str, degradation_log) -> str:
    """The kernel that actually served the run.

    Each :class:`~repro.exec.DegradationEvent` names the kernel it fell
    back *to*; following the log from the preferred kernel lands on the
    one whose operand is in the cache.  (A run that degraded to, say,
    ``csr-scalar`` cached its operand under *that* key — introspecting
    the preferred kernel's key would silently miss.)
    """
    served = preferred
    for event in degradation_log:
        if event.fallback is not None:
            served = event.fallback
    return served


def _cmd_spmv(args) -> int:
    from repro.engine import SpMVEngine, matrix_fingerprint
    from repro.exec import ExecutionMode, execute
    from repro.gpu.spec import get_gpu
    from repro.kernels import get_kernel
    from repro.matrices import generate_matrix
    from repro.perf import estimate_time
    from repro.perf.metrics import gflops

    g = generate_matrix(args.matrix, scale=args.scale)
    x = g.dense_vector()
    # served through the engine: caching + graceful degradation for free
    engine = SpMVEngine(args.kernel)
    y = engine.spmv(g.csr, x)
    for event in engine.stats.degradation_log:
        print(f"degraded: {event}")
    # introspect side-effect-free: peek() counts no hit/miss and leaves
    # LRU recency alone, and the key is the kernel that actually served
    # the request (after any degradation), not the one we asked for
    served_by = _served_kernel(args.kernel, engine.stats.degradation_log)
    kernel = get_kernel(served_by)
    operand = engine.cache.peek((served_by, matrix_fingerprint(g.csr)))
    # PROFILED mode: the numeric run plus the exact analytic counters
    profiled = execute(kernel, operand if operand is not None else g.csr, x,
                       mode=ExecutionMode.PROFILED)
    prepared, profile = profiled.operand, profiled.profile
    tb = estimate_time(profile, get_gpu(args.gpu))
    print(f"{args.matrix} (scale={args.scale}): nnz={g.nnz:,}, blocks={g.block_nnz:,}")
    print(f"kernel: {kernel.label}  format bytes: {prepared.device_bytes:,} ({prepared.bytes_per_nnz:.2f} B/nnz)")
    print(f"y[:4] = {y[:4]}")
    print(
        f"modeled on {args.gpu}: {tb.total * 1e6:.1f} us "
        f"({gflops(g.nnz, tb.total):.1f} GFLOPS, {tb.bound}-bound)"
    )
    print(f"DRAM {profile.dram_bytes:,} B, transactions {profile.transactions:,}, MMAs {profile.stats.mma_ops:,}")
    return 0


def _cmd_figures(args) -> int:
    from repro.bench import EVALUATED_METHODS, load_suite, modeled_times, profile_suite
    from repro.kernels import get_kernel
    from repro.perf.metrics import gflops, speedup_table
    from repro.perf.report import format_table

    suite = load_suite(args.scale)
    profiles = profile_suite(suite, EVALUATED_METHODS, args.scale)
    times = modeled_times(profiles, args.gpu)
    rows = []
    for name, per_method in times.items():
        row = {"Matrix": name}
        for method in EVALUATED_METHODS:
            row[get_kernel(method).label] = round(gflops(suite[name].nnz, per_method[method]), 1)
        rows.append(row)
    print(format_table(rows, title=f"Figure 6 — GFLOPS on {args.gpu} (scale={args.scale})"))
    print()
    geomeans = speedup_table(times, "spaden")
    print(format_table(
        [{"vs": get_kernel(m).label, "speedup": round(v, 2)} for m, v in sorted(geomeans.items())],
        title="Spaden geomean speedups (Figure 7)",
    ))
    return 0


def _cmd_probe(args) -> int:
    from repro.core.reverse_engineering import probe_fragment_layout
    from repro.gpu.fragment import FragmentKind

    for kind in FragmentKind:
        layout = probe_fragment_layout(kind)
        print(f"{kind.value}: portion registers = {layout.portion_registers}")
    return 0


def _cmd_formats(args) -> int:
    from repro.formats import available_formats, convert, format_footprint
    from repro.matrices import generate_matrix
    from repro.perf.report import format_table

    g = generate_matrix(args.matrix, scale=args.scale)
    coo = g.csr.tocoo()
    rows = []
    for fmt in available_formats():
        if fmt == "dia":
            continue  # scattered matrices overflow DIA
        report = format_footprint(convert(coo, fmt))
        rows.append({"format": fmt, "bytes": report.total_bytes, "B/nnz": round(report.bytes_per_nnz, 2)})
    print(format_table(rows, title=f"{args.matrix} across formats (scale={args.scale})"))
    return 0


def _cmd_verify(args) -> int:
    from repro.errors import FormatError, LayoutError
    from repro.formats import available_formats, convert
    from repro.formats.base import SparseMatrix
    from repro.gpu.fragment import verify_lane_mapping
    from repro.matrices import generate_matrix
    from repro.robustness import corrupt, dispatch_spmv, get_fault, inject_lane_fault

    g = generate_matrix(args.matrix, scale=args.scale)
    coo = g.csr.tocoo()

    print(f"deep-verifying {args.matrix} (scale={args.scale}, nnz={g.nnz:,})")
    failures = 0
    for fmt in available_formats():
        if fmt == "dia":
            continue  # scattered matrices overflow DIA
        try:
            convert(coo, fmt).verify(deep=True)
            print(f"  {fmt:<14} ok")
        except FormatError as exc:
            failures += 1
            print(f"  {fmt:<14} FAIL {type(exc).__name__}: {exc}")
    try:
        verify_lane_mapping()
        print(f"  {'lane mapping':<14} ok")
    except LayoutError as exc:
        failures += 1
        print(f"  {'lane mapping':<14} FAIL {exc}")

    if args.fault is None:
        return 1 if failures else 0

    model = get_fault(args.fault)
    print(f"\ninjecting fault {model.name!r}: {model.description}")
    if model.formats:
        fmt = model.formats[-1] if "bitbsr" not in model.formats else "bitbsr"
        victim, report = corrupt(convert(coo, fmt), model.name, seed=args.seed)
        print(f"  corrupted {fmt} at {report.coord}: {report.detail}")
        try:
            victim.verify(deep=True)
            print("  verifier MISSED the corruption")
            return 1
        except model.detected_by as exc:
            print(f"  detected: {type(exc).__name__}: {exc}")

    x = g.dense_vector()
    ref = g.csr.matvec(x)

    fired = []

    def hook(kernel_name, prepared):
        # one corruption event: the first applicable kernel's operand is
        # damaged; fallbacks re-prepare from the pristine CSR
        data = prepared.data
        if fired or not isinstance(data, SparseMatrix):
            return
        if data.format_name in model.formats:
            prepared.data, _ = corrupt(data, model.name, seed=args.seed)
            fired.append(kernel_name)

    print("\ndispatching with graceful degradation:")
    if model.formats:
        result = dispatch_spmv(g.csr, x, corrupt_hook=hook)
    else:
        with inject_lane_fault(seed=args.seed):
            result = dispatch_spmv(g.csr, x)
    for event in result.events:
        print(f"  {event}")
    err = float(np.abs(result.y - ref).max())
    print(f"  served by {result.kernel!r} after {len(result.events)} fallback(s); max |y - ref| = {err:.3g}")
    return 0 if np.allclose(result.y, ref, rtol=1e-3, atol=1e-2) else 1


def _cmd_analyze(args) -> int:
    """Static lint + concurrency audit + dynamic sanitizer, one verdict.

    Every enabled prong reports its unwaived findings; the exit status
    is nonzero iff *any* prong failed, so CI can gate on any subset
    (``--no-lint`` / ``--no-sanitize`` / ``--concurrency``) and trust
    the status the same way.
    """
    from repro.analysis import format_findings, lint_paths, sanitize_kernel, small_suite
    from repro.errors import SanitizerError
    from repro.kernels import available_kernels
    from repro.perf.report import format_table

    failures: list[str] = []

    if not args.no_lint:
        import repro

        paths = args.paths or [repro.__path__[0]]
        findings = lint_paths(paths)
        if findings:
            failures.append(f"lint ({len(findings)} finding(s))")
            print(f"lint: {len(findings)} finding(s)")
            print(format_findings(findings))
        else:
            print(f"lint: clean ({', '.join(str(p) for p in paths)})")

    if args.concurrency:
        import repro
        from repro.analysis import audit_paths, audit_package

        if args.paths:
            findings = audit_paths(args.paths)
            audited = ", ".join(str(p) for p in args.paths)
        else:
            from pathlib import Path

            from repro.analysis.concurrency import AUDITED_PACKAGES

            findings = audit_package(Path(repro.__path__[0]))
            audited = ", ".join(AUDITED_PACKAGES)
        if findings:
            failures.append(f"concurrency ({len(findings)} finding(s))")
            print(f"concurrency: {len(findings)} finding(s)")
            print(format_findings(findings))
        else:
            print(f"concurrency: clean ({audited})")

    if not args.no_sanitize:
        names = available_kernels() if args.kernels == "all" else [
            k.strip() for k in args.kernels.split(",") if k.strip()
        ]
        suite = small_suite(seed=args.seed)
        rows = []
        violations = 0
        for name in names:
            for matrix, (csr, x) in suite.items():
                try:
                    result = sanitize_kernel(name, csr, x)
                except SanitizerError as exc:
                    violations += 1
                    print(f"sanitizer: {name} on {matrix}: {type(exc).__name__}: {exc}")
                    continue
                # a numerically wrong kernel is a sanitizer failure even
                # when the SIMT checks pass — same bound the tier-1
                # sanitizer tests enforce
                accurate = result.max_error <= args.max_error
                if not result.clean or not accurate:
                    violations += 1
                report = result.report
                rows.append(
                    {
                        "kernel": name,
                        "matrix": matrix,
                        "simulated": "yes" if result.simulated else "no",
                        "max |err|": f"{result.max_error:.2e}",
                        "races": len(report.races),
                        "ownership": len(report.ownership_violations),
                        "load eff": f"{report.load_efficiency:.0%}",
                        "verdict": "clean" if result.clean and accurate else "VIOLATION",
                    }
                )
        if rows:
            print()
            print(format_table(rows, title="SIMT sanitizer (small-matrix suite)"))
        if violations:
            failures.append(f"sanitizer ({violations} violation(s))")

    if failures:
        print(f"\nanalyze: FAILED — {'; '.join(failures)}")
        return 1
    return 0


def _cmd_engine(args) -> int:
    from repro.bench.engine import append_obs_trajectory, bench_engine, format_report

    result = bench_engine(
        args.nrows,
        args.ncols or args.nrows,
        args.density,
        batch=args.batch,
        rounds=args.rounds,
        kernel=args.kernel,
        seed=args.seed,
    )
    print(format_report(result))
    if args.obs_out:
        length = append_obs_trajectory(args.obs_out, result)
        print(f"[obs trajectory {args.obs_out}: {length} run(s)]")
    if not result.bitwise_equal:
        print("FAIL: batched results diverge from per-vector run()")
        return 1
    return 0


def _cmd_report(args) -> int:
    """Run a small sample workload and print the merged RunReport.

    The workload exercises every silo the report folds: an engine batch
    (engine + cache + kernel counters, spans through the exec seam),
    optionally the simulator (merged ExecutionStats), optionally a
    fault-injected dispatch (degradation events) and a sanitizer sweep
    (findings).  ``--jsonl`` additionally writes the JSON-lines export
    and verifies the round trip parses back equal.
    """
    import numpy as np

    from repro.engine import SpMVEngine
    from repro.matrices import generate_matrix
    from repro.obs import RunReport, format_run_report, reset_observability, to_prometheus

    reset_observability()  # scope the report to this run

    g = generate_matrix(args.matrix, scale=args.scale)
    planner = None
    if args.planner:
        from repro.plan import StructurePlanner

        planner = StructurePlanner(args.gpu)
    engine = SpMVEngine(args.kernel, planner=planner)
    rng = np.random.default_rng(args.seed)
    vectors = [
        rng.standard_normal(g.csr.ncols).astype(np.float32) for _ in range(args.batch)
    ]
    engine.spmv_many([(g.csr, x) for x in vectors], simulate=args.simulate)
    # a warm repeat so the cache section shows hits next to misses
    engine.spmv(g.csr, vectors[0], simulate=args.simulate)

    events = list(engine.stats.degradation_log)
    if args.fault:
        from repro.formats.base import SparseMatrix
        from repro.robustness import corrupt, dispatch_spmv, get_fault, inject_lane_fault

        model = get_fault(args.fault)
        x = g.dense_vector()
        if model.formats:
            fired = []

            def hook(kernel_name, prepared):
                data = prepared.data
                if fired or not isinstance(data, SparseMatrix):
                    return
                if data.format_name in model.formats:
                    prepared.data, _ = corrupt(data, model.name, seed=args.seed)
                    fired.append(kernel_name)

            dispatched = dispatch_spmv(g.csr, x, corrupt_hook=hook)
        else:
            with inject_lane_fault(seed=args.seed):
                dispatched = dispatch_spmv(g.csr, x)
        events.extend(dispatched.events)

    sanitizer_report = None
    if args.sanitize:
        from repro.analysis import sanitize_kernel, small_suite

        suite = small_suite(seed=args.seed)
        csr, x = next(iter(suite.values()))
        sanitizer_report = sanitize_kernel(
            args.kernel, csr, x, halt_on_violation=False
        ).report

    from repro.obs import build_run_report

    report = build_run_report(
        meta={
            "command": "report",
            "matrix": args.matrix,
            "scale": args.scale,
            "kernel": args.kernel,
            "batch": args.batch,
            "simulate": bool(args.simulate),
            "fault": args.fault,
        },
        engine=engine,
        events=events,
        sanitizer_report=sanitizer_report,
    )
    print(format_run_report(report))

    failed = False
    if args.jsonl:
        count = report.write_jsonl(args.jsonl)
        restored = RunReport.load_jsonl(args.jsonl)
        if restored == report:
            print(f"[jsonl {args.jsonl}: {count} events, round-trip ok]")
        else:
            print(f"[jsonl {args.jsonl}: ROUND-TRIP MISMATCH]")
            failed = True
    if args.prometheus:
        from pathlib import Path

        text = to_prometheus()
        Path(args.prometheus).write_text(text)
        print(f"[prometheus {args.prometheus}: {len(text.splitlines())} lines]")
    return 1 if failed else 0


def _cmd_chaos(args) -> int:
    """Replay a seeded fault campaign against a resilient engine.

    Exit status is the campaign verdict: nonzero if any request was
    lost (queued but neither answered nor errored) or any served ``y``
    disagreed with the CSR reference — the two things the resilience
    layer is never allowed to trade away.
    """
    from repro.bench.chaos import append_chaos_trajectory, bench_chaos, format_chaos_report
    from repro.obs import reset_observability

    reset_observability()  # scope the folded report to this campaign

    probabilities = tuple(
        float(p.strip()) for p in args.probabilities.split(",") if p.strip()
    )
    result = bench_chaos(
        args.nrows,
        args.ncols or args.nrows,
        args.density,
        kernel=args.kernel,
        requests=args.requests,
        batch=args.batch,
        probabilities=probabilities,
        stall_fraction=args.stall_fraction,
        deadline_seconds=args.deadline,
        seed=args.seed,
    )
    print(format_chaos_report(result))
    if args.out:
        length = append_chaos_trajectory(args.out, result)
        print(f"[chaos trajectory {args.out}: {length} campaign(s)]")
    return 1 if result.lost or result.incorrect else 0


def _cmd_serve_bench(args) -> int:
    """Drive the serving front-end with a seeded multi-tenant load.

    Exit status is the campaign verdict: nonzero if any admitted
    request was lost (neither answered nor errored) or any served ``y``
    disagreed bitwise with the serial per-request reference — the two
    things the front-end is never allowed to trade for latency.
    """
    from repro.bench.load import append_serve_trajectory, bench_load, format_load_report
    from repro.obs import reset_observability

    reset_observability()  # scope the folded report to this campaign

    result = bench_load(
        args.nrows,
        args.ncols or args.nrows,
        args.density,
        kernel=args.kernel,
        matrices=args.matrices,
        requests=args.requests,
        workers=args.workers,
        tenants=args.tenants,
        zipf_s=args.zipf_s,
        mode=args.mode,
        max_batch=args.max_batch,
        max_wait_seconds=args.max_wait_ms / 1000.0,
        seed=args.seed,
    )
    print(format_load_report(result))
    if args.out:
        length = append_serve_trajectory(args.out, result)
        print(f"[serve trajectory {args.out}: {length} campaign(s)]")
    return 1 if result.lost or result.incorrect else 0


def _cmd_convert_bench(args) -> int:
    """Measure the conversion pipeline cold / warm / persistent-warm.

    Exit status is the bench verdict: nonzero if the direct ``from_csr``
    route diverges bitwise from the COO route, any tier's result
    diverges from cold, or the restarted engine paid a conversion the
    persistent store should have absorbed.
    """
    from repro.bench.convert import (
        append_convert_trajectory,
        bench_convert,
        format_convert_report,
    )
    from repro.obs import reset_observability

    reset_observability()  # scope the folded report to this run

    result = bench_convert(
        args.nrows,
        args.ncols or args.nrows,
        args.density,
        rounds=args.rounds,
        kernel=args.kernel,
        seed=args.seed,
        store_dir=args.store_dir,
    )
    print(format_convert_report(result))
    if args.out:
        length = append_convert_trajectory(args.out, result)
        print(f"[convert trajectory {args.out}: {length} run(s)]")
    return 0 if result.passed else 1


def _cmd_plan(args) -> int:
    """Profile one matrix and print its ranked execution plan."""
    from repro.matrices import generate_matrix
    from repro.plan import StructurePlanner

    g = generate_matrix(args.matrix, scale=args.scale)
    planner = StructurePlanner(
        args.gpu, mode="simulated" if args.simulate else "numeric"
    )
    plan = planner.plan(g.csr)
    print(plan.explain())
    if args.json:
        import json

        print(json.dumps(plan.as_dict(), indent=2))
    return 0


def _cmd_plan_bench(args) -> int:
    """Run the Fig. 9-style planner crossover sweep.

    Exit status is the tolerance verdict: nonzero if the planner's
    first pick is slower than the static chain's first pick beyond
    ``--tolerance`` at any sweep point (ground truth = exact measured
    counters through the roofline model).
    """
    from repro.bench.plan import (
        append_plan_trajectory,
        bench_plan_crossover,
        format_plan_report,
    )

    sweep = tuple(int(p.strip()) for p in args.sweep.split(",") if p.strip())
    result = bench_plan_crossover(
        sweep,
        nrows=args.nrows,
        ncols=args.ncols or args.nrows,
        nnz_target=args.nnz,
        gpu=args.gpu,
        seed=args.seed,
        tolerance=args.tolerance,
    )
    print(format_plan_report(result))
    if args.out:
        length = append_plan_trajectory(args.out, result)
        print(f"[plan trajectory {args.out}: {length} sweep(s)]")
    return 0 if result.within_tolerance else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print the Table 1 dataset analogs")
    p.add_argument("--scale", type=float, default=0.08)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("spmv", help="run one kernel on one matrix")
    p.add_argument("--matrix", default="consph")
    p.add_argument("--kernel", default="spaden")
    p.add_argument("--gpu", default="L40")
    p.add_argument("--scale", type=float, default=0.08)
    p.set_defaults(func=_cmd_spmv)

    p = sub.add_parser("figures", help="reproduce Figures 6/7 series")
    p.add_argument("--gpu", default="L40")
    p.add_argument("--scale", type=float, default=0.08)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("probe", help="run the §3 reverse-engineering probe")
    p.set_defaults(func=_cmd_probe)

    p = sub.add_parser("formats", help="compare format footprints")
    p.add_argument("--matrix", default="cant")
    p.add_argument("--scale", type=float, default=0.08)
    p.set_defaults(func=_cmd_formats)

    p = sub.add_parser(
        "verify",
        help="deep-verify every format; optionally inject a named fault "
        "and demonstrate detection + graceful degradation",
    )
    p.add_argument("--matrix", default="consph")
    p.add_argument("--scale", type=float, default=0.08)
    p.add_argument("--fault", default=None, help="fault model to inject (see repro.robustness)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser(
        "analyze",
        help="static kernel lint + thread-safety audit + dynamic SIMT "
        "sanitizer over the registered kernels on small matrices",
    )
    p.add_argument("--paths", nargs="*", default=None, help="files/dirs to analyze (default: the repro package)")
    p.add_argument("--kernels", default="all", help="comma-separated kernel names, or 'all'")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-lint", action="store_true", help="skip the static lint pass")
    p.add_argument("--no-sanitize", action="store_true", help="skip the dynamic sanitizer pass")
    p.add_argument(
        "--concurrency",
        action="store_true",
        help="run the static thread-safety audit over the serving packages",
    )
    p.add_argument(
        "--max-error",
        type=float,
        default=1e-4,
        help="sanitizer numeric-accuracy gate: max |y - ref| allowed",
    )
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "engine",
        help="benchmark the batched engine: amortized vs cold per-vector "
        "time and the operand-cache hit curve",
    )
    p.add_argument("--nrows", type=int, default=2048)
    p.add_argument("--ncols", type=int, default=0, help="defaults to --nrows")
    p.add_argument("--density", type=float, default=0.004)
    p.add_argument("--batch", type=int, default=32)
    p.add_argument("--rounds", type=int, default=8)
    p.add_argument("--kernel", default="spaden")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--obs-out",
        default=None,
        help="append this run's RunReport to a BENCH_obs.json trajectory",
    )
    p.set_defaults(func=_cmd_engine)

    p = sub.add_parser(
        "report",
        help="run a sample engine workload and print the merged RunReport "
        "(kernel + cache + engine stats, degradations, span timings)",
    )
    p.add_argument("--matrix", default="consph")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--kernel", default="spaden")
    p.add_argument("--batch", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--simulate", action="store_true", help="route batches through the simulator")
    p.add_argument(
        "--planner",
        action="store_true",
        help="drive the workload through a StructurePlanner (planner "
        "decisions and rank flips appear in the report's metrics)",
    )
    p.add_argument("--gpu", default="L40", help="cost-model target for --planner")
    p.add_argument("--fault", default=None, help="also dispatch once with this fault injected")
    p.add_argument("--sanitize", action="store_true", help="fold a sanitizer sweep into the report")
    p.add_argument("--jsonl", default=None, help="write the JSON-lines export and verify round trip")
    p.add_argument("--prometheus", default=None, help="write the Prometheus text exposition")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "chaos",
        help="replay a seeded fault campaign against a resilient engine "
        "(deadlines + retries + circuit breakers) and report outcome "
        "rates, breaker transitions and recovery latency",
    )
    p.add_argument("--nrows", type=int, default=160)
    p.add_argument("--ncols", type=int, default=0, help="defaults to --nrows")
    p.add_argument("--density", type=float, default=0.03)
    p.add_argument("--kernel", default="spaden")
    p.add_argument("--requests", type=int, default=48, help="requests per sweep point")
    p.add_argument("--batch", type=int, default=8, help="requests per flush round")
    p.add_argument(
        "--probabilities",
        default="0,0.5,0.9",
        help="comma-separated fault probabilities to sweep",
    )
    p.add_argument(
        "--stall-fraction",
        type=float,
        default=0.15,
        help="fraction of faults that stall the clock instead of corrupting",
    )
    p.add_argument("--deadline", type=float, default=8.0, help="virtual seconds per batch")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out",
        default=None,
        help="append the campaign to a BENCH_chaos.json trajectory",
    )
    p.set_defaults(func=_cmd_chaos)

    p = sub.add_parser(
        "serve-bench",
        help="drive the concurrent multi-tenant serving front-end with a "
        "seeded zipfian load and report latency percentiles, throughput, "
        "coalescing factor and quota rejections",
    )
    p.add_argument("--nrows", type=int, default=96)
    p.add_argument("--ncols", type=int, default=0, help="defaults to --nrows")
    p.add_argument("--density", type=float, default=0.06)
    p.add_argument("--kernel", default="spaden")
    p.add_argument("--matrices", type=int, default=3, help="registered tenant matrices")
    p.add_argument("--requests", type=int, default=96, help="planned requests (plus quota probe)")
    p.add_argument("--workers", type=int, default=4, help="front-end worker threads")
    p.add_argument("--tenants", type=int, default=2, help="distinct request tenants")
    p.add_argument("--zipf-s", type=float, default=1.1, help="zipfian popularity exponent")
    p.add_argument(
        "--mode",
        choices=("open", "closed"),
        default="open",
        help="open = bursty fire-and-collect arrivals; closed = each "
        "worker waits for its result before the next submit",
    )
    p.add_argument("--max-batch", type=int, default=16, help="flush at this batch size")
    p.add_argument(
        "--max-wait-ms",
        type=float,
        default=5.0,
        help="flush when the oldest queued request is this old",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out",
        default=None,
        help="append the campaign to a BENCH_serve.json trajectory",
    )
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser(
        "convert-bench",
        help="benchmark CSR->bitBSR conversion (direct vs via-COO) and "
        "the cold/warm/persistent-warm prepare tiers across a simulated "
        "process restart",
    )
    p.add_argument("--nrows", type=int, default=1024)
    p.add_argument("--ncols", type=int, default=0, help="defaults to --nrows")
    p.add_argument("--density", type=float, default=0.02)
    p.add_argument("--rounds", type=int, default=5, help="timed conversions per route")
    p.add_argument("--kernel", default="spaden")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--store-dir",
        default=None,
        help="persistent-store directory (default: a throwaway temp dir)",
    )
    p.add_argument(
        "--out",
        default=None,
        help="append the run to a BENCH_convert.json trajectory",
    )
    p.set_defaults(func=_cmd_convert_bench)

    p = sub.add_parser(
        "plan",
        help="profile one matrix's sparsity structure and print the "
        "planner's ranked, capability-filtered execution plan",
    )
    p.add_argument("--matrix", default="consph")
    p.add_argument("--scale", type=float, default=0.08)
    p.add_argument("--gpu", default="L40")
    p.add_argument(
        "--simulate",
        action="store_true",
        help="plan for a simulation campaign (drops kernels that cannot simulate)",
    )
    p.add_argument("--json", action="store_true", help="also print the plan document as JSON")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser(
        "plan-bench",
        help="sweep block density (Fig. 9 axis) and verify the planner's "
        "pick is never slower than the static chain's beyond tolerance",
    )
    p.add_argument("--sweep", default="64,32,16,8,4,2,1", help="comma-separated nnz-per-block points")
    p.add_argument("--nrows", type=int, default=512)
    p.add_argument("--ncols", type=int, default=0, help="defaults to --nrows")
    p.add_argument("--nnz", type=int, default=4096, help="target nnz per sweep matrix")
    p.add_argument("--gpu", default="L40")
    p.add_argument("--tolerance", type=float, default=0.15, help="max allowed planner-vs-static slowdown")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--out",
        default=None,
        help="append the sweep to a BENCH_plan.json trajectory",
    )
    p.set_defaults(func=_cmd_plan_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

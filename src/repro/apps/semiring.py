"""Semiring SpMV over bitBSR — a GraphBLAS-flavoured algebra layer.

The paper's related work (§6) builds on the graph-matrix duality of
GraphBLAS/LAGraph, and its future work (§7) proposes "a sparse math
library centered around the bitmap & blocking".  This module supplies
the algebraic core: SpMV over an arbitrary semiring ``(add, mul, zero)``
computed directly on the bitBSR structure, so shortest paths (min-plus),
reachability (or-and) and plain linear algebra (plus-times) all run on
the same compressed format.

Semiring operations run vectorized over the decoded entries; the
plus-times instance is exactly :func:`repro.core.spmv.spaden_spmv`'s
semantics in float64.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
    "semiring_spmv",
    "sssp_bellman_ford",
]


@dataclass(frozen=True)
class Semiring:
    """An SpMV algebra: ``y[i] = add_j mul(A[i, j], x[j])``.

    ``add_reduce`` must be a ufunc-like with ``reduceat`` support;
    ``zero`` is the additive identity (returned for empty rows and used
    to pad).
    """

    name: str
    add_reduce: Callable[[np.ndarray, np.ndarray], np.ndarray]
    mul: Callable[[np.ndarray, np.ndarray], np.ndarray]
    zero: float

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Semiring {self.name}>"


PLUS_TIMES = Semiring("plus-times", np.add, np.multiply, 0.0)
MIN_PLUS = Semiring("min-plus", np.minimum, np.add, np.inf)
MAX_TIMES = Semiring("max-times", np.maximum, np.multiply, -np.inf)
OR_AND = Semiring(
    "or-and",
    np.logical_or,
    np.logical_and,
    0.0,
)


def semiring_spmv(
    bitbsr: BitBSRMatrix,
    x: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
) -> np.ndarray:
    """SpMV over an arbitrary semiring on the bitBSR structure.

    Decodes entry coordinates from the bitmaps (the same expansion the
    tensor-core kernel performs), applies ``mul`` per entry and
    ``add_reduce`` per row segment.  Rows with no entries get the
    semiring's zero.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1 or x.shape[0] != bitbsr.ncols:
        raise KernelError(f"x has shape {x.shape}, expected ({bitbsr.ncols},)")
    rows, cols = bitbsr.entry_coordinates()
    values = bitbsr.values.astype(np.float64)
    products = np.asarray(semiring.mul(values, x[cols]), dtype=np.float64)

    y = np.full(bitbsr.nrows, semiring.zero, dtype=np.float64)
    if rows.size == 0:
        return y
    # entries are stored row-major within block rows but *not* globally
    # row-sorted; sort once for the segmented reduction
    order = np.argsort(rows, kind="stable")
    sorted_rows = rows[order]
    sorted_products = products[order]
    boundaries = np.flatnonzero(np.diff(sorted_rows)) + 1
    starts = np.concatenate(([0], boundaries))
    segment_rows = sorted_rows[starts]
    y[segment_rows] = semiring.add_reduce.reduceat(sorted_products, starts)
    return y


def sssp_bellman_ford(
    bitbsr: BitBSRMatrix,
    source: int,
    max_iterations: int | None = None,
) -> np.ndarray:
    """Single-source shortest paths by min-plus SpMV iteration.

    Treats the matrix as an edge-weight adjacency (A[i, j] = weight of
    edge j -> i after transposition by the caller); iterates
    ``d <- min(d, A min.+ d)`` to fixpoint.  Weights must be positive.
    """
    n = bitbsr.nrows
    if bitbsr.ncols != n:
        raise KernelError("SSSP needs a square matrix")
    if not 0 <= source < n:
        raise KernelError(f"source {source} out of range")
    if bitbsr.nnz and float(bitbsr.values.astype(np.float64).min()) <= 0:
        raise KernelError("SSSP requires positive edge weights")
    distances = np.full(n, np.inf)
    distances[source] = 0.0
    limit = n if max_iterations is None else max_iterations
    for _ in range(limit):
        relaxed = np.minimum(distances, semiring_spmv(bitbsr, distances, MIN_PLUS))
        if np.array_equal(relaxed, distances, equal_nan=True):
            break
        distances = relaxed
    return distances

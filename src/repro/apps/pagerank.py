"""PageRank as repeated SpMV (the paper's first motivating workload)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["PageRankResult", "pagerank", "pagerank_matrix", "transition_matrix"]

SpMV = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class PageRankResult:
    """Converged ranks plus iteration diagnostics."""

    ranks: np.ndarray
    iterations: int
    residual: float
    converged: bool


def transition_matrix(adjacency: CSRMatrix | COOMatrix) -> CSRMatrix:
    """Column-stochastic transition matrix P = A^T D^-1.

    ``P[i, j]`` is the probability of moving to page i from page j; rows
    of the result gather rank mass from in-neighbours, so PageRank
    iterations are plain ``P @ r`` SpMVs.  Dangling columns (pages with
    no out-links) stay zero and are redistributed inside :func:`pagerank`.
    """
    coo = adjacency.tocoo()
    if coo.nrows != coo.ncols:
        raise KernelError("PageRank needs a square adjacency matrix")
    out_degree = np.bincount(coo.rows, minlength=coo.nrows).astype(np.float64)
    weights = np.ones(coo.nnz, dtype=np.float64) / out_degree[coo.rows]
    # float16-friendly probabilities are impossible in general; keep fp32
    flipped = COOMatrix(
        (coo.ncols, coo.nrows), coo.cols, coo.rows, weights.astype(np.float32)
    )
    return CSRMatrix.from_coo(flipped)


def pagerank(
    spmv: SpMV,
    n: int,
    dangling_mask: np.ndarray | None = None,
    damping: float = 0.85,
    tol: float = 1e-6,
    max_iterations: int = 200,
) -> PageRankResult:
    """Power iteration ``r <- d P r + teleport`` until the L1 residual
    drops below ``tol``.

    ``spmv`` computes ``P @ r`` for the column-stochastic transition
    matrix (use any kernel from :mod:`repro.kernels`); ``dangling_mask``
    marks pages with no out-links whose rank mass is redistributed
    uniformly each step.
    """
    if not 0.0 < damping < 1.0:
        raise KernelError("damping must lie in (0, 1)")
    residual = float("inf")
    ranks = np.full(n, 1.0 / n, dtype=np.float32)
    teleport = (1.0 - damping) / n
    for iteration in range(1, max_iterations + 1):
        spread = np.asarray(spmv(ranks), dtype=np.float64)
        if dangling_mask is not None:
            spread += float(ranks[dangling_mask].sum()) / n
        new_ranks = (damping * spread + teleport).astype(np.float32)
        residual = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if residual < tol:
            return PageRankResult(ranks, iteration, residual, True)
    return PageRankResult(ranks, max_iterations, residual, False)


def pagerank_matrix(
    adjacency: CSRMatrix | COOMatrix,
    engine=None,
    damping: float = 0.85,
    tol: float = 1e-6,
    max_iterations: int = 200,
    kernel: str = "spaden",
) -> PageRankResult:
    """PageRank straight from an adjacency matrix, served by the engine.

    Builds the transition matrix and dangling mask, then runs
    :func:`pagerank` with an engine-bound operator so the bitBSR
    conversion is paid once for the whole power iteration (pass an
    existing :class:`~repro.engine.SpMVEngine` to share its cache).
    """
    from repro.engine import SpMVEngine

    P = transition_matrix(adjacency)
    coo = adjacency.tocoo()
    dangling = np.bincount(coo.rows, minlength=coo.nrows) == 0
    if engine is None:
        engine = SpMVEngine(kernel)
    return pagerank(
        engine.operator(P),
        P.nrows,
        dangling_mask=dangling,
        damping=damping,
        tol=tol,
        max_iterations=max_iterations,
    )

"""Downstream applications built on the Spaden SpMV API.

The paper's introduction motivates SpMV through graph analytics
(PageRank, BFS) and iterative numerical methods; these modules implement
those workloads generically over any SpMV callable so every kernel in
:mod:`repro.kernels` — Spaden included — can drive them.

The engine-bound entry points (``pagerank_engine``, ``cg`` with a
default engine, the recommender's ``score_users``) inherit the unified
execution layer transitively: :class:`~repro.engine.SpMVEngine` routes
every batch through :func:`repro.exec.execute_chain`, so the apps get
capability-gated simulation and graceful degradation without touching
kernels directly (see ``docs/architecture.md``).
"""

from repro.apps.pagerank import pagerank
from repro.apps.bfs import bfs_levels
from repro.apps.cg import conjugate_gradient
from repro.apps.refinement import iterative_refinement, jacobi_preconditioner
from repro.apps.recommender import ItemRecommender
from repro.apps.semiring import (
    MAX_TIMES,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    Semiring,
    semiring_spmv,
    sssp_bellman_ford,
)
from repro.apps.svm import LinearSVM

__all__ = [
    "pagerank",
    "bfs_levels",
    "conjugate_gradient",
    "iterative_refinement",
    "jacobi_preconditioner",
    "ItemRecommender",
    "LinearSVM",
    "Semiring",
    "semiring_spmv",
    "sssp_bellman_ford",
    "PLUS_TIMES",
    "MIN_PLUS",
    "MAX_TIMES",
    "OR_AND",
]

"""Conjugate-gradient solver driven by a pluggable SpMV.

Iterative solvers are the classic HPC consumer of SpMV (the paper cites
mixed-precision iterative refinement on tensor cores as related work);
this CG treats the SpMV as a black box so Spaden can sit in the inner
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import KernelError

__all__ = ["CGResult", "conjugate_gradient", "conjugate_gradient_matrix"]

SpMV = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class CGResult:
    """Solution with convergence diagnostics."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool
    residual_history: tuple[float, ...]


def conjugate_gradient(
    spmv: SpMV,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    tol: float = 1e-5,
    max_iterations: int | None = None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive-definite A.

    ``spmv`` computes ``A @ v``.  Converges when the relative residual
    norm drops below ``tol``.  The outer recurrences run in float64 (the
    standard mixed-precision arrangement: low-precision SpMV, high-
    precision updates).
    """
    b = np.asarray(b, dtype=np.float64)
    n = b.size
    if max_iterations is None:
        max_iterations = 10 * n
    x = np.zeros(n, dtype=np.float64) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(x, 0, 0.0, True, (0.0,))
    r = b - np.asarray(spmv(x.astype(np.float32)), dtype=np.float64)
    p = r.copy()
    rs = float(r @ r)
    history = [float(np.sqrt(rs)) / b_norm]
    for iteration in range(1, max_iterations + 1):
        ap = np.asarray(spmv(p.astype(np.float32)), dtype=np.float64)
        pap = float(p @ ap)
        if pap <= 0:
            raise KernelError("matrix is not positive definite (p^T A p <= 0)")
        alpha = rs / pap
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        history.append(float(np.sqrt(rs_new)) / b_norm)
        if history[-1] < tol:
            return CGResult(x, iteration, history[-1], True, tuple(history))
        p = r + (rs_new / rs) * p
        rs = rs_new
    return CGResult(x, max_iterations, history[-1], False, tuple(history))


def conjugate_gradient_matrix(
    matrix,
    b: np.ndarray,
    engine=None,
    x0: np.ndarray | None = None,
    tol: float = 1e-5,
    max_iterations: int | None = None,
    kernel: str = "spaden",
) -> CGResult:
    """CG on a sparse matrix, with the SpMV served by the engine.

    ``matrix`` is a :class:`~repro.formats.csr.CSRMatrix` (or anything
    with ``tocoo``); the engine-bound operator means the format
    conversion is paid once across all iterations, and an engine passed
    in shares its operand cache with the caller's other solves.
    """
    from repro.engine import SpMVEngine
    from repro.formats.csr import CSRMatrix

    if not isinstance(matrix, CSRMatrix):
        matrix = CSRMatrix.from_coo(matrix.tocoo())
    if engine is None:
        engine = SpMVEngine(kernel)
    return conjugate_gradient(
        engine.operator(matrix), b, x0=x0, tol=tol, max_iterations=max_iterations
    )

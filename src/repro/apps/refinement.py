"""Mixed-precision iterative refinement (related work [17] made runnable).

Haidar et al. accelerate solvers by running the expensive inner solver in
fp16 on tensor cores and correcting in high precision.  The same
structure here:

* **outer loop** (float64): compute the true residual ``r = b - A x``
  with a high-precision operator and stop when it is small;
* **inner solver** (tensor-core precision): approximately solve
  ``A d = r`` with a few Jacobi-preconditioned Richardson sweeps whose
  SpMV is the cheap low-precision operator (e.g. fp16 bitBSR);
* correct ``x += d``.

The demo property: the fp16 operator does almost all the work, yet the
solution reaches fp64-level accuracy — the production pattern for
mixed-precision tensor cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import KernelError
from repro.formats.coo import COOMatrix

__all__ = ["RefinementResult", "iterative_refinement", "jacobi_preconditioner"]

SpMV = Callable[[np.ndarray], np.ndarray]


@dataclass(frozen=True)
class RefinementResult:
    """Solution plus convergence diagnostics of the outer loop."""

    x: np.ndarray
    outer_iterations: int
    inner_spmv_calls: int
    residual_norm: float
    converged: bool


def jacobi_preconditioner(coo: COOMatrix) -> np.ndarray:
    """Inverse-diagonal preconditioner; requires a nonzero diagonal."""
    diag = np.zeros(coo.nrows, dtype=np.float64)
    on_diag = coo.rows == coo.cols
    diag[coo.rows[on_diag]] = coo.values[on_diag].astype(np.float64)
    if np.any(diag == 0):
        raise KernelError("Jacobi preconditioner needs a full diagonal")
    return 1.0 / diag


def iterative_refinement(
    low_precision_spmv: SpMV,
    high_precision_spmv: SpMV,
    preconditioner: np.ndarray,
    b: np.ndarray,
    tol: float = 1e-10,
    max_outer: int = 100,
    inner_sweeps: int = 8,
) -> RefinementResult:
    """Solve ``A x = b`` with a low-precision inner solver and
    high-precision defect correction.

    ``low_precision_spmv`` is the cheap operator (fp16 tensor-core SpMV);
    ``high_precision_spmv`` computes the true residual (fp64 reference or
    an fp32-exact kernel).  Converges for diagonally dominant /
    well-preconditioned systems.
    """
    b64 = np.asarray(b, dtype=np.float64)
    n = b64.size
    preconditioner = np.asarray(preconditioner, dtype=np.float64)
    if preconditioner.shape != (n,):
        raise KernelError("preconditioner must be a length-n inverse diagonal")
    if inner_sweeps < 1:
        raise KernelError("inner_sweeps must be at least 1")
    b_norm = float(np.linalg.norm(b64)) or 1.0
    x = np.zeros(n, dtype=np.float64)
    inner_calls = 0
    residual_norm = np.inf
    for outer in range(1, max_outer + 1):
        residual = b64 - np.asarray(high_precision_spmv(x), dtype=np.float64)
        residual_norm = float(np.linalg.norm(residual)) / b_norm
        if residual_norm < tol:
            return RefinementResult(x, outer - 1, inner_calls, residual_norm, True)
        # scale the residual to unit norm before entering the narrow
        # format: late-stage corrections are tiny and would otherwise
        # underflow fp16's subnormal range (the standard mixed-precision
        # refinement trick)
        scale = float(np.linalg.norm(residual)) or 1.0
        r_hat = residual / scale
        # inner: Richardson sweeps on A d = r_hat with the cheap operator
        d = preconditioner * r_hat
        for _ in range(inner_sweeps - 1):
            ad = np.asarray(low_precision_spmv(d.astype(np.float32)), dtype=np.float64)
            inner_calls += 1
            d = d + preconditioner * (r_hat - ad)
        x = x + scale * d
    return RefinementResult(x, max_outer, inner_calls, residual_norm, False)

"""Breadth-first search in the language of linear algebra.

The frontier expansion of BFS is one SpMV over the Boolean semiring; with
0/1 values a plain arithmetic SpMV followed by a nonzero test computes
the same frontier, which lets every kernel in :mod:`repro.kernels` run
graph traversal (GraphBLAS-style duality, §6 of the paper).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import KernelError

__all__ = ["bfs_levels"]

SpMV = Callable[[np.ndarray], np.ndarray]


def bfs_levels(
    spmv_transpose: SpMV,
    n: int,
    source: int,
    max_levels: int | None = None,
) -> np.ndarray:
    """Level array of a BFS from ``source`` (-1 for unreachable vertices).

    ``spmv_transpose`` must compute ``A^T @ f`` for the graph's adjacency
    matrix A and frontier vector f — i.e. it propagates the frontier along
    edge direction (``(A^T f)[v] != 0`` iff some in-frontier vertex links
    to v).  Pass a kernel prepared on the transposed matrix.
    """
    if not 0 <= source < n:
        raise KernelError(f"source {source} out of range [0, {n})")
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.zeros(n, dtype=np.float32)
    frontier[source] = 1.0
    limit = n if max_levels is None else max_levels
    for level in range(1, limit + 1):
        spread = np.asarray(spmv_transpose(frontier))
        next_mask = (spread != 0) & (levels < 0)
        if not next_mask.any():
            break
        levels[next_mask] = level
        frontier = np.zeros(n, dtype=np.float32)
        frontier[next_mask] = 1.0
    return levels

"""Linear SVM inference as SpMV (the paper's intro cites SVM [32]).

Scoring a batch of sparse feature vectors against a linear SVM is one
SpMV per weight vector: ``scores = X @ w + b`` with a sparse sample
matrix X.  A one-vs-rest multiclass scorer is then an SpMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import KernelError
from repro.formats.bitbsr import BitBSRMatrix
from repro.core.spmm import spaden_spmm
from repro.core.spmv import spaden_spmv
from repro.gpu.mma import Precision

__all__ = ["LinearSVM", "train_reference_svm"]


@dataclass
class LinearSVM:
    """A (pre-trained) linear SVM evaluated with Spaden SpMV.

    ``weights`` has shape (features, classes) — one column per
    one-vs-rest classifier — and ``bias`` shape (classes,).
    """

    weights: np.ndarray
    bias: np.ndarray
    precision: Precision = Precision.FP32

    def __post_init__(self):
        self.weights = np.asarray(self.weights, dtype=np.float32)
        self.bias = np.asarray(self.bias, dtype=np.float32)
        if self.weights.ndim != 2 or self.bias.shape != (self.weights.shape[1],):
            raise KernelError("weights must be (features, classes), bias (classes,)")

    @property
    def n_features(self) -> int:
        return int(self.weights.shape[0])

    @property
    def n_classes(self) -> int:
        return int(self.weights.shape[1])

    def decision_function(self, samples: BitBSRMatrix) -> np.ndarray:
        """Scores of shape (samples, classes) via SpMV/SpMM."""
        if samples.ncols != self.n_features:
            raise KernelError(
                f"samples have {samples.ncols} features, SVM expects {self.n_features}"
            )
        if self.n_classes == 1:
            scores = spaden_spmv(samples, self.weights[:, 0], precision=self.precision)
            return scores[:, None] + self.bias
        return spaden_spmm(samples, self.weights, precision=self.precision) + self.bias

    def predict(self, samples: BitBSRMatrix) -> np.ndarray:
        """Class labels (argmax score; sign for a single classifier)."""
        scores = self.decision_function(samples)
        if self.n_classes == 1:
            return (scores[:, 0] > 0).astype(np.int64)
        return np.argmax(scores, axis=1)


def train_reference_svm(
    features: np.ndarray,
    labels: np.ndarray,
    classes: int,
    epochs: int = 60,
    lr: float = 0.1,
    reg: float = 1e-3,
    seed: int = 0,
) -> LinearSVM:
    """Tiny dense one-vs-rest hinge-loss trainer (test substrate only).

    Produces weights for :class:`LinearSVM`; training runs dense because
    the library's contribution is inference-side SpMV.
    """
    X = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels, dtype=np.int64)
    rng = np.random.default_rng(seed)
    W = rng.standard_normal((X.shape[1], classes)) * 0.01
    b = np.zeros(classes)
    for _ in range(epochs):
        for c in range(classes):
            target = np.where(y == c, 1.0, -1.0)
            margin = target * (X @ W[:, c] + b[c])
            active = margin < 1
            grad_w = reg * W[:, c] - (target[active, None] * X[active]).mean(axis=0) if active.any() else reg * W[:, c]
            grad_b = -target[active].mean() if active.any() else 0.0
            W[:, c] -= lr * grad_w
            b[c] -= lr * grad_b
    return LinearSVM(weights=W.astype(np.float32), bias=b.astype(np.float32))

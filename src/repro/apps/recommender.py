"""Item-based collaborative filtering on sparse interactions (intro [37]).

The user-item interaction matrix R is sparse; scoring candidate items for
a user is ``scores = R_user-row-neighborhood``-style SpMV/SpMM work.
Here: item-item cosine similarities from R^T R (computed on the sparse
structure), then recommendation scores ``S = R @ sim`` via Spaden SpMM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import build_bitbsr
from repro.core.spmm import spaden_spmm
from repro.errors import KernelError
from repro.formats.coo import COOMatrix
from repro.gpu.mma import Precision

__all__ = ["ItemRecommender"]


@dataclass
class ItemRecommender:
    """Item-based CF scorer with the interaction matrix in bitBSR."""

    interactions: COOMatrix
    top_k_similar: int = 16

    def __post_init__(self):
        if self.top_k_similar <= 0:
            raise KernelError("top_k_similar must be positive")
        self._bitbsr = build_bitbsr(self.interactions, value_dtype=np.float32).matrix
        self._similarity = self._item_similarity()

    @property
    def n_users(self) -> int:
        return self.interactions.nrows

    @property
    def n_items(self) -> int:
        return self.interactions.ncols

    def _item_similarity(self) -> np.ndarray:
        """Truncated cosine item-item similarity (dense items x items)."""
        R = self.interactions.todense().astype(np.float64)
        norms = np.linalg.norm(R, axis=0)
        norms[norms == 0] = 1.0
        sim = (R.T @ R) / norms[:, None] / norms[None, :]
        np.fill_diagonal(sim, 0.0)
        # keep only the top-k neighbours per item
        if self.top_k_similar < self.n_items:
            kth = np.partition(sim, -self.top_k_similar, axis=1)[:, -self.top_k_similar]
            sim = np.where(sim >= kth[:, None], sim, 0.0)
        return sim.astype(np.float32)

    def score_all(self) -> np.ndarray:
        """Recommendation scores ``R @ sim`` for every (user, item)."""
        return spaden_spmm(self._bitbsr, self._similarity, precision=Precision.FP32)

    def _similarity_csr(self):
        """``sim^T`` as CSR (sparse thanks to top-k truncation), cached."""
        if getattr(self, "_simT", None) is None:
            from repro.formats.csr import CSRMatrix

            rows, cols = np.nonzero(self._similarity.T)
            self._simT = CSRMatrix.from_coo(
                COOMatrix(
                    (self.n_items, self.n_items),
                    rows.astype(np.int32),
                    cols.astype(np.int32),
                    self._similarity.T[rows, cols].astype(np.float32),
                )
            )
        return self._simT

    def score_users(self, users, engine=None) -> np.ndarray:
        """Scores for a batch of users via one engine micro-batch.

        Each user's scores are ``sim^T @ r_u`` with ``r_u`` the user's
        interaction row; all requests share the truncated-similarity
        CSR, so the engine folds them into a single ``run_many``.  The
        default engine uses the FP32 cuSPARSE-CSR path (scores feed a
        ranking, and FP16 rounding of similarities would reorder
        near-ties); pass an engine to choose a kernel or share a cache.
        """
        from repro.engine import SpMVEngine

        users = np.asarray(users, dtype=np.int64)
        if users.size and (users.min() < 0 or users.max() >= self.n_users):
            raise KernelError(f"user index out of range [0, {self.n_users})")
        if engine is None:
            engine = SpMVEngine("cusparse-csr")
        simT = self._similarity_csr()
        R = self.interactions.todense().astype(np.float32)
        scores = engine.spmv_many([(simT, R[u]) for u in users])
        if not scores:
            return np.zeros((0, self.n_items), dtype=np.float32)
        return np.stack(scores)

    def recommend_many(
        self, users, count: int = 5, exclude_seen: bool = True, engine=None
    ) -> np.ndarray:
        """Top ``count`` unseen items for each user, scored in one batch."""
        users = np.asarray(users, dtype=np.int64)
        scores = self.score_users(users, engine=engine).astype(np.float64)
        if exclude_seen:
            for j, user in enumerate(users):
                seen = self.interactions.rows == user
                scores[j, self.interactions.cols[seen]] = -np.inf
        order = np.argsort(scores, axis=1)[:, ::-1]
        return order[:, :count]

    def recommend(self, user: int, count: int = 5, exclude_seen: bool = True) -> np.ndarray:
        """Top ``count`` unseen items for one user."""
        if not 0 <= user < self.n_users:
            raise KernelError(f"user {user} out of range")
        scores = self.score_all()[user].astype(np.float64)
        if exclude_seen:
            seen = self.interactions.rows == user
            scores[self.interactions.cols[seen]] = -np.inf
        order = np.argsort(scores)[::-1]
        return order[:count]

"""Per-request time budgets, enforced at stage boundaries.

A :class:`Deadline` is created when a request is admitted and carried
through :func:`repro.exec.execute` / :func:`repro.exec.execute_chain`.
The stage machine is the checkpoint — no watchdog threads: between
stages (and between chain attempts) the executor calls
:meth:`Deadline.check`, and the first checkpoint past expiry raises a
structured :class:`~repro.errors.DeadlineExceededError` tagged with the
stage and the elapsed time.  A stage that is already running is never
interrupted; the guarantee is "no *new* work starts after expiry",
which is what keeps enforcement passive and deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import DeadlineExceededError, ResilienceError
from repro.obs import get_registry

__all__ = ["Deadline"]


def _count_miss(stage: str) -> None:
    get_registry().counter(
        "resilience_deadline_exceeded_total",
        "Deadline checkpoints that found the budget spent, by stage.",
        labels=("stage",),
    ).inc(stage=stage)


class Deadline:
    """One request's time budget against an injectable clock.

    ``budget_seconds`` is the total allowance from construction;
    ``clock`` is any zero-argument callable returning monotonic seconds
    (:func:`time.monotonic` by default, a
    :class:`~repro.resilience.clock.ManualClock` in tests and chaos
    campaigns).
    """

    def __init__(
        self, budget_seconds: float, *, clock: Callable[[], float] = time.monotonic
    ):
        budget_seconds = float(budget_seconds)
        if budget_seconds <= 0:
            raise ResilienceError(
                f"deadline budget must be positive, got {budget_seconds!r}"
            )
        self.budget = budget_seconds
        self._clock = clock
        self._start = clock()

    @property
    def elapsed(self) -> float:
        """Seconds consumed since the deadline was created."""
        return self._clock() - self._start

    @property
    def expires_at(self) -> float:
        """Absolute clock reading at which the budget runs out.

        This is what deadline-aware schedulers order by: the serving
        front-end's flush policy flushes a micro-batch early when the
        group's earliest ``expires_at`` gets close (see
        :class:`repro.serve.FlushPolicy`), and batch assembly sorts
        requests so the most urgent deadline rides first.
        """
        return self._start + self.budget

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.budget - self.elapsed

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, stage: str) -> None:
        """Checkpoint: raise if the budget is spent, else return at once.

        ``stage`` names the boundary performing the check (an exec stage
        or ``"dispatch"`` between chain attempts) and is carried on the
        raised :class:`~repro.errors.DeadlineExceededError`.
        """
        elapsed = self.elapsed
        if elapsed >= self.budget:
            _count_miss(stage)
            raise DeadlineExceededError(
                f"deadline of {self.budget:g}s exceeded at the {stage!r} "
                f"boundary after {elapsed:g}s",
                stage=stage,
                elapsed=elapsed,
                budget=self.budget,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(budget={self.budget:g}, remaining={self.remaining():g})"

"""Per-kernel circuit breakers: closed → open → half-open.

The degradation chain of PR 1/PR 4 is memoryless — a kernel that has
failed a hundred consecutive requests is still attempted (prepare,
verify, run) on request one hundred and one before falling back.  A
:class:`CircuitBreaker` remembers: a sliding window of recent outcomes
(the same success/failure signal the chain walker already feeds into
``exec_degradations_total``) drives a three-state machine —

``closed``
    healthy; every request is allowed and its outcome recorded.  When
    the window holds at least ``min_volume`` outcomes and the failure
    rate reaches ``failure_threshold``, the breaker **opens**.
``open``
    the kernel is quarantined; :meth:`CircuitBreaker.allow` answers
    ``False`` and the chain walker skips it *without attempting
    execution*, recording a ``circuit-open`` degradation event.  After
    ``cooldown_seconds`` the next request transitions to half-open.
``half-open``
    up to ``half_open_probes`` trial requests are let through.  The
    first success closes the breaker (window cleared — history from the
    sick period must not re-trip it); the first failure re-opens it and
    restarts the cooldown.

Everything is deterministic given the injectable clock; transitions are
kept on the breaker (for reports) and mirrored into :mod:`repro.obs`.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ResilienceError
from repro.obs import get_registry

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
]


class BreakerState(enum.Enum):
    """Where a breaker sits in the closed → open → half-open cycle."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


#: Gauge encoding of the state (0 = healthy .. 2 = quarantined).
# concurrency: not-shared -- constant encoding table, never written after import
_STATE_VALUE = {BreakerState.CLOSED: 0, BreakerState.HALF_OPEN: 1, BreakerState.OPEN: 2}


@dataclass(frozen=True)
class BreakerTransition:
    """One state change of one breaker, at clock time ``at``."""

    breaker: str
    old: str
    new: str
    at: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.at:g}] {self.breaker}: {self.old} -> {self.new}"


@dataclass(frozen=True)
class BreakerConfig:
    """Shared thresholds for every breaker on a board."""

    #: Sliding-window length (recent outcomes considered).
    window: int = 16
    #: Failure rate in the window that opens the breaker.
    failure_threshold: float = 0.5
    #: Minimum outcomes in the window before the rate is trusted.
    min_volume: int = 4
    #: Seconds an open breaker waits before probing.
    cooldown_seconds: float = 30.0
    #: Trial requests admitted while half-open.
    half_open_probes: int = 1

    def __post_init__(self):
        if self.window < 1:
            raise ResilienceError(f"window must be >= 1, got {self.window!r}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ResilienceError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold!r}"
            )
        if not 1 <= self.min_volume <= self.window:
            raise ResilienceError(
                f"min_volume must be in [1, window], got {self.min_volume!r}"
            )
        if self.cooldown_seconds < 0:
            raise ResilienceError("cooldown_seconds must be non-negative")
        if self.half_open_probes < 1:
            raise ResilienceError(
                f"half_open_probes must be >= 1, got {self.half_open_probes!r}"
            )


def _publish_state(name: str, state: BreakerState) -> None:
    get_registry().gauge(
        "resilience_breaker_state",
        "Breaker state per kernel (0 closed, 1 half-open, 2 open).",
        labels=("kernel",),
    ).set(_STATE_VALUE[state], kernel=name)


def _count_transition(name: str, old: BreakerState, new: BreakerState) -> None:
    get_registry().counter(
        "resilience_breaker_transitions_total",
        "Breaker state changes, by kernel and edge.",
        labels=("kernel", "old", "new"),
    ).inc(kernel=name, old=old.value, new=new.value)


class CircuitBreaker:
    """The three-state machine for one kernel.

    Thread-safe: every state read and transition happens under one
    re-entrant lock (``_transition`` runs inside the public methods
    that already hold it), so two threads racing ``allow`` during a
    cooldown can never both flip the breaker half-open or overshoot
    the probe budget.
    """

    def __init__(
        self,
        name: str,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.RLock()
        self.state = BreakerState.CLOSED  # concurrency: guarded-by(self._lock)
        # concurrency: guarded-by(self._lock)
        self._window: deque[bool] = deque(maxlen=self.config.window)
        self._opened_at = 0.0  # concurrency: guarded-by(self._lock)
        self._probes = 0  # concurrency: guarded-by(self._lock)
        # concurrency: guarded-by(self._lock)
        self.transitions: list[BreakerTransition] = []
        _publish_state(name, BreakerState.CLOSED)

    # -- state machine -------------------------------------------------------
    def _transition(self, new: BreakerState) -> None:
        # callers hold the lock already; the RLock makes this nesting safe
        with self._lock:
            old, self.state = self.state, new
            self.transitions.append(
                BreakerTransition(self.name, old.value, new.value, self._clock())
            )
        _count_transition(self.name, old, new)
        _publish_state(self.name, new)

    @property
    def failure_rate(self) -> float:
        """Failures over the current window (0.0 when empty)."""
        with self._lock:
            if not self._window:
                return 0.0
            return sum(1 for ok in self._window if not ok) / len(self._window)

    def allow(self) -> bool:
        """May the next request attempt this kernel?

        Open breakers answer ``False`` until the cooldown elapses, then
        flip to half-open; half-open breakers admit at most
        ``half_open_probes`` outstanding trials.
        """
        with self._lock:
            if self.state is BreakerState.OPEN:
                if self._clock() - self._opened_at < self.config.cooldown_seconds:
                    return False
                self._transition(BreakerState.HALF_OPEN)
                self._probes = 0
            if self.state is BreakerState.HALF_OPEN:
                if self._probes >= self.config.half_open_probes:
                    return False
                self._probes += 1
                return True
            return True

    def record_success(self) -> None:
        """Feed one successful attempt (closes a half-open breaker)."""
        with self._lock:
            if self.state is BreakerState.HALF_OPEN:
                self._window.clear()
                self._probes = 0
                self._transition(BreakerState.CLOSED)
            elif self.state is BreakerState.CLOSED:
                self._window.append(True)
            # OPEN: a straggler from before the trip; the quarantine stands.

    def record_failure(self) -> None:
        """Feed one failed attempt (may open the breaker)."""
        with self._lock:
            if self.state is BreakerState.HALF_OPEN:
                self._probes = 0
                self._opened_at = self._clock()
                self._transition(BreakerState.OPEN)
            elif self.state is BreakerState.CLOSED:
                self._window.append(False)
                if (
                    len(self._window) >= self.config.min_volume
                    and self.failure_rate >= self.config.failure_threshold
                ):
                    self._window.clear()
                    self._opened_at = self._clock()
                    self._transition(BreakerState.OPEN)
            # OPEN: already quarantined.

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "state": self.state.value,
                "failure_rate": self.failure_rate,
                "window": len(self._window),
                "transitions": len(self.transitions),
            }


class BreakerBoard:
    """Lazily-created breakers keyed by kernel name, one shared config.

    The seam :func:`repro.exec.execute_chain` consults: ``allow(name)``
    up front, ``record_success`` / ``record_failure`` per attempt
    outcome.  Names never seen answer as fresh closed breakers.
    """

    def __init__(
        self,
        config: BreakerConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._lock = threading.Lock()
        # concurrency: guarded-by(self._lock)
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, name: str) -> CircuitBreaker:
        with self._lock:
            board = self._breakers
            if name not in board:
                board[name] = CircuitBreaker(name, self.config, clock=self._clock)
            return board[name]

    def allow(self, name: str) -> bool:
        return self.breaker(name).allow()

    def record_success(self, name: str) -> None:
        self.breaker(name).record_success()

    def record_failure(self, name: str) -> None:
        self.breaker(name).record_failure()

    def state(self, name: str) -> BreakerState:
        return self.breaker(name).state

    def _snapshot(self) -> list[tuple[str, CircuitBreaker]]:
        with self._lock:
            return sorted(self._breakers.items())

    def transitions(self) -> list[BreakerTransition]:
        """Every transition on the board, in clock (then insertion) order."""
        merged = [t for _, b in self._snapshot() for t in list(b.transitions)]
        return sorted(merged, key=lambda t: t.at)

    def states(self) -> dict[str, str]:
        return {name: b.state.value for name, b in self._snapshot()}

    def as_dict(self) -> dict:
        return {name: b.as_dict() for name, b in self._snapshot()}

"""Injectable time sources for the resilience layer.

Every resilience primitive (deadlines, retry backoff, breaker
cooldowns) reads time through a ``clock()`` callable and waits through a
``sleep(seconds)`` callable, both injectable.  Production code passes
nothing and gets :func:`time.monotonic` / :func:`time.sleep`; tests and
the chaos harness pass a :class:`ManualClock`, which makes every
timeout, backoff and cooldown deterministic and instant — the virtual
second is the unit, nothing ever actually blocks.
"""

from __future__ import annotations

__all__ = ["ManualClock"]


class ManualClock:
    """A virtual clock that only moves when told to.

    Doubles as both sides of the time contract: calling the instance
    returns the current virtual time (``clock=manual``), and
    :meth:`sleep` advances it (``sleep=manual.sleep``), so a retry
    policy's backoff visibly consumes a deadline's budget without any
    wall-clock waiting.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        #: Every ``sleep`` duration requested, in order (test hook).
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (a stalled kernel, an expensive stage)."""
        # concurrency: not-shared -- deterministic test clock, driven by the
        # single test thread that owns it; production code uses time.monotonic
        self.now += float(seconds)

    def sleep(self, seconds: float) -> None:
        """Advance in place of blocking; records the request."""
        self.sleeps.append(float(seconds))
        self.advance(seconds)

"""``repro.resilience`` — serving-grade failure policy, kernel-agnostic.

The degradation machinery of PR 1/PR 4 is purely reactive: every
request walks the fallback chain from the top, with no notion of time
budgets, retryable-vs-fatal causes, or a kernel's recent health.  This
package supplies the missing substrate as plain policy objects the
execution layer consults:

* :class:`Deadline` — a per-request time budget checked at exec stage
  boundaries (:mod:`repro.resilience.deadline`);
* :class:`RetryPolicy` + :func:`classify_exception` — seeded, jittered
  exponential backoff over the retryable cause class
  (:mod:`repro.resilience.retry`);
* :class:`CircuitBreaker` / :class:`BreakerBoard` — per-kernel
  closed → open → half-open quarantine over a sliding outcome window
  (:mod:`repro.resilience.breaker`);
* :class:`ResiliencePolicy` — the bundle the engine installs
  (:mod:`repro.resilience.policy`);
* :class:`ManualClock` — the injectable time source that makes all of
  the above deterministic and instant under test
  (:mod:`repro.resilience.clock`).

Policy stays decoupled from mechanism: this package imports only the
stdlib, :mod:`repro.errors` and :mod:`repro.obs` (enforced by
``scripts/check_exec_boundaries.py``, like the obs gate), and nothing
here ever invokes a kernel — :mod:`repro.exec` reads the policy and
acts on it.  With no policy installed every seam is pass-through and
results are bit-identical.
"""

from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.resilience.clock import ManualClock
from repro.resilience.deadline import Deadline
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import (
    RECOVERABLE_EXCEPTIONS,
    RetryClass,
    RetryPolicy,
    classify_exception,
)

__all__ = [
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "Deadline",
    "ManualClock",
    "RECOVERABLE_EXCEPTIONS",
    "RetryClass",
    "RetryPolicy",
    "ResiliencePolicy",
    "classify_exception",
]

"""The bundle consumers install: deadlines + retries + breakers.

:class:`ResiliencePolicy` is what the engine (and any future serving
front-end) carries instead of three loose knobs.  Every field is
optional and ``None`` means "feature off", so an engine constructed
without a policy — or with the default empty one — behaves **exactly**
as before: no checkpoints, no retries, no breaker consultation, results
bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy

__all__ = ["ResiliencePolicy"]


@dataclass
class ResiliencePolicy:
    """Per-consumer resilience configuration.

    * ``deadline_seconds`` — budget granted to each unit of work (one
      engine batch / one chain walk); ``None`` disables checkpoints.
    * ``retry`` — a :class:`~repro.resilience.retry.RetryPolicy` applied
      per kernel to retryable causes before the chain degrades.
    * ``breakers`` — a :class:`~repro.resilience.breaker.BreakerBoard`
      consulted by the chain walker to skip quarantined kernels.
    * ``deep_verify`` — run the deep format verifiers inside every
      attempt (chaos campaigns turn this on so injected structural
      corruption is caught at the ``verify`` stage instead of surfacing
      as a wrong result).
    * ``clock`` — the time source new deadlines are minted against.
    """

    deadline_seconds: float | None = None
    retry: RetryPolicy | None = None
    breakers: BreakerBoard | None = None
    deep_verify: bool = False
    clock: Callable[[], float] = time.monotonic

    def new_deadline(self) -> Deadline | None:
        """Mint the next unit of work's deadline (``None`` when off)."""
        if self.deadline_seconds is None:
            return None
        return Deadline(self.deadline_seconds, clock=self.clock)

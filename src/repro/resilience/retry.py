"""Retry policies: cause taxonomy + seeded, jittered exponential backoff.

Not every failure deserves a second attempt on the *same* kernel.  The
taxonomy here splits the exception hierarchy of :mod:`repro.errors`
(plus the safelisted non-Repro exceptions the chain walker recovers
from) into two classes:

RETRYABLE
    transient by nature — an injected/in-flight data corruption caught
    by deep verification (:class:`~repro.errors.VerificationError`), an
    fp16/accumulator overflow that a re-run on freshly prepared state
    may clear (:class:`~repro.errors.NumericalError`), allocation
    pressure (:class:`MemoryError`) and stray arithmetic faults
    (:class:`ArithmeticError`).  The chain walker evicts the poisoned
    operand first, so a retry re-prepares from the pristine CSR.

FATAL
    deterministic — invocation/validation errors
    (:class:`~repro.errors.KernelError`,
    :class:`~repro.errors.ConversionError`), simulator-contract
    violations, and expired deadlines
    (:class:`~repro.errors.DeadlineExceededError`: no amount of
    retrying beats a clock that already ran out).  The chain degrades
    to the next kernel immediately.

Backoff is exponential with bounded multiplicative jitter, seeded so a
campaign replays bit-for-bit, and sleeps through an injectable callable
so tests are instant.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    DeadlineExceededError,
    NumericalError,
    ReproError,
    ResilienceError,
    VerificationError,
)

__all__ = [
    "RECOVERABLE_EXCEPTIONS",
    "RetryClass",
    "RetryPolicy",
    "classify_exception",
]

#: Non-Repro exceptions a kernel attempt may be abandoned (and retried)
#: on.  Everything else that is not a :class:`~repro.errors.ReproError`
#: — ``KeyboardInterrupt``, ``SystemExit``, programming errors like
#: ``TypeError`` — propagates untouched: masking it would hide true
#: corruption.  ``ArithmeticError`` covers ``FloatingPointError``,
#: ``OverflowError`` and ``ZeroDivisionError``.
RECOVERABLE_EXCEPTIONS: tuple[type[BaseException], ...] = (
    MemoryError,
    ArithmeticError,
)


class RetryClass(enum.Enum):
    """Whether a failure cause is worth re-attempting on the same kernel."""

    RETRYABLE = "retryable"
    FATAL = "fatal"


def classify_exception(exc: BaseException) -> RetryClass:
    """Map one failure to the taxonomy above.

    Order matters: :class:`~repro.errors.DeadlineExceededError` is fatal
    even though it is a :class:`~repro.errors.ReproError`, and
    :class:`~repro.errors.VerificationError` is retryable even though
    its :class:`~repro.errors.FormatError` parent is not.
    """
    if isinstance(exc, DeadlineExceededError):
        return RetryClass.FATAL
    if isinstance(exc, (NumericalError, VerificationError)):
        return RetryClass.RETRYABLE
    if isinstance(exc, ReproError):
        return RetryClass.FATAL
    if isinstance(exc, RECOVERABLE_EXCEPTIONS):
        return RetryClass.RETRYABLE
    return RetryClass.FATAL


@dataclass
class RetryPolicy:
    """Seeded exponential backoff over the retryable cause class.

    ``max_attempts`` counts *total* tries per kernel (1 = no retries);
    attempt ``n``'s delay is ``min(max_delay, base_delay *
    multiplier**n)`` scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` out of a private ``random.Random(seed)``
    — same seed, same schedule.  ``sleep`` is injectable
    (:meth:`~repro.resilience.clock.ManualClock.sleep` makes backoff
    consume a virtual deadline instead of wall time).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ResilienceError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(f"jitter must be in [0, 1], got {self.jitter!r}")
        self._rng = random.Random(self.seed)

    def classify(self, exc: BaseException) -> RetryClass:
        return classify_exception(exc)

    def delay(self, attempt: int) -> float:
        """Jittered delay before retry number ``attempt`` (0-based).

        Consumes one draw from the seeded jitter stream per call, so a
        replayed campaign sees the identical schedule.
        """
        base = min(self.max_delay, self.base_delay * self.multiplier**attempt)
        factor = 1.0 - self.jitter + 2.0 * self.jitter * self._rng.random()
        return base * factor

    def backoff(self, attempt: int) -> float:
        """Compute :meth:`delay` and sleep it; returns the slept seconds."""
        seconds = self.delay(attempt)
        self.sleep(seconds)
        return seconds

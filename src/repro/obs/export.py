"""Exporters: Prometheus-style text and JSON-lines event logs.

Two serializations of the same observability state:

* :func:`to_prometheus` renders the metrics registry in the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` headers, one line per
  labeled series, ``_bucket``/``_sum``/``_count`` expansion for
  histograms) — the scrape format a production deployment would serve;
* :func:`write_jsonl` / :func:`read_jsonl` persist a stream of
  JSON-object events (one per line) — the trajectory format
  :class:`~repro.obs.report.RunReport` round-trips through and the
  bench harness appends to ``BENCH_obs.json``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable

from repro.errors import ObservabilityError
from repro.obs.metrics import Histogram, MetricsRegistry, get_registry

__all__ = ["read_jsonl", "to_prometheus", "write_jsonl"]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry as Prometheus text exposition format."""
    registry = get_registry() if registry is None else registry
    lines: list[str] = []
    for metric in registry.metrics():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, series in metric.series().items():
                cumulative = 0
                for bound, count in zip(metric.buckets, series["buckets"]):
                    cumulative = count
                    le = _format_value(float(bound))
                    labels = _labels_text(metric.label_names, key, f'le="{le}"')
                    lines.append(f"{metric.name}_bucket{labels} {cumulative}")
                labels = _labels_text(metric.label_names, key, 'le="+Inf"')
                lines.append(f"{metric.name}_bucket{labels} {series['count']}")
                plain = _labels_text(metric.label_names, key)
                lines.append(f"{metric.name}_sum{plain} {series['sum']}")
                lines.append(f"{metric.name}_count{plain} {series['count']}")
        else:
            for key, value in metric.series().items():
                labels = _labels_text(metric.label_names, key)
                lines.append(f"{metric.name}{labels} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str | Path, events: Iterable[dict]) -> int:
    """Write one JSON object per line; returns the number of events.

    Keys keep insertion order (no sorting) so a diff of two logs lines
    up field-for-field; values must already be JSON-native.
    """
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event, ensure_ascii=False))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSON-lines file back into a list of event dicts.

    Blank lines are skipped; a malformed line is a structured
    :class:`~repro.errors.ObservabilityError` naming its line number.
    """
    path = Path(path)
    events: list[dict] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path.name}:{lineno}: malformed JSON-lines event: {exc}"
            ) from exc
        if not isinstance(event, dict):
            raise ObservabilityError(
                f"{path.name}:{lineno}: event must be a JSON object, "
                f"got {type(event).__name__}"
            )
        events.append(event)
    return events

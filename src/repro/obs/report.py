"""The merged ``RunReport``: one serializable document per run.

Before this layer existed the repo's counters were siloed —
:class:`~repro.gpu.counters.ExecutionStats` on the simulator,
:class:`~repro.engine.cache.CacheStats` on the operand cache,
:class:`~repro.engine.engine.EngineStats` on the serving engine,
degradation events on chain results, sanitizer findings on
:class:`~repro.analysis.sanitizer.SanitizerReport` — with no common
export.  :func:`build_run_report` folds all of them, plus the span
timeline and the metrics registry, into one :class:`RunReport` that

* prints as the ``repro.cli report`` summary
  (:func:`format_run_report`),
* serializes to a JSON-lines event stream
  (:meth:`RunReport.to_jsonl_lines`) and parses back losslessly
  (:meth:`RunReport.from_jsonl_lines` — ``report == from(to(report))``),
* rides in the bench trajectory artifact (``BENCH_obs.json``).

All payloads are normalized to JSON-native types at build time, so
equality after a serialization round trip is plain ``==``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.errors import ObservabilityError
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.metrics import get_registry
from repro.obs.spans import get_span_log

__all__ = [
    "RunReport",
    "SCHEMA_VERSION",
    "build_run_report",
    "format_run_report",
]

#: Bump when the record layout below changes shape.
SCHEMA_VERSION: int = 1


def _jsonable(value):
    """Normalize to JSON-native types (tuples -> lists, str keys)."""
    return json.loads(json.dumps(value))


@dataclass
class RunReport:
    """Every observability product of one run, merged and serializable."""

    schema_version: int = SCHEMA_VERSION
    #: Free-form run descriptors (command, matrix, kernel, scale...).
    meta: dict = field(default_factory=dict)
    #: Merged simulator counters (:meth:`ExecutionStats.as_dict`, minus
    #: the degradation log, which lives in :attr:`degradation_events`).
    kernel_stats: dict = field(default_factory=dict)
    #: Operand-cache counters (:meth:`CacheStats.as_dict`).
    cache_stats: dict = field(default_factory=dict)
    #: Engine serving counters (:meth:`EngineStats.as_dict`, minus the
    #: nested execution stats and degradation log).
    engine_stats: dict = field(default_factory=dict)
    #: One dict per abandoned kernel attempt, in order.
    degradation_events: list = field(default_factory=list)
    #: Sanitizer findings (:meth:`SanitizerReport.as_dict`), or ``{}``.
    sanitizer: dict = field(default_factory=dict)
    #: Finished spans, oldest first (:meth:`Span.as_dict` each).
    spans: list = field(default_factory=list)
    #: Metrics-registry snapshot (:meth:`MetricsRegistry.as_dict`).
    metrics: dict = field(default_factory=dict)

    # -- serialization --------------------------------------------------------
    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_jsonl_lines(self) -> list[str]:
        """One JSON event per line: header, sections, then streams."""
        return [json.dumps(e, ensure_ascii=False) for e in self.to_events()]

    def to_events(self) -> list[dict]:
        events: list[dict] = [
            {"record": "meta", "schema_version": self.schema_version, "data": self.meta},
            {"record": "kernel_stats", "data": self.kernel_stats},
            {"record": "cache_stats", "data": self.cache_stats},
            {"record": "engine_stats", "data": self.engine_stats},
            {"record": "sanitizer", "data": self.sanitizer},
            {"record": "metrics", "data": self.metrics},
        ]
        events.extend({"record": "degradation_event", "data": e} for e in self.degradation_events)
        events.extend({"record": "span", "data": s} for s in self.spans)
        return events

    @classmethod
    def from_events(cls, events: list[dict]) -> "RunReport":
        report = cls()
        saw_meta = False
        sections = {
            "kernel_stats", "cache_stats", "engine_stats", "sanitizer", "metrics",
        }
        for event in events:
            record = event.get("record")
            if record == "meta":
                version = event.get("schema_version")
                if version != SCHEMA_VERSION:
                    raise ObservabilityError(
                        f"run-report schema {version!r} unsupported "
                        f"(this build reads {SCHEMA_VERSION})"
                    )
                report.meta = event.get("data", {})
                saw_meta = True
            elif record in sections:
                setattr(report, record, event.get("data", {}))
            elif record == "degradation_event":
                report.degradation_events.append(event.get("data", {}))
            elif record == "span":
                report.spans.append(event.get("data", {}))
            else:
                raise ObservabilityError(f"unknown run-report record {record!r}")
        if not saw_meta:
            raise ObservabilityError("run-report stream has no 'meta' header record")
        return report

    @classmethod
    def from_jsonl_lines(cls, lines: list[str]) -> "RunReport":
        events = []
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"line {lineno}: malformed run-report event: {exc}"
                ) from exc
        return cls.from_events(events)

    def write_jsonl(self, path: str | Path) -> int:
        return write_jsonl(path, self.to_events())

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "RunReport":
        return cls.from_events(read_jsonl(path))


def _degradation_event_dict(event) -> dict:
    """Normalize one DegradationEvent (already-dict entries pass through)."""
    if isinstance(event, dict):
        return event
    return {
        "kernel": event.kernel,
        "stage": event.stage,
        "cause": event.cause,
        "detail": event.detail,
        "fallback": event.fallback,
    }


def build_run_report(
    *,
    meta: dict | None = None,
    engine=None,
    execution_stats=None,
    cache_stats=None,
    events=None,
    sanitizer_report=None,
    registry=None,
    span_log=None,
) -> RunReport:
    """Fold every stats silo into one :class:`RunReport`.

    ``engine`` (a :class:`~repro.engine.SpMVEngine`) supplies defaults
    for ``execution_stats`` (its merged simulator counters),
    ``cache_stats``, ``events`` (its degradation log) and the engine
    counters themselves; each can also be passed explicitly.  The span
    timeline and metrics snapshot default to the process-wide log and
    registry.
    """
    engine_stats: dict = {}
    if engine is not None:
        stats = engine.stats.as_dict()
        stats.pop("degradation_log", None)
        stats.pop("execution", None)
        engine_stats = stats
        if execution_stats is None:
            execution_stats = engine.stats.execution
        if cache_stats is None:
            cache_stats = engine.cache.stats
        if events is None:
            events = engine.stats.degradation_log

    kernel_stats: dict = {}
    if execution_stats is not None:
        kernel_stats = execution_stats.as_dict()
        kernel_stats.pop("degradation_log", None)

    report = RunReport(
        meta=_jsonable(meta or {}),
        kernel_stats=_jsonable(kernel_stats),
        cache_stats=_jsonable(cache_stats.as_dict() if cache_stats is not None else {}),
        engine_stats=_jsonable(engine_stats),
        degradation_events=_jsonable(
            [_degradation_event_dict(e) for e in (events or [])]
        ),
        sanitizer=_jsonable(
            sanitizer_report.as_dict() if sanitizer_report is not None else {}
        ),
        spans=_jsonable((span_log or get_span_log()).as_dicts()),
        metrics=_jsonable((registry or get_registry()).as_dict()),
    )
    return report


def _span_rollup(spans: list[dict]) -> list[tuple[str, int, float]]:
    """Aggregate spans as ``(name, count, total_seconds)`` rows."""
    totals: dict[str, list] = {}
    for span in spans:
        entry = totals.setdefault(span["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += span.get("duration_seconds", 0.0)
    return [(name, c, s) for name, (c, s) in sorted(totals.items())]


def format_run_report(report: RunReport) -> str:
    """Human-readable summary the ``repro.cli report`` command prints."""
    lines: list[str] = ["== RunReport =="]
    if report.meta:
        lines.append("meta: " + ", ".join(f"{k}={v}" for k, v in report.meta.items()))

    if report.engine_stats:
        es = report.engine_stats
        lines.append(
            f"engine: {es.get('requests', 0)} requests in {es.get('batches', 0)} "
            f"batches ({es.get('batched_vectors', 0)} amortized), "
            f"{es.get('prepare_calls', 0)} prepares "
            f"({es.get('prepare_seconds', 0.0) * 1e3:.2f} ms), "
            f"run {es.get('run_seconds', 0.0) * 1e3:.2f} ms"
        )

    if report.cache_stats:
        cs = report.cache_stats
        lookups = cs.get("hits", 0) + cs.get("misses", 0)
        rate = cs.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            f"cache: {cs.get('hits', 0)} hits / {cs.get('misses', 0)} misses "
            f"({rate:.0%}), {cs.get('evictions', 0)} evictions, "
            f"{cs.get('rejected', 0)} rejected"
        )

    if report.kernel_stats:
        ks = report.kernel_stats
        lines.append(
            f"kernel: {ks.get('mma_ops', 0)} MMAs, "
            f"{ks.get('cuda_flops', 0)} CUDA flops, "
            f"{ks.get('global_load_bytes', 0)} load B / "
            f"{ks.get('global_store_bytes', 0)} store B, "
            f"{ks.get('load_transactions', 0)}+{ks.get('store_transactions', 0)} sectors"
        )

    lines.append(f"degradations: {len(report.degradation_events)}")
    for event in report.degradation_events:
        nxt = event.get("fallback") or "chain exhausted"
        lines.append(
            f"  [{event.get('kernel')}/{event.get('stage')}] "
            f"{event.get('cause')}: {event.get('detail')} -> {nxt}"
        )

    if report.sanitizer:
        san = report.sanitizer
        lines.append(
            f"sanitizer: {len(san.get('races', []))} races, "
            f"{len(san.get('ownership_violations', []))} ownership violations, "
            f"{san.get('warps_observed', 0)} warps observed"
        )

    rollup = _span_rollup(report.spans)
    if rollup:
        lines.append(f"spans ({len(report.spans)} recorded):")
        for name, count, total in rollup:
            lines.append(f"  {name:<24} x{count:<5} {total * 1e3:9.3f} ms")

    n_series = sum(len(m.get("series", [])) for m in report.metrics.get("metrics", []))
    lines.append(
        f"metrics: {len(report.metrics.get('metrics', []))} metrics, "
        f"{n_series} labeled series"
    )
    return "\n".join(lines)

"""Span-based tracing for the execution seam.

A :class:`Span` is one timed, attributed region of a run — an exec
stage, a chain attempt, an engine batch, a bench phase.  Spans nest:
the walker's ``exec.attempt`` span contains the executor's
``exec.execute`` span, which contains one span per stage
(``exec.prepare`` / ``exec.verify`` / ``exec.run`` / ``exec.check``),
each carrying the ``exec_stage`` / ``kernel`` / ``mode`` attributes the
per-stage breakdowns of the paper's Fig. 8 are built from.

Spans are recorded into a process-wide :class:`SpanLog` when they
finish (children before parents, as in any tracer); the parent link is
kept on the span so exporters can rebuild the tree.  A span that exits
via an exception is marked ``status="error"`` with the exception's
class and message, and the exception propagates untouched — tracing
never swallows or alters control flow.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "SpanLog", "get_span_log", "reset_spans", "span"]

#: Retained finished spans; beyond this the oldest are dropped (and
#: counted) so a long-running service cannot grow without bound.
DEFAULT_SPAN_LIMIT: int = 100_000


@dataclass
class Span:
    """One finished (or in-flight) traced region."""

    span_id: int
    parent_id: int | None
    name: str
    attributes: dict = field(default_factory=dict)
    #: ``time.perf_counter()`` at entry (monotonic, host-side).
    start_seconds: float = 0.0
    end_seconds: float | None = None
    status: str = "ok"
    error: str | None = None

    @property
    def duration_seconds(self) -> float:
        if self.end_seconds is None:
            return 0.0
        return self.end_seconds - self.start_seconds

    def as_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_seconds": self.start_seconds,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
            "error": self.error,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        attrs = " ".join(f"{k}={v}" for k, v in self.attributes.items())
        flag = "" if self.status == "ok" else f" [{self.status}: {self.error}]"
        return f"{self.name} {self.duration_seconds * 1e6:.1f}us {attrs}{flag}"


class SpanLog:
    """Bounded, ordered log of finished spans plus the live stack.

    Thread-safe: the live span stack is **thread-local** (each thread
    nests its own spans; a worker's ``exec.run`` can never become the
    child of another thread's batch), while the finished-span buffer
    and its overflow counter live under one lock.  Span ids come from
    ``itertools.count``, whose ``next`` is atomic under the GIL.
    """

    def __init__(self, limit: int = DEFAULT_SPAN_LIMIT):
        self.limit = int(limit)
        self._spans: list[Span] = []  # concurrency: guarded-by(self._lock)
        # concurrency: not-shared -- live span stack is per-thread
        # (threading.local), so only its owning thread touches it
        self._local = threading.local()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: Finished spans discarded to respect :attr:`limit`.
        self.dropped = 0  # concurrency: guarded-by(self._lock)

    def _live(self) -> list[Span]:
        """This thread's in-flight span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: object):
        """Open one span around a ``with`` body; records on exit.

        Exceptions mark the span ``status="error"`` and propagate; the
        span still records, so a failed stage shows up in the timeline
        exactly where it died.
        """
        stack = self._live()
        parent = stack[-1].span_id if stack else None
        current = Span(
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            attributes=dict(attributes),
            start_seconds=time.perf_counter(),
        )
        stack.append(current)
        try:
            yield current
        except BaseException as exc:
            current.status = "error"
            current.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            current.end_seconds = time.perf_counter()
            # unwind even if an inner frame leaked stack entries
            while stack and stack[-1] is not current:
                stack.pop()
            if stack:
                stack.pop()
            with self._lock:
                self._spans.append(current)
                if len(self._spans) > self.limit:
                    overflow = len(self._spans) - self.limit
                    del self._spans[:overflow]
                    self.dropped += overflow

    # -- introspection --------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, oldest first (children before parents)."""
        with self._lock:
            return tuple(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def children_of(self, parent: Span) -> list[Span]:
        return [s for s in self.spans() if s.parent_id == parent.span_id]

    def as_dicts(self) -> list[dict]:
        return [s.as_dict() for s in self.spans()]

    def clear(self) -> None:
        """Drop finished spans and this thread's live stack."""
        with self._lock:
            self._spans.clear()
            self.dropped = 0
        self._live().clear()


#: The process-wide span log the exec seam records into.
_GLOBAL = SpanLog()


def get_span_log() -> SpanLog:
    """The process-wide :class:`SpanLog`."""
    return _GLOBAL


def span(name: str, **attributes: object):
    """Open a span on the process-wide log (context manager)."""
    return _GLOBAL.span(name, **attributes)


def reset_spans() -> None:
    """Clear the process-wide span log (between runs / tests)."""
    _GLOBAL.clear()

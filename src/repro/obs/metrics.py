"""Process-wide metrics registry: counters, gauges, histograms.

Every producer in the repo (the exec stage machine, the chain walker,
:class:`~repro.engine.SpMVEngine`, the operand cache, the degradation
dispatcher, the sanitizer, the bench harness) records into one
:class:`MetricsRegistry` so a run's counters can be exported together —
as a Prometheus-style text page (:func:`repro.obs.export.to_prometheus`)
or folded into a :class:`~repro.obs.report.RunReport`.

The model is deliberately Prometheus-shaped:

* a **metric** has a name, a kind (``counter`` / ``gauge`` /
  ``histogram``), help text, and a fixed tuple of label names;
* each distinct label-value assignment is a **series** holding one
  value (or, for histograms, a count / sum / bucket vector);
* registration is idempotent — asking for an existing name returns the
  existing metric, and a kind or label-schema mismatch is a structured
  :class:`~repro.errors.ObservabilityError` instead of a silent alias.

Metrics are *observation only*: nothing in the numeric, simulated or
profiled paths reads them back, so enabling observability can never
perturb results (the bitwise-identity contract of the exec layer).
"""

from __future__ import annotations

import re
import threading
from typing import Iterable, Mapping

from repro.errors import ObservabilityError

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "get_registry",
    "reset_metrics",
]

#: Default histogram buckets, tuned for host-side stage timings
#: (microseconds through tens of seconds).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Metric:
    """Base of the three metric kinds; owns the labeled series map."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", label_names: tuple[str, ...] = ()):
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _NAME_RE.match(label):
                raise ObservabilityError(f"invalid label name {label!r} on {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        # concurrency: guarded-by(self._lock)
        self._series: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    # -- series addressing ----------------------------------------------------
    def _key(self, labels: Mapping[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ObservabilityError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def series(self) -> dict[tuple[str, ...], object]:
        """Snapshot of every labeled series (label values -> value)."""
        with self._lock:
            return dict(self._series)

    def labeled(self) -> list[tuple[dict, object]]:
        """Series as ``({label: value}, value)`` pairs, insertion-ordered."""
        return [
            (dict(zip(self.label_names, key)), value)
            for key, value in self.series().items()
        ]

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "series": [
                {"labels": labels, "value": value} for labels, value in self.labeled()
            ],
        }


class Counter(Metric):
    """Monotonically increasing count (events, bytes, degradations)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)


class Gauge(Metric):
    """A value that goes both ways (resident bytes, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)


class Histogram(Metric):
    """Cumulative-bucket distribution (stage seconds, batch sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, label_names)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = {
                    "count": 0,
                    "sum": 0.0,
                    "buckets": [0] * len(self.buckets),
                }
                self._series[key] = series
            series["count"] += 1
            series["sum"] += float(value)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series["buckets"][i] += 1

    def count(self, **labels: object) -> int:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series["count"] if series else 0

    def sum(self, **labels: object) -> float:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            return series["sum"] if series else 0.0

    def series(self) -> dict[tuple[str, ...], object]:
        with self._lock:
            return {
                key: {
                    "count": s["count"],
                    "sum": s["sum"],
                    "buckets": list(s["buckets"]),
                }
                for key, s in self._series.items()
            }


class MetricsRegistry:
    """Name-keyed collection of metrics with idempotent registration."""

    # concurrency: not-shared -- registration-time kind table, written once
    # at class creation and only ever read afterwards
    _KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}

    def __init__(self):
        self._metrics: dict[str, Metric] = {}  # concurrency: guarded-by(self._lock)
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, labels: tuple[str, ...], **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ObservabilityError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                if existing.label_names != tuple(labels):
                    raise ObservabilityError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.label_names}, got {tuple(labels)}"
                    )
                return existing
            metric = cls(name, help, tuple(labels), **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    # -- introspection --------------------------------------------------------
    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def metrics(self) -> list[Metric]:
        """Registered metrics in registration order."""
        with self._lock:
            return list(self._metrics.values())

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every metric and series."""
        return {"metrics": [m.as_dict() for m in self.metrics()]}

    def reset(self) -> None:
        """Drop every metric (registrations included) — test isolation."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry every producer records into.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _GLOBAL


def reset_metrics() -> None:
    """Clear the process-wide registry (between runs / tests)."""
    _GLOBAL.reset()

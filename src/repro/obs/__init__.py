"""``repro.obs`` — the unified observability layer.

One subsystem, three products, all fed by the ``repro.exec`` seam:

* a process-wide **metrics registry** (:mod:`repro.obs.metrics`) of
  labeled counters, gauges and histograms every producer — executor,
  chain walker, engine, operand cache, dispatcher, sanitizer, bench —
  records into;
* **span-based tracing** (:mod:`repro.obs.spans`): one span per exec
  stage, per chain attempt, per engine batch, carrying
  ``exec_stage`` / ``kernel`` / ``mode`` attributes;
* **exporters** (:mod:`repro.obs.export`, :mod:`repro.obs.report`):
  Prometheus-style text, JSON-lines event logs, and the merged
  :class:`RunReport` that folds ``ExecutionStats``, ``CacheStats``,
  ``EngineStats``, degradation events and sanitizer findings into one
  serializable document (``repro.cli report``).

Observation is strictly passive: this package never invokes kernels
(enforced by ``scripts/check_exec_boundaries.py``) and nothing on the
numeric/simulated/profiled paths reads it back, so results and
simulator counters are bitwise-identical with observability enabled.
"""

from repro.obs.export import read_jsonl, to_prometheus, write_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    get_registry,
    reset_metrics,
)
from repro.obs.report import (
    RunReport,
    SCHEMA_VERSION,
    build_run_report,
    format_run_report,
)
from repro.obs.spans import Span, SpanLog, get_span_log, reset_spans, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "RunReport",
    "SCHEMA_VERSION",
    "Span",
    "SpanLog",
    "build_run_report",
    "format_run_report",
    "get_registry",
    "get_span_log",
    "read_jsonl",
    "reset_metrics",
    "reset_observability",
    "reset_spans",
    "span",
    "to_prometheus",
    "write_jsonl",
]


def reset_observability() -> None:
    """Clear the process-wide metrics registry and span log together."""
    reset_metrics()
    reset_spans()

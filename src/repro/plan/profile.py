"""Per-matrix structure profiles: the planner's view of a CSR.

The Fig. 9 crossover — spaden beats the CSR baselines exactly when
nonzeros cluster into dense 8x8 blocks — is a pure function of matrix
*structure*.  :func:`compute_structure_profile` extracts that structure
in one vectorized pass over the CSR arrays: the block-density histogram
over 8x8 tiles, the nnz/row distribution, the fill ratio, and the §4.3
pairing depth (the exact number of MMA steps a spaden execution of this
matrix issues).  The result is a small frozen dataclass the planner
caches by :func:`matrix_fingerprint` — profiling is paid once per
matrix content, like the engine's prepared operands.

This module is deliberately *duck-typed* over the matrix: it reads
``row_pointers`` / ``col_indices`` / ``shape`` / ``nnz`` and never
imports :mod:`repro.formats`, keeping the planner package inside its
import fence (stdlib + numpy + errors + perf + obs).

:func:`matrix_fingerprint` lives here as the canonical implementation;
:mod:`repro.engine.cache` re-exports it, so the operand cache and the
planner's profile cache key by the *same* content hash and an engine can
hand its fingerprint straight to the planner.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields

import numpy as np

from repro.constants import BLOCK_DIM, BLOCK_SIZE
from repro.errors import PlanError

__all__ = [
    "StructureProfile",
    "compute_structure_profile",
    "matrix_fingerprint",
    "BLOCK_NNZ_BUCKETS",
]

#: Upper (inclusive) edges of the block-nnz histogram buckets: a
#: nonzero 8x8 tile holds 1..64 nonzeros; eight equal buckets resolve
#: the Fig. 9 density axis without storing per-block data.
BLOCK_NNZ_BUCKETS: tuple[int, ...] = (8, 16, 24, 32, 40, 48, 56, 64)


def matrix_fingerprint(csr) -> str:
    """Content hash of a CSR matrix (shape + all three arrays).

    Blake2b over each array's dtype, length and raw bytes: structurally
    identical matrices map to the same key regardless of object
    identity, and any in-place edit of pointers, indices or values
    changes the key.  The dtype/length framing keeps arrays with
    identical byte content but different element types apart (an int32
    ``[1, 0]`` and an int64 ``[1]`` share raw bytes) and pins the
    boundary between adjacent arrays, so bytes can never shift from one
    array into the next and still hash the same.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(csr.shape).encode())
    for array in (csr.row_pointers, csr.col_indices, csr.values):
        h.update(f"{array.dtype.str}:{array.size};".encode())
        h.update(array.tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class StructureProfile:
    """One matrix's structure, reduced to what kernel choice depends on.

    All fields are derived from the CSR's pointers and indices alone
    (values never matter to kernel choice), in one vectorized pass.
    """

    #: Logical shape and nonzero count.
    nrows: int
    ncols: int
    nnz: int
    #: ``nnz / (nrows * ncols)`` — the Fig. 9b sparsity axis.
    fill_ratio: float
    #: nnz/row distribution (empty rows included in mean/std).
    row_nnz_min: int
    row_nnz_max: int
    row_nnz_mean: float
    row_nnz_std: float
    empty_rows: int
    #: 8x8 tiles holding at least one nonzero.
    nonzero_blocks: int
    #: Block rows (8-row bands) holding at least one nonzero block.
    nonzero_block_rows: int
    #: ``nnz / nonzero_blocks`` — the Fig. 9a density axis (1..64).
    mean_block_nnz: float
    #: ``mean_block_nnz / 64`` — same axis, as a fraction.
    mean_block_density: float
    #: Histogram of per-block nnz over :data:`BLOCK_NNZ_BUCKETS`.
    block_nnz_hist: tuple[int, ...]
    #: Exact §4.3 pairing depth: the MMA steps a spaden execution
    #: issues, ``sum_r max(blocks in row 2r, blocks in row 2r+1)``.
    paired_steps: int
    #: Content hash the profile was computed for (``None`` if unknown).
    fingerprint: str | None = None

    @property
    def dense_block_fraction(self) -> float:
        """Fraction of nonzero blocks at least half full (nnz >= 32)."""
        if not self.nonzero_blocks:
            return 0.0
        return sum(self.block_nnz_hist[4:]) / self.nonzero_blocks

    def as_dict(self) -> dict:
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        out["dense_block_fraction"] = self.dense_block_fraction
        return out


def compute_structure_profile(csr, *, fingerprint: str | None = None) -> StructureProfile:
    """One-pass structure profile of a CSR matrix (duck-typed).

    ``csr`` needs ``shape``, ``nnz``, ``row_pointers`` and
    ``col_indices`` (any :class:`~repro.formats.csr.CSRMatrix` or
    scipy-like object qualifies).  ``fingerprint`` is stamped onto the
    profile if given; callers that already fingerprinted the matrix
    (the engine) pass theirs so the planner never re-hashes.
    """
    nrows, ncols = (int(d) for d in csr.shape)
    nnz = int(csr.nnz)
    if nrows <= 0 or ncols <= 0:
        raise PlanError(f"cannot profile an empty-shape matrix {csr.shape}")
    row_pointers = np.asarray(csr.row_pointers)
    col_indices = np.asarray(csr.col_indices)
    if row_pointers.shape[0] != nrows + 1:
        raise PlanError(
            f"row_pointers has {row_pointers.shape[0]} entries, expected {nrows + 1}"
        )
    row_nnz = np.diff(row_pointers).astype(np.int64)
    if nnz == 0:
        return StructureProfile(
            nrows=nrows,
            ncols=ncols,
            nnz=0,
            fill_ratio=0.0,
            row_nnz_min=0,
            row_nnz_max=0,
            row_nnz_mean=0.0,
            row_nnz_std=0.0,
            empty_rows=nrows,
            nonzero_blocks=0,
            nonzero_block_rows=0,
            mean_block_nnz=0.0,
            mean_block_density=0.0,
            block_nnz_hist=(0,) * len(BLOCK_NNZ_BUCKETS),
            paired_steps=0,
            fingerprint=fingerprint,
        )
    rows = np.repeat(np.arange(nrows, dtype=np.int64), row_nnz)
    block_cols_total = (ncols + BLOCK_DIM - 1) // BLOCK_DIM
    block_ids = (rows // BLOCK_DIM) * block_cols_total + (
        col_indices.astype(np.int64) // BLOCK_DIM
    )
    unique_blocks, per_block_nnz = np.unique(block_ids, return_counts=True)
    nonzero_blocks = int(unique_blocks.size)
    hist, _edges = np.histogram(
        per_block_nnz, bins=[1] + [edge + 1 for edge in BLOCK_NNZ_BUCKETS]
    )
    # §4.3 pairing: block row 2r rides the even MMA slots, 2r+1 the odd
    # ones; a pair's step count is the longer of its two block lists.
    block_row_ids = unique_blocks // block_cols_total
    used_rows, per_block_row = np.unique(block_row_ids, return_counts=True)
    block_rows_total = (nrows + BLOCK_DIM - 1) // BLOCK_DIM
    lengths = np.zeros(block_rows_total + (block_rows_total % 2), dtype=np.int64)
    lengths[used_rows] = per_block_row
    pairs = lengths.reshape(-1, 2)
    paired_steps = int(np.maximum(pairs[:, 0], pairs[:, 1]).sum())
    return StructureProfile(
        nrows=nrows,
        ncols=ncols,
        nnz=nnz,
        fill_ratio=nnz / (nrows * ncols),
        row_nnz_min=int(row_nnz.min()),
        row_nnz_max=int(row_nnz.max()),
        row_nnz_mean=float(row_nnz.mean()),
        row_nnz_std=float(row_nnz.std()),
        empty_rows=int((row_nnz == 0).sum()),
        nonzero_blocks=nonzero_blocks,
        nonzero_block_rows=int(used_rows.size),
        mean_block_nnz=nnz / nonzero_blocks,
        mean_block_density=nnz / nonzero_blocks / BLOCK_SIZE,
        block_nnz_hist=tuple(int(count) for count in hist),
        paired_steps=paired_steps,
        fingerprint=fingerprint,
    )

"""Execution planners: structure profile + cost model + live feedback.

The static fallback chain (spaden → spaden-no-tc → cusparse-csr →
csr-scalar) is the right *safety* order but, per Fig. 9, the wrong
*speed* order for low-block-density operands.  A
:class:`Planner` closes that gap: given a matrix it emits an
:class:`ExecutionPlan` — a ranked, capability-filtered kernel order
plus batch/flush hints — that every dispatch consumer
(:func:`repro.exec.execute_chain`, :class:`~repro.engine.SpMVEngine`,
:func:`repro.robustness.dispatch_spmv`,
:class:`~repro.serve.ServeFrontend`) can walk exactly like a chain.

Two planners ship:

* :class:`StaticPlanner` — the degenerate planner: emits the
  registry-derived static chain verbatim, so "planner configured but
  inert" and "no planner" are bitwise-identical paths;
* :class:`StructurePlanner` — profiles the matrix once
  (:func:`~repro.plan.profile.compute_structure_profile`, cached by
  :func:`~repro.plan.profile.matrix_fingerprint`), predicts each chain
  kernel's seconds through the :mod:`repro.perf.plan_model` roofline
  adapter, blends the prediction with EWMA-smoothed *observed*
  per-vector latencies fed back by the engine
  (:meth:`StructurePlanner.observe`), and ranks.  Rankings therefore
  improve as RunReports accumulate: a kernel the model flatters but the
  machine runs slowly sinks as evidence arrives.

The blend happens in **normalized space**: modeled GPU seconds and
host-measured wall seconds live on different scales, so each signal is
divided by its own minimum over the candidates before mixing.  The
observation weight grows as ``n / (n + half_life)`` and is capped, so a
cold planner trusts the model and a warm one trusts the machine —
without ever zeroing the model out (a kernel must be able to *recover*
after a transient slowdown).

Thread-safety: planner caches are shared across engine worker threads,
so the package is audited by :mod:`repro.analysis.concurrency` like the
other serving seams — every mutable field carries a declared lock
contract, and metrics publish outside critical sections
(capture-then-publish, the OperandCache discipline).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

from repro.errors import PlanError
from repro.obs import get_registry
from repro.perf.plan_model import (
    KernelTraits,
    fallback_order,
    kernel_menu,
    predict_chain_seconds,
)
from repro.plan.profile import (
    StructureProfile,
    compute_structure_profile,
    matrix_fingerprint,
)

__all__ = [
    "ExecutionPlan",
    "Planner",
    "RankedKernel",
    "StaticPlanner",
    "StructurePlanner",
]

#: Cap on the observed-latency blend weight: the cost model always
#: keeps at least this much say, so a kernel can climb back after a
#: transient slowdown inflated its EWMA.
MAX_FEEDBACK_WEIGHT: float = 0.8

#: Observations at which feedback carries half its capped weight.
FEEDBACK_HALF_LIFE: int = 4

#: EWMA smoothing factor for observed per-vector seconds.
EWMA_ALPHA: float = 0.3

#: Safety bias per tier step: a kernel only outranks a safer (lower
#: fallback-tier) kernel when its blended score beats it by more than
#: this margin per tier it jumps.  The synthetic cost model's error
#: bars exceed small predicted gaps, so inside the crossover band the
#: registry's safety order wins; a genuine Fig. 9 win (tens of
#: percents) clears the bias easily.
SAFETY_BIAS: float = 0.04


def _count_decision(planner: str, kernel: str) -> None:
    get_registry().counter(
        "planner_decisions_total",
        "Execution plans emitted, by planner and top-ranked kernel.",
        labels=("planner", "kernel"),
    ).inc(planner=planner, kernel=kernel)


def _count_rank_flip(planner: str) -> None:
    get_registry().counter(
        "planner_rank_flips_total",
        "Plans whose kernel order changed for a matrix planned before.",
        labels=("planner",),
    ).inc(planner=planner)


@dataclass(frozen=True)
class RankedKernel:
    """One kernel's position in a plan, with the evidence behind it."""

    name: str
    #: Registry fallback tier (safety order; ties broken by it).
    tier: int
    #: Cost-model prediction for this matrix, seconds.
    predicted_seconds: float
    #: EWMA-smoothed observed per-vector seconds (``None`` = no data).
    observed_seconds: float | None
    #: Observations folded into the EWMA.
    observations: int
    #: Blended, unitless ranking score (lower is better; best ~1.0).
    score: float
    #: Human-readable why (structure + evidence, one line).
    reason: str

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class ExecutionPlan:
    """A ranked kernel order plus serving hints for one matrix.

    ``kernels`` is what the chain walker consumes — every consumer that
    accepts a chain accepts a plan (duck-typed on this attribute).  The
    ranking *reorders* the capability-filtered chain, it never shortens
    it below the filter: the last entries are still the safety net.
    """

    #: Ordered kernel names, best predicted first.
    kernels: tuple[str, ...]
    #: Per-kernel evidence, same order as ``kernels``.
    ranking: tuple[RankedKernel, ...] = ()
    #: Suggested micro-batch size (``FlushPolicy.max_batch``), or None.
    batch_hint: int | None = None
    #: Suggested max coalescing wait, seconds, or None.
    max_wait_hint_seconds: float | None = None
    #: Emitting planner's name.
    planner: str = "static"
    #: The structure profile the ranking used (``None`` for static).
    profile: StructureProfile | None = None

    def explain(self) -> str:
        """Multi-line human-readable account of the ranking."""
        lines = [f"plan[{self.planner}] chain: {' -> '.join(self.kernels)}"]
        if self.profile is not None:
            prof = self.profile
            lines.append(
                f"  structure: {prof.nrows}x{prof.ncols}, nnz={prof.nnz}, "
                f"fill={prof.fill_ratio:.2e}, blocks={prof.nonzero_blocks} "
                f"(mean {prof.mean_block_nnz:.1f} nnz/block, "
                f"{prof.dense_block_fraction:.0%} >= half full), "
                f"paired steps={prof.paired_steps}"
            )
        if self.batch_hint is not None or self.max_wait_hint_seconds is not None:
            wait = (
                f"{self.max_wait_hint_seconds * 1e3:.1f} ms"
                if self.max_wait_hint_seconds is not None
                else "policy default"
            )
            lines.append(f"  hints: batch <= {self.batch_hint}, wait <= {wait}")
        for position, entry in enumerate(self.ranking, start=1):
            observed = (
                f"{entry.observed_seconds * 1e6:.1f} us over {entry.observations} obs"
                if entry.observed_seconds is not None
                else "no observations"
            )
            lines.append(
                f"  {position}. {entry.name} (tier {entry.tier}): score "
                f"{entry.score:.3f} — predicted "
                f"{entry.predicted_seconds * 1e6:.1f} us, observed {observed}; "
                f"{entry.reason}"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "planner": self.planner,
            "kernels": list(self.kernels),
            "batch_hint": self.batch_hint,
            "max_wait_hint_seconds": self.max_wait_hint_seconds,
            "ranking": [entry.as_dict() for entry in self.ranking],
            "profile": self.profile.as_dict() if self.profile is not None else None,
        }


class Planner:
    """Interface every planner implements.

    :meth:`plan` maps a matrix to an :class:`ExecutionPlan`;
    :meth:`observe` feeds measured per-vector kernel seconds back (a
    no-op by default, so stateless planners stay stateless).
    """

    name: str = "planner"

    def plan(self, csr, *, fingerprint: str | None = None) -> ExecutionPlan:
        raise NotImplementedError

    def observe(self, kernel: str, seconds: float, *, vectors: int = 1) -> None:
        """Fold one measured execution into the planner's evidence."""


class StaticPlanner(Planner):
    """The degenerate planner: the static chain, verbatim.

    Exists so "a planner is configured" and "no planner" are provably
    the same path — its plans carry the registry-derived chain order
    (or an explicit ``chain``), no ranking, no hints.
    """

    name = "static"

    def __init__(self, chain: tuple[str, ...] | None = None):
        self.chain = tuple(chain) if chain is not None else None

    def plan(self, csr, *, fingerprint: str | None = None) -> ExecutionPlan:
        kernels = self.chain if self.chain is not None else fallback_order()
        if not kernels:
            raise PlanError("StaticPlanner has an empty chain")
        return ExecutionPlan(kernels=kernels, planner=self.name)


class StructurePlanner(Planner):
    """Rank the fallback chain per matrix from structure + evidence.

    ``gpu`` names the cost-model target.  ``mode`` capability-filters
    the candidates: ``"numeric"`` admits every chain kernel,
    ``"simulated"`` only those declaring the SIMULATED capability (a
    plan for a simulation campaign must not rank kernels that cannot
    simulate).  ``candidates`` overrides the candidate set explicitly.

    Instances are shared across engine worker threads; the profile
    cache, the EWMA table and the last-order table are guarded by one
    lock that is never held across profiling, prediction or metrics.
    """

    name = "structure"

    def __init__(
        self,
        gpu: str = "L40",
        *,
        mode: str = "numeric",
        candidates: tuple[str, ...] | None = None,
    ):
        if mode not in ("numeric", "simulated"):
            raise PlanError(f"unknown planner mode {mode!r}")
        menu = kernel_menu()
        if candidates is not None:
            unknown = [name for name in candidates if name not in menu]
            if unknown:
                raise PlanError(
                    f"unknown chain candidates {unknown}; menu: {sorted(menu)}"
                )
            pool = tuple(name for name in menu if name in set(candidates))
        else:
            pool = tuple(menu)
        if mode == "simulated":
            pool = tuple(name for name in pool if menu[name].simulate)
        if not pool:
            raise PlanError(
                f"capability filter (mode={mode!r}) left no candidate kernels"
            )
        self.gpu = gpu
        self.mode = mode
        self.candidates = pool
        self._menu: dict[str, KernelTraits] = menu
        self._lock = threading.Lock()
        # concurrency: guarded-by(self._lock)
        self._profiles: dict[str, StructureProfile] = {}
        # kernel -> (ewma seconds/vector, observation count)
        # concurrency: guarded-by(self._lock)
        self._ewma: dict[str, tuple[float, int]] = {}
        # fingerprint -> last emitted kernel order (rank-flip detection)
        # concurrency: guarded-by(self._lock)
        self._orders: dict[str, tuple[str, ...]] = {}

    # -- evidence ------------------------------------------------------------
    def profile_for(self, csr, *, fingerprint: str | None = None) -> StructureProfile:
        """The (cached) structure profile of ``csr``.

        ``fingerprint`` skips re-hashing when the caller (the engine)
        already computed the content hash.  The compute-outside-lock
        race is benign: two threads profiling the same new matrix
        produce equal values and the second insert is idempotent.
        """
        if fingerprint is None:
            fingerprint = matrix_fingerprint(csr)
        with self._lock:
            profile = self._profiles.get(fingerprint)
        if profile is None:
            profile = compute_structure_profile(csr, fingerprint=fingerprint)
            with self._lock:
                self._profiles[fingerprint] = profile
        return profile

    def observe(self, kernel: str, seconds: float, *, vectors: int = 1) -> None:
        """EWMA-fold one measured execution (per-vector normalized)."""
        if seconds < 0:
            raise PlanError(f"observed seconds must be >= 0, got {seconds}")
        per_vector = seconds / max(1, vectors)
        with self._lock:
            current = self._ewma.get(kernel)
            if current is None:
                self._ewma[kernel] = (per_vector, 1)
            else:
                value, count = current
                self._ewma[kernel] = (
                    value + EWMA_ALPHA * (per_vector - value),
                    count + 1,
                )

    def observed(self) -> dict[str, tuple[float, int]]:
        """Snapshot of the EWMA table (kernel -> (seconds, count))."""
        with self._lock:
            return dict(self._ewma)

    # -- planning ------------------------------------------------------------
    def _reason(self, traits: KernelTraits, profile: StructureProfile) -> str:
        if traits.name in ("spaden", "spaden-no-tc"):
            unit = "MMA steps" if traits.tensor_cores else "CUDA block steps"
            return (
                f"cost scales with {profile.nonzero_blocks} blocks "
                f"({profile.paired_steps} {unit}); "
                f"{profile.mean_block_nnz:.1f} nnz amortized per block"
            )
        if traits.name == "cusparse-csr":
            return (
                f"streams {profile.nnz} nnz via merge-path "
                f"(+ generic-API analysis pass)"
            )
        if traits.name == "csr-scalar":
            return (
                f"zero-setup scalar walk; warps serialize to ~"
                f"{min(profile.row_nnz_max, int(profile.row_nnz_mean + profile.row_nnz_std) + 1)}"
                f" nnz rows"
            )
        return f"unrecognized chain member (tier {traits.fallback_tier})"

    def _hints(self, profile: StructureProfile) -> tuple[int, float]:
        """Batch/flush hints: denser blocks amortize a bigger batch.

        One bitBSR decode (or CSR gather) serves the whole batch, and
        the denser the operand the more each decode is worth
        amortizing; hypersparse operands gain little from waiting, so
        they flush sooner and smaller.
        """
        if profile.mean_block_nnz >= 16:
            return 64, 0.02
        if profile.mean_block_nnz >= 4:
            return 32, 0.01
        return 16, 0.005

    def plan(self, csr, *, fingerprint: str | None = None) -> ExecutionPlan:
        profile = self.profile_for(csr, fingerprint=fingerprint)
        predicted = predict_chain_seconds(
            nrows=profile.nrows,
            ncols=profile.ncols,
            nnz=profile.nnz,
            nonzero_blocks=profile.nonzero_blocks,
            nonzero_block_rows=profile.nonzero_block_rows,
            paired_steps=profile.paired_steps,
            row_nnz_mean=profile.row_nnz_mean,
            row_nnz_std=profile.row_nnz_std,
            row_nnz_max=profile.row_nnz_max,
            gpu=self.gpu,
            kernels=self.candidates,
        )
        observed = self.observed()
        predicted_floor = min(predicted.values())
        observed_floor = min(
            (observed[name][0] for name in self.candidates if name in observed),
            default=None,
        )
        entries = []
        for tier_rank, name in enumerate(self.candidates):
            traits = self._menu[name]
            model_score = predicted[name] / predicted_floor
            evidence = observed.get(name)
            if evidence is not None and observed_floor:
                value, count = evidence
                weight = min(
                    MAX_FEEDBACK_WEIGHT, count / (count + FEEDBACK_HALF_LIFE)
                )
                score = (1.0 - weight) * model_score + weight * (
                    value / observed_floor
                )
                observed_seconds, observations = value, count
            else:
                score = model_score
                observed_seconds, observations = None, 0
            # candidates iterate in tier order, so the rank index is the
            # number of safer kernels this one would have to jump
            score *= 1.0 + SAFETY_BIAS * tier_rank
            entries.append(
                RankedKernel(
                    name=name,
                    tier=traits.fallback_tier,
                    predicted_seconds=predicted[name],
                    observed_seconds=observed_seconds,
                    observations=observations,
                    score=score,
                    reason=self._reason(traits, profile),
                )
            )
        # score first; the registry tier breaks ties so equal-looking
        # kernels keep the safety order
        entries.sort(key=lambda entry: (entry.score, entry.tier, entry.name))
        kernels = tuple(entry.name for entry in entries)
        batch_hint, wait_hint = self._hints(profile)
        flipped = False
        key = profile.fingerprint
        if key is not None:
            with self._lock:
                previous = self._orders.get(key)
                self._orders[key] = kernels
            flipped = previous is not None and previous != kernels
        _count_decision(self.name, kernels[0])
        if flipped:
            _count_rank_flip(self.name)
        return ExecutionPlan(
            kernels=kernels,
            ranking=tuple(entries),
            batch_hint=batch_hint,
            max_wait_hint_seconds=wait_hint,
            planner=self.name,
            profile=profile,
        )

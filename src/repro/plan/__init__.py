"""Metrics-driven per-operand execution planning.

``repro.plan`` replaces the one-size-fits-all fallback chain with a
per-matrix :class:`ExecutionPlan`: a structure profile of the operand
(:mod:`repro.plan.profile`), cost-model predictions through the
:mod:`repro.perf.plan_model` adapter, and EWMA-smoothed live latency
feedback combine into a ranked, capability-filtered kernel order plus
batch/flush hints.  Every dispatch consumer accepts a plan wherever it
accepted a chain; with no planner configured nothing changes.

Import fence: this package may import only the stdlib, numpy,
``repro.constants``, ``repro.errors``, ``repro.obs``, ``repro.perf``
and itself — enforced by ``scripts/check_exec_boundaries.py``.  Its
caches carry declared lock contracts audited by
:mod:`repro.analysis.concurrency`.
"""

from repro.plan.planner import (
    ExecutionPlan,
    Planner,
    RankedKernel,
    StaticPlanner,
    StructurePlanner,
)
from repro.plan.profile import (
    StructureProfile,
    compute_structure_profile,
    matrix_fingerprint,
)

__all__ = [
    "ExecutionPlan",
    "Planner",
    "RankedKernel",
    "StaticPlanner",
    "StructurePlanner",
    "StructureProfile",
    "compute_structure_profile",
    "matrix_fingerprint",
]

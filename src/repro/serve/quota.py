"""Per-tenant quotas: queue-depth caps and request-rate token buckets.

Admission control protects the engine from any single tenant: a
request that would blow its tenant's quota is rejected at the front
door with a structured :class:`~repro.errors.AdmissionError` — before
it consumes queue space, a worker slot, or an operand-cache entry.
Two independent limits, both optional (``None`` = unlimited):

* **queue depth** — how many of the tenant's requests may be in flight
  (admitted but not yet answered) at once; enforced by the front-end
  against its live per-tenant depth counter;
* **request rate** — a token bucket refilled at
  ``max_requests_per_second`` with capacity ``burst``; a submission
  spends one token or is rejected.  The bucket reads time through the
  front-end's injectable clock, so rate behavior is deterministic
  under a :class:`~repro.resilience.ManualClock` in tests.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServeError

__all__ = ["TenantQuota", "TokenBucket"]


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission limits (``None`` disables that limit).

    * ``max_queue_depth`` — cap on the tenant's in-flight requests;
    * ``max_requests_per_second`` — sustained admission rate;
    * ``burst`` — token-bucket capacity: how many requests may be
      admitted back-to-back after an idle period.  ``None`` defaults to
      ``max(1, max_requests_per_second)`` — one second's allowance.
    """

    max_queue_depth: int | None = None
    max_requests_per_second: float | None = None
    burst: int | None = None

    def __post_init__(self):
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_requests_per_second is not None and self.max_requests_per_second <= 0:
            raise ServeError(
                f"max_requests_per_second must be positive, got "
                f"{self.max_requests_per_second}"
            )
        if self.burst is not None and self.burst < 1:
            raise ServeError(f"burst must be >= 1, got {self.burst}")

    @property
    def capacity(self) -> float:
        """The rate bucket's token capacity implied by this quota."""
        if self.burst is not None:
            return float(self.burst)
        return max(1.0, float(self.max_requests_per_second or 1.0))


class TokenBucket:
    """Classic token bucket against an injectable monotonic clock.

    Starts full (a quiet tenant may burst immediately), refills
    continuously at ``rate`` tokens/second up to ``capacity``, and
    :meth:`try_acquire` spends one token atomically or reports
    exhaustion — it never blocks, because admission control rejects
    instead of queueing.
    """

    def __init__(self, rate: float, capacity: float, clock: Callable[[], float]):
        if rate <= 0:
            raise ServeError(f"token rate must be positive, got {rate}")
        if capacity < 1:
            raise ServeError(f"token capacity must be >= 1, got {capacity}")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)  # concurrency: guarded-by(self._lock)
        self._last = clock()  # concurrency: guarded-by(self._lock)

    def try_acquire(self) -> bool:
        """Spend one token if available; ``False`` means reject."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def available(self) -> float:
        """Tokens currently in the bucket (diagnostic snapshot)."""
        now = self._clock()
        with self._lock:
            elapsed = max(0.0, now - self._last)
            return min(self.capacity, self._tokens + elapsed * self.rate)

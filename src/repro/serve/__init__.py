"""``repro.serve`` — the concurrent multi-tenant SpMV serving front-end.

The engine (:mod:`repro.engine`) amortizes work across *batches*; this
package supplies the layer that turns concurrent multi-tenant traffic
into those batches.  A :class:`ServeFrontend` accepts requests against
registered matrices from many threads, applies admission control and
per-tenant quotas (:class:`TenantQuota`, rejecting with a structured
:class:`~repro.errors.AdmissionError`), coalesces same-matrix requests
under a :class:`FlushPolicy` (flush on full batch, oldest-request age,
or earliest-deadline pressure), and executes micro-batches on a worker
pool through :meth:`~repro.engine.SpMVEngine.spmv_many` — every request
resolving a :class:`ServeTicket` with its result vector or its
structured error, never silently dropped.

Built entirely on the PR-6/PR-7 hardened seams: per-request
:class:`~repro.resilience.Deadline`\\ s feed the flush policy and gate
dispatch, the engine's ``return_errors`` contract delivers per-request
failures, everything shared is lock-guarded under the
:mod:`repro.analysis.concurrency` audit, and the whole layer reports
through :mod:`repro.obs` (``serve_*`` metrics).  The paired load
generator lives in :mod:`repro.bench.load` (``repro.cli serve-bench``).
See ``docs/serving.md``.
"""

from repro.serve.frontend import ServeFrontend, ServeTicket
from repro.serve.policy import FlushPolicy
from repro.serve.quota import TenantQuota, TokenBucket

__all__ = [
    "FlushPolicy",
    "ServeFrontend",
    "ServeTicket",
    "TenantQuota",
    "TokenBucket",
]

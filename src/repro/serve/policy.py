"""Flush policies: when does a coalescing group become a micro-batch?

The front-end holds one pending group per registered matrix and must
decide, continuously, whether to keep waiting (a bigger batch amortizes
the operand decode better) or to flush now (a request is aging, or a
deadline is about to burn).  :class:`FlushPolicy` encodes that decision
as a pure function of three observations — group size, oldest request
age, and the earliest per-request deadline — so the dispatcher loop
stays trivial and the policy itself is unit-testable against a
:class:`~repro.resilience.ManualClock` without any threads.

Three triggers, checked in priority order:

* **max-batch** — the group reached ``max_batch`` requests; waiting
  longer cannot improve amortization (the batch is full);
* **max-wait** — the oldest request has waited ``max_wait_seconds``;
  latency is bounded even for unpopular matrices;
* **deadline** — the earliest :class:`~repro.resilience.Deadline` in
  the group expires within ``deadline_slack_seconds``; flush now so the
  engine still has budget to run it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ServeError

__all__ = ["FlushPolicy"]


@dataclass(frozen=True)
class FlushPolicy:
    """When to turn a pending same-matrix group into a micro-batch.

    * ``max_batch`` — flush as soon as the group holds this many
      requests (also the cap on how many requests one flush takes; the
      remainder stays queued for the next batch).
    * ``max_wait_seconds`` — flush once the group's *oldest* request
      has been pending this long, whatever the size.
    * ``deadline_slack_seconds`` — flush once the group's earliest
      request deadline is within this many seconds of expiry.  ``0.0``
      means "flush only once a deadline has actually expired"; a
      positive slack leaves the engine that much budget to execute.
    """

    max_batch: int = 32
    max_wait_seconds: float = 0.01
    deadline_slack_seconds: float = 0.0

    def __post_init__(self):
        if self.max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_seconds < 0:
            raise ServeError(
                f"max_wait_seconds must be >= 0, got {self.max_wait_seconds}"
            )
        if self.deadline_slack_seconds < 0:
            raise ServeError(
                f"deadline_slack_seconds must be >= 0, got "
                f"{self.deadline_slack_seconds}"
            )

    def with_hints(
        self,
        *,
        max_batch: int | None = None,
        max_wait_seconds: float | None = None,
    ) -> "FlushPolicy":
        """A copy of this policy with planner batch hints applied.

        The front-end calls this with an
        :class:`~repro.plan.ExecutionPlan`'s ``batch_hint`` /
        ``max_wait_hint_seconds`` when a matrix is registered, so
        dense-blocked operands coalesce into larger batches than
        hypersparse ones.  ``None`` hints leave the corresponding field
        untouched; validation re-runs through ``__post_init__``.
        """
        updates = {}
        if max_batch is not None:
            updates["max_batch"] = int(max_batch)
        if max_wait_seconds is not None:
            updates["max_wait_seconds"] = float(max_wait_seconds)
        return replace(self, **updates) if updates else self

    def decide(
        self,
        *,
        size: int,
        oldest_age: float,
        min_expires_in: float | None,
    ) -> str | None:
        """The flush cause for one group, or ``None`` to keep waiting.

        ``size`` is the group's pending request count, ``oldest_age``
        is seconds since its oldest request was admitted, and
        ``min_expires_in`` is seconds until the group's earliest
        deadline expires (``None`` when no request carries one).
        Returns ``"max-batch"`` / ``"max-wait"`` / ``"deadline"`` — the
        cause is recorded on the ``serve_batches_total`` metric so a
        trajectory shows *why* batches flushed, not just how big.
        """
        if size <= 0:
            return None
        if size >= self.max_batch:
            return "max-batch"
        if oldest_age >= self.max_wait_seconds:
            return "max-wait"
        if min_expires_in is not None and min_expires_in <= self.deadline_slack_seconds:
            return "deadline"
        return None

    def due_in(self, *, oldest_age: float, min_expires_in: float | None) -> float:
        """Seconds until time pressure alone makes this group due.

        The dispatcher sleeps at most this long before rechecking (a
        new submission wakes it earlier).  Only the two time triggers
        contribute; size pressure arrives with a submission, which
        notifies the dispatcher anyway.
        """
        waits = [self.max_wait_seconds - oldest_age]
        if min_expires_in is not None:
            waits.append(min_expires_in - self.deadline_slack_seconds)
        return max(0.0, min(waits))

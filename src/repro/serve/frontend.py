"""The concurrent multi-tenant front-end over :class:`~repro.engine.SpMVEngine`.

This is the serving layer ROADMAP item 1 converges on: many callers on
many threads submit SpMV requests against registered matrices, and the
front-end turns that concurrent traffic into the same-matrix
micro-batches the engine already amortizes — one operand decode per
batch instead of one per request.  The moving parts:

* **admission control** (:meth:`ServeFrontend.submit`): a request is
  validated, checked against its tenant's
  :class:`~repro.serve.quota.TenantQuota` (queue depth + token-bucket
  rate), stamped with an optional per-request
  :class:`~repro.resilience.Deadline`, and queued — or rejected with a
  structured :class:`~repro.errors.AdmissionError` before it costs
  anything;
* **coalescing** (:meth:`_dispatch_loop`): one dispatcher thread
  watches the per-matrix pending groups and flushes a group when the
  :class:`~repro.serve.policy.FlushPolicy` says so (full batch, aging
  oldest request, or earliest-deadline pressure), assembling batches in
  urgency order (priority, then earliest ``expires_at``, then
  admission order);
* **execution** (:meth:`_run_batch`): a thread pool runs each batch
  through :meth:`~repro.engine.SpMVEngine.spmv_many` with
  ``return_errors=True``, so every request resolves its
  :class:`ServeTicket` with either the result vector or the structured
  error — the zero-lost contract of the flush seam, now concurrent.

Thread-safety follows the PR-7 discipline: every shared field is
declared ``guarded-by`` the front-end's condition lock, the lock is
never held across engine execution (batches run in parallel), and
metrics are published capture-then-publish outside critical sections.
The package is audited by :mod:`repro.analysis.concurrency` like the
other serving seams.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.engine import SpMVEngine
from repro.errors import (
    AdmissionError,
    DeadlineExceededError,
    KernelError,
    ServeError,
)
from repro.formats.csr import CSRMatrix
from repro.obs import get_registry
from repro.resilience import Deadline
from repro.serve.policy import FlushPolicy
from repro.serve.quota import TenantQuota, TokenBucket

__all__ = ["ServeFrontend", "ServeTicket"]

#: How long the dispatcher sleeps between pressure re-checks while
#: requests are pending.  A submission notifies it immediately; this
#: bound only matters for pure time pressure (max-wait / deadline), and
#: keeps the loop live under a virtual clock in tests.
_DISPATCH_TICK_SECONDS = 0.05


# -- metrics (capture-then-publish helpers, engine-style) ---------------------

def _count_admission(tenant: str) -> None:
    get_registry().counter(
        "serve_admitted_total",
        "Requests admitted by the serving front-end.",
        labels=("tenant",),
    ).inc(tenant=tenant)


def _count_rejection(tenant: str, reason: str) -> None:
    get_registry().counter(
        "serve_admission_rejected_total",
        "Requests rejected by admission control, by quota reason.",
        labels=("tenant", "reason"),
    ).inc(tenant=tenant, reason=reason)


def _count_request(tenant: str, outcome: str) -> None:
    get_registry().counter(
        "serve_requests_total",
        "Requests resolved by the front-end, by final outcome.",
        labels=("tenant", "outcome"),
    ).inc(tenant=tenant, outcome=outcome)


def _count_batch(matrix: str, cause: str, size: int) -> None:
    registry = get_registry()
    registry.counter(
        "serve_batches_total",
        "Coalesced micro-batches flushed to the engine, by flush cause.",
        labels=("matrix", "cause"),
    ).inc(matrix=matrix, cause=cause)
    registry.histogram(
        "serve_batch_size",
        "Requests per coalesced front-end batch.",
        labels=("matrix",),
        buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
    ).observe(size, matrix=matrix)


def _observe_latency(tenant: str, seconds: float) -> None:
    get_registry().histogram(
        "serve_request_seconds",
        "Admission-to-resolution latency per request.",
        labels=("tenant",),
    ).observe(seconds, tenant=tenant)


def _set_depth(tenant: str, depth: int) -> None:
    get_registry().gauge(
        "serve_queue_depth",
        "In-flight (admitted, unresolved) requests per tenant.",
        labels=("tenant",),
    ).set(depth, tenant=tenant)


class ServeTicket:
    """Handle to one admitted request; resolves to a vector or an error.

    A thin wrapper over :class:`concurrent.futures.Future` carrying the
    request's identity.  :meth:`result` blocks for (and returns) the
    ``y`` vector, raising the structured error instead if the request
    failed; :meth:`error` blocks and returns the exception instance (or
    ``None``) without raising — the shape the load generator and the
    engine's ``return_errors`` path both speak.
    """

    def __init__(self, seq: int, tenant: str, matrix: str):
        self.seq = seq
        self.tenant = tenant
        self.matrix = matrix
        self._future: Future = Future()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """The result vector; raises the request's error on failure."""
        return self._future.result(timeout)

    def error(self, timeout: float | None = None) -> BaseException | None:
        """Block until resolved; the error instance, or ``None`` if ok."""
        return self._future.exception(timeout)

    def done(self) -> bool:
        return self._future.done()

    def add_done_callback(self, fn: Callable[["ServeTicket"], None]) -> None:
        """Invoke ``fn(ticket)`` once resolved (immediately if done)."""
        self._future.add_done_callback(lambda _future: fn(self))

    # internal: called exactly once by the worker that resolves the batch
    def _succeed(self, y: np.ndarray) -> None:
        self._future.set_result(y)

    def _fail(self, exc: BaseException) -> None:
        self._future.set_exception(exc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return f"ServeTicket(seq={self.seq}, tenant={self.tenant!r}, {state})"


@dataclass(frozen=True)
class _Pending:
    """One admitted request waiting in its matrix's coalescing group."""

    seq: int
    tenant: str
    matrix: str
    csr: CSRMatrix
    x: np.ndarray
    priority: int
    deadline: Deadline | None
    submitted_at: float
    ticket: ServeTicket = field(repr=False)


def _urgency(record: _Pending) -> tuple:
    """Batch-assembly order: priority, then deadline, then admission."""
    expires = record.deadline.expires_at if record.deadline is not None else math.inf
    return (-record.priority, expires, record.seq)


def _group_pressure(group: list, now: float) -> tuple[float, float | None]:
    """One group's ``(oldest_age, min_expires_in)`` observations."""
    oldest = min(r.submitted_at for r in group)
    expiries = [r.deadline.expires_at for r in group if r.deadline is not None]
    return now - oldest, (min(expiries) - now) if expiries else None


def _pop_due(
    pending: dict[str, list],
    policies: dict[str, FlushPolicy],
    default_policy: FlushPolicy,
    now: float,
    drain: bool,
) -> list[tuple[str, str, list]]:
    """Pop every due group as ``(matrix, cause, batch)`` triples.

    Mutates ``pending`` in place and must run under the front-end lock;
    it is kept free of ``self`` so the lock discipline stays lexical
    (pass the data, not the fields).  Each matrix flushes under its own
    policy from ``policies`` (a plan-hinted variant installed at
    registration) falling back to ``default_policy``.  With
    ``drain=True`` every pending request is taken regardless of
    pressure (shutdown path), still in ``max_batch``-sized
    urgency-ordered chunks.
    """
    batches: list[tuple[str, str, list]] = []
    for name, group in pending.items():
        policy = policies.get(name, default_policy)
        while group:
            if drain:
                cause = "drain"
            else:
                oldest_age, min_expires_in = _group_pressure(group, now)
                cause = policy.decide(
                    size=len(group),
                    oldest_age=oldest_age,
                    min_expires_in=min_expires_in,
                )
            if cause is None:
                break
            group.sort(key=_urgency)
            take = group[: policy.max_batch]
            del group[: policy.max_batch]
            batches.append((name, cause, take))
    return batches


def _min_due_in(
    pending: dict[str, list],
    policies: dict[str, FlushPolicy],
    default_policy: FlushPolicy,
    now: float,
) -> float | None:
    """Seconds until the most pressed group becomes due (None if idle)."""
    waits = [
        policies.get(name, default_policy).due_in(
            oldest_age=pressure[0], min_expires_in=pressure[1]
        )
        for name, group in pending.items()
        if group
        for pressure in (_group_pressure(group, now),)
    ]
    return min(waits) if waits else None


class ServeFrontend:
    """Thread-pool serving front-end over one :class:`SpMVEngine`.

    ``engine`` defaults to a fresh ``SpMVEngine()`` (spaden kernel,
    full degradation chain); install a
    :class:`~repro.resilience.ResiliencePolicy` on it for per-batch
    deadlines, retries and breakers — the front-end adds the
    *per-request* deadline on top, checked before a request's batch is
    handed to the engine.  ``workers`` sizes the execution pool (one
    batch per worker at a time); the dispatcher itself is a single
    extra thread.  ``clock`` is injectable
    (:class:`~repro.resilience.ManualClock` in tests) and feeds
    admission timestamps, rate buckets and request deadlines alike.

    ``planner`` (a :class:`repro.plan.Planner`) makes registration
    plan-aware: each matrix registered while a planner is installed is
    profiled once and its :class:`~repro.plan.ExecutionPlan` batch
    hints specialize the flush policy for that matrix's coalescing
    group (dense-blocked operands coalesce into larger batches than
    hypersparse ones).  :meth:`set_tenant_planner` additionally routes
    one tenant's batches through a planner override on the engine call
    itself; tenants without an override ride the engine's unchanged
    default path.
    """

    def __init__(
        self,
        engine: SpMVEngine | None = None,
        *,
        workers: int = 4,
        flush_policy: FlushPolicy | None = None,
        default_quota: TenantQuota | None = None,
        default_deadline_seconds: float | None = None,
        planner=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.engine = engine if engine is not None else SpMVEngine()
        self.planner = planner
        self.flush_policy = flush_policy or FlushPolicy()
        self.default_quota = default_quota or TenantQuota()
        self.default_deadline_seconds = default_deadline_seconds
        self._clock = clock
        self._seq = itertools.count()
        # One lock (as a condition variable) guards all front-end
        # bookkeeping; it is NEVER held across engine execution, so
        # batches on different workers still run in parallel.
        self._cond = threading.Condition()
        self._matrices: dict[str, CSRMatrix] = {}  # concurrency: guarded-by(self._cond)
        self._pending: dict[str, list] = {}  # concurrency: guarded-by(self._cond)
        # per-matrix plan-hinted flush policies (default policy when absent)
        self._policies: dict[str, FlushPolicy] = {}  # concurrency: guarded-by(self._cond)
        # per-tenant planner overrides threaded into engine.spmv_many
        self._tenant_planners: dict = {}  # concurrency: guarded-by(self._cond)
        self._quotas: dict[str, TenantQuota] = {}  # concurrency: guarded-by(self._cond)
        self._buckets: dict[str, TokenBucket] = {}  # concurrency: guarded-by(self._cond)
        self._tenant_depth: dict[str, int] = {}  # concurrency: guarded-by(self._cond)
        self._closed = False  # concurrency: guarded-by(self._cond)
        self._pool = ThreadPoolExecutor(workers, thread_name_prefix="serve-worker")
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- registration and quotas ----------------------------------------------
    def register_matrix(self, name: str, csr: CSRMatrix, *, warm: bool | None = None) -> None:
        """Register a matrix under ``name``; requests address it by name.

        Re-registering a taken name is a :class:`~repro.errors.ServeError`
        — tenants hold references to results computed against the old
        contents, so silent replacement would be a correctness trap.

        With a ``planner`` installed, the matrix is profiled here (once,
        outside the lock — registration is the cold path) and its plan's
        batch hints specialize this matrix's flush policy.

        ``warm`` pre-prepares the preferred kernel's operand through
        :meth:`~repro.engine.SpMVEngine.warm` — memory cache, then the
        engine's persistent store, then one conversion spilled back to
        disk — so the tenant's first request never pays the cold-start
        tax.  The default (``None``) warms exactly when the engine has
        a persistent store attached; pass ``True``/``False`` to force.
        Warming happens outside the lock, on the registration path.
        """
        policy = self.flush_policy
        if self.planner is not None:
            plan = self.planner.plan(csr)
            policy = policy.with_hints(
                max_batch=plan.batch_hint,
                max_wait_seconds=plan.max_wait_hint_seconds,
            )
        if warm is None:
            warm = getattr(self.engine, "store", None) is not None
        if warm:
            self.engine.warm(csr)
        with self._cond:
            if name in self._matrices:
                raise ServeError(f"matrix {name!r} is already registered")
            self._matrices[name] = csr
            self._pending[name] = []
            self._policies[name] = policy

    def matrices(self) -> list[str]:
        """Registered matrix names, in registration order."""
        with self._cond:
            return list(self._matrices)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Install (or replace) one tenant's quota; resets its rate bucket."""
        with self._cond:
            self._quotas[tenant] = quota
            self._buckets.pop(tenant, None)

    def set_tenant_planner(self, tenant: str, planner) -> None:
        """Route one tenant's batches through a planner override.

        ``planner`` is a :class:`repro.plan.Planner` handed to
        :meth:`~repro.engine.SpMVEngine.spmv_many` for this tenant's
        requests (the engine re-plans per call, so the override also
        collects its own latency feedback); ``None`` removes the
        override, returning the tenant to the engine's default path.
        Batches mixing tenants are partitioned per planner before they
        reach the engine.
        """
        with self._cond:
            if planner is None:
                self._tenant_planners.pop(tenant, None)
            else:
                self._tenant_planners[tenant] = planner

    def tenant_planner(self, tenant: str):
        """The tenant's planner override, or ``None``."""
        with self._cond:
            return self._tenant_planners.get(tenant)

    def queue_depth(self, tenant: str) -> int:
        """The tenant's in-flight (admitted, unresolved) request count."""
        with self._cond:
            return self._tenant_depth.get(tenant, 0)

    # -- admission -------------------------------------------------------------
    def submit(
        self,
        matrix: str,
        x: np.ndarray,
        *,
        tenant: str = "default",
        priority: int = 0,
        deadline_seconds: float | None = None,
    ) -> ServeTicket:
        """Admit one request; returns its :class:`ServeTicket`.

        Synchronous failures are structured: an unknown matrix or a
        closed front-end raises :class:`~repro.errors.ServeError`, a
        shape-invalid vector raises :class:`~repro.errors.KernelError`
        (before any quota is spent), and a quota violation raises
        :class:`~repro.errors.AdmissionError`.  ``priority`` orders
        batch assembly (higher first); ``deadline_seconds`` overrides
        the front-end default (``None`` keeps the default; requests
        whose deadline expires before their batch dispatches resolve
        with :class:`~repro.errors.DeadlineExceededError` without
        touching the engine).
        """
        x = np.asarray(x, dtype=np.float32)
        rejection = None
        with self._cond:
            if self._closed:
                raise ServeError("front-end is closed; no new submissions")
            csr = self._matrices.get(matrix)
            if csr is None:
                raise ServeError(
                    f"unknown matrix {matrix!r}; register_matrix() it first"
                )
            if x.ndim != 1 or x.shape[0] != csr.ncols:
                raise KernelError(
                    f"x has shape {x.shape}, expected ({csr.ncols},)"
                )
            quota = self._quotas.get(tenant, self.default_quota)
            depth = self._tenant_depth.get(tenant, 0)
            if quota.max_queue_depth is not None and depth >= quota.max_queue_depth:
                rejection = ("queue-depth", float(quota.max_queue_depth), float(depth))
            elif quota.max_requests_per_second is not None:
                bucket = self._buckets.get(tenant)
                if bucket is None:
                    bucket = TokenBucket(
                        quota.max_requests_per_second, quota.capacity, self._clock
                    )
                    self._buckets[tenant] = bucket
                if not bucket.try_acquire():
                    rejection = ("rate", float(quota.max_requests_per_second), None)
            if rejection is None:
                seconds = (
                    deadline_seconds
                    if deadline_seconds is not None
                    else self.default_deadline_seconds
                )
                deadline = (
                    Deadline(seconds, clock=self._clock) if seconds is not None else None
                )
                seq = next(self._seq)
                ticket = ServeTicket(seq=seq, tenant=tenant, matrix=matrix)
                self._pending[matrix].append(
                    _Pending(
                        seq=seq,
                        tenant=tenant,
                        matrix=matrix,
                        csr=csr,
                        x=x,
                        priority=priority,
                        deadline=deadline,
                        submitted_at=self._clock(),
                        ticket=ticket,
                    )
                )
                self._tenant_depth[tenant] = depth + 1
                new_depth = depth + 1
                self._cond.notify_all()
        # metrics publish outside the critical section (capture-then-publish)
        if rejection is not None:
            reason, limit, current = rejection
            _count_rejection(tenant, reason)
            detail = (
                f"queue depth {current:g} at limit {limit:g}"
                if reason == "queue-depth"
                else f"rate limit {limit:g} req/s exhausted"
            )
            raise AdmissionError(
                f"tenant {tenant!r} rejected by {reason} quota: {detail}",
                tenant=tenant,
                reason=reason,
                limit=limit,
                current=current,
            )
        _count_admission(tenant)
        _set_depth(tenant, new_depth)
        return ticket

    def poke(self) -> None:
        """Wake the dispatcher for an immediate pressure re-check.

        Useful under a :class:`~repro.resilience.ManualClock`: advance
        the virtual clock, then ``poke()`` so max-wait / deadline
        pressure is evaluated against the new time at once.
        """
        with self._cond:
            self._cond.notify_all()

    # -- dispatch --------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        """Single dispatcher: waits for pressure, pops batches, fans out."""
        while True:
            with self._cond:
                while True:
                    now = self._clock()
                    batches = _pop_due(
                        self._pending,
                        self._policies,
                        self.flush_policy,
                        now,
                        drain=self._closed,
                    )
                    if batches:
                        break
                    if self._closed:
                        return  # drained: nothing pending, nothing due
                    timeout = _min_due_in(
                        self._pending, self._policies, self.flush_policy, now
                    )
                    self._cond.wait(
                        None
                        if timeout is None
                        else min(max(timeout, 0.0), _DISPATCH_TICK_SECONDS)
                    )
            for matrix, cause, batch in batches:
                self._pool.submit(self._run_batch, matrix, cause, batch)

    def _execute_outcomes(self, batch: list) -> list[tuple[_Pending, object]]:
        """Run one batch; pair every record with its result or error.

        Requests whose deadline already expired resolve with the
        structured :class:`~repro.errors.DeadlineExceededError` from the
        ``serve.dispatch`` checkpoint and never reach the engine ("no
        new work starts after expiry").  The rest ride one
        ``spmv_many(return_errors=True)`` call, so failures come back
        per-request and nothing raises across the batch.

        Tenants with a planner override (see :meth:`set_tenant_planner`)
        are partitioned out and run through their own ``spmv_many`` call
        carrying ``planner=``; everyone else shares one call on the
        engine's unchanged default path.
        """
        outcomes: list[tuple[_Pending, object]] = []
        ready: list[_Pending] = []
        for record in batch:
            if record.deadline is not None:
                try:
                    record.deadline.check("serve.dispatch")
                except DeadlineExceededError as exc:
                    outcomes.append((record, exc))
                    continue
            ready.append(record)
        if not ready:
            return outcomes
        with self._cond:
            overrides = dict(self._tenant_planners)
        default_records = [r for r in ready if overrides.get(r.tenant) is None]
        if default_records:
            results = self.engine.spmv_many(
                [(record.csr, record.x) for record in default_records],
                return_errors=True,
            )
            outcomes.extend(zip(default_records, results))
        planned: dict[int, list[_Pending]] = {}
        planners: dict[int, object] = {}
        for record in ready:
            override = overrides.get(record.tenant)
            if override is None:
                continue
            planned.setdefault(id(override), []).append(record)
            planners[id(override)] = override
        for key, records in planned.items():
            results = self.engine.spmv_many(
                [(record.csr, record.x) for record in records],
                return_errors=True,
                planner=planners[key],
            )
            outcomes.extend(zip(records, results))
        return outcomes

    def _run_batch(self, matrix: str, cause: str, batch: list) -> None:
        """Worker: execute one coalesced batch and resolve its tickets."""
        try:
            outcomes = self._execute_outcomes(batch)
        except BaseException as exc:  # defensive: the seam above shouldn't raise
            outcomes = [(record, exc) for record in batch]
        now = self._clock()
        depths: dict[str, int] = {}
        with self._cond:
            for record, _result in outcomes:
                self._tenant_depth[record.tenant] -= 1
                depths[record.tenant] = self._tenant_depth[record.tenant]
        # resolve tickets first, then publish metrics — a metrics error
        # must never leave a caller blocked on an unresolved future
        for record, result in outcomes:
            if isinstance(result, BaseException):
                record.ticket._fail(result)
            else:
                record.ticket._succeed(result)
        for record, result in outcomes:
            if isinstance(result, DeadlineExceededError):
                outcome = "deadline"
            elif isinstance(result, BaseException):
                outcome = "error"
            else:
                outcome = "ok"
            _count_request(record.tenant, outcome)
            _observe_latency(record.tenant, now - record.submitted_at)
        _count_batch(matrix, cause, size=len(batch))
        for tenant, depth in depths.items():
            _set_depth(tenant, depth)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Drain and shut down: every admitted request still resolves.

        Marks the front-end closed (new submissions raise
        :class:`~repro.errors.ServeError`), lets the dispatcher flush
        everything pending as ``drain`` batches, then joins the
        dispatcher and the worker pool.  Idempotent.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ServeFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run_report(self, meta: dict | None = None):
        """The underlying engine's :class:`~repro.obs.RunReport`."""
        base = {"frontend": "serve", "matrices": self.matrices()}
        base.update(meta or {})
        return self.engine.run_report(meta=base)

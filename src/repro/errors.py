"""Exception hierarchy for the Spaden reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class FormatError(ReproError):
    """A sparse-matrix format is structurally invalid (bad pointers,
    out-of-range indices, mismatched array lengths, ...)."""


class VerificationError(FormatError):
    """Deep verification of a stored matrix failed.

    Raised by :meth:`repro.formats.base.SparseMatrix.verify` when an
    invariant that holds at construction time has been violated afterwards
    (bit rot, an injected fault, a buggy in-place transformation).  The
    structured attributes let callers — notably the graceful-degradation
    dispatcher in :mod:`repro.robustness.dispatch` — log *where* a matrix
    broke without parsing the message:

    * ``format_name`` — registry name of the offending format,
    * ``check``       — short identifier of the violated invariant
      (e.g. ``"pointer-monotonicity"``, ``"bitmap-popcount"``),
    * ``coord``       — the block/row/element coordinate of the first
      violation, as a tuple (or ``None`` when the failure is global).
    """

    def __init__(
        self,
        message: str,
        *,
        format_name: str | None = None,
        check: str | None = None,
        coord: tuple | None = None,
    ):
        super().__init__(message)
        self.format_name = format_name
        self.check = check
        self.coord = coord


class PointerMonotonicityError(VerificationError):
    """A CSR-style pointer array decreases; ``coord`` holds the first
    (block) row whose pointer runs backwards."""


class IndexRangeError(VerificationError):
    """A stored column/row index escapes the matrix (or block grid);
    ``coord`` locates the offending entry."""


class BitmapPopcountError(VerificationError):
    """The popcount of the stored bitmaps disagrees with the number of
    packed values — the central bitBSR invariant (§4.2)."""


class OffsetScanError(VerificationError):
    """A block-offset array is not the exclusive scan of the per-block
    nonzero counts, or a pointer frame has the wrong size/endpoints."""


class EmptyBlockError(VerificationError):
    """A stored block's bitmap is all-zero; bitBSR forbids empty blocks."""


class NonFiniteValueError(VerificationError):
    """A stored value is NaN or infinite; ``coord`` is the (row, col) of
    the first non-finite entry."""


class NumericalError(ReproError):
    """A computation left the representable range of its precision.

    Raised when fp16 storage or the (simulated) tensor-core pipeline
    saturates or overflows — e.g. a finite float32 input rounds to
    ``inf`` in half precision, or an MMA accumulator register goes
    non-finite.  The graceful-degradation dispatcher treats this as a
    signal to retry on a wider-precision (CUDA-core) kernel rather than
    return a poisoned ``y``.
    """


class ConversionError(ReproError):
    """A format conversion is impossible or was given inconsistent input."""


class SimulationError(ReproError):
    """The GPU simulator was driven incorrectly (bad lane id, register
    index out of range, fragment shape mismatch, ...)."""


class LayoutError(SimulationError):
    """A fragment register/element mapping was violated."""


class KernelError(ReproError):
    """A kernel was invoked with incompatible operands."""


class DatasetError(ReproError):
    """A matrix-generator or registry request cannot be satisfied."""

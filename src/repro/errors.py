"""Exception hierarchy for the Spaden reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class FormatError(ReproError):
    """A sparse-matrix format is structurally invalid (bad pointers,
    out-of-range indices, mismatched array lengths, ...)."""


class ConversionError(ReproError):
    """A format conversion is impossible or was given inconsistent input."""


class SimulationError(ReproError):
    """The GPU simulator was driven incorrectly (bad lane id, register
    index out of range, fragment shape mismatch, ...)."""


class LayoutError(SimulationError):
    """A fragment register/element mapping was violated."""


class KernelError(ReproError):
    """A kernel was invoked with incompatible operands."""


class DatasetError(ReproError):
    """A matrix-generator or registry request cannot be satisfied."""

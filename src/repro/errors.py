"""Exception hierarchy for the Spaden reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class FormatError(ReproError):
    """A sparse-matrix format is structurally invalid (bad pointers,
    out-of-range indices, mismatched array lengths, ...)."""


class VerificationError(FormatError):
    """Deep verification of a stored matrix failed.

    Raised by :meth:`repro.formats.base.SparseMatrix.verify` when an
    invariant that holds at construction time has been violated afterwards
    (bit rot, an injected fault, a buggy in-place transformation).  The
    structured attributes let callers — notably the graceful-degradation
    dispatcher in :mod:`repro.robustness.dispatch` — log *where* a matrix
    broke without parsing the message:

    * ``format_name`` — registry name of the offending format,
    * ``check``       — short identifier of the violated invariant
      (e.g. ``"pointer-monotonicity"``, ``"bitmap-popcount"``),
    * ``coord``       — the block/row/element coordinate of the first
      violation, as a tuple (or ``None`` when the failure is global).
    """

    def __init__(
        self,
        message: str,
        *,
        format_name: str | None = None,
        check: str | None = None,
        coord: tuple | None = None,
    ):
        super().__init__(message)
        self.format_name = format_name
        self.check = check
        self.coord = coord


class PointerMonotonicityError(VerificationError):
    """A CSR-style pointer array decreases; ``coord`` holds the first
    (block) row whose pointer runs backwards."""


class IndexRangeError(VerificationError):
    """A stored column/row index escapes the matrix (or block grid);
    ``coord`` locates the offending entry."""


class BitmapPopcountError(VerificationError):
    """The popcount of the stored bitmaps disagrees with the number of
    packed values — the central bitBSR invariant (§4.2)."""


class OffsetScanError(VerificationError):
    """A block-offset array is not the exclusive scan of the per-block
    nonzero counts, or a pointer frame has the wrong size/endpoints."""


class EmptyBlockError(VerificationError):
    """A stored block's bitmap is all-zero; bitBSR forbids empty blocks."""


class NonFiniteValueError(VerificationError):
    """A stored value is NaN or infinite; ``coord`` is the (row, col) of
    the first non-finite entry."""


class NumericalError(ReproError):
    """A computation left the representable range of its precision.

    Raised when fp16 storage or the (simulated) tensor-core pipeline
    saturates or overflows — e.g. a finite float32 input rounds to
    ``inf`` in half precision, or an MMA accumulator register goes
    non-finite.  The graceful-degradation dispatcher treats this as a
    signal to retry on a wider-precision (CUDA-core) kernel rather than
    return a poisoned ``y``.
    """


class ConversionError(ReproError):
    """A format conversion is impossible or was given inconsistent input."""


class SimulationError(ReproError):
    """The GPU simulator was driven incorrectly (bad lane id, register
    index out of range, fragment shape mismatch, ...)."""


class LaneIndexError(SimulationError):
    """A warp shuffle was given a source lane / delta outside the warp.

    Structured attributes identify the request precisely (real hardware
    wraps silently; the simulator refuses instead):

    * ``lane``  — the requesting lane, or ``None`` for a warp-uniform
      argument such as ``shuffle_down``'s delta,
    * ``value`` — the offending source lane or delta,
    * ``warp_id`` — the warp that issued the shuffle.
    """

    def __init__(self, message, *, lane=None, value=None, warp_id=None):
        super().__init__(message)
        self.lane = lane
        self.value = value
        self.warp_id = warp_id


class MemoryAccessError(SimulationError):
    """A warp memory access escaped the bounds of a named device array.

    * ``array`` — the registered array name,
    * ``kind``  — ``"load"`` / ``"store"`` / ``"atomic"``,
    * ``lane``  — the first offending lane,
    * ``index`` — the element index that lane requested,
    * ``size``  — the array's element count.
    """

    def __init__(self, message, *, array=None, kind=None, lane=None, index=None, size=None):
        super().__init__(message)
        self.array = array
        self.kind = kind
        self.lane = lane
        self.index = index
        self.size = size


class SanitizerError(SimulationError):
    """Base class for violations the SIMT sanitizer detects.

    ``check`` names the violated rule (``"intra-warp-race"``,
    ``"cross-warp-race"``, ``"lane-ownership"``); ``coord`` is the
    rule-specific coordinate tuple of the first violation, mirroring the
    structured :class:`VerificationError`\\ s on the data side.
    """

    def __init__(self, message, *, check=None, coord=None):
        super().__init__(message)
        self.check = check
        self.coord = coord


class RaceError(SanitizerError):
    """Unsynchronized conflicting accesses to one global-memory address.

    * ``array`` — the device array name,
    * ``index`` — the conflicted element index,
    * ``lanes`` — the lanes involved,
    * ``warps`` — the warp ordinals involved (equal for an intra-warp
      same-instruction conflict).
    """

    def __init__(self, message, *, array=None, index=None, lanes=None, warps=None, **kw):
        super().__init__(message, **kw)
        self.array = array
        self.index = index
        self.lanes = list(lanes) if lanes is not None else []
        self.warps = list(warps) if warps is not None else []


class LayoutError(SimulationError):
    """A fragment register/element mapping was violated."""


class LaneOwnershipError(SanitizerError):
    """A lane touched a fragment element outside its §3 ownership set.

    * ``fragment_kind`` — ``"matrix_a"`` / ``"matrix_b"`` / ``"accumulator"``,
    * ``lane`` / ``register`` — the offending slot,
    * ``portion`` — the 8x8 portion the register addresses,
    * ``expected`` / ``actual`` — the (row, col) the §3 mapping assigns
      vs. the element the active layout table touched.
    """

    def __init__(
        self,
        message,
        *,
        fragment_kind=None,
        lane=None,
        register=None,
        portion=None,
        expected=None,
        actual=None,
        **kw,
    ):
        super().__init__(message, **kw)
        self.fragment_kind = fragment_kind
        self.lane = lane
        self.register = register
        self.portion = portion
        self.expected = expected
        self.actual = actual


class KernelError(ReproError):
    """A kernel was invoked with incompatible operands."""


class DatasetError(ReproError):
    """A matrix-generator or registry request cannot be satisfied."""


class ObservabilityError(ReproError):
    """A metrics/span/report request is malformed (bad name, label
    mismatch, kind conflict, or an unparseable exported document)."""


class ResilienceError(ReproError):
    """A resilience policy is misconfigured (non-positive deadline
    budget, empty retry schedule, breaker thresholds outside [0, 1],
    ...).  Raised at construction time, never during a request."""


class ServeError(ReproError):
    """The serving front-end was misconfigured or misused (bad flush
    policy, duplicate matrix registration, unknown matrix name, a
    request submitted after :meth:`~repro.serve.ServeFrontend.close`,
    ...)."""


class PlanError(ReproError):
    """An execution planner was misconfigured or asked the impossible
    (unknown GPU or kernel candidate, a capability filter that leaves
    no kernel standing, a malformed structure profile, ...)."""


class PersistError(ReproError):
    """The on-disk operand store was misconfigured (bad root path,
    non-positive size budget, invalid store name).

    Note the asymmetry with runtime trouble: configuration errors raise,
    but *operational* failures (corrupt entries, truncated files, a
    full disk during spill) never do — persistence is an optimization,
    so :mod:`repro.persist` degrades those to counted structured misses
    and the engine falls through to re-conversion."""


class AdmissionError(ServeError):
    """The serving front-end refused to admit a request.

    Admission control is the front door of :mod:`repro.serve`: a
    request that would blow a tenant's quota is rejected *before* it
    consumes queue space or engine time, with enough structure for the
    caller (and the load generator) to react without parsing messages:

    * ``tenant``  — the tenant whose quota rejected the request,
    * ``reason``  — ``"queue-depth"`` (too many requests in flight) or
      ``"rate"`` (the tenant's token bucket is empty),
    * ``limit``   — the configured bound that was enforced,
    * ``current`` — the observed value at rejection time (queue depth
      for ``"queue-depth"``; ``None`` for ``"rate"``).

    Every rejection is counted in ``serve_admission_rejected_total``
    (labeled by tenant and reason) in :mod:`repro.obs`.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        reason: str | None = None,
        limit: float | None = None,
        current: float | None = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason
        self.limit = limit
        self.current = current


class DeadlineExceededError(ReproError):
    """A request ran out of its time budget at a stage boundary.

    The execution layer checks the request's :class:`~repro.resilience.Deadline`
    between stages (``prepare`` / ``verify`` / ``run`` / ``check``) and
    between chain attempts (``dispatch``); the *first* checkpoint past
    expiry raises.  Structured attributes locate the miss without
    parsing the message:

    * ``stage``   — the checkpoint that observed expiry,
    * ``elapsed`` — seconds since the deadline started,
    * ``budget``  — the budget the request was admitted with.

    Deadline misses are terminal: the degradation chain re-raises them
    instead of falling back (a slower kernel cannot beat a clock that
    has already run out), and the retry taxonomy classifies them fatal.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        elapsed: float | None = None,
        budget: float | None = None,
    ):
        super().__init__(message)
        self.stage = stage
        self.elapsed = elapsed
        self.budget = budget

"""The 14 evaluation matrices of Table 1 as calibrated generator specs.

Targets come straight from the paper's Table 1; the block-density mixes
(sparse <= 32 / medium 33-48 / dense > 48 nonzeros per 8x8 block)
approximate Fig. 9a.  Generated matrices hit nnz exactly and Bnnz within
a few percent; EXPERIMENTS.md records the achieved values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DatasetError

__all__ = [
    "MatrixSpec",
    "TABLE1_SPECS",
    "get_spec",
    "matrix_names",
    "in_scope_names",
    "generate_matrix",
]


@dataclass(frozen=True)
class MatrixSpec:
    """Calibration targets for one synthetic Table-1 analog."""

    name: str
    #: Paper values (Table 1).
    nrow: int
    nnz: int
    block_nrow: int
    block_nnz: int
    #: Structural family controlling block placement and bit patterns.
    kind: str
    #: Approximate Fig. 9a category fractions (sparse, medium, dense).
    mix: tuple[float, float, float]
    #: Whether the matrix meets the paper's selection criteria
    #: (nrow > 10,000 and nnz/nrow > 32) — the bottom two do not.
    in_scope: bool = True

    @property
    def mean_block_nnz(self) -> float:
        return self.nnz / self.block_nnz

    @property
    def nnz_per_row(self) -> float:
        return self.nnz / self.nrow


TABLE1_SPECS: tuple[MatrixSpec, ...] = (
    MatrixSpec("raefsky3", 21_200, 1_488_768, 2_650, 23_262, "fem", (0.00, 0.00, 1.00)),
    MatrixSpec("conf5", 49_152, 1_916_928, 6_144, 108_544, "stencil", (0.90, 0.08, 0.02)),
    MatrixSpec("rma10", 46_835, 2_374_001, 5_855, 99_267, "fem", (0.62, 0.25, 0.13)),
    MatrixSpec("cant", 62_451, 4_007_383, 7_807, 180_069, "fem", (0.68, 0.22, 0.10)),
    MatrixSpec("pdb1HYS", 36_417, 4_344_765, 4_553, 140_833, "fem", (0.50, 0.30, 0.20)),
    MatrixSpec("consph", 83_334, 6_010_480, 10_417, 272_897, "fem", (0.68, 0.22, 0.10)),
    MatrixSpec("shipsec1", 140_874, 7_813_404, 17_610, 355_376, "fem", (0.68, 0.22, 0.10)),
    MatrixSpec("pwtk", 217_918, 11_634_424, 27_240, 357_758, "fem", (0.34, 0.33, 0.33)),
    MatrixSpec("Si41Ge41H72", 185_639, 15_011_265, 23_205, 1_557_151, "chem", (0.97, 0.02, 0.01)),
    MatrixSpec("TSOPF", 38_120, 16_171_169, 4_765, 294_897, "blockrows", (0.12, 0.08, 0.80)),
    MatrixSpec("Ga41As41H72", 268_096, 18_488_476, 33_512, 2_030_502, "chem", (0.97, 0.02, 0.01)),
    MatrixSpec("F1", 343_791, 26_837_113, 42_974, 2_253_370, "fem", (0.93, 0.05, 0.02)),
    MatrixSpec("scircuit", 170_998, 958_936, 21_375, 260_036, "powerlaw", (1.00, 0.00, 0.00), in_scope=False),
    MatrixSpec("webbase1M", 1_000_005, 3_105_536, 125_001, 550_745, "powerlaw", (0.995, 0.005, 0.00), in_scope=False),
)

_BY_NAME = {s.name: s for s in TABLE1_SPECS}


def get_spec(name: str) -> MatrixSpec:
    """Look up a Table-1 matrix spec by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DatasetError(f"unknown matrix {name!r}; known: {sorted(_BY_NAME)}") from None


def matrix_names() -> list[str]:
    """All 14 matrix names in Table-1 order."""
    return [s.name for s in TABLE1_SPECS]


def in_scope_names() -> list[str]:
    """The 12 matrices meeting the paper's selection criteria."""
    return [s.name for s in TABLE1_SPECS if s.in_scope]


def generate_matrix(name: str, scale: float = 1.0, seed: int | None = None):
    """Generate the named analog (scaled); see :func:`generate_from_spec`."""
    from repro.matrices.generators import generate_from_spec

    return generate_from_spec(get_spec(name), scale=scale, seed=seed)

"""Synthetic analogs of the paper's evaluation matrices (Table 1).

Since SuiteSparse downloads are unavailable offline, each matrix is
replaced by a *structural analog* generated at the block level: the
generator places 8x8 blocks with the kind-appropriate layout (banded FEM,
lattice stencil, scattered quantum-chemistry, contiguous power-flow runs,
power-law graph) and fills each block with a nonzero count drawn from the
matrix's calibrated sparse/medium/dense mixture.  This matches the three
quantities that drive every result in the paper: nrow/nnz (Table 1),
block count Bnnz (Table 1) and the block-density mix (Fig. 9a).
"""

from repro.matrices.registry import (
    MatrixSpec,
    TABLE1_SPECS,
    generate_matrix,
    get_spec,
    in_scope_names,
    matrix_names,
)
from repro.matrices.generators import GeneratedMatrix, generate_from_spec
from repro.matrices.random import random_coo, random_banded
from repro.matrices.stats import matrix_stats

__all__ = [
    "MatrixSpec",
    "TABLE1_SPECS",
    "generate_matrix",
    "get_spec",
    "in_scope_names",
    "matrix_names",
    "GeneratedMatrix",
    "generate_from_spec",
    "random_coo",
    "random_banded",
    "matrix_stats",
]

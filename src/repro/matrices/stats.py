"""Matrix structure statistics used by reports and generator validation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis import BlockProfile, categorize_blocks
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["MatrixStats", "matrix_stats"]


@dataclass(frozen=True)
class MatrixStats:
    """Structural summary of one matrix (Table-1 columns and more)."""

    nrow: int
    ncol: int
    nnz: int
    block_nrow: int
    block_nnz: int
    nnz_per_row_mean: float
    nnz_per_row_max: int
    block_profile: BlockProfile

    @property
    def mean_block_nnz(self) -> float:
        return self.nnz / self.block_nnz if self.block_nnz else 0.0

    def table1_row(self, name: str) -> dict[str, int | str]:
        return {
            "Matrix": name,
            "nrow": self.nrow,
            "nnz": self.nnz,
            "Bnrow": self.block_nrow,
            "Bnnz": self.block_nnz,
        }


def matrix_stats(matrix: CSRMatrix | BitBSRMatrix) -> MatrixStats:
    """Compute the structural summary, converting to bitBSR if needed."""
    if isinstance(matrix, BitBSRMatrix):
        bit = matrix
        csr_lengths = None
    else:
        bit = BitBSRMatrix.from_coo(matrix.tocoo())
        csr_lengths = matrix.row_lengths()
    if csr_lengths is None:
        rows, _ = bit.entry_coordinates()
        csr_lengths = np.bincount(rows, minlength=bit.nrows)
    return MatrixStats(
        nrow=bit.nrows,
        ncol=bit.ncols,
        nnz=bit.nnz,
        block_nrow=bit.block_rows_count,
        block_nnz=bit.nblocks,
        nnz_per_row_mean=float(csr_lengths.mean()) if csr_lengths.size else 0.0,
        nnz_per_row_max=int(csr_lengths.max(initial=0)),
        block_profile=categorize_blocks(bit),
    )

"""Recursive-matrix (R-MAT) graph generator.

Power-law graphs at scale without networkx: the classic Chakrabarti
et al. recursion choosing one quadrant per bit, fully vectorized over all
edges at once.  Used for graph-workload examples and scalability tests
(the webbase-1M analog uses the simpler Zipf placement; R-MAT gives
controllable skew).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.formats.coo import COOMatrix
from repro.matrices.generators import fp16_exact_values

__all__ = ["rmat_graph"]


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | None = None,
    weighted: bool = False,
) -> COOMatrix:
    """Generate an R-MAT graph as a sparse adjacency matrix.

    ``2**scale`` vertices and ``edge_factor * 2**scale`` sampled edges
    (duplicates collapse, so the realized nnz is slightly lower — the
    standard Graph500 convention).  ``(a, b, c)`` are the quadrant
    probabilities; ``d = 1 - a - b - c``.
    """
    if scale <= 0 or scale > 24:
        raise DatasetError("scale must be in [1, 24]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise DatasetError("quadrant probabilities must be non-negative")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n

    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for bit in range(scale - 1, -1, -1):
        r = rng.random(m)
        # quadrant: 0 = (0,0), 1 = (0,1), 2 = (1,0), 3 = (1,1)
        right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        down = r >= a + b
        rows |= down.astype(np.int64) << bit
        cols |= right.astype(np.int64) << bit

    if weighted:
        values = fp16_exact_values(rng, m)
        values = np.abs(values)
    else:
        values = np.ones(m, dtype=np.float32)
    # canonical COO construction collapses duplicate edges (summing
    # weights); clamp pattern graphs back to unit weights
    coo = COOMatrix((n, n), rows.astype(np.int32), cols.astype(np.int32), values)
    if not weighted and coo.nnz and coo.values.max() > 1:
        coo = COOMatrix(
            (n, n), coo.rows, coo.cols, np.ones(coo.nnz, dtype=np.float32), canonical=True
        )
    return coo

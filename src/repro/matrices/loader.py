"""SuiteSparse loader with synthetic fallback.

When real SuiteSparse matrices are available (e.g. downloaded on a
machine with network access), point ``REPRO_SUITESPARSE_DIR`` at a
directory of ``<name>.mtx`` files and :func:`load_matrix` serves the
genuine article; otherwise it falls back to the calibrated synthetic
analog.  Benchmarks run identically either way.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DatasetError
from repro.formats.coo import COOMatrix
from repro.formats.mmio import read_matrix_market
from repro.matrices.generators import GeneratedMatrix, generate_from_spec
from repro.matrices.registry import get_spec

__all__ = ["LoadedMatrix", "load_matrix", "suitesparse_dir"]

#: Map registry names to SuiteSparse file stems where they differ.
_FILE_STEMS = {
    "conf5": "conf5_4-8x8-05",
    "TSOPF": "TSOPF_RS_b2383",
    "webbase1M": "webbase-1M",
}


@dataclass(frozen=True)
class LoadedMatrix:
    """A matrix plus its provenance (real file or synthetic analog)."""

    name: str
    coo: COOMatrix
    source: str  # "suitesparse" or "synthetic"
    path: Path | None = None


def suitesparse_dir() -> Path | None:
    """The configured SuiteSparse directory, if any."""
    value = os.environ.get("REPRO_SUITESPARSE_DIR")
    return Path(value) if value else None


def load_matrix(name: str, scale: float = 1.0, seed: int | None = None) -> LoadedMatrix:
    """Load ``name`` from disk when available, else generate the analog.

    Real matrices ignore ``scale`` (they come at full size); the
    synthetic path honors it.
    """
    spec = get_spec(name)  # validates the name either way
    directory = suitesparse_dir()
    if directory is not None:
        stem = _FILE_STEMS.get(name, name)
        path = directory / f"{stem}.mtx"
        if path.exists():
            coo = read_matrix_market(path)
            if coo.nrows != spec.nrow:
                raise DatasetError(
                    f"{path} has {coo.nrows} rows; Table 1 lists {spec.nrow} for {name}"
                )
            return LoadedMatrix(name=name, coo=coo, source="suitesparse", path=path)
    generated: GeneratedMatrix = generate_from_spec(spec, scale=scale, seed=seed)
    return LoadedMatrix(name=name, coo=generated.csr.tocoo(), source="synthetic")

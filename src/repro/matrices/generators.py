"""Block-level matrix generator behind the Table-1 analogs.

Generation runs in four vectorized stages:

1. **Block placement** — per block row, draw a block count and column
   positions with the family's layout (banded FEM, lattice stencil,
   clustered+scattered chemistry, contiguous power-flow runs, Zipf-tailed
   power-law), then trim/add blocks to hit the target block count.
2. **Block occupancy** — assign each block a category from the matrix's
   (sparse, medium, dense) mixture, draw a nonzero count inside the
   category's range, and redistribute +-1 adjustments *within category
   bounds* until the total equals the target nnz exactly.
3. **Bit patterns** — FEM/stencil/power-flow blocks get contiguous
   (wrapped) runs of bits, chemistry/graph blocks get odd-stride scatters;
   both yield exactly k distinct bits.
4. **Values** — random half-precision-exact magnitudes so every kernel
   (fp16 tensor-core and fp32 CUDA-core paths alike) computes the same
   reference result.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.constants import BLOCK_DIM, BLOCK_SIZE
from repro.errors import DatasetError
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.csr import CSRMatrix
from repro.matrices.registry import MatrixSpec
from repro.utils.scan import exclusive_scan

__all__ = ["GeneratedMatrix", "generate_from_spec", "fp16_exact_values"]

_U64 = np.uint64
_FULL = _U64(0xFFFFFFFFFFFFFFFF)

#: Category bounds: sparse [1, 32], medium [33, 48], dense [49, 64].
_CATEGORY_BOUNDS = ((1, 32), (33, 48), (49, 64))
_CATEGORY_MEANS = (16.5, 40.5, 56.5)


@dataclass
class GeneratedMatrix:
    """One generated analog: the bitBSR ground truth plus conversions."""

    spec: MatrixSpec
    scale: float
    seed: int
    bitbsr: BitBSRMatrix

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def nrows(self) -> int:
        return self.bitbsr.nrows

    @property
    def nnz(self) -> int:
        return self.bitbsr.nnz

    @property
    def block_nnz(self) -> int:
        return self.bitbsr.nblocks

    @cached_property
    def csr(self) -> CSRMatrix:
        """CSR view shared by all baseline kernels."""
        return CSRMatrix.from_coo(self.bitbsr.tocoo())

    def dense_vector(self, seed: int | None = None) -> np.ndarray:
        """A matching fp16-exact input vector."""
        rng = np.random.default_rng(self.seed + 1 if seed is None else seed)
        return fp16_exact_values(rng, self.bitbsr.ncols)


def fp16_exact_values(rng: np.random.Generator, count: int) -> np.ndarray:
    """Nonzero float32 values exactly representable in float16.

    Magnitudes are ``(1 + m) / 16`` for m in [0, 32) with random sign —
    5 significant bits, so fp16 storage and fp32 arithmetic agree and
    correctness tests can compare kernels at tight tolerances.
    """
    mags = (1.0 + rng.integers(0, 32, count)) / 16.0
    signs = rng.choice((-1.0, 1.0), count)
    return (mags * signs).astype(np.float32)


# ---------------------------------------------------------------------------
# stage 1: block placement
# ---------------------------------------------------------------------------


def _block_counts(rng, kind: str, nbrows: int, target_blocks: int) -> np.ndarray:
    """Blocks per block row, kind-shaped, summing close to the target."""
    mean = target_blocks / nbrows
    if kind in ("fem", "stencil", "blockrows"):
        base = np.full(nbrows, int(mean), dtype=np.int64)
        frac = mean - int(mean)
        base += rng.random(nbrows) < frac
    elif kind == "chem":
        base = rng.poisson(mean, nbrows).astype(np.int64)
    elif kind == "powerlaw":
        # heavy-tailed out-degrees: Pareto with the requested mean
        raw = rng.pareto(2.0, nbrows) + 0.3
        base = np.maximum(1, np.round(raw * mean / np.mean(raw))).astype(np.int64)
    else:
        raise DatasetError(f"unknown matrix kind {kind!r}")
    return np.maximum(base, 1)


def _block_columns(rng, kind: str, rows: np.ndarray, nbcols: int, mean_per_row: float) -> np.ndarray:
    """Column of every placed block, matching the family's layout.

    ``mean_per_row`` scales the banded spreads so a row can actually host
    its expected number of *distinct* block columns.
    """
    n = rows.size
    if kind == "fem":
        spread = max(2.0, 0.8 * mean_per_row)
        offs = np.round(rng.laplace(0.0, spread, n)).astype(np.int64)
        cols = rows + offs
    elif kind == "stencil":
        # 4D-lattice-like neighbour offsets around the diagonal, with the
        # +-1 jitter that 8-row aggregation into block rows produces
        lattice = max(2, int(round(nbcols ** 0.25)))
        stencil = np.array(
            [0, 1, -1, lattice, -lattice, lattice**2, -(lattice**2), lattice**3, -(lattice**3)],
            dtype=np.int64,
        )
        jitter_width = max(1, int(round(mean_per_row / stencil.size)))
        jitter = rng.integers(-jitter_width, jitter_width + 1, n)
        cols = rows + stencil[rng.integers(0, stencil.size, n)] + jitter
    elif kind == "chem":
        near = rng.random(n) < 0.6
        spread = max(4.0, 1.5 * mean_per_row)
        cols = np.where(
            near,
            rows + np.round(rng.laplace(0.0, spread, n)).astype(np.int64),
            rng.integers(0, nbcols, n),
        )
    elif kind == "blockrows":
        # contiguous runs anchored at the diagonal (dense row panels)
        counts = np.bincount(rows, minlength=int(rows.max(initial=-1)) + 1)
        within = np.arange(n, dtype=np.int64) - exclusive_scan(counts)[rows]
        cols = rows - counts[rows] // 2 + within
    elif kind == "powerlaw":
        # Zipf-popular hub columns plus a local diagonal component
        hub = rng.random(n) < 0.7
        zipf = np.minimum(rng.zipf(1.6, n) - 1, nbcols - 1)
        cols = np.where(hub, zipf, rows + rng.integers(-8, 9, n))
    else:
        raise DatasetError(f"unknown matrix kind {kind!r}")
    return np.clip(cols, 0, nbcols - 1)


def _place_blocks(rng, kind: str, nbrows: int, nbcols: int, target_blocks: int) -> np.ndarray:
    """Unique (row * nbcols + col) keys for every block, sorted."""
    mean_per_row = target_blocks / nbrows
    counts = _block_counts(rng, kind, nbrows, target_blocks)
    rows = np.repeat(np.arange(nbrows, dtype=np.int64), counts)
    cols = _block_columns(rng, kind, rows, nbcols, mean_per_row)
    keys = np.unique(rows * nbcols + cols)
    # top up duplicates/shortfall with fresh placements in the same layout
    attempts = 0
    while keys.size < target_blocks and attempts < 64:
        need = target_blocks - keys.size
        r = rng.integers(0, nbrows, max(need * 2, 16)).astype(np.int64)
        c = _block_columns(rng, kind, r, nbcols, mean_per_row)
        keys = np.unique(np.concatenate([keys, r * nbcols + c]))
        attempts += 1
    if keys.size > target_blocks:
        drop = rng.choice(keys.size, keys.size - target_blocks, replace=False)
        keys = np.delete(keys, drop)
    return np.sort(keys)


# ---------------------------------------------------------------------------
# stage 2: block occupancy
# ---------------------------------------------------------------------------


def _category_means(mix: tuple[float, float, float], target_mean: float) -> tuple[float, float, float]:
    """Pick the sparse-category mean so the mixture hits the target."""
    fs, fm, fd = mix
    ms, mm, md = _CATEGORY_MEANS
    if fs > 0:
        ms = (target_mean - fm * mm - fd * md) / fs
        ms = float(np.clip(ms, 1.0, 32.0))
    elif fd > 0:
        md = (target_mean - fm * mm) / fd
        md = float(np.clip(md, 49.0, 64.0))
    return ms, mm, md


def _sample_counts(rng, category: np.ndarray, means: tuple[float, float, float]) -> np.ndarray:
    """Per-block nonzero counts inside each category's bounds."""
    k = np.empty(category.size, dtype=np.int64)
    for cat, ((lo, hi), mean) in enumerate(zip(_CATEGORY_BOUNDS, means)):
        idx = np.flatnonzero(category == cat)
        if idx.size == 0:
            continue
        if cat == 0:
            sample = np.round(rng.gamma(2.0, max(mean, 1.0) / 2.0, idx.size))
        else:
            half = (hi - lo) / 2.0
            sample = np.round(rng.normal(mean, half / 2.0, idx.size))
        k[idx] = np.clip(sample, lo, hi).astype(np.int64)
    return k


def _redistribute_to_target(rng, k: np.ndarray, category: np.ndarray, target_nnz: int) -> np.ndarray:
    """Adjust counts (within category bounds) until they sum to the target."""
    bounds_lo = np.array([b[0] for b in _CATEGORY_BOUNDS])[category]
    bounds_hi = np.array([b[1] for b in _CATEGORY_BOUNDS])[category]
    diff = target_nnz - int(k.sum())
    if diff > 0:
        headroom = bounds_hi - k
        diff = min(diff, int(headroom.sum()))
        order = rng.permutation(k.size)
        take = np.minimum(headroom[order], np.maximum(0, diff - np.concatenate(([0], np.cumsum(headroom[order])[:-1]))))
        k[order] += take
    elif diff < 0:
        footroom = k - bounds_lo
        need = min(-diff, int(footroom.sum()))
        order = rng.permutation(k.size)
        take = np.minimum(footroom[order], np.maximum(0, need - np.concatenate(([0], np.cumsum(footroom[order])[:-1]))))
        k[order] -= take
    return k


# ---------------------------------------------------------------------------
# stage 3: bit patterns
# ---------------------------------------------------------------------------


def _contiguous_bitmaps(rng, k: np.ndarray) -> np.ndarray:
    """k-bit wrapped contiguous runs at random start positions."""
    start = rng.integers(0, BLOCK_SIZE, k.size).astype(_U64)
    ku = k.astype(_U64)
    runs = np.where(k >= BLOCK_SIZE, _FULL, (_U64(1) << ku) - _U64(1))
    left = (runs << start) & _FULL
    # wrap-around part; guard the shift-by-64 case (start == 0)
    wrap_shift = (_U64(BLOCK_SIZE) - start) % _U64(BLOCK_SIZE)
    right = np.where(start == 0, _U64(0), runs >> wrap_shift)
    return np.where(k >= BLOCK_SIZE, _FULL, left | right)


def _strided_bitmaps(rng, k: np.ndarray) -> np.ndarray:
    """k distinct bits at positions ``(start + j * step) % 64``, step odd."""
    start = rng.integers(0, BLOCK_SIZE, k.size).astype(_U64)
    step = (rng.integers(0, BLOCK_SIZE // 2, k.size).astype(_U64) << _U64(1)) + _U64(1)
    bitmaps = np.zeros(k.size, dtype=_U64)
    kmax = int(k.max(initial=0))
    for j in range(kmax):
        active = k > j
        pos = (start + _U64(j) * step) % _U64(BLOCK_SIZE)
        bitmaps[active] |= _U64(1) << pos[active]
    return bitmaps


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def generate_from_spec(
    spec: MatrixSpec, scale: float = 1.0, seed: int | None = None
) -> GeneratedMatrix:
    """Generate the analog of ``spec`` at the given scale.

    ``scale`` shrinks nrow / nnz / Bnnz proportionally (structure-derived
    results like block-density mixes are scale-invariant); ``seed``
    defaults to a per-matrix stable hash so repeated runs agree.
    """
    if not 0.0 < scale <= 1.0:
        raise DatasetError("scale must be in (0, 1]")
    if seed is None:
        seed = abs(hash(spec.name)) % (2**31)
    rng = np.random.default_rng(seed)

    nrow = max(BLOCK_DIM * 2, int(round(spec.nrow * scale)))
    nbrows = -(-nrow // BLOCK_DIM)
    # blocks are generated at full 8x8 occupancy, so round the matrix up to
    # whole blocks (the paper's Bnrow = ceil(nrow / 8) is unchanged)
    nrow = nbrows * BLOCK_DIM
    target_blocks = max(nbrows, int(round(spec.block_nnz * scale)))
    target_nnz = max(target_blocks, int(round(spec.nnz * scale)))
    # a block holds at most 64 nonzeros
    target_nnz = min(target_nnz, target_blocks * BLOCK_SIZE)

    keys = _place_blocks(rng, spec.kind, nbrows, nbrows, target_blocks)
    brows = keys // nbrows
    bcols = (keys % nbrows).astype(np.int32)

    category = rng.choice(3, size=keys.size, p=np.asarray(spec.mix) / sum(spec.mix))
    means = _category_means(spec.mix, target_nnz / keys.size)
    k = _sample_counts(rng, category, means)
    k = _redistribute_to_target(rng, k, category, target_nnz)

    if spec.kind in ("fem", "stencil", "blockrows"):
        bitmaps = _contiguous_bitmaps(rng, k)
    else:
        bitmaps = _strided_bitmaps(rng, k)

    values = fp16_exact_values(rng, int(k.sum())).astype(np.float16)
    counts = np.bincount(brows, minlength=nbrows)
    ptr = exclusive_scan(counts)
    bitbsr = BitBSRMatrix((nrow, nrow), ptr, bcols, bitmaps, values)
    return GeneratedMatrix(spec=spec, scale=scale, seed=seed, bitbsr=bitbsr)

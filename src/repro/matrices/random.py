"""Plain random sparse matrices for tests and property-based fuzzing."""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.formats.coo import COOMatrix
from repro.matrices.generators import fp16_exact_values

__all__ = ["random_coo", "random_banded"]


def random_coo(
    nrows: int,
    ncols: int,
    density: float,
    seed: int | None = None,
    fp16_exact: bool = True,
) -> COOMatrix:
    """Uniform random sparse matrix with approximately the given density."""
    if not 0.0 <= density <= 1.0:
        raise DatasetError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    target = int(round(nrows * ncols * density))
    if target == 0:
        return COOMatrix((nrows, ncols), np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))
    flat = rng.choice(nrows * ncols, size=min(target, nrows * ncols), replace=False)
    rows = (flat // ncols).astype(np.int32)
    cols = (flat % ncols).astype(np.int32)
    if fp16_exact:
        values = fp16_exact_values(rng, flat.size)
    else:
        values = rng.standard_normal(flat.size).astype(np.float32)
        values[values == 0] = 1.0
    return COOMatrix((nrows, ncols), rows, cols, values)


def random_banded(
    n: int,
    bandwidth: int,
    fill: float = 0.5,
    seed: int | None = None,
) -> COOMatrix:
    """Random banded square matrix (entries within ``|i - j| <= bandwidth``)."""
    if bandwidth < 0:
        raise DatasetError("bandwidth must be non-negative")
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for off in range(-bandwidth, bandwidth + 1):
        length = n - abs(off)
        keep = rng.random(length) < fill
        r = np.flatnonzero(keep) + max(0, -off)
        rows_list.append(r)
        cols_list.append(r + off)
    rows = np.concatenate(rows_list).astype(np.int32)
    cols = np.concatenate(cols_list).astype(np.int32)
    values = fp16_exact_values(rng, rows.size)
    return COOMatrix((n, n), rows, cols, values)

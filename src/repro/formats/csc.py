"""Compressed Sparse Column (CSC) — column-major dual of CSR."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.scan import exclusive_scan, segment_ids
from repro.utils.validation import ensure_1d, ensure_dtype, ensure_sorted

__all__ = ["CSCMatrix"]


@register_format
class CSCMatrix(SparseMatrix):
    """CSC: ``col_pointers`` / ``row_indices`` / ``values``.

    Included for completeness of the format substrate (pull-style graph
    kernels such as Gunrock's traverse the transpose).
    """

    format_name = "csc"

    def __init__(
        self,
        shape: tuple[int, int],
        col_pointers: np.ndarray,
        row_indices: np.ndarray,
        values: np.ndarray,
    ):
        super().__init__(shape)
        col_pointers = ensure_dtype(ensure_1d(col_pointers, "col_pointers"), np.int64, "col_pointers")
        row_indices = ensure_dtype(ensure_1d(row_indices, "row_indices"), np.int32, "row_indices")
        values = ensure_dtype(ensure_1d(values, "values"), np.float32, "values")
        if col_pointers.size != self.ncols + 1:
            raise FormatError("col_pointers must have ncols + 1 entries")
        ensure_sorted(col_pointers, "col_pointers")
        if col_pointers[0] != 0 or col_pointers[-1] != row_indices.size:
            raise FormatError("col_pointers endpoints inconsistent with row_indices")
        if row_indices.size != values.size:
            raise FormatError("row_indices and values must have equal length")
        if row_indices.size and (row_indices.min() < 0 or row_indices.max() >= self.nrows):
            raise FormatError("row index out of range")
        self.col_pointers = col_pointers
        self.row_indices = row_indices
        self.values = values

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        order = np.argsort(coo.cols.astype(np.int64) * coo.nrows + coo.rows, kind="stable")
        cols = coo.cols[order]
        counts = np.bincount(cols, minlength=coo.ncols)
        ptr = exclusive_scan(counts)
        return cls(coo.shape, ptr, coo.rows[order].copy(), coo.values[order].copy())

    def tocoo(self) -> COOMatrix:
        cols = segment_ids(self.col_pointers).astype(np.int32)
        return COOMatrix(self.shape, self.row_indices.copy(), cols, self.values.copy())

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    # -- verification -----------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        self._check_pointer_frame(self.col_pointers, self.ncols, self.row_indices.size, "col_pointers")
        if self.row_indices.size != self.values.size:
            raise FormatError("row_indices and values must have equal length")

    def _verify_deep(self) -> None:
        self._check_monotone(self.col_pointers, "col_pointers")
        at = lambda pos: (int(self.row_indices[pos]), int(np.searchsorted(self.col_pointers, pos, side="right") - 1))
        self._check_index_range(self.row_indices, self.nrows, "row index", coords=at)
        self._check_finite(self.values, "values", coords=at)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Scatter-style SpMV: each column contributes ``values * x[j]``."""
        x = self._check_matvec_operand(x)
        cols = segment_ids(self.col_pointers)
        y = np.zeros(self.nrows, dtype=np.float32)
        np.add.at(y, self.row_indices, self.values * x[cols])
        return y

    def storage_fields(self) -> Iterator[ArrayField]:
        yield ArrayField("col_pointers", (self.ncols + 1) * 4, "int32", self.ncols + 1)
        yield self._field("row_indices", self.row_indices)
        yield self._field("values", self.values)

"""Common interface and registry for sparse-matrix formats."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import ConversionError, FormatError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.formats.coo import COOMatrix

__all__ = ["ArrayField", "SparseMatrix", "register_format", "get_format", "available_formats"]

_REGISTRY: dict[str, type["SparseMatrix"]] = {}


def register_format(cls: type["SparseMatrix"]) -> type["SparseMatrix"]:
    """Class decorator: register a format under its ``format_name``."""
    name = cls.format_name
    if not name:
        raise ValueError(f"{cls.__name__} must define format_name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"format {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_format(name: str) -> type["SparseMatrix"]:
    """Look up a registered format class by name (e.g. ``"bitbsr"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConversionError(
            f"unknown format {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available_formats() -> list[str]:
    """Names of all registered formats, sorted."""
    return sorted(_REGISTRY)


@dataclass(frozen=True)
class ArrayField:
    """One storage array of a format, for byte-exact memory accounting."""

    name: str
    nbytes: int
    dtype: str
    length: int


class SparseMatrix(ABC):
    """Abstract base class for all storage formats.

    Subclasses store a 2-D sparse matrix and provide:

    * ``from_coo`` / ``tocoo`` so any pair of formats can interconvert,
    * ``todense`` for reference comparisons,
    * ``matvec`` — a NumPy reference SpMV with the format's natural
      traversal order (the GPU kernels in :mod:`repro.kernels` model the
      parallel execution; this is the semantic ground truth),
    * ``storage_fields`` — the exact arrays kept in device memory, used by
      :mod:`repro.formats.memory` to reproduce Fig. 10b.
    """

    #: Registry key; subclasses must override.
    format_name: str = ""

    def __init__(self, shape: tuple[int, int]):
        nrows, ncols = shape
        if nrows < 0 or ncols < 0:
            raise FormatError(f"invalid shape {shape}")
        self._shape = (int(nrows), int(ncols))

    # -- shape / size -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the logical matrix."""
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored nonzero entries."""

    @property
    def density(self) -> float:
        """nnz divided by the full matrix size (0 for empty shapes)."""
        total = self.nrows * self.ncols
        return self.nnz / total if total else 0.0

    # -- conversion -------------------------------------------------------
    @classmethod
    @abstractmethod
    def from_coo(cls, coo: "COOMatrix") -> "SparseMatrix":
        """Build this format from a canonical (sorted, deduplicated) COO."""

    @abstractmethod
    def tocoo(self) -> "COOMatrix":
        """Convert back to canonical COO."""

    def todense(self) -> np.ndarray:
        """Materialize as a dense float32 array (small matrices only)."""
        return self.tocoo().todense()

    def convert(self, name: str) -> "SparseMatrix":
        """Convert to any registered format by name."""
        cls = get_format(name)
        if isinstance(self, cls):
            return self
        return cls.from_coo(self.tocoo())

    # -- computation ------------------------------------------------------
    @abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` in float32."""

    def _check_matvec_operand(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != self.ncols:
            raise FormatError(
                f"operand has shape {x.shape}, expected ({self.ncols},)"
            )
        return np.ascontiguousarray(x, dtype=np.float32)

    # -- memory accounting ------------------------------------------------
    @abstractmethod
    def storage_fields(self) -> Iterator[ArrayField]:
        """Yield every array the format keeps resident in device memory."""

    @property
    def nbytes(self) -> int:
        """Total device-resident bytes of this representation."""
        return sum(f.nbytes for f in self.storage_fields())

    def bytes_per_nnz(self) -> float:
        """Memory cost normalized by nonzeros (the Fig. 10b metric)."""
        return self.nbytes / self.nnz if self.nnz else float("inf")

    # -- misc ---------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.nrows}x{self.ncols}, "
            f"nnz={self.nnz}, {self.nbytes} bytes>"
        )

    @staticmethod
    def _field(name: str, array: np.ndarray) -> ArrayField:
        return ArrayField(name=name, nbytes=int(array.nbytes), dtype=str(array.dtype), length=int(array.size))

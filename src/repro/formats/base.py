"""Common interface and registry for sparse-matrix formats."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import (
    ConversionError,
    FormatError,
    IndexRangeError,
    NonFiniteValueError,
    PointerMonotonicityError,
    OffsetScanError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.formats.coo import COOMatrix

__all__ = ["ArrayField", "SparseMatrix", "register_format", "get_format", "available_formats"]

_REGISTRY: dict[str, type["SparseMatrix"]] = {}


def register_format(cls: type["SparseMatrix"]) -> type["SparseMatrix"]:
    """Class decorator: register a format under its ``format_name``."""
    name = cls.format_name
    if not name:
        raise ValueError(f"{cls.__name__} must define format_name")
    if name in _REGISTRY and _REGISTRY[name] is not cls:
        raise ValueError(f"format {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def get_format(name: str) -> type["SparseMatrix"]:
    """Look up a registered format class by name (e.g. ``"bitbsr"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConversionError(
            f"unknown format {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available_formats() -> list[str]:
    """Names of all registered formats, sorted."""
    return sorted(_REGISTRY)


def _dtype_matches(requested, stored: np.dtype) -> bool:
    """Whether ``requested`` names ``stored``; junk inputs are a mismatch.

    ``config_matches`` must never raise — an invalid ``value_dtype``
    reports ``False`` so the rebuild path surfaces the real error.
    """
    try:
        return np.dtype(requested) == stored
    except TypeError:
        return False


@dataclass(frozen=True)
class ArrayField:
    """One storage array of a format, for byte-exact memory accounting."""

    name: str
    nbytes: int
    dtype: str
    length: int


class SparseMatrix(ABC):
    """Abstract base class for all storage formats.

    Subclasses store a 2-D sparse matrix and provide:

    * ``from_coo`` / ``tocoo`` so any pair of formats can interconvert,
    * ``todense`` for reference comparisons,
    * ``matvec`` — a NumPy reference SpMV with the format's natural
      traversal order (the GPU kernels in :mod:`repro.kernels` model the
      parallel execution; this is the semantic ground truth),
    * ``storage_fields`` — the exact arrays kept in device memory, used by
      :mod:`repro.formats.memory` to reproduce Fig. 10b.
    """

    #: Registry key; subclasses must override.
    format_name: str = ""

    def __init__(self, shape: tuple[int, int]):
        nrows, ncols = shape
        if nrows < 0 or ncols < 0:
            raise FormatError(f"invalid shape {shape}")
        self._shape = (int(nrows), int(ncols))

    # -- shape / size -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols) of the logical matrix."""
        return self._shape

    @property
    def nrows(self) -> int:
        return self._shape[0]

    @property
    def ncols(self) -> int:
        return self._shape[1]

    @property
    @abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored nonzero entries."""

    @property
    def density(self) -> float:
        """nnz divided by the full matrix size (0 for empty shapes)."""
        total = self.nrows * self.ncols
        return self.nnz / total if total else 0.0

    # -- conversion -------------------------------------------------------
    @classmethod
    @abstractmethod
    def from_coo(cls, coo: "COOMatrix") -> "SparseMatrix":
        """Build this format from a canonical (sorted, deduplicated) COO."""

    @abstractmethod
    def tocoo(self) -> "COOMatrix":
        """Convert back to canonical COO."""

    def todense(self) -> np.ndarray:
        """Materialize as a dense float32 array (small matrices only)."""
        return self.tocoo().todense()

    def convert(self, name: str) -> "SparseMatrix":
        """Convert to any registered format by name."""
        cls = get_format(name)
        if isinstance(self, cls):
            return self
        return cls.from_coo(self.tocoo())

    def config_matches(self, **kwargs) -> bool:
        """Whether construction ``kwargs`` describe this instance's config.

        :func:`repro.formats.convert.convert` uses this to return the
        same object instead of rebuilding when the target format *and*
        its parameters already match (e.g. ``value_dtype=np.float16`` on
        an already-float16 bitBSR).  The base implementation only
        matches the no-kwargs call; parameterized formats override it to
        compare the kwargs they accept against their stored
        configuration.  Unknown kwargs must report ``False`` (rebuild),
        never raise — ``from_coo`` is the authority on their validity.
        """
        return not kwargs

    # -- computation ------------------------------------------------------
    @abstractmethod
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV ``y = A @ x`` in float32."""

    def _check_matvec_operand(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != self.ncols:
            raise FormatError(
                f"operand has shape {x.shape}, expected ({self.ncols},)"
            )
        return np.ascontiguousarray(x, dtype=np.float32)

    # -- verification -----------------------------------------------------
    def verify(self, deep: bool = False) -> "SparseMatrix":
        """Re-check the format's structural invariants; returns ``self``.

        Constructors validate their inputs once, but the storage arrays
        are mutable — a flipped bitmap bit, a truncated pointer array or
        a NaN written into ``values`` afterwards silently breaks every
        kernel built on the instance.  ``verify()`` re-runs the cheap
        O(1) frame checks; ``verify(deep=True)`` additionally scans every
        array: pointer monotonicity, index ranges, bitmap-popcount/nnz
        agreement, offset-scan consistency and NaN/Inf detection.

        Violations raise :class:`~repro.errors.VerificationError`
        subclasses carrying the format name, the violated check and the
        block/row coordinate of the first failure.
        """
        self._verify_shallow()
        if deep:
            self._verify_deep()
        return self

    def _verify_shallow(self) -> None:
        """O(1) frame checks (array sizes, endpoints). Overridable."""
        if self.nnz < 0:  # pragma: no cover - defensive
            raise OffsetScanError(
                f"{self.format_name}: negative nnz {self.nnz}",
                format_name=self.format_name, check="nnz",
            )

    def _verify_deep(self) -> None:
        """Full array scans; every concrete format overrides this."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement deep verification"
        )

    # -- verification helpers (shared by the per-format deep verifiers) ---
    def _check_finite(self, values: np.ndarray, what: str, coords=None) -> None:
        """Raise :class:`NonFiniteValueError` at the first NaN/Inf.

        ``coords`` maps the flat position of the bad entry to a logical
        coordinate — either a callable ``pos -> tuple`` or ``None`` (the
        flat position itself is reported).
        """
        v = np.asarray(values)
        finite = np.isfinite(v.astype(np.float64, copy=False)) if v.size else None
        if v.size and not finite.all():
            pos = tuple(int(p) for p in np.argwhere(~finite)[0])
            flat = pos[0] if len(pos) == 1 else pos
            coord = coords(flat) if callable(coords) else flat
            if not isinstance(coord, tuple):
                coord = (coord,)
            bad = v[pos if len(pos) > 1 else pos[0]]
            raise NonFiniteValueError(
                f"{self.format_name}: non-finite value {bad!r} in {what} at {coord}",
                format_name=self.format_name, check="finite-values", coord=coord,
            )

    def _check_monotone(self, ptr: np.ndarray, what: str) -> None:
        """Raise :class:`PointerMonotonicityError` at the first decrease."""
        p = np.asarray(ptr)
        if p.size and np.any(np.diff(p) < 0):
            row = int(np.argmax(np.diff(p) < 0))
            raise PointerMonotonicityError(
                f"{self.format_name}: {what} decreases at segment {row} "
                f"({int(p[row])} -> {int(p[row + 1])})",
                format_name=self.format_name, check="pointer-monotonicity", coord=(row,),
            )

    def _check_pointer_frame(self, ptr: np.ndarray, segments: int, items: int, what: str) -> None:
        """Size/endpoint checks for a CSR-style pointer array."""
        p = np.asarray(ptr)
        if p.size != segments + 1:
            raise OffsetScanError(
                f"{self.format_name}: {what} has {p.size} entries, expected {segments + 1}",
                format_name=self.format_name, check="pointer-frame", coord=None,
            )
        if p.size and (p[0] != 0 or p[-1] != items):
            raise OffsetScanError(
                f"{self.format_name}: {what} endpoints ({int(p[0])}, {int(p[-1])}) "
                f"inconsistent with {items} stored items",
                format_name=self.format_name, check="pointer-frame", coord=None,
            )

    def _check_index_range(self, idx: np.ndarray, upper: int, what: str, coords=None) -> None:
        """Raise :class:`IndexRangeError` at the first index outside [0, upper)."""
        i = np.asarray(idx)
        if i.size == 0:
            return
        bad = (i < 0) | (i >= upper)
        if bad.any():
            pos = int(np.argwhere(bad.reshape(-1))[0][0])
            coord = coords(pos) if callable(coords) else (pos,)
            if not isinstance(coord, tuple):
                coord = (coord,)
            raise IndexRangeError(
                f"{self.format_name}: {what} {int(i.reshape(-1)[pos])} out of range "
                f"[0, {upper}) at {coord}",
                format_name=self.format_name, check="index-range", coord=coord,
            )

    # -- memory accounting ------------------------------------------------
    @abstractmethod
    def storage_fields(self) -> Iterator[ArrayField]:
        """Yield every array the format keeps resident in device memory."""

    @property
    def nbytes(self) -> int:
        """Total device-resident bytes of this representation."""
        return sum(f.nbytes for f in self.storage_fields())

    def bytes_per_nnz(self) -> float:
        """Memory cost normalized by nonzeros (the Fig. 10b metric)."""
        return self.nbytes / self.nnz if self.nnz else float("inf")

    # -- misc ---------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.nrows}x{self.ncols}, "
            f"nnz={self.nnz}, {self.nbytes} bytes>"
        )

    @staticmethod
    def _field(name: str, array: np.ndarray) -> ArrayField:
        return ArrayField(name=name, nbytes=int(array.nbytes), dtype=str(array.dtype), length=int(array.size))

"""bitCOO — the bitmap-blocked COO variant sketched as future work (§7).

Identical block encoding to bitBSR (8x8 blocks, 64-bit bitmaps, packed
half-precision values) but block positions are stored as explicit
(block_row, block_col) coordinate pairs instead of a block-level CSR.
Useful when block rows are extremely skewed or when streaming blocks in
arbitrary order (e.g. out-of-core assembly).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.constants import BLOCK_DIM, BLOCK_SIZE
from repro.errors import (
    BitmapPopcountError,
    EmptyBlockError,
    FormatError,
    OffsetScanError,
    VerificationError,
)
from repro.formats.base import ArrayField, SparseMatrix, _dtype_matches, register_format
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.coo import COOMatrix
from repro.utils.bitops import popcount
from repro.utils.scan import exclusive_scan

__all__ = ["BitCOOMatrix"]

_U64 = np.uint64


@register_format
class BitCOOMatrix(SparseMatrix):
    """Bitmap-compressed blocks addressed by explicit block coordinates."""

    format_name = "bitcoo"

    def __init__(
        self,
        shape: tuple[int, int],
        block_rows: np.ndarray,
        block_cols: np.ndarray,
        bitmaps: np.ndarray,
        values: np.ndarray,
        value_dtype: np.dtype | type = np.float16,
    ):
        super().__init__(shape)
        self.block_dim = BLOCK_DIM
        brows = np.asarray(block_rows, dtype=np.int32)
        bcols = np.asarray(block_cols, dtype=np.int32)
        bitmaps = np.asarray(bitmaps, dtype=_U64)
        self.value_dtype = np.dtype(value_dtype)
        values = np.asarray(values, dtype=self.value_dtype)
        if not (brows.size == bcols.size == bitmaps.size):
            raise FormatError("block coordinate/bitmap arrays must align")
        if brows.size:
            if brows.min() < 0 or brows.max() >= self.block_rows_count:
                raise FormatError("block row out of range")
            if bcols.min() < 0 or bcols.max() >= self.block_cols_count:
                raise FormatError("block column out of range")
            if np.any(bitmaps == 0):
                raise FormatError("stored blocks must be non-empty")
        offsets = exclusive_scan(popcount(bitmaps).astype(np.int64))
        if int(offsets[-1]) != values.size:
            raise FormatError("bitmap popcounts disagree with value count")
        self.block_rows = brows
        self.block_cols = bcols
        self.bitmaps = bitmaps
        self.values = values
        self.block_offsets = offsets

    @property
    def block_rows_count(self) -> int:
        return -(-self.nrows // BLOCK_DIM)

    @property
    def block_cols_count(self) -> int:
        return -(-self.ncols // BLOCK_DIM)

    @property
    def nblocks(self) -> int:
        return int(self.bitmaps.size)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @classmethod
    def from_coo(cls, coo: COOMatrix, value_dtype: np.dtype | type = np.float16) -> "BitCOOMatrix":
        bit = BitBSRMatrix.from_coo(coo, value_dtype=value_dtype)
        return cls.from_bitbsr(bit)

    def config_matches(self, **kwargs) -> bool:
        kwargs = dict(kwargs)
        value_dtype = kwargs.pop("value_dtype", None)
        if kwargs:
            return False
        return value_dtype is None or _dtype_matches(value_dtype, self.value_dtype)

    @classmethod
    def from_bitbsr(cls, bit: BitBSRMatrix) -> "BitCOOMatrix":
        return cls(
            bit.shape,
            bit.block_row_of().astype(np.int32),
            bit.block_cols.copy(),
            bit.bitmaps.copy(),
            bit.values.copy(),
            value_dtype=bit.value_dtype,
        )

    def tobitbsr(self) -> BitBSRMatrix:
        order = np.argsort(
            self.block_rows.astype(np.int64) * self.block_cols_count + self.block_cols,
            kind="stable",
        )
        counts = np.bincount(self.block_rows, minlength=self.block_rows_count)
        ptr = exclusive_scan(counts)
        # permute the packed values block-by-block to match the new order
        starts = self.block_offsets[:-1]
        lengths = np.diff(self.block_offsets)
        value_order = np.concatenate(
            [np.arange(starts[b], starts[b] + lengths[b]) for b in order]
        ) if self.nblocks else np.zeros(0, dtype=np.int64)
        return BitBSRMatrix(
            self.shape,
            ptr,
            self.block_cols[order].copy(),
            self.bitmaps[order].copy(),
            self.values[value_order],
            value_dtype=self.value_dtype,
        )

    def tocoo(self) -> COOMatrix:
        return self.tobitbsr().tocoo()

    # -- verification -----------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        if not (self.block_rows.size == self.block_cols.size == self.bitmaps.size):
            raise FormatError("block coordinate/bitmap arrays must align")
        if self.block_offsets.size != self.nblocks + 1:
            raise OffsetScanError(
                f"bitcoo: block_offsets has {self.block_offsets.size} entries, "
                f"expected {self.nblocks + 1}",
                format_name=self.format_name, check="offset-frame",
            )

    def _verify_deep(self) -> None:
        at = lambda pos: (int(self.block_rows[pos]), int(self.block_cols[pos]))
        self._check_index_range(self.block_rows, self.block_rows_count, "block row", coords=at)
        self._check_index_range(self.block_cols, self.block_cols_count, "block column", coords=at)
        if self.nblocks:
            empty = self.bitmaps == 0
            if empty.any():
                block = int(np.argmax(empty))
                raise EmptyBlockError(
                    f"bitcoo: stored block {at(block)} has an all-zero bitmap",
                    format_name=self.format_name, check="empty-block", coord=at(block),
                )
            keys = self.block_rows.astype(np.int64) * self.block_cols_count + self.block_cols
            if np.unique(keys).size != keys.size:
                dup = int(np.argmax(np.diff(np.sort(keys)) == 0))
                raise VerificationError(
                    "bitcoo: duplicate block coordinates present",
                    format_name=self.format_name, check="duplicate-block", coord=(dup,),
                )
        counts = popcount(self.bitmaps).astype(np.int64)
        if int(counts.sum()) != self.values.size:
            raise BitmapPopcountError(
                f"bitcoo: popcount of bitmaps ({int(counts.sum())}) != "
                f"number of packed values ({self.values.size})",
                format_name=self.format_name, check="bitmap-popcount",
            )
        scanned = exclusive_scan(counts)
        if self.block_offsets.shape != scanned.shape or np.any(self.block_offsets != scanned):
            block = int(np.argmax(self.block_offsets != scanned))
            raise OffsetScanError(
                f"bitcoo: block_offsets diverges from the exclusive popcount scan at block {block}",
                format_name=self.format_name, check="offset-scan", coord=(block,),
            )
        self._check_finite(self.values, "packed values", coords=lambda pos: at(
            int(np.searchsorted(scanned, pos, side="right") - 1)
        ))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.tobitbsr().matvec(x)

    def storage_fields(self) -> Iterator[ArrayField]:
        yield self._field("block_rows", self.block_rows)
        yield self._field("block_cols", self.block_cols)
        yield self._field("bitmaps", self.bitmaps)
        yield ArrayField("block_offsets", self.nblocks * 4, "int32", self.nblocks)
        yield self._field("values", self.values)

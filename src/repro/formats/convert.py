"""Conversion helpers between formats, dense arrays and SciPy."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConversionError
from repro.formats.base import SparseMatrix, get_format
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix

__all__ = ["convert", "from_dense", "from_scipy", "to_scipy"]


def convert(matrix: SparseMatrix, name: str, **kwargs) -> SparseMatrix:
    """Convert ``matrix`` to the format registered under ``name``.

    Extra keyword arguments are forwarded to the target's constructor
    (e.g. ``block_dim=4`` for BSR, ``value_dtype=np.float32`` for
    bitBSR).  Two fast paths avoid needless work:

    * a matrix already in the target format whose configuration
      satisfies the requested kwargs (see
      :meth:`~repro.formats.base.SparseMatrix.config_matches`) is
      returned as the *same object* — ``convert(b, "bitbsr",
      value_dtype=np.float16)`` on an already-float16 bitBSR is a no-op
      instead of a full COO round-trip rebuild;
    * a CSR source converting to a format with a direct ``from_csr``
      constructor (bitBSR's one-pass sweep) skips the COO
      materialization entirely, with bitwise-identical results.
    """
    cls = get_format(name)
    if isinstance(matrix, cls) and matrix.config_matches(**kwargs):
        return matrix
    direct = getattr(cls, "from_csr", None)
    if direct is not None and isinstance(matrix, CSRMatrix):
        return direct(matrix, **kwargs)
    return cls.from_coo(matrix.tocoo(), **kwargs)


def from_dense(dense: np.ndarray, name: str = "coo", **kwargs) -> SparseMatrix:
    """Build any registered format from a dense array."""
    coo = COOMatrix.from_dense(np.asarray(dense))
    return convert(coo, name, **kwargs)


def from_scipy(matrix, name: str = "csr", **kwargs) -> SparseMatrix:
    """Import a ``scipy.sparse`` matrix into a registered format."""
    if not sp.issparse(matrix):
        raise ConversionError("from_scipy expects a scipy.sparse matrix")
    m = matrix.tocoo()
    m.sum_duplicates()
    coo = COOMatrix(
        m.shape,
        m.row.astype(np.int32),
        m.col.astype(np.int32),
        m.data.astype(np.float32),
    )
    return convert(coo, name, **kwargs)


def to_scipy(matrix: SparseMatrix) -> sp.csr_matrix:
    """Export any registered format to a ``scipy.sparse.csr_matrix``."""
    coo = matrix.tocoo()
    out = sp.coo_matrix(
        (coo.values, (coo.rows, coo.cols)), shape=coo.shape, dtype=np.float32
    )
    return out.tocsr()

"""Coordinate (COO) format — the canonical interchange representation."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.utils.validation import ensure_1d, ensure_dtype, ensure_nonnegative

__all__ = ["COOMatrix"]


@register_format
class COOMatrix(SparseMatrix):
    """COO: parallel ``rows`` / ``cols`` / ``values`` arrays.

    Instances are always *canonical*: entries sorted by (row, col),
    duplicates summed, explicit zeros dropped.  Every other format round-
    trips through this class, so canonicalization here guarantees that
    format conversions commute.
    """

    format_name = "coo"

    def __init__(
        self,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        *,
        canonical: bool = False,
    ):
        super().__init__(shape)
        rows = ensure_dtype(ensure_1d(rows, "rows"), np.int32, "rows")
        cols = ensure_dtype(ensure_1d(cols, "cols"), np.int32, "cols")
        values = ensure_dtype(ensure_1d(values, "values"), np.float32, "values")
        if not (rows.size == cols.size == values.size):
            raise FormatError("rows, cols and values must have equal length")
        ensure_nonnegative(rows, "rows")
        ensure_nonnegative(cols, "cols")
        if rows.size:
            if rows.max() >= self.nrows:
                raise FormatError("row index out of range")
            if cols.max() >= self.ncols:
                raise FormatError("column index out of range")
        if not canonical:
            rows, cols, values = _canonicalize(self.shape, rows, cols, values)
        self.rows = rows
        self.cols = cols
        self.values = values

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Extract the nonzero pattern of a dense array."""
        d = np.asarray(dense)
        if d.ndim != 2:
            raise FormatError("dense input must be 2-D")
        r, c = np.nonzero(d)
        return cls(d.shape, r.astype(np.int32), c.astype(np.int32), d[r, c].astype(np.float32), canonical=True)

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "COOMatrix":
        return coo

    def tocoo(self) -> "COOMatrix":
        return self

    # -- interface -----------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def todense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float32)
        # duplicates were summed at construction, so plain assignment is safe
        out[self.rows, self.cols] = self.values
        return out

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_matvec_operand(x)
        y = np.zeros(self.nrows, dtype=np.float32)
        np.add.at(y, self.rows, self.values * x[self.cols])
        return y

    # -- verification -----------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        if not (self.rows.size == self.cols.size == self.values.size):
            raise FormatError("rows, cols and values must have equal length")

    def _verify_deep(self) -> None:
        at = lambda pos: (int(self.rows[pos]), int(self.cols[pos]))
        self._check_index_range(self.rows, self.nrows, "row index", coords=at)
        self._check_index_range(self.cols, self.ncols, "column index", coords=at)
        # canonical COO is sorted by (row, col) with no duplicates
        keys = self.rows.astype(np.int64) * self.ncols + self.cols.astype(np.int64)
        self._check_monotone(keys, "entry order (row, col)")
        self._check_finite(self.values, "values", coords=at)

    def storage_fields(self) -> Iterator[ArrayField]:
        yield self._field("rows", self.rows)
        yield self._field("cols", self.cols)
        yield self._field("values", self.values)

    # -- helpers ---------------------------------------------------------------
    def row_counts(self) -> np.ndarray:
        """Number of nonzeros in each row."""
        return np.bincount(self.rows, minlength=self.nrows).astype(np.int64)

    def transpose(self) -> "COOMatrix":
        """Return the transposed matrix (canonicalized)."""
        return COOMatrix((self.ncols, self.nrows), self.cols, self.rows, self.values)


def _canonicalize(
    shape: tuple[int, int], rows: np.ndarray, cols: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort by (row, col), sum duplicates, drop explicit zeros."""
    if rows.size == 0:
        return rows, cols, values
    keys = rows.astype(np.int64) * shape[1] + cols.astype(np.int64)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    unique_keys, inverse = np.unique(keys, return_inverse=True)
    summed = np.zeros(unique_keys.size, dtype=np.float64)
    np.add.at(summed, inverse, values.astype(np.float64))
    summed32 = summed.astype(np.float32)
    keep = summed32 != 0
    unique_keys = unique_keys[keep]
    summed32 = summed32[keep]
    out_rows = (unique_keys // shape[1]).astype(np.int32)
    out_cols = (unique_keys % shape[1]).astype(np.int32)
    return out_rows, out_cols, summed32

"""Diagonal (DIA) format — for banded matrices."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix

__all__ = ["DIAMatrix"]


@register_format
class DIAMatrix(SparseMatrix):
    """DIA: one dense lane per occupied diagonal.

    ``offsets[k]`` is the diagonal (col - row); ``data[k, i]`` stores
    element ``(i, i + offsets[k])``.  Superb for stencil matrices, useless
    for scattered sparsity — stored here mainly so the format survey the
    paper cites (§2.1) is complete and testable.
    """

    format_name = "dia"

    #: Refuse conversions that would materialize more than this many lanes
    #: (a scattered matrix in DIA explodes memory otherwise).
    MAX_DIAGONALS: int = 20_000

    def __init__(self, shape: tuple[int, int], offsets: np.ndarray, data: np.ndarray):
        super().__init__(shape)
        offsets = np.asarray(offsets, dtype=np.int64)
        data = np.asarray(data, dtype=np.float32)
        if offsets.ndim != 1 or data.ndim != 2:
            raise FormatError("offsets must be 1-D and data 2-D")
        if data.shape != (offsets.size, self.nrows):
            raise FormatError("data must have shape (ndiags, nrows)")
        if offsets.size != np.unique(offsets).size:
            raise FormatError("duplicate diagonal offsets")
        self.offsets = offsets
        self.data = data

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "DIAMatrix":
        diags = coo.cols.astype(np.int64) - coo.rows.astype(np.int64)
        offsets = np.unique(diags)
        if offsets.size > cls.MAX_DIAGONALS:
            raise FormatError(
                f"matrix occupies {offsets.size} diagonals; DIA refuses > {cls.MAX_DIAGONALS}"
            )
        data = np.zeros((offsets.size, coo.nrows), dtype=np.float32)
        lane = np.searchsorted(offsets, diags)
        data[lane, coo.rows] = coo.values
        return cls(coo.shape, offsets, data)

    def tocoo(self) -> COOMatrix:
        lanes, rows = np.nonzero(self.data)
        cols = rows + self.offsets[lanes]
        keep = (cols >= 0) & (cols < self.ncols)
        return COOMatrix(
            self.shape,
            rows[keep].astype(np.int32),
            cols[keep].astype(np.int32),
            self.data[lanes[keep], rows[keep]],
        )

    @property
    def nnz(self) -> int:
        # entries whose column lands outside the matrix are structurally
        # impossible, so counting nonzero storage is exact
        return int(np.count_nonzero(self.data))

    @property
    def ndiags(self) -> int:
        return int(self.offsets.size)

    # -- verification -------------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        if self.data.shape != (self.offsets.size, self.nrows):
            raise FormatError("data must have shape (ndiags, nrows)")

    def _verify_deep(self) -> None:
        from repro.errors import IndexRangeError, VerificationError

        if self.offsets.size != np.unique(self.offsets).size:
            raise VerificationError(
                "dia: duplicate diagonal offsets",
                format_name=self.format_name, check="duplicate-diagonal",
            )
        bad = (self.offsets <= -self.nrows) | (self.offsets >= self.ncols)
        if bad.any():
            lane = int(np.argmax(bad))
            raise IndexRangeError(
                f"dia: diagonal offset {int(self.offsets[lane])} outside "
                f"({-self.nrows}, {self.ncols}) at lane {lane}",
                format_name=self.format_name, check="index-range", coord=(lane,),
            )
        self._check_finite(
            self.data, "data",
            coords=lambda pos: (pos[1], pos[1] + int(self.offsets[pos[0]])),
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_matvec_operand(x)
        y = np.zeros(self.nrows, dtype=np.float64)
        rows = np.arange(self.nrows, dtype=np.int64)
        for lane, off in enumerate(self.offsets):
            cols = rows + off
            valid = (cols >= 0) & (cols < self.ncols)
            y[valid] += self.data[lane, valid].astype(np.float64) * x[cols[valid]]
        return y.astype(np.float32)

    def storage_fields(self) -> Iterator[ArrayField]:
        yield ArrayField("offsets", self.offsets.size * 4, "int32", self.offsets.size)
        yield self._field("data", self.data)

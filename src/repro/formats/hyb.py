"""Hybrid (HYB) format — ELL for the regular part, COO for the overflow."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix

__all__ = ["HYBMatrix"]


@register_format
class HYBMatrix(SparseMatrix):
    """HYB: an ELL part of fixed width plus a COO tail.

    The split width defaults to the mean row length rounded up, which keeps
    padding bounded while still capturing the bulk of entries in the
    regular ELL part — the classic cuSPARSE heuristic.
    """

    format_name = "hyb"

    def __init__(self, ell: ELLMatrix, tail: COOMatrix):
        if ell.shape != tail.shape:
            raise FormatError("ELL and COO parts must share a shape")
        super().__init__(ell.shape)
        self.ell = ell
        self.tail = tail

    @classmethod
    def from_coo(cls, coo: COOMatrix, width: int | None = None) -> "HYBMatrix":
        counts = coo.row_counts()
        if width is None:
            mean = counts.mean() if counts.size else 0.0
            width = int(np.ceil(mean)) if coo.nnz else 0
        width = max(0, int(width))
        if coo.nnz == 0:
            return cls(
                ELLMatrix(coo.shape, np.full((coo.nrows, 0), -1, np.int32), np.zeros((coo.nrows, 0), np.float32)),
                coo,
            )
        # slot of each entry within its row (COO is row-major sorted)
        row_starts = np.concatenate(([0], np.cumsum(counts)))
        slots = np.arange(coo.nnz, dtype=np.int64) - row_starts[coo.rows]
        in_ell = slots < width
        cols = np.full((coo.nrows, width), -1, dtype=np.int32)
        vals = np.zeros((coo.nrows, width), dtype=np.float32)
        cols[coo.rows[in_ell], slots[in_ell]] = coo.cols[in_ell]
        vals[coo.rows[in_ell], slots[in_ell]] = coo.values[in_ell]
        ell = ELLMatrix(coo.shape, cols, vals)
        tail = COOMatrix(
            coo.shape,
            coo.rows[~in_ell].copy(),
            coo.cols[~in_ell].copy(),
            coo.values[~in_ell].copy(),
            canonical=True,
        )
        return cls(ell, tail)

    def config_matches(self, **kwargs) -> bool:
        if not kwargs:
            return True
        if set(kwargs) != {"width"}:
            return False
        width = kwargs["width"]
        # an explicit width=None means "pick from the data" — that choice
        # is data-dependent, so conservatively rebuild
        return isinstance(width, int) and width == self.ell.width

    def tocoo(self) -> COOMatrix:
        e = self.ell.tocoo()
        return COOMatrix(
            self.shape,
            np.concatenate([e.rows, self.tail.rows]),
            np.concatenate([e.cols, self.tail.cols]),
            np.concatenate([e.values, self.tail.values]),
        )

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.tail.nnz

    @property
    def ell_fraction(self) -> float:
        """Fraction of nonzeros captured by the regular ELL part."""
        return self.ell.nnz / self.nnz if self.nnz else 0.0

    # -- verification -----------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        if self.ell.shape != self.tail.shape:
            raise FormatError("ELL and COO parts must share a shape")

    def _verify_deep(self) -> None:
        # both halves carry their own invariants; verify each in turn
        self.ell.verify(deep=True)
        self.tail.verify(deep=True)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_matvec_operand(x)
        return self.ell.matvec(x) + self.tail.matvec(x)

    def storage_fields(self) -> Iterator[ArrayField]:
        for f in self.ell.storage_fields():
            yield ArrayField(f"ell.{f.name}", f.nbytes, f.dtype, f.length)
        for f in self.tail.storage_fields():
            yield ArrayField(f"coo.{f.name}", f.nbytes, f.dtype, f.length)

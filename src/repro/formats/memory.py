"""Byte-exact memory accounting across formats (reproduces Fig. 10b)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.base import ArrayField, SparseMatrix

__all__ = ["FootprintReport", "format_footprint", "compare_footprints"]


@dataclass(frozen=True)
class FootprintReport:
    """Memory usage of one matrix in one format."""

    format_name: str
    shape: tuple[int, int]
    nnz: int
    fields: tuple[ArrayField, ...]
    total_bytes: int

    @property
    def bytes_per_nnz(self) -> float:
        """The normalized metric of Fig. 10b."""
        return self.total_bytes / self.nnz if self.nnz else float("inf")

    def breakdown(self) -> dict[str, int]:
        """Bytes per storage array."""
        return {f.name: f.nbytes for f in self.fields}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [
            f"{self.format_name}: {self.total_bytes:,} bytes "
            f"({self.bytes_per_nnz:.2f} B/nnz, nnz={self.nnz:,})"
        ]
        for f in self.fields:
            lines.append(f"  {f.name:<22} {f.nbytes:>14,} B  ({f.dtype} x {f.length:,})")
        return "\n".join(lines)


def format_footprint(matrix: SparseMatrix) -> FootprintReport:
    """Account every device-resident array of ``matrix``."""
    fields = tuple(matrix.storage_fields())
    return FootprintReport(
        format_name=matrix.format_name,
        shape=matrix.shape,
        nnz=matrix.nnz,
        fields=fields,
        total_bytes=sum(f.nbytes for f in fields),
    )


def compare_footprints(reports: list[FootprintReport], baseline: str) -> dict[str, float]:
    """Memory-saving factors of ``baseline`` over every other format.

    A value > 1 means the baseline uses that many times more memory —
    the paper's "2.83x memory saving over cuSPARSE CSR" convention.
    """
    by_name = {r.format_name: r for r in reports}
    if baseline not in by_name:
        raise KeyError(f"baseline {baseline!r} not among reports")
    base = by_name[baseline].total_bytes
    return {
        name: r.total_bytes / base if base else float("inf")
        for name, r in by_name.items()
        if name != baseline
    }

"""Blocked CSR (BSR) — dense fixed-size blocks indexed by a block-level CSR.

This is both the cuSPARSE-BSR baseline of the paper's evaluation and the
intermediate abstraction bitBSR compresses (§4.2): "BSR represents a CSR
with dense blocks of fixed size rather than individual scalar elements."
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.constants import BLOCK_DIM
from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.scan import exclusive_scan, segment_ids

__all__ = ["BSRMatrix", "block_coordinates"]


def block_coordinates(
    rows: np.ndarray, cols: np.ndarray, block_dim: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split entry coordinates into (block_row, block_col, local_row, local_col)."""
    r = np.asarray(rows, dtype=np.int64)
    c = np.asarray(cols, dtype=np.int64)
    return r // block_dim, c // block_dim, r % block_dim, c % block_dim


@register_format
class BSRMatrix(SparseMatrix):
    """BSR with square dense blocks (default 8x8, matching the paper).

    Storage:

    * ``block_row_pointers`` — CSR pointers over block rows,
    * ``block_cols`` — block-column index of each stored block,
    * ``blocks`` — dense ``(nblocks, bd, bd)`` float32 values, zeros
      included (this zero-padding is exactly the waste bitBSR removes).
    """

    format_name = "bsr"

    def __init__(
        self,
        shape: tuple[int, int],
        block_row_pointers: np.ndarray,
        block_cols: np.ndarray,
        blocks: np.ndarray,
        block_dim: int = BLOCK_DIM,
    ):
        super().__init__(shape)
        if block_dim <= 0:
            raise FormatError("block_dim must be positive")
        self.block_dim = int(block_dim)
        ptr = np.asarray(block_row_pointers, dtype=np.int64)
        cols = np.asarray(block_cols, dtype=np.int32)
        blocks = np.asarray(blocks, dtype=np.float32)
        nbrows = self.block_rows_count
        if ptr.size != nbrows + 1 or ptr[0] != 0 or ptr[-1] != cols.size:
            raise FormatError("block_row_pointers inconsistent")
        if np.any(np.diff(ptr) < 0):
            raise FormatError("block_row_pointers must be non-decreasing")
        if blocks.shape != (cols.size, self.block_dim, self.block_dim):
            raise FormatError("blocks must have shape (nblocks, bd, bd)")
        if cols.size and (cols.min() < 0 or cols.max() >= self.block_cols_count):
            raise FormatError("block column index out of range")
        self.block_row_pointers = ptr
        self.block_cols = cols
        self.blocks = blocks

    # -- block-grid geometry --------------------------------------------------
    @property
    def block_rows_count(self) -> int:
        """Number of block rows (``Bnrow`` in Table 1)."""
        return -(-self.nrows // self.block_dim)

    @property
    def block_cols_count(self) -> int:
        return -(-self.ncols // self.block_dim)

    @property
    def nblocks(self) -> int:
        """Number of stored (non-empty) blocks (``Bnnz`` in Table 1)."""
        return int(self.block_cols.size)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.blocks))

    @property
    def fill_ratio(self) -> float:
        """Mean fraction of block slots that hold a true nonzero."""
        total = self.blocks.size
        return self.nnz / total if total else 0.0

    def block_row_of(self) -> np.ndarray:
        """Block-row index of every stored block."""
        return segment_ids(self.block_row_pointers)

    # -- conversion --------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, block_dim: int = BLOCK_DIM) -> "BSRMatrix":
        br, bc, lr, lc = block_coordinates(coo.rows, coo.cols, block_dim)
        nbcols = -(-coo.ncols // block_dim)
        nbrows = -(-coo.nrows // block_dim)
        keys = br * nbcols + bc
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]
        unique_keys, starts = np.unique(keys_sorted, return_index=True)
        block_idx_of_entry = np.searchsorted(unique_keys, keys_sorted)
        blocks = np.zeros((unique_keys.size, block_dim, block_dim), dtype=np.float32)
        blocks[block_idx_of_entry, lr[order], lc[order]] = coo.values[order]
        counts = np.bincount((unique_keys // nbcols).astype(np.int64), minlength=nbrows)
        ptr = exclusive_scan(counts)
        return cls(coo.shape, ptr, (unique_keys % nbcols).astype(np.int32), blocks, block_dim)

    def config_matches(self, **kwargs) -> bool:
        kwargs = dict(kwargs)
        block_dim = kwargs.pop("block_dim", None)
        if kwargs:
            return False
        return block_dim is None or block_dim == self.block_dim

    def tocoo(self) -> COOMatrix:
        bidx, lr, lc = np.nonzero(self.blocks)
        brow = self.block_row_of()[bidx]
        rows = brow * self.block_dim + lr
        cols = self.block_cols[bidx].astype(np.int64) * self.block_dim + lc
        return COOMatrix(
            self.shape,
            rows.astype(np.int32),
            cols.astype(np.int32),
            self.blocks[bidx, lr, lc],
        )

    # -- verification ------------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        self._check_pointer_frame(
            self.block_row_pointers, self.block_rows_count, self.block_cols.size, "block_row_pointers"
        )
        if self.blocks.shape != (self.block_cols.size, self.block_dim, self.block_dim):
            raise FormatError("blocks must have shape (nblocks, bd, bd)")

    def _verify_deep(self) -> None:
        self._check_monotone(self.block_row_pointers, "block_row_pointers")
        brow_of = self.block_row_of() if self.nblocks else np.zeros(0, np.int64)
        self._check_index_range(
            self.block_cols, self.block_cols_count, "block column index",
            coords=lambda pos: (int(brow_of[pos]), int(self.block_cols[pos])),
        )
        self._check_finite(
            self.blocks, "blocks",
            coords=lambda pos: (
                int(brow_of[pos[0]]) * self.block_dim + pos[1],
                int(self.block_cols[pos[0]]) * self.block_dim + pos[2],
            ),
        )

    # -- computation ----------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Block-wise SpMV: one dense (bd x bd) @ (bd,) product per block."""
        x = self._check_matvec_operand(x)
        bd = self.block_dim
        xpad = np.zeros(self.block_cols_count * bd, dtype=np.float32)
        xpad[: x.size] = x
        segs = xpad.reshape(self.block_cols_count, bd)
        partial = np.einsum(
            "bij,bj->bi", self.blocks.astype(np.float64), segs[self.block_cols].astype(np.float64)
        )
        ypad = np.zeros((self.block_rows_count, bd), dtype=np.float64)
        np.add.at(ypad, self.block_row_of(), partial)
        return ypad.reshape(-1)[: self.nrows].astype(np.float32)

    def storage_fields(self) -> Iterator[ArrayField]:
        nptr = self.block_rows_count + 1
        yield ArrayField("block_row_pointers", nptr * 4, "int32", nptr)
        yield self._field("block_cols", self.block_cols)
        yield self._field("blocks", self.blocks)

"""Sparse-matrix storage formats.

Implements every format the paper discusses (§2.1, §4.2 and the GPU-SpMV
survey it cites): COO, CSR, CSC, ELL, HYB, DIA, BSR — plus the paper's
contribution, bitBSR (bitmap-compressed blocked CSR), and the future-work
bitCOO variant (§7).

All formats share the :class:`~repro.formats.base.SparseMatrix` interface:
construction from / conversion to COO, a dense materialization, a
reference ``matvec`` and byte-exact memory accounting.
"""

from repro.formats.base import SparseMatrix, available_formats, get_format, register_format
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.csc import CSCMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.bsr import BSRMatrix
from repro.formats.sell import SELLMatrix
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.bitbsr_multi import GenericBitBSRMatrix
from repro.formats.bitcoo import BitCOOMatrix
from repro.formats.convert import convert, from_dense, from_scipy, to_scipy
from repro.formats.memory import FootprintReport, format_footprint

__all__ = [
    "SparseMatrix",
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "ELLMatrix",
    "HYBMatrix",
    "DIAMatrix",
    "BSRMatrix",
    "SELLMatrix",
    "BitBSRMatrix",
    "GenericBitBSRMatrix",
    "BitCOOMatrix",
    "available_formats",
    "get_format",
    "register_format",
    "convert",
    "from_dense",
    "from_scipy",
    "to_scipy",
    "FootprintReport",
    "format_footprint",
]

"""Compressed Sparse Row (CSR) — the paper's baseline format (§2.1)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.scan import exclusive_scan, segment_ids
from repro.utils.validation import ensure_1d, ensure_dtype, ensure_sorted

__all__ = ["CSRMatrix"]


@register_format
class CSRMatrix(SparseMatrix):
    """CSR: ``row_pointers`` / ``col_indices`` / ``values`` (Algorithm 1).

    ``row_pointers`` has ``nrows + 1`` entries; row ``i`` owns the slice
    ``[row_pointers[i], row_pointers[i + 1])`` of the other two arrays.
    Column indices are kept sorted within each row.
    """

    format_name = "csr"

    def __init__(
        self,
        shape: tuple[int, int],
        row_pointers: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
    ):
        super().__init__(shape)
        row_pointers = ensure_dtype(ensure_1d(row_pointers, "row_pointers"), np.int64, "row_pointers")
        col_indices = ensure_dtype(ensure_1d(col_indices, "col_indices"), np.int32, "col_indices")
        values = ensure_dtype(ensure_1d(values, "values"), np.float32, "values")
        if row_pointers.size != self.nrows + 1:
            raise FormatError("row_pointers must have nrows + 1 entries")
        ensure_sorted(row_pointers, "row_pointers")
        if row_pointers[0] != 0 or row_pointers[-1] != col_indices.size:
            raise FormatError("row_pointers endpoints inconsistent with col_indices")
        if col_indices.size != values.size:
            raise FormatError("col_indices and values must have equal length")
        if col_indices.size:
            if col_indices.min() < 0 or col_indices.max() >= self.ncols:
                raise FormatError("column index out of range")
        self.row_pointers = row_pointers
        self.col_indices = col_indices
        self.values = values

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        counts = np.bincount(coo.rows, minlength=coo.nrows)
        ptr = exclusive_scan(counts)
        # canonical COO is already ordered by (row, col)
        return cls(coo.shape, ptr, coo.cols.copy(), coo.values.copy())

    @classmethod
    def from_scipy(cls, sp_csr) -> "CSRMatrix":
        sp_csr = sp_csr.tocsr()
        sp_csr.sort_indices()
        sp_csr.sum_duplicates()
        sp_csr.eliminate_zeros()
        return cls(
            sp_csr.shape,
            sp_csr.indptr.astype(np.int64),
            sp_csr.indices.astype(np.int32),
            sp_csr.data.astype(np.float32),
        )

    def tocoo(self) -> COOMatrix:
        rows = segment_ids(self.row_pointers).astype(np.int32)
        return COOMatrix(self.shape, rows, self.col_indices.copy(), self.values.copy(), canonical=True)

    # -- interface --------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def row_lengths(self) -> np.ndarray:
        """nnz per row (``row_pointers[i+1] - row_pointers[i]``)."""
        return np.diff(self.row_pointers)

    def structure_profile(self):
        """This matrix's :class:`~repro.plan.StructureProfile`.

        Convenience over :func:`repro.plan.compute_structure_profile`
        (imported lazily — ``repro.formats`` must not depend on the
        planner package at import time), fingerprint included.
        """
        from repro.plan.profile import compute_structure_profile, matrix_fingerprint

        return compute_structure_profile(self, fingerprint=matrix_fingerprint(self))

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Vectorized equivalent of Algorithm 1 (row-parallel CSR SpMV)."""
        x = self._check_matvec_operand(x)
        products = self.values * x[self.col_indices]
        # reduceat needs non-empty input; guard the all-empty matrix
        if products.size == 0:
            return np.zeros(self.nrows, dtype=np.float32)
        y = np.zeros(self.nrows, dtype=np.float32)
        starts = self.row_pointers[:-1]
        nonempty = np.flatnonzero(np.diff(self.row_pointers) > 0)
        if nonempty.size:
            sums = np.add.reduceat(products.astype(np.float64), starts[nonempty])
            y[nonempty] = sums.astype(np.float32)
        return y

    def matvec_many(self, X: np.ndarray) -> np.ndarray:
        """Batched :meth:`matvec`: one column-index gather for ``k`` vectors.

        ``X`` holds one input vector per row; row ``j`` of the result is
        bitwise-identical to ``matvec(X[j])`` — the per-row segment sums
        run over the same entries in the same order, just vectorized
        across the batch.
        """
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != self.ncols:
            raise FormatError(f"X has shape {X.shape}, expected (k, {self.ncols})")
        X = X.astype(np.float32)
        k = X.shape[0]
        Y = np.zeros((k, self.nrows), dtype=np.float32)
        if k == 0 or self.nnz == 0:
            return Y
        products = self.values[None, :] * X[:, self.col_indices]
        starts = self.row_pointers[:-1]
        nonempty = np.flatnonzero(np.diff(self.row_pointers) > 0)
        if nonempty.size:
            sums = np.add.reduceat(products.astype(np.float64), starts[nonempty], axis=1)
            Y[:, nonempty] = sums.astype(np.float32)
        return Y

    # -- verification ---------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        self._check_pointer_frame(self.row_pointers, self.nrows, self.col_indices.size, "row_pointers")
        if self.col_indices.size != self.values.size:
            raise FormatError("col_indices and values must have equal length")

    def _verify_deep(self) -> None:
        self._check_monotone(self.row_pointers, "row_pointers")
        row_of = lambda pos: (int(np.searchsorted(self.row_pointers, pos, side="right") - 1), int(self.col_indices[pos]))
        self._check_index_range(self.col_indices, self.ncols, "column index", coords=row_of)
        self._check_finite(self.values, "values", coords=row_of)

    def row_slice(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """(col_indices, values) of one row — used by scalar kernels."""
        lo, hi = int(self.row_pointers[row]), int(self.row_pointers[row + 1])
        return self.col_indices[lo:hi], self.values[lo:hi]

    def storage_fields(self) -> Iterator[ArrayField]:
        # device-side CSR keeps 32-bit row pointers (as cuSPARSE does)
        yield ArrayField("row_pointers", (self.nrows + 1) * 4, "int32", self.nrows + 1)
        yield self._field("col_indices", self.col_indices)
        yield self._field("values", self.values)

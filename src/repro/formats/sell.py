"""SELL-C-sigma — sliced ELLPACK with row sorting.

The modern middle ground between ELL and CSR (Kreutzer et al.), included
as part of the sparse-format library the paper's future work sketches:
rows are sorted by length within windows of ``sigma``, grouped into
slices of ``C`` rows, and each slice is padded only to its *own* maximum
length — bounding ELL's padding waste while keeping SIMD/SIMT-friendly
column-major slices.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix
from repro.utils.scan import exclusive_scan

__all__ = ["SELLMatrix"]

PAD: int = -1


@register_format
class SELLMatrix(SparseMatrix):
    """SELL-C-sigma storage.

    Arrays:

    * ``permutation`` — original row of each sorted position,
    * ``slice_pointers`` — start of each slice in the packed grids,
    * ``slice_widths`` — padded row length per slice,
    * ``col_indices`` / ``values`` — per-slice column-major grids,
      concatenated (slice s occupies ``slice_pointers[s] : ... + C * width``).
    """

    format_name = "sell"

    #: Slice height (rows sharing one padded width).
    C: int = 32
    #: Sorting window (rows sorted by length within windows of this size).
    SIGMA: int = 256

    def __init__(
        self,
        shape: tuple[int, int],
        permutation: np.ndarray,
        slice_pointers: np.ndarray,
        slice_widths: np.ndarray,
        col_indices: np.ndarray,
        values: np.ndarray,
        c: int = 32,
    ):
        super().__init__(shape)
        if c <= 0:
            raise FormatError("slice height must be positive")
        self.c = int(c)
        self.permutation = np.asarray(permutation, dtype=np.int32)
        self.slice_pointers = np.asarray(slice_pointers, dtype=np.int64)
        self.slice_widths = np.asarray(slice_widths, dtype=np.int32)
        self.col_indices = np.asarray(col_indices, dtype=np.int32)
        self.values = np.asarray(values, dtype=np.float32)
        nslices = -(-self.nrows // self.c) if self.nrows else 0
        if self.permutation.size != self.nrows:
            raise FormatError("permutation must cover every row")
        if np.sort(self.permutation).tolist() != list(range(self.nrows)):
            raise FormatError("permutation must be a bijection on rows")
        if self.slice_widths.size != nslices or self.slice_pointers.size != nslices + 1:
            raise FormatError("slice arrays inconsistent with row count")
        expected = int(np.sum(self.slice_widths.astype(np.int64) * self.c))
        if self.col_indices.size != expected or self.values.size != expected:
            raise FormatError("packed grids inconsistent with slice widths")

    # -- construction --------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, c: int | None = None, sigma: int | None = None) -> "SELLMatrix":
        c = cls.C if c is None else int(c)
        sigma = cls.SIGMA if sigma is None else int(sigma)
        if c <= 0 or sigma <= 0:
            raise FormatError("C and sigma must be positive")
        n = coo.nrows
        lengths = coo.row_counts()
        # sort rows by descending length within sigma windows
        order = np.arange(n, dtype=np.int64)
        for start in range(0, n, sigma):
            window = slice(start, min(start + sigma, n))
            idx = np.argsort(-lengths[window], kind="stable")
            order[window] = start + idx
        nslices = -(-n // c) if n else 0
        widths = np.zeros(nslices, dtype=np.int32)
        for s in range(nslices):
            rows = order[s * c : (s + 1) * c]
            widths[s] = int(lengths[rows].max(initial=0))
        ptr = exclusive_scan(widths.astype(np.int64) * c)
        cols = np.full(int(ptr[-1]), PAD, dtype=np.int32)
        vals = np.zeros(int(ptr[-1]), dtype=np.float32)
        row_start = exclusive_scan(lengths)
        for s in range(nslices):
            rows = order[s * c : (s + 1) * c]
            width = int(widths[s])
            for lane, row in enumerate(rows):
                lo, hi = int(row_start[row]), int(row_start[row + 1])
                count = hi - lo
                # column-major within the slice: slot j of lane l at
                # ptr[s] + j * c + l
                dest = int(ptr[s]) + np.arange(count) * c + lane
                cols[dest] = coo.cols[lo:hi]
                vals[dest] = coo.values[lo:hi]
        return cls(coo.shape, order.astype(np.int32), ptr, widths, cols, vals, c=c)

    def config_matches(self, **kwargs) -> bool:
        if not kwargs:
            return True
        extra = set(kwargs) - {"c", "sigma"}
        if extra:
            return False
        # sigma (the row-sort window) is not recorded on the instance, so
        # any explicit sigma conservatively forces a rebuild
        if kwargs.get("sigma") is not None:
            return False
        # an explicit c=None asks for the class default
        c = kwargs.get("c")
        target = type(self).C if c is None else c
        return target == self.c

    def tocoo(self) -> COOMatrix:
        rows_out, cols_out, vals_out = [], [], []
        nslices = self.slice_widths.size
        for s in range(nslices):
            width = int(self.slice_widths[s])
            base = int(self.slice_pointers[s])
            lanes = min(self.c, self.nrows - s * self.c)
            for lane in range(lanes):
                row = int(self.permutation[s * self.c + lane])
                slots = base + np.arange(width) * self.c + lane
                valid = self.col_indices[slots] != PAD
                rows_out.append(np.full(int(valid.sum()), row, dtype=np.int32))
                cols_out.append(self.col_indices[slots][valid])
                vals_out.append(self.values[slots][valid])
        if rows_out:
            return COOMatrix(
                self.shape,
                np.concatenate(rows_out),
                np.concatenate(cols_out),
                np.concatenate(vals_out),
            )
        return COOMatrix(self.shape, np.zeros(0, np.int32), np.zeros(0, np.int32), np.zeros(0, np.float32))

    # -- interface --------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.col_indices != PAD))

    @property
    def padding_ratio(self) -> float:
        total = self.col_indices.size
        return 1.0 - self.nnz / total if total else 0.0

    # -- verification ------------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        nslices = -(-self.nrows // self.c) if self.nrows else 0
        if self.permutation.size != self.nrows:
            raise FormatError("permutation must cover every row")
        if self.slice_widths.size != nslices or self.slice_pointers.size != nslices + 1:
            raise FormatError("slice arrays inconsistent with row count")
        expected = int(np.sum(self.slice_widths.astype(np.int64) * self.c))
        if self.col_indices.size != expected or self.values.size != expected:
            raise FormatError("packed grids inconsistent with slice widths")

    def _verify_deep(self) -> None:
        from repro.errors import VerificationError

        if np.sort(self.permutation).tolist() != list(range(self.nrows)):
            raise VerificationError(
                "sell: permutation is not a bijection on rows",
                format_name=self.format_name, check="permutation-bijection",
            )
        self._check_monotone(self.slice_pointers, "slice_pointers")
        scanned = np.concatenate(([0], np.cumsum(self.slice_widths.astype(np.int64) * self.c)))
        if self.slice_pointers.size == scanned.size and np.any(self.slice_pointers != scanned):
            s = int(np.argmax(self.slice_pointers != scanned))
            raise VerificationError(
                f"sell: slice_pointers diverges from the width scan at slice {s}",
                format_name=self.format_name, check="slice-scan", coord=(s,),
            )
        valid = self.col_indices != PAD
        self._check_index_range(
            self.col_indices[valid], self.ncols, "column index",
            coords=lambda pos: (int(np.argwhere(valid)[pos][0]),),
        )
        if np.any(self.values[~valid] != 0):
            slot = int(np.argwhere(~valid & (self.values != 0))[0][0])
            raise VerificationError(
                f"sell: padding slot {slot} holds a nonzero value",
                format_name=self.format_name, check="padding-zero", coord=(slot,),
            )
        self._check_finite(self.values, "values")

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_matvec_operand(x)
        safe = np.where(self.col_indices == PAD, 0, self.col_indices)
        products = np.where(self.col_indices == PAD, 0.0, self.values * x[safe]).astype(np.float64)
        y = np.zeros(self.nrows, dtype=np.float64)
        for s in range(self.slice_widths.size):
            width = int(self.slice_widths[s])
            base = int(self.slice_pointers[s])
            lanes = min(self.c, self.nrows - s * self.c)
            grid = products[base : base + width * self.c].reshape(width, self.c)
            y[self.permutation[s * self.c : s * self.c + lanes]] = grid[:, :lanes].sum(axis=0)
        return y.astype(np.float32)

    def storage_fields(self) -> Iterator[ArrayField]:
        yield self._field("permutation", self.permutation)
        yield ArrayField("slice_pointers", self.slice_pointers.size * 4, "int32", self.slice_pointers.size)
        yield self._field("slice_widths", self.slice_widths)
        yield self._field("col_indices", self.col_indices)
        yield self._field("values", self.values)

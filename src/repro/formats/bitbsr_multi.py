"""Generalized bitmap-blocked format with configurable block size.

The paper fixes 8x8 blocks so one 64-bit word covers the bitmap (§4.2).
This class generalizes the encoding to any square block size: the bitmap
becomes ``ceil(d*d / 64)`` words per block (one 16-bit-worth word for
4x4, four words for 16x16).  It turns the block-size ablation from a
statistics exercise into runnable formats, and is the substrate a
multi-size "bitmap & blocking" library (§7) would build on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import (
    BitmapPopcountError,
    EmptyBlockError,
    FormatError,
    OffsetScanError,
    VerificationError,
)
from repro.formats.base import ArrayField, SparseMatrix, _dtype_matches, register_format
from repro.formats.coo import COOMatrix
from repro.utils.bitops import popcount
from repro.utils.scan import exclusive_scan, segment_ids

__all__ = ["GenericBitBSRMatrix"]

_U64 = np.uint64


@register_format
class GenericBitBSRMatrix(SparseMatrix):
    """Bitmap-blocked CSR with an arbitrary square block dimension.

    Storage mirrors bitBSR, except ``bitmaps`` has shape
    ``(nblocks, words)`` with ``words = ceil(block_dim**2 / 64)``; bit
    ``p`` of the block (row-major) lives in word ``p // 64``, bit
    ``p % 64``.
    """

    format_name = "bitbsr-generic"

    def __init__(
        self,
        shape: tuple[int, int],
        block_row_pointers: np.ndarray,
        block_cols: np.ndarray,
        bitmaps: np.ndarray,
        values: np.ndarray,
        block_dim: int = 8,
        value_dtype: np.dtype | type = np.float16,
    ):
        super().__init__(shape)
        if block_dim <= 0 or block_dim > 64:
            raise FormatError("block_dim must be in [1, 64]")
        self.block_dim = int(block_dim)
        self.words = -(-self.block_dim * self.block_dim // 64)
        ptr = np.asarray(block_row_pointers, dtype=np.int64)
        cols = np.asarray(block_cols, dtype=np.int32)
        bitmaps = np.asarray(bitmaps, dtype=_U64)
        self.value_dtype = np.dtype(value_dtype)
        values = np.asarray(values, dtype=self.value_dtype)
        if bitmaps.ndim != 2 or bitmaps.shape != (cols.size, self.words):
            raise FormatError(f"bitmaps must have shape (nblocks, {self.words})")
        nbrows = self.block_rows_count
        if ptr.size != nbrows + 1 or ptr[0] != 0 or ptr[-1] != cols.size:
            raise FormatError("block_row_pointers inconsistent")
        if cols.size and (cols.min() < 0 or cols.max() >= self.block_cols_count):
            raise FormatError("block column index out of range")
        counts = popcount(bitmaps).sum(axis=1).astype(np.int64) if cols.size else np.zeros(0, np.int64)
        if cols.size and np.any(counts == 0):
            raise FormatError("stored blocks must be non-empty")
        offsets = exclusive_scan(counts)
        if int(offsets[-1]) != values.size:
            raise FormatError("bitmap popcounts disagree with value count")
        self.block_row_pointers = ptr
        self.block_cols = cols
        self.bitmaps = bitmaps
        self.values = values
        self.block_offsets = offsets

    # -- geometry -------------------------------------------------------------
    @property
    def block_rows_count(self) -> int:
        return -(-self.nrows // self.block_dim)

    @property
    def block_cols_count(self) -> int:
        return -(-self.ncols // self.block_dim)

    @property
    def nblocks(self) -> int:
        return int(self.block_cols.size)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def block_nnz(self) -> np.ndarray:
        return np.diff(self.block_offsets)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        coo: COOMatrix,
        block_dim: int = 8,
        value_dtype: np.dtype | type = np.float16,
    ) -> "GenericBitBSRMatrix":
        if block_dim <= 0 or block_dim > 64:
            raise FormatError("block_dim must be in [1, 64]")
        d = int(block_dim)
        words = -(-d * d // 64)
        br = coo.rows.astype(np.int64) // d
        bc = coo.cols.astype(np.int64) // d
        lr = coo.rows.astype(np.int64) % d
        lc = coo.cols.astype(np.int64) % d
        bitpos = lr * d + lc
        nbcols = -(-coo.ncols // d)
        nbrows = -(-coo.nrows // d)
        keys = br * nbcols + bc
        order = np.argsort(keys * (d * d) + bitpos, kind="stable")
        keys_sorted = keys[order]
        pos_sorted = bitpos[order]
        unique_keys, block_of_entry = np.unique(keys_sorted, return_inverse=True)
        bitmaps = np.zeros((unique_keys.size, words), dtype=_U64)
        word_of = (pos_sorted // 64).astype(np.int64)
        bit_of = (pos_sorted % 64).astype(_U64)
        np.bitwise_or.at(bitmaps, (block_of_entry, word_of), _U64(1) << bit_of)
        counts = np.bincount((unique_keys // nbcols).astype(np.int64), minlength=nbrows)
        ptr = exclusive_scan(counts)
        return cls(
            coo.shape,
            ptr,
            (unique_keys % nbcols).astype(np.int32),
            bitmaps,
            coo.values[order].astype(value_dtype),
            block_dim=d,
            value_dtype=value_dtype,
        )

    def config_matches(self, **kwargs) -> bool:
        kwargs = dict(kwargs)
        block_dim = kwargs.pop("block_dim", None)
        value_dtype = kwargs.pop("value_dtype", None)
        if kwargs:
            return False
        if block_dim is not None and block_dim != self.block_dim:
            return False
        return value_dtype is None or _dtype_matches(value_dtype, self.value_dtype)

    # -- decoding ------------------------------------------------------------------
    def entry_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """Global (rows, cols) of every value, in storage order."""
        if self.nblocks == 0:
            return np.zeros(0, np.int64), np.zeros(0, np.int64)
        d = self.block_dim
        shifts = np.arange(64, dtype=_U64)
        # (nblocks, words, 64) occupancy, flattened to bit positions
        mask = ((self.bitmaps[:, :, None] >> shifts[None, None, :]) & _U64(1)).astype(bool)
        mask = mask.reshape(self.nblocks, self.words * 64)[:, : d * d]
        bidx, pos = np.nonzero(mask)
        brow = segment_ids(self.block_row_pointers)[bidx]
        rows = brow * d + pos // d
        cols = self.block_cols[bidx].astype(np.int64) * d + pos % d
        return rows, cols

    def tocoo(self) -> COOMatrix:
        rows, cols = self.entry_coordinates()
        return COOMatrix(
            self.shape,
            rows.astype(np.int32),
            cols.astype(np.int32),
            self.values.astype(np.float32),
        )

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_matvec_operand(x)
        rows, cols = self.entry_coordinates()
        y = np.zeros(self.nrows, dtype=np.float64)
        np.add.at(y, rows, self.values.astype(np.float64) * x[cols])
        return y.astype(np.float32)

    # -- verification ---------------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        self._check_pointer_frame(
            self.block_row_pointers, self.block_rows_count, self.block_cols.size, "block_row_pointers"
        )
        if self.bitmaps.shape != (self.block_cols.size, self.words):
            raise FormatError(f"bitmaps must have shape (nblocks, {self.words})")

    def _verify_deep(self) -> None:
        self._check_monotone(self.block_row_pointers, "block_row_pointers")
        brow_of = segment_ids(self.block_row_pointers) if self.nblocks else np.zeros(0, np.int64)
        at = lambda b: (int(brow_of[b]), int(self.block_cols[b]))
        self._check_index_range(
            self.block_cols, self.block_cols_count, "block column index",
            coords=lambda pos: at(pos),
        )
        d = self.block_dim
        if self.nblocks:
            # bits beyond d*d must stay zero in the last bitmap word
            tail_bits = self.words * 64 - d * d
            if tail_bits:
                tail_mask = ~_U64(0) << _U64(64 - tail_bits)
                dirty = (self.bitmaps[:, -1] & tail_mask) != 0
                if dirty.any():
                    block = int(np.argmax(dirty))
                    raise VerificationError(
                        f"bitbsr-generic: padding bits beyond {d}x{d} set in block {at(block)}",
                        format_name=self.format_name, check="bitmap-padding", coord=at(block),
                    )
            counts = popcount(self.bitmaps).sum(axis=1).astype(np.int64)
            empty = counts == 0
            if empty.any():
                block = int(np.argmax(empty))
                raise EmptyBlockError(
                    f"bitbsr-generic: stored block {at(block)} has an all-zero bitmap",
                    format_name=self.format_name, check="empty-block", coord=at(block),
                )
        else:
            counts = np.zeros(0, np.int64)
        if int(counts.sum()) != self.values.size:
            raise BitmapPopcountError(
                f"bitbsr-generic: popcount of bitmaps ({int(counts.sum())}) != "
                f"number of packed values ({self.values.size})",
                format_name=self.format_name, check="bitmap-popcount",
            )
        scanned = exclusive_scan(counts)
        if self.block_offsets.shape != scanned.shape or np.any(self.block_offsets != scanned):
            block = int(np.argmax(self.block_offsets != scanned))
            raise OffsetScanError(
                f"bitbsr-generic: block_offsets diverges from the exclusive popcount scan "
                f"at block {block}",
                format_name=self.format_name, check="offset-scan", coord=(block,),
            )
        rows, cols = self.entry_coordinates()
        self._check_finite(
            self.values, "packed values",
            coords=lambda pos: (int(rows[pos]), int(cols[pos])),
        )

    # -- accounting --------------------------------------------------------------------
    def storage_fields(self) -> Iterator[ArrayField]:
        nptr = self.block_rows_count + 1
        yield ArrayField("block_row_pointers", nptr * 4, "int32", nptr)
        yield self._field("block_cols", self.block_cols)
        # small blocks need only ceil(d^2 / 8) bitmap bytes on device
        bitmap_bytes = self.nblocks * max(1, self.block_dim * self.block_dim // 8)
        yield ArrayField("bitmaps", bitmap_bytes, f"{self.words}xuint64(packed)", self.nblocks)
        yield ArrayField("block_offsets", self.nblocks * 4, "int32", self.nblocks)
        yield self._field("values", self.values)

"""Minimal MatrixMarket (``.mtx``) I/O for coordinate-format matrices.

Self-contained reader/writer (no scipy.io dependency) supporting the
subset SuiteSparse matrices use: ``matrix coordinate
real|integer|pattern general|symmetric``.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.errors import FormatError
from repro.formats.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER = "%%MatrixMarket"


def read_matrix_market(source: str | Path | io.TextIOBase) -> COOMatrix:
    """Parse a MatrixMarket coordinate file into a canonical COO matrix.

    Symmetric matrices are expanded (mirror entries added for off-diagonal
    elements); ``pattern`` matrices get unit values.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="ascii") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    if not header.startswith(_HEADER):
        raise FormatError("missing MatrixMarket header")
    tokens = header.strip().split()
    if len(tokens) < 5 or tokens[1].lower() != "matrix":
        raise FormatError(f"unsupported MatrixMarket header: {header.strip()!r}")
    layout, field, symmetry = (t.lower() for t in tokens[2:5])
    if layout != "coordinate":
        raise FormatError("only coordinate layout is supported")
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    size_line = source.readline()
    while size_line.startswith("%"):
        size_line = source.readline()
    try:
        nrows, ncols, nnz = (int(t) for t in size_line.split())
    except ValueError as exc:
        raise FormatError(f"bad size line: {size_line.strip()!r}") from exc

    body = np.loadtxt(source, ndmin=2) if nnz else np.zeros((0, 3))
    if body.shape[0] != nnz:
        raise FormatError(f"expected {nnz} entries, found {body.shape[0]}")
    rows = body[:, 0].astype(np.int64) - 1
    cols = body[:, 1].astype(np.int64) - 1
    if field == "pattern":
        values = np.ones(nnz, dtype=np.float32)
    else:
        if body.shape[1] < 3:
            raise FormatError("real/integer matrices need a value column")
        values = body[:, 2].astype(np.float32)

    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, body[:, 0].astype(np.int64)[off] - 1])
        values = np.concatenate([values, values[off]])

    return COOMatrix((nrows, ncols), rows.astype(np.int32), cols.astype(np.int32), values)


def write_matrix_market(matrix, target: str | Path | io.TextIOBase, comment: str = "") -> None:
    """Write any repro sparse matrix as ``coordinate real general``."""
    coo = matrix.tocoo()
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="ascii") as fh:
            write_matrix_market(coo, fh, comment=comment)
        return
    target.write(f"{_HEADER} matrix coordinate real general\n")
    for line in comment.splitlines():
        target.write(f"% {line}\n")
    target.write(f"{coo.nrows} {coo.ncols} {coo.nnz}\n")
    for r, c, v in zip(coo.rows, coo.cols, coo.values):
        target.write(f"{int(r) + 1} {int(c) + 1} {float(v):.9g}\n")

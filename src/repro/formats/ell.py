"""ELLPACK (ELL) format — fixed number of nonzeros per padded row."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import ArrayField, SparseMatrix, register_format
from repro.formats.coo import COOMatrix

__all__ = ["ELLMatrix"]

#: Column index marking a padding slot.
PAD: int = -1


@register_format
class ELLMatrix(SparseMatrix):
    """ELL: dense ``(nrows, width)`` index/value grids, padded with zeros.

    ``width`` is the maximum row length; shorter rows are padded with
    ``PAD`` indices and zero values.  ELL gives perfectly regular (and
    hence coalescible, when stored column-major) access on SIMT hardware
    at the cost of padding waste on skewed row-length distributions.
    """

    format_name = "ell"

    def __init__(self, shape: tuple[int, int], col_indices: np.ndarray, values: np.ndarray):
        super().__init__(shape)
        col_indices = np.asarray(col_indices, dtype=np.int32)
        values = np.asarray(values, dtype=np.float32)
        if col_indices.ndim != 2 or values.ndim != 2:
            raise FormatError("ELL grids must be 2-D")
        if col_indices.shape != values.shape:
            raise FormatError("index and value grids must have equal shape")
        if col_indices.shape[0] != self.nrows:
            raise FormatError("ELL grids must have nrows rows")
        valid = col_indices != PAD
        if valid.any():
            used = col_indices[valid]
            if used.min() < 0 or used.max() >= self.ncols:
                raise FormatError("column index out of range")
        if np.any(values[~valid] != 0):
            raise FormatError("padding slots must hold zero values")
        self.col_indices = col_indices
        self.values = values

    @property
    def width(self) -> int:
        """Entries stored per row (the padded row length)."""
        return int(self.col_indices.shape[1])

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "ELLMatrix":
        counts = coo.row_counts()
        width = int(counts.max()) if counts.size else 0
        cols = np.full((coo.nrows, width), PAD, dtype=np.int32)
        vals = np.zeros((coo.nrows, width), dtype=np.float32)
        if coo.nnz:
            # position of each entry within its row (COO is row-sorted)
            starts = np.zeros(coo.nnz, dtype=np.int64)
            row_start_of = np.concatenate(([0], np.cumsum(counts)))[coo.rows]
            starts = np.arange(coo.nnz, dtype=np.int64) - row_start_of
            cols[coo.rows, starts] = coo.cols
            vals[coo.rows, starts] = coo.values
        return cls(coo.shape, cols, vals)

    def tocoo(self) -> COOMatrix:
        valid = self.col_indices != PAD
        r, slot = np.nonzero(valid)
        return COOMatrix(
            self.shape,
            r.astype(np.int32),
            self.col_indices[r, slot],
            self.values[r, slot],
        )

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.col_indices != PAD))

    # -- verification ---------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        if self.col_indices.shape != self.values.shape:
            raise FormatError("index and value grids must have equal shape")
        if self.col_indices.shape[0] != self.nrows:
            raise FormatError("ELL grids must have nrows rows")

    def _verify_deep(self) -> None:
        from repro.errors import IndexRangeError, VerificationError

        valid = self.col_indices != PAD
        bad = valid & ((self.col_indices < 0) | (self.col_indices >= self.ncols))
        if bad.any():
            r, slot = (int(v) for v in np.argwhere(bad)[0])
            raise IndexRangeError(
                f"ell: column index {int(self.col_indices[r, slot])} out of range "
                f"[0, {self.ncols}) at row {r}, slot {slot}",
                format_name=self.format_name, check="index-range",
                coord=(r, int(self.col_indices[r, slot])),
            )
        dirty_pad = ~valid & (self.values != 0)
        if dirty_pad.any():
            r, slot = (int(v) for v in np.argwhere(dirty_pad)[0])
            raise VerificationError(
                f"ell: padding slot ({r}, {slot}) holds a nonzero value",
                format_name=self.format_name, check="padding-zero", coord=(r, slot),
            )
        self._check_finite(
            self.values, "values",
            coords=lambda pos: (pos[0], int(self.col_indices[pos])),
        )

    @property
    def padding_ratio(self) -> float:
        """Fraction of stored slots that are padding."""
        total = self.col_indices.size
        return 1.0 - self.nnz / total if total else 0.0

    def matvec(self, x: np.ndarray) -> np.ndarray:
        x = self._check_matvec_operand(x)
        safe_cols = np.where(self.col_indices == PAD, 0, self.col_indices)
        gathered = x[safe_cols] * self.values  # padded values are zero
        return gathered.sum(axis=1, dtype=np.float64).astype(np.float32)

    def storage_fields(self) -> Iterator[ArrayField]:
        yield self._field("col_indices", self.col_indices)
        yield self._field("values", self.values)

"""bitBSR — the paper's bitmap-compressed blocked format (§4.2, Fig. 4).

Each non-empty 8x8 block is described by:

* its position in a CSR over the block grid (``block_row_pointers`` +
  ``block_cols``),
* a 64-bit bitmap whose bit ``r * 8 + c`` marks element ``(r, c)`` of the
  block as nonzero (LSB = top-left, MSB = bottom-right),
* a slice of the packed ``values`` array holding only the true nonzeros in
  bit order; ``block_offsets`` (the exclusive scan of per-block nonzero
  counts) locates each block's slice.

Values are stored in half precision, matching the tensor-core input
operand.  The resulting footprint is ``2 B/nnz + 16 B/block``, which
reproduces the paper's measured 2.85 B/nnz average (Fig. 10b).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.constants import BLOCK_DIM, BLOCK_SIZE
from repro.errors import BitmapPopcountError, EmptyBlockError, FormatError, OffsetScanError
from repro.formats.base import ArrayField, SparseMatrix, _dtype_matches, register_format
from repro.formats.bsr import BSRMatrix, block_coordinates
from repro.formats.coo import COOMatrix
from repro.utils.bitops import popcount
from repro.utils.scan import exclusive_scan, segment_ids

__all__ = ["BitBSRMatrix"]

_U64 = np.uint64


@register_format
class BitBSRMatrix(SparseMatrix):
    """The bitBSR format.  Block size is fixed at 8x8 (one 64-bit bitmap).

    ``value_dtype`` defaults to ``float16`` per the paper's mixed-precision
    pipeline; pass ``float32`` for exact-arithmetic experiments.
    """

    format_name = "bitbsr"

    def __init__(
        self,
        shape: tuple[int, int],
        block_row_pointers: np.ndarray,
        block_cols: np.ndarray,
        bitmaps: np.ndarray,
        values: np.ndarray,
        value_dtype: np.dtype | type = np.float16,
    ):
        super().__init__(shape)
        self.block_dim = BLOCK_DIM
        ptr = np.asarray(block_row_pointers, dtype=np.int64)
        cols = np.asarray(block_cols, dtype=np.int32)
        bitmaps = np.asarray(bitmaps, dtype=_U64)
        self.value_dtype = np.dtype(value_dtype)
        if self.value_dtype not in (np.dtype(np.float16), np.dtype(np.float32)):
            raise FormatError("value_dtype must be float16 or float32")
        values = np.asarray(values, dtype=self.value_dtype)
        nbrows = self.block_rows_count
        if ptr.size != nbrows + 1 or ptr[0] != 0 or ptr[-1] != cols.size:
            raise FormatError("block_row_pointers inconsistent")
        if np.any(np.diff(ptr) < 0):
            raise FormatError("block_row_pointers must be non-decreasing")
        if bitmaps.size != cols.size:
            raise FormatError("one bitmap per stored block required")
        if cols.size and (cols.min() < 0 or cols.max() >= self.block_cols_count):
            raise FormatError("block column index out of range")
        if bitmaps.size and np.any(bitmaps == 0):
            raise FormatError("stored blocks must be non-empty (bitmap != 0)")
        counts = popcount(bitmaps).astype(np.int64)
        offsets = exclusive_scan(counts)
        if int(offsets[-1]) != values.size:
            raise FormatError(
                f"popcount of bitmaps ({int(offsets[-1])}) != number of values ({values.size})"
            )
        self.block_row_pointers = ptr
        self.block_cols = cols
        self.bitmaps = bitmaps
        self.values = values
        #: Exclusive scan of per-block nonzero counts (paper §4.2).
        self.block_offsets = offsets

    # -- geometry -----------------------------------------------------------
    @property
    def block_rows_count(self) -> int:
        return -(-self.nrows // BLOCK_DIM)

    @property
    def block_cols_count(self) -> int:
        return -(-self.ncols // BLOCK_DIM)

    @property
    def nblocks(self) -> int:
        return int(self.block_cols.size)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def block_row_of(self) -> np.ndarray:
        return segment_ids(self.block_row_pointers)

    def block_nnz(self) -> np.ndarray:
        """Per-block nonzero counts (popcount of each bitmap)."""
        return np.diff(self.block_offsets)

    # -- conversion -----------------------------------------------------------
    @classmethod
    def _from_entries(
        cls,
        shape: tuple[int, int],
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        value_dtype: np.dtype | type,
    ) -> "BitBSRMatrix":
        """Shared tail of :meth:`from_coo` and :meth:`from_csr`.

        ``rows``/``cols``/``values`` are the per-entry coordinates in
        canonical (row, col) order; both constructors reduce to this one
        sweep, so the two routes are bitwise-identical by construction.
        """
        br, bc, lr, lc = block_coordinates(rows, cols, BLOCK_DIM)
        nbcols = -(-shape[1] // BLOCK_DIM)
        nbrows = -(-shape[0] // BLOCK_DIM)
        bitpos = lr * BLOCK_DIM + lc
        keys = br * nbcols + bc
        # order entries by (block, bit position) so values pack in bit order
        order = np.argsort(keys * BLOCK_SIZE + bitpos, kind="stable")
        keys_sorted = keys[order]
        bitpos_sorted = bitpos[order]
        values_sorted = values[order]
        unique_keys, starts = np.unique(keys_sorted, return_index=True)
        if unique_keys.size:
            weights = _U64(1) << bitpos_sorted.astype(_U64)
            bitmaps = np.bitwise_or.reduceat(weights, starts)
        else:
            bitmaps = np.zeros(0, dtype=_U64)
        counts = np.bincount((unique_keys // nbcols).astype(np.int64), minlength=nbrows)
        ptr = exclusive_scan(counts)
        return cls(
            shape,
            ptr,
            (unique_keys % nbcols).astype(np.int32),
            bitmaps,
            values_sorted.astype(value_dtype),
            value_dtype=value_dtype,
        )

    @classmethod
    def from_coo(cls, coo: COOMatrix, value_dtype: np.dtype | type = np.float16) -> "BitBSRMatrix":
        return cls._from_entries(coo.shape, coo.rows, coo.cols, coo.values, value_dtype)

    @classmethod
    def from_csr(cls, csr, value_dtype: np.dtype | type = np.float16) -> "BitBSRMatrix":
        """Direct one-pass CSR -> bitBSR conversion (no COO materialization).

        The classic single-sweep ``BSRMatrix(CSRMatrix&)`` idiom,
        vectorized: per-entry row ids come straight from
        ``row_pointers`` (a repeat/scan, no per-nnz Python work), block
        coordinates and bit positions from ``col_indices``, and the
        packing order from one stable argsort — skipping the COO
        round trip's array copies and canonical re-validation entirely.
        The result is bitwise-identical to
        ``from_coo(csr.tocoo(), value_dtype)``: both routes feed the
        same per-entry coordinates, in the same canonical order, through
        :meth:`_from_entries`.
        """
        rows = segment_ids(csr.row_pointers)
        return cls._from_entries(csr.shape, rows, csr.col_indices, csr.values, value_dtype)

    def config_matches(self, **kwargs) -> bool:
        kwargs = dict(kwargs)
        value_dtype = kwargs.pop("value_dtype", None)
        if kwargs:
            return False
        return value_dtype is None or _dtype_matches(value_dtype, self.value_dtype)

    @classmethod
    def from_bsr(cls, bsr: BSRMatrix, value_dtype: np.dtype | type = np.float16) -> "BitBSRMatrix":
        """Compress an existing BSR matrix (dropping its empty blocks)."""
        if bsr.block_dim != BLOCK_DIM:
            raise FormatError("bitBSR requires 8x8 blocks")
        flat = bsr.blocks.reshape(bsr.nblocks, BLOCK_SIZE)
        mask = flat != 0
        keep = mask.any(axis=1)
        weights = _U64(1) << np.arange(BLOCK_SIZE, dtype=_U64)
        bitmaps = np.where(mask[keep], weights, _U64(0)).reshape(-1, BLOCK_SIZE)
        bitmaps = np.bitwise_or.reduce(bitmaps, axis=1)
        values = flat[keep][mask[keep]].astype(value_dtype)
        brow = bsr.block_row_of()[keep]
        counts = np.bincount(brow, minlength=bsr.block_rows_count)
        ptr = exclusive_scan(counts)
        return cls(bsr.shape, ptr, bsr.block_cols[keep].copy(), bitmaps, values, value_dtype=value_dtype)

    def entry_coordinates(self) -> tuple[np.ndarray, np.ndarray]:
        """Global (rows, cols) of every stored nonzero, in storage order.

        Fully vectorized bitmap expansion: build the (nblocks, 64)
        occupancy mask via broadcast shifts, then read off set positions.
        """
        if self.nblocks == 0:
            return np.zeros(0, np.int64), np.zeros(0, np.int64)
        shifts = np.arange(BLOCK_SIZE, dtype=_U64)
        mask = ((self.bitmaps[:, None] >> shifts[None, :]) & _U64(1)).astype(bool)
        bidx, pos = np.nonzero(mask)
        rows = self.block_row_of()[bidx] * BLOCK_DIM + pos // BLOCK_DIM
        cols = self.block_cols[bidx].astype(np.int64) * BLOCK_DIM + pos % BLOCK_DIM
        return rows, cols

    def tocoo(self) -> COOMatrix:
        rows, cols = self.entry_coordinates()
        return COOMatrix(
            self.shape,
            rows.astype(np.int32),
            cols.astype(np.int32),
            self.values.astype(np.float32),
        )

    def tobsr(self) -> BSRMatrix:
        """Decompress back to dense-block BSR (the decode ground truth)."""
        blocks = np.zeros((self.nblocks, BLOCK_DIM, BLOCK_DIM), dtype=np.float32)
        if self.nblocks:
            shifts = np.arange(BLOCK_SIZE, dtype=_U64)
            mask = ((self.bitmaps[:, None] >> shifts[None, :]) & _U64(1)).astype(bool)
            flat = blocks.reshape(self.nblocks, BLOCK_SIZE)
            flat[mask] = self.values.astype(np.float32)
        return BSRMatrix(self.shape, self.block_row_pointers.copy(), self.block_cols.copy(), blocks, BLOCK_DIM)

    # -- computation -----------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Reference bitBSR SpMV: decode entry coordinates, then scatter-add."""
        x = self._check_matvec_operand(x)
        rows, cols = self.entry_coordinates()
        y = np.zeros(self.nrows, dtype=np.float64)
        np.add.at(y, rows, self.values.astype(np.float64) * x[cols])
        return y.astype(np.float32)

    # -- verification -----------------------------------------------------------
    def _verify_shallow(self) -> None:
        super()._verify_shallow()
        self._check_pointer_frame(
            self.block_row_pointers, self.block_rows_count, self.block_cols.size, "block_row_pointers"
        )
        if self.bitmaps.size != self.block_cols.size:
            raise FormatError("one bitmap per stored block required")
        if self.block_offsets.size != self.nblocks + 1:
            raise OffsetScanError(
                f"bitbsr: block_offsets has {self.block_offsets.size} entries, "
                f"expected {self.nblocks + 1}",
                format_name=self.format_name, check="offset-frame",
            )

    def _block_coord(self, block: int) -> tuple[int, int]:
        """(block_row, block_col) of stored block ``block``."""
        brow = int(np.searchsorted(self.block_row_pointers, block, side="right") - 1)
        return brow, int(self.block_cols[block])

    def _verify_deep(self) -> None:
        self._check_monotone(self.block_row_pointers, "block_row_pointers")
        self._check_index_range(
            self.block_cols, self.block_cols_count, "block column index",
            coords=self._block_coord,
        )
        if self.nblocks:
            empty = self.bitmaps == 0
            if empty.any():
                block = int(np.argmax(empty))
                raise EmptyBlockError(
                    f"bitbsr: stored block {self._block_coord(block)} has an all-zero bitmap",
                    format_name=self.format_name, check="empty-block",
                    coord=self._block_coord(block),
                )
        counts = popcount(self.bitmaps).astype(np.int64)
        if int(counts.sum()) != self.values.size:
            raise BitmapPopcountError(
                f"bitbsr: popcount of bitmaps ({int(counts.sum())}) != "
                f"number of packed values ({self.values.size})",
                format_name=self.format_name, check="bitmap-popcount",
            )
        scanned = exclusive_scan(counts)
        if self.block_offsets.shape != scanned.shape or np.any(self.block_offsets != scanned):
            block = int(np.argmax(self.block_offsets != scanned))
            raise OffsetScanError(
                f"bitbsr: block_offsets diverges from the exclusive popcount scan "
                f"at block {block} ({int(self.block_offsets[block])} != {int(scanned[block])})",
                format_name=self.format_name, check="offset-scan", coord=(block,),
            )
        rows, cols = self.entry_coordinates()
        self._check_finite(
            self.values, "packed values",
            coords=lambda pos: (int(rows[pos]), int(cols[pos])),
        )

    # -- analysis / accounting ----------------------------------------------------
    def compression_rate_vs_coo(self) -> np.ndarray:
        """Per-block positional compression vs 32-bit COO indices (§4.2).

        A block with k nonzeros costs 64 bits as a bitmap versus
        ``k * (32 + 32)`` bits as COO (row + col index, 32-bit each), so
        the rate ``sizeof(COO) / sizeof(bitmap)`` equals k and ranges over
        [1, 64] exactly as §4.2 states.
        """
        k = self.block_nnz().astype(np.float64)
        return k * (2 * 32) / 64.0

    def storage_fields(self) -> Iterator[ArrayField]:
        nptr = self.block_rows_count + 1
        yield ArrayField("block_row_pointers", nptr * 4, "int32", nptr)
        yield self._field("block_cols", self.block_cols)
        yield self._field("bitmaps", self.bitmaps)
        yield ArrayField("block_offsets", self.nblocks * 4, "int32", self.nblocks)
        yield self._field("values", self.values)

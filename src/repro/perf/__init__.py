"""Analytic performance model (roofline) and paper-style reporting.

The model converts a kernel's exact traffic/compute counters
(:class:`repro.kernels.base.KernelProfile`) into a time estimate for a
named GPU (:mod:`repro.gpu.spec`).  SpMV is bandwidth-bound, so the
dominant term is DRAM traffic; secondary terms capture L2/L1 transaction
pressure (what kills uncoalesced kernels), CUDA-core and tensor-core
compute, atomic serialization and launch overhead.
"""

from repro.perf.metrics import gflops, speedup_table
from repro.perf.model import TimeBreakdown, estimate_time
from repro.perf.preprocessing import model_preprocessing_seconds
from repro.perf.report import format_table, series_to_rows

__all__ = [
    "gflops",
    "speedup_table",
    "TimeBreakdown",
    "estimate_time",
    "model_preprocessing_seconds",
    "format_table",
    "series_to_rows",
]

"""Plain-text table formatting for the benchmark harness."""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["format_table", "series_to_rows"]


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    floatfmt: str = ".2f",
    title: str = "",
) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(v.rjust(w) if _numeric(v) else v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _numeric(s: str) -> bool:
    try:
        float(s.replace(",", ""))
        return True
    except ValueError:
        return False


def series_to_rows(series: Mapping[str, Mapping[str, Any]], index_name: str = "matrix") -> list[dict[str, Any]]:
    """Convert ``{row_key: {col: val}}`` into a list of table rows."""
    rows = []
    for key, values in series.items():
        row: dict[str, Any] = {index_name: key}
        row.update(values)
        rows.append(row)
    return rows

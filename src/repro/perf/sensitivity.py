"""Sensitivity analysis of the roofline model's calibrated constants.

The headline reproduction claims should not hinge on one lucky constant:
this module re-evaluates a set of kernel profiles while perturbing each
calibrated parameter and reports how the Spaden-vs-baseline geomeans
move.  Used by tests to assert the *orderings* are stable under +-20%
perturbation of every knob.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.gpu.spec import GPUSpec, get_gpu
from repro.kernels.base import KernelProfile
from repro.perf import model as _model
from repro.perf.metrics import speedup_table
from repro.perf.model import estimate_time

__all__ = ["PERTURBABLE", "SensitivityPoint", "perturbed_constant", "sensitivity_sweep"]

#: Module-level model constants that calibration touched.
PERTURBABLE: tuple[str, ...] = (
    "L2_BANDWIDTH_RATIO",
    "ATOMIC_THROUGHPUT_RATIO",
    "ISSUE_IPC",
    "MMA_ARCH_PENALTY",
    "CHAIN_LATENCY",
)


@dataclass(frozen=True)
class SensitivityPoint:
    """Geomean speedups under one perturbed constant."""

    constant: str
    factor: float
    geomeans: Mapping[str, float]


@contextmanager
def perturbed_constant(name: str, factor: float) -> Iterator[None]:
    """Temporarily scale one model constant by ``factor``."""
    if name not in PERTURBABLE:
        raise KeyError(f"{name!r} is not a perturbable constant")
    original = getattr(_model, name)
    setattr(_model, name, original * factor)
    try:
        yield
    finally:
        setattr(_model, name, original)


def _geomeans(
    profiles: Mapping[str, Mapping[str, KernelProfile]],
    gpu: GPUSpec,
    target: str,
) -> dict[str, float]:
    times = {
        matrix: {m: estimate_time(p, gpu).total for m, p in per.items()}
        for matrix, per in profiles.items()
    }
    return speedup_table(times, target)


def sensitivity_sweep(
    profiles: Mapping[str, Mapping[str, KernelProfile]],
    gpu_name: str = "L40",
    target: str = "spaden",
    factors: tuple[float, ...] = (0.8, 1.25),
) -> list[SensitivityPoint]:
    """Evaluate target-vs-baseline geomeans under each perturbation."""
    gpu = get_gpu(gpu_name)
    points = [SensitivityPoint("baseline", 1.0, _geomeans(profiles, gpu, target))]
    for name in PERTURBABLE:
        for factor in factors:
            with perturbed_constant(name, factor):
                points.append(SensitivityPoint(name, factor, _geomeans(profiles, gpu, target)))
    return points

"""Structure → predicted seconds, per fallback-chain kernel.

The planner (:mod:`repro.plan`) must rank the degradation-chain kernels
for a matrix it has only *profiled*, never prepared: it knows the block
count, the pairing depth and the nnz/row distribution, but holds no
bitBSR and may not import :mod:`repro.kernels`.  This adapter closes
the gap on the perf side of the fence: it rebuilds a coarse
:class:`~repro.kernels.base.KernelProfile` for each chain kernel from
those structure numbers alone — mirroring the shape (not the exact
constants) of each kernel's analytic ``profile()`` — and runs it
through the same :func:`~repro.perf.model.estimate_time` roofline the
benches use, so predicted and measured rankings share one cost model.

Two deliberate modeling choices:

* **Coarse mirrors, exact crossover drivers.**  Spaden's cost scales
  with *blocks* (pairing depth, per-block broadcasts); the CSR kernels
  scale with *nonzeros*.  Those first-order terms are reproduced
  exactly from the profile (``paired_steps`` is even bit-exact); the
  second-order sector arithmetic is approximated, which moves predicted
  times by percents but never moves the Fig. 9 crossover.
* **Per-kernel setup charge.**  cuSPARSE's generic API runs an
  analysis/workspace pass before the first SpMV; at hypersparse sizes
  where every kernel collapses to launch overhead, that fixed charge is
  what separates the merge-path kernel from the zero-setup scalar
  baseline (:data:`SETUP_SECONDS`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import SECTOR_BYTES, WARP_SIZE
from repro.gpu.counters import ExecutionStats
from repro.gpu.spec import get_gpu
from repro.kernels.base import KernelProfile, registered_kernels
from repro.perf.model import estimate_time

__all__ = [
    "KernelTraits",
    "SETUP_SECONDS",
    "fallback_order",
    "kernel_menu",
    "predict_chain_seconds",
]

#: Modeled one-off setup charge per execution, seconds.  cuSPARSE's
#: generic API performs a merge-path analysis / workspace pass; the
#: bitBSR kernels run a short decode prologue.  The scalar CSR baseline
#: launches straight into its grid.
SETUP_SECONDS: dict[str, float] = {
    "cusparse-csr": 2.0e-6,
    "spaden": 5.0e-7,
    "spaden-no-tc": 5.0e-7,
}

#: Value bytes the bitBSR kernels stream (fp16) vs. the CSR kernels (fp32).
_BITBSR_VALUE_BYTES = 2
_CSR_VALUE_BYTES = 4


@dataclass(frozen=True)
class KernelTraits:
    """Capability summary of one registered kernel, for planners.

    A plain-data mirror of :class:`~repro.exec.modes.KernelCapabilities`
    plus the registry name/label, so :mod:`repro.plan` can
    capability-filter without importing the kernel classes.
    """

    name: str
    label: str
    fallback_tier: int
    tensor_cores: bool
    batch: bool
    simulate: bool
    simulate_batch: bool


def kernel_menu() -> dict[str, KernelTraits]:
    """Traits of every fallback-chain kernel, in tier order.

    Only kernels declaring a ``fallback_tier`` participate (the same
    membership rule as :func:`repro.exec.default_chain`), sorted by
    ``(tier, name)`` so iteration order *is* the static chain order.
    """
    import repro.kernels  # noqa: F401  (side effect: registry population)

    members = []
    for name, cls in registered_kernels().items():
        caps = cls.capabilities
        if caps.fallback_tier is None:
            continue
        members.append(
            KernelTraits(
                name=name,
                label=cls.label,
                fallback_tier=caps.fallback_tier,
                tensor_cores=caps.tensor_cores,
                batch=caps.batch,
                simulate=caps.simulate,
                simulate_batch=caps.simulate_batch,
            )
        )
    members.sort(key=lambda traits: (traits.fallback_tier, traits.name))
    return {traits.name: traits for traits in members}


def fallback_order(menu: dict[str, KernelTraits] | None = None) -> tuple[str, ...]:
    """The static chain order the menu implies (tier, then name)."""
    return tuple(menu if menu is not None else kernel_menu())


def _sectors(useful_bytes: float) -> int:
    """32-byte sectors needed to move ``useful_bytes`` when streamed."""
    return int(math.ceil(max(0.0, useful_bytes) / SECTOR_BYTES))


def _spaden_profile(
    name: str,
    *,
    nrows: int,
    nnz: int,
    nonzero_blocks: int,
    nonzero_block_rows: int,
    paired_steps: int,
    tensor: bool,
) -> KernelProfile:
    """Coarse mirror of the bitBSR kernels: cost scales with *blocks*.

    Per nonzero block the kernel broadcasts its bitmap (8 B), column
    index (4 B) and value offset (4 B), gathers two fp16 value slices
    and two x slices, and issues one step of the paired MMA pipeline;
    per block-row pair one warp walks ``max(len_even, len_odd)``
    dependent steps (``paired_steps``, exact from the profile).
    """
    blocks = max(1, nonzero_blocks)
    warps = max(1, (max(1, nonzero_block_rows) + 1) // 2)
    stats = ExecutionStats()
    # broadcasts ride one sector each; the two value/x gathers touch
    # one sector per parity in the common clustered case
    stats.load_transactions = 3 * blocks + 2 * blocks + 2 * blocks
    stats.store_transactions = _sectors(nrows * 4)
    stats.global_load_bytes = (
        blocks * (8 + 4 + 4)
        + nnz * _BITBSR_VALUE_BYTES
        + min(blocks * 8, nnz) * 4
    )
    stats.global_store_bytes = nrows * 4
    stats.warps_launched = warps
    stats.warp_instructions = 8 * blocks + 2 * warps
    stats.cuda_int_ops = 12 * blocks  # bitmap decode + offset scan
    if tensor:
        stats.mma_ops = max(1, paired_steps)
    else:
        # the CUDA-core twin multiplies every decoded lane pair and
        # runs the log2(8)-round shuffle reduction per block
        stats.cuda_flops = 10 * WARP_SIZE * blocks
        stats.cuda_int_ops += 3 * WARP_SIZE * blocks
    return KernelProfile(
        kernel_name=name,
        stats=stats,
        dram_load_bytes=int(stats.global_load_bytes),
        dram_store_bytes=int(stats.global_store_bytes),
        serial_steps=max(1, paired_steps),
    )


def _cusparse_csr_profile(*, nrows: int, ncols: int, nnz: int) -> KernelProfile:
    """Coarse mirror of merge-path CSR: cost scales with *nonzeros*.

    Values and columns stream fully coalesced, row pointers stream
    once, and the x gather lands between fully scattered (one sector
    per nonzero) and fully clustered — split the difference, it is not
    a crossover driver.  Merge-path balancing keeps per-warp serial
    depth at the item count per warp, independent of row skew.
    """
    warps = max(1, math.ceil(nnz / WARP_SIZE))
    stats = ExecutionStats()
    stats.load_transactions = (
        _sectors(nnz * (_CSR_VALUE_BYTES + 4))
        + _sectors((nrows + 1) * 4)
        + min(nnz, nnz // 2 + ncols // 8 + 1)
    )
    stats.store_transactions = _sectors(nrows * 4)
    stats.global_load_bytes = nnz * (_CSR_VALUE_BYTES + 4 + 4) + (nrows + 1) * 4
    stats.global_store_bytes = nrows * 4
    stats.warps_launched = warps
    stats.warp_instructions = 6 * warps + nnz // 4
    stats.cuda_flops = 2 * nnz
    stats.cuda_int_ops = 24 * warps + 2 * nnz
    return KernelProfile(
        kernel_name="cusparse-csr",
        stats=stats,
        dram_load_bytes=int(stats.global_load_bytes),
        dram_store_bytes=int(stats.global_store_bytes),
        serial_steps=WARP_SIZE * warps // max(1, warps),
    )


def _csr_scalar_profile(
    *, nrows: int, nnz: int, row_nnz_mean: float, row_nnz_std: float, row_nnz_max: int
) -> KernelProfile:
    """Coarse mirror of scalar CSR: one thread per row, no setup.

    Each warp serializes to its longest row; approximate the per-warp
    maximum with ``mean + std`` clamped to the global maximum (a warp
    of 32 rows almost surely holds a longer-than-average row).
    """
    warps = max(1, math.ceil(nrows / WARP_SIZE))
    warp_max = min(float(row_nnz_max), max(1.0, row_nnz_mean + row_nnz_std))
    stats = ExecutionStats()
    # lanes walk different rows: value/column reads splinter per lane
    stats.load_transactions = 2 * _sectors((nrows + 1) * 4) + nnz + nnz // 2
    stats.store_transactions = _sectors(nrows * 4)
    stats.global_load_bytes = nnz * (_CSR_VALUE_BYTES + 4 + 4) + (nrows + 1) * 4
    stats.global_store_bytes = nrows * 4
    stats.warps_launched = warps
    stats.warp_instructions = 2 * warps + 3 * nnz
    stats.cuda_flops = 2 * nnz
    stats.cuda_int_ops = 3 * nnz
    return KernelProfile(
        kernel_name="csr-scalar",
        stats=stats,
        dram_load_bytes=int(stats.global_load_bytes),
        dram_store_bytes=int(stats.global_store_bytes),
        serial_steps=int(warps * warp_max),
    )


def predict_chain_seconds(
    *,
    nrows: int,
    ncols: int,
    nnz: int,
    nonzero_blocks: int,
    nonzero_block_rows: int,
    paired_steps: int,
    row_nnz_mean: float,
    row_nnz_std: float,
    row_nnz_max: int,
    gpu: str = "L40",
    kernels: tuple[str, ...] | None = None,
) -> dict[str, float]:
    """Predicted seconds per chain kernel, from structure numbers alone.

    Takes the :class:`~repro.plan.profile.StructureProfile` fields as
    plain keywords (so :mod:`repro.plan` depends on this signature, not
    the other way around) and returns ``{kernel: seconds}`` for every
    requested chain kernel — each a coarse synthetic profile run
    through :func:`~repro.perf.model.estimate_time` on ``gpu``, plus
    the kernel's :data:`SETUP_SECONDS` charge.
    """
    spec = get_gpu(gpu)
    names = kernels if kernels is not None else fallback_order()
    out: dict[str, float] = {}
    for name in names:
        if name in ("spaden", "spaden-no-tc"):
            profile = _spaden_profile(
                name,
                nrows=nrows,
                nnz=nnz,
                nonzero_blocks=nonzero_blocks,
                nonzero_block_rows=nonzero_block_rows,
                paired_steps=paired_steps,
                tensor=(name == "spaden"),
            )
        elif name == "cusparse-csr":
            profile = _cusparse_csr_profile(nrows=nrows, ncols=ncols, nnz=nnz)
        elif name == "csr-scalar":
            profile = _csr_scalar_profile(
                nrows=nrows,
                nnz=nnz,
                row_nnz_mean=row_nnz_mean,
                row_nnz_std=row_nnz_std,
                row_nnz_max=row_nnz_max,
            )
        else:
            # an unknown chain member (a future registered kernel) gets
            # the conservative nnz-streaming estimate so it ranks with
            # the baselines rather than being silently dropped
            profile = _cusparse_csr_profile(nrows=nrows, ncols=ncols, nnz=nnz)
        out[name] = estimate_time(profile, spec).total + SETUP_SECONDS.get(name, 0.0)
    return out

"""Preprocessing (format-conversion) cost model — Fig. 10a.

The paper measures device-side conversion cost in nanoseconds per nonzero:
cuSPARSE BSR 1.21, Spaden 3.31, DASP 4.95, with cuSPARSE CSR's buffer
setup nearly constant across datasets.  We model each method's conversion
as the streaming passes a GPU implementation needs (reads + writes per
nonzero / per block), divided by a single calibrated conversion
throughput.  Structure drives the per-matrix variation (block counts,
padding); the shared throughput constant sets the absolute scale.
"""

from __future__ import annotations

__all__ = ["CONVERSION_BANDWIDTH", "model_preprocessing_seconds"]

#: Effective streaming throughput of format-conversion kernels, bytes/s.
#: Conversions are scan/sort/scatter pipelines, far below STREAM peak;
#: this constant is calibrated so modeled costs land in the paper's
#: measured 1-5 ns/nnz range while preserving the BSR < Spaden < DASP
#: ordering, which follows from the pass structure below.
CONVERSION_BANDWIDTH: float = 22e9

#: Fixed buffer-allocation cost of cuSPARSE CSR's preprocessing, seconds.
CSR_SETUP_SECONDS: float = 2.0e-6


def model_preprocessing_seconds(
    method: str,
    nnz: int,
    nrows: int,
    nblocks: int = 0,
    padded_nnz: int = 0,
) -> float:
    """Modeled device-side conversion time for one method.

    Work accounting (bytes moved per conversion):

    * ``csr`` — cuSPARSE CSR needs no conversion; its preprocessing is an
      analysis pass over the matrix (8 B/nnz) plus constant buffer
      allocation — the "for reference" curve of Fig. 10a.
    * ``bsr`` — one read of the source entries (8 B each: index pair +
      value) and one scatter write of every dense block (256 B values +
      4 B column), plus the block-pointer pass.
    * ``bitbsr`` — Spaden's pipeline: key generation (8 B/nnz), a 4-pass
      radix sort of 8 B records (64 B/nnz moved), bitmap reduction
      (8 B/nnz read + 8 B/block write), the offset scan and the packed
      half-precision value gather (4 B read + 2 B write per nnz).
    * ``dasp`` — row-length histogram, a 4-pass radix sort of all entries
      into the bucket-major layout (64 B/nnz), the gather into padded
      fragments (16 B/nnz read + 6 B per padded slot written) and per-row
      permutation/metadata passes.
    """
    if nnz < 0 or nrows < 0:
        raise ValueError("sizes must be non-negative")
    if method == "csr":
        work = 8.0 * nnz + 4.0 * nrows
        return CSR_SETUP_SECONDS + work / CONVERSION_BANDWIDTH
    if method == "bsr":
        work = 8.0 * nnz + 260.0 * nblocks + 8.0 * nrows
        return work / CONVERSION_BANDWIDTH
    if method == "bitbsr":
        work = (8.0 + 64.0 + 8.0 + 4.0 + 2.0) * nnz + 16.0 * nblocks + 8.0 * nrows
        return work / CONVERSION_BANDWIDTH
    if method == "dasp":
        padded = padded_nnz if padded_nnz else nnz
        work = (8.0 + 64.0 + 16.0) * nnz + 6.0 * padded + 40.0 * nrows
        return work / CONVERSION_BANDWIDTH
    raise ValueError(f"unknown preprocessing method {method!r}")

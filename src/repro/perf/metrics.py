"""Performance metrics: GFLOPS, speedups, geometric means."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["gflops", "geomean", "speedup_table", "speedups_over"]


def gflops(nnz: int, seconds: float) -> float:
    """SpMV throughput: 2 FLOPs per nonzero over the runtime.

    The standard convention used by the paper's Fig. 6.
    """
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    return 2.0 * nnz / seconds / 1e9


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate speedup convention)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedups_over(
    times: Mapping[str, float], baseline: str
) -> dict[str, float]:
    """Per-method speedup of ``baseline``'s time over each method's time.

    ``result[m] = times[baseline] / times[m]`` — a value > 1 means method
    ``m`` is faster than the baseline.
    """
    if baseline not in times:
        raise KeyError(f"baseline {baseline!r} missing from times")
    base = times[baseline]
    for name, t in times.items():
        if t <= 0:
            raise ValueError(
                f"method {name!r} has non-positive time {t!r}; speedups are "
                "undefined for zero or negative measurements"
            )
    return {name: base / t for name, t in times.items() if name != baseline}


def speedup_table(
    per_matrix_times: Mapping[str, Mapping[str, float]], target: str
) -> dict[str, float]:
    """Geomean speedup of ``target`` over every other method.

    ``per_matrix_times[matrix][method] = seconds``.  Returns
    ``{method: geomean_m(times[m][method] / times[m][target])}`` — the
    aggregation behind the paper's "1.63x over cuSPARSE CSR" numbers.
    """
    methods = {m for times in per_matrix_times.values() for m in times if m != target}
    out = {}
    for method in methods:
        ratios = [
            times[method] / times[target]
            for times in per_matrix_times.values()
            if method in times and target in times
        ]
        if ratios:
            out[method] = geomean(ratios)
    return out

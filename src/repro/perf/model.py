"""Roofline time model: counters -> seconds on a named GPU.

``time = launch + max(dram, l2, cuda, tensor, atomic, issue)``

* **dram** — after-cache DRAM bytes over sustained bandwidth.  This is
  the binding constraint for well-coalesced SpMV and the reason bitBSR's
  traffic reduction translates into speedup.
* **l2** — all warp transactions (32 B sectors) over L2 bandwidth.  An
  uncoalesced kernel issues up to 32x the sectors per instruction, which
  is what makes CSR-Warp16 an order of magnitude slower (Fig. 8) even
  though its DRAM footprint is ordinary.
* **cuda / tensor** — scalar FLOPs (plus weighted integer decode work) on
  CUDA cores; MMA FLOPs on tensor cores.
* **atomic** — serialized read-modify-write throughput for edge-centric
  kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import SECTOR_BYTES
from repro.gpu.spec import GPUSpec
from repro.kernels.base import KernelProfile

__all__ = [
    "TimeBreakdown",
    "estimate_time",
    "L2_BANDWIDTH_RATIO",
    "ATOMIC_THROUGHPUT_RATIO",
    "ISSUE_IPC",
    "MMA_ARCH_PENALTY",
]

#: Effective L2 bandwidth as a multiple of DRAM bandwidth.  Datasheet L2
#: peaks near 4x DRAM, but broadcast- and partial-sector-heavy kernels
#: (Spaden's per-block scalar reads) sustain well below peak; 2.5x is
#: calibrated against the paper's measured Spaden-vs-CSR gap.
L2_BANDWIDTH_RATIO: float = 2.5

#: Global atomic throughput relative to plain store bandwidth.
ATOMIC_THROUGHPUT_RATIO: float = 0.25

#: Cost weight of an integer/bitwise op relative to an FP32 FLOP.
INT_OP_WEIGHT: float = 0.5

#: Shared-memory bandwidth relative to DRAM (staging cost of WMMA loads).
SHARED_BANDWIDTH_RATIO: float = 8.0

#: Warp instructions issued per SM per cycle for the dependency-chained,
#: low-occupancy code SpMV kernels are made of.  Peak is 4; irregular
#: decode/gather chains sustain roughly one.
ISSUE_IPC: float = 1.0

#: Slowdown of the V100-tuned ``mma.m8n8k4`` shape on later architectures
#: (PTX ISA: the shape "may suffer from substantially reduced
#: performance on other architectures" — §5.2 cites this for DASP).
MMA_ARCH_PENALTY: float = 8.0

#: Effective latency of one dependent load -> decode -> consume step,
#: seconds: an L2 round trip plus dependent arithmetic, divided by the
#: ~2-3 steps a software-pipelined kernel keeps in flight per warp.
CHAIN_LATENCY: float = 1.6e-7

#: Dependent chains an SM can keep in flight (limited by warp slots and
#: outstanding-miss capacity).
CHAINS_PER_SM: int = 16


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-resource time components of one kernel execution (seconds)."""

    launch: float
    dram: float
    l2: float
    cuda: float
    tensor: float
    atomic: float
    shared: float
    issue: float
    chain: float

    @property
    def bound(self) -> str:
        """Name of the binding resource."""
        parts = {
            "dram": self.dram,
            "l2": self.l2,
            "cuda": self.cuda,
            "tensor": self.tensor,
            "atomic": self.atomic,
            "shared": self.shared,
            "issue": self.issue,
            "chain": self.chain,
        }
        return max(parts, key=parts.get)

    @property
    def total(self) -> float:
        """Launch plus the slowest overlapped resource."""
        return self.launch + max(
            self.dram,
            self.l2,
            self.cuda,
            self.tensor,
            self.atomic,
            self.shared,
            self.issue,
            self.chain,
        )


def estimate_time(profile: KernelProfile, gpu: GPUSpec) -> TimeBreakdown:
    """Estimate one kernel execution's runtime on ``gpu``."""
    s = profile.stats
    # the per-kernel efficiency derates the whole memory system — a
    # kernel that cannot keep enough loads in flight starves DRAM and L2
    # alike
    bw = gpu.effective_bandwidth * profile.bandwidth_efficiency
    t_dram = profile.dram_bytes / bw
    l2_ratio = getattr(gpu, "l2_ratio", L2_BANDWIDTH_RATIO)
    t_l2 = profile.transactions * SECTOR_BYTES / (bw * l2_ratio)
    t_cuda = (s.cuda_flops + INT_OP_WEIGHT * s.cuda_int_ops) / gpu.effective_fp32
    mma_penalty = MMA_ARCH_PENALTY if profile.arch_sensitive_mma and gpu.name != "V100" else 1.0
    t_tensor = s.mma_ops * 8192 * mma_penalty / gpu.effective_tensor
    t_atomic = s.atomic_ops * 4 / (bw * ATOMIC_THROUGHPUT_RATIO)
    t_shared = s.shared_bytes / (bw * SHARED_BANDWIDTH_RATIO)
    # every warp instruction needs an issue slot, and every memory
    # transaction needs an LSU slot; a load's first sector rides its
    # instruction slot, so the two pipelines overlap and the larger one
    # binds (an uncoalesced kernel is LSU-replay bound, a decode-heavy
    # kernel is instruction bound)
    issue_rate = gpu.sm_count * gpu.clock_ghz * 1e9 * ISSUE_IPC
    t_issue = max(s.warp_instructions, profile.transactions) / issue_rate
    # dependent per-warp iteration chains: with fewer resident warps than
    # the chip can interleave, chains execute at latency, not bandwidth
    concurrency = max(1, min(s.warps_launched, gpu.sm_count * CHAINS_PER_SM))
    t_chain = profile.serial_steps * CHAIN_LATENCY / concurrency
    return TimeBreakdown(
        launch=gpu.launch_overhead_us * 1e-6,
        dram=t_dram,
        l2=t_l2,
        cuda=t_cuda,
        tensor=t_tensor,
        atomic=t_atomic,
        shared=t_shared,
        issue=t_issue,
        chain=t_chain,
    )

"""Spaden via the conventional WMMA API — the §3 counterfactual.

What Spaden would cost *without* the reverse-engineered register access:
each pair of decoded blocks must be materialized as a dense 16x16 tile
in shared memory, loaded with ``wmma::load_matrix_sync`` (all 256
elements, zeros included), and the result written back through shared
memory before extraction.  Numerically identical to Spaden; the profile
charges the staging traffic and instructions the direct-register path
eliminates ("skipping the conventional data preparation overhead").
"""

from __future__ import annotations

import numpy as np

import dataclasses

from repro.constants import BLOCK_DIM, WARP_SIZE
from repro.core.spmv import spaden_spmv
from repro.formats.bitbsr import BitBSRMatrix
from repro.kernels.base import KernelProfile, PreparedOperand, register_kernel
from repro.kernels.spaden import SpadenKernel

__all__ = ["SpadenWMMAKernel"]


@register_kernel
class SpadenWMMAKernel(SpadenKernel):
    """The §3 counterfactual: Spaden forced through the conventional WMMA path."""

    name = "spaden-wmma"
    label = "Spaden (WMMA path)"
    # an ablation, not a production path: it stays out of the fallback chain
    capabilities = dataclasses.replace(SpadenKernel.capabilities, fallback_tier=None)

    def prepare(self, csr) -> PreparedOperand:
        prepared = super().prepare(csr)
        prepared.kernel_name = self.name
        return prepared

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return spaden_spmv(prepared.data, x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        base = super().profile(prepared, x)
        bit: BitBSRMatrix = prepared.data
        stats = base.stats
        steps = int(stats.mma_ops)
        warps = int(stats.warps_launched)

        # staging: per MMA step, fragments A and B are built as dense
        # 16x16 float32 tiles in shared memory (write + read = 2 passes
        # each) and the conventional load walks all 256 elements; the
        # accumulator is stored and re-read once per warp for extraction
        tile_bytes = 16 * 16 * 4
        stats.shared_bytes += steps * 2 * 2 * tile_bytes + warps * 2 * tile_bytes
        # the shared-memory fill/drain costs extra instruction slots:
        # 256 elements / 32 lanes = 8 vector ops per direction per operand
        stats.warp_instructions += steps * 4 * 8 + warps * 16
        stats.cuda_int_ops += steps * 2 * WARP_SIZE  # shared addressing
        return KernelProfile(
            self.name,
            stats,
            base.dram_load_bytes,
            base.dram_store_bytes,
            serial_steps=base.serial_steps * 2,  # staging lengthens the chain
        )

"""SELL-C-sigma SpMV kernel — the modern sliced-ELL baseline.

One warp per 32-row slice walking its column-major grid: loads are
perfectly coalesced like ELL's, but each slice pads only to its own
width, so skewed matrices stop paying for their heaviest row globally.
Included as part of the format-kernel library the paper's future work
sketches.
"""

from __future__ import annotations

import time

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.sell import SELLMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import CONVERSION_BANDWIDTH

__all__ = ["SELLKernel"]


@register_kernel
class SELLKernel(SpMVKernel):
    """Sliced-ELL SpMV: per-slice padding, coalesced column-major walks."""

    name = "sell"
    label = "SELL-C-sigma"
    capabilities = KernelCapabilities()

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        start = time.perf_counter()
        sell = SELLMatrix.from_coo(csr.tocoo(), c=32, sigma=256)
        host = time.perf_counter() - start
        # conversion: windowed sort of row lengths + one gather pass
        work = 24.0 * csr.nrows + 16.0 * csr.nnz + 8.0 * sell.col_indices.size
        return PreparedOperand(
            kernel_name=self.name,
            data=sell,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=sell.nbytes,
            preprocessing_seconds=work / CONVERSION_BANDWIDTH,
            host_seconds=host,
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        sell: SELLMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n = sell.nrows
        slots = int(sell.col_indices.size)

        # per-slice column-major grids stream coalesced (32 lanes = one
        # slot column), padding included
        tx_vals = stream_transactions(slots, 4)
        tx_cols = stream_transactions(slots, 4)
        valid = sell.col_indices != -1
        group = np.nonzero(valid)[0] // 32 if slots else np.zeros(0, np.int64)
        gathered = sell.col_indices[valid].astype(np.int64) if slots else np.zeros(0, np.int64)
        tx_x = grouped_transactions(group, gathered, 4)
        tx_meta = stream_transactions(sell.slice_widths.size, 8)
        # the permuted store scatters back to original row order
        tx_y = grouped_transactions(
            np.arange(n, dtype=np.int64) // 32 if n else np.zeros(0, np.int64),
            sell.permutation.astype(np.int64),
            4,
        )

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_meta
        stats.store_transactions = tx_y
        stats.global_load_bytes = slots * 8 + sell.slice_widths.size * 8 + n * 4
        stats.global_store_bytes = n * 4
        stats.cuda_flops = 2 * slots
        stats.cuda_int_ops = slots + 3 * n
        stats.warps_launched = max(1, sell.slice_widths.size)
        stats.warp_instructions = 5 * (slots // 32 + 1)

        dram_load = (
            slots * 8
            + sell.slice_widths.size * 8
            + n * 4
            + touched_sector_bytes(np.unique(gathered), 4)
        )
        return KernelProfile(
            self.name,
            stats,
            dram_load,
            n * 4,
            serial_steps=int(sell.slice_widths.astype(np.int64).sum()),
        )

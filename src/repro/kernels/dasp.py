"""DASP analog (Lu & Liu, SC'23): row-bucketed SpMV on tensor cores.

DASP categorizes rows by length into long / medium / short groups, pads
each row to a multiple of the MMA K-dimension, and feeds row fragments to
``mma.m8n8k4``-style units — 8 result rows per MMA, half of Spaden's 16
(§4.3).  Storage keeps the padded values in half precision together with
32-bit column indices and per-fragment metadata; the padding plus the
index array is why its footprint (12.25 B/nnz, Fig. 10b) is 4.3x
Spaden's.

The paper's modified DASP emits float32 like all other methods; note that
the V100-tuned ``mma.m8n8k4`` path is architecture-specific and slower on
L40 (§5.2) — captured by a per-GPU efficiency in the tensor-op count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds
from repro.utils.scan import exclusive_scan, segment_ids

__all__ = ["DASPKernel", "DASPOperand"]

#: MMA K dimension of DASP's ``m8n8k4`` building block.
MMA_K: int = 4
#: Rows per DASP MMA fragment.
MMA_M: int = 8
#: Row-length thresholds of the long / medium / short categorization.
LONG_ROW: int = 1024
SHORT_ROW: int = 8


@dataclass
class DASPOperand:
    """DASP's padded row-major storage."""

    shape: tuple[int, int]
    nnz: int
    #: Row pointers into the padded arrays (rows padded to MMA_K).
    padded_pointers: np.ndarray
    #: Padded column indices (int32; padding repeats the row's last column).
    cols: np.ndarray
    #: Padded half-precision values (padding slots are zero).
    values: np.ndarray
    #: Per-row original lengths.
    row_lengths: np.ndarray
    #: Per-row category: 0 short, 1 medium, 2 long.
    category: np.ndarray

    @property
    def padded_nnz(self) -> int:
        return int(self.values.size)


def _build_dasp(csr: CSRMatrix) -> DASPOperand:
    lengths = csr.row_lengths()
    padded_lengths = -(-lengths // MMA_K) * MMA_K
    # rows with no entries still occupy a fragment slot row
    ptr = exclusive_scan(padded_lengths)
    total = int(ptr[-1])
    cols = np.zeros(total, dtype=np.int32)
    vals = np.zeros(total, dtype=np.float16)
    if csr.nnz:
        rows = segment_ids(csr.row_pointers)
        pos = np.arange(csr.nnz, dtype=np.int64) - csr.row_pointers[rows]
        dest = ptr[rows] + pos
        cols[dest] = csr.col_indices
        vals[dest] = csr.values.astype(np.float16)
        # padding repeats the last valid column to keep gathers in range
        pad_counts = padded_lengths - lengths
        pad_rows = np.repeat(np.arange(csr.nrows, dtype=np.int64), pad_counts)
        if pad_rows.size:
            intra = np.arange(pad_rows.size, dtype=np.int64) - exclusive_scan(pad_counts)[pad_rows]
            pad_dest = ptr[pad_rows] + lengths[pad_rows] + intra
            last_col = np.maximum(csr.row_pointers[pad_rows + 1] - 1, csr.row_pointers[pad_rows])
            safe = lengths[pad_rows] > 0
            cols[pad_dest[safe]] = csr.col_indices[last_col[safe]]
    category = np.where(lengths > LONG_ROW, 2, np.where(lengths > SHORT_ROW, 1, 0)).astype(np.int8)
    return DASPOperand(
        shape=csr.shape,
        nnz=csr.nnz,
        padded_pointers=ptr,
        cols=cols,
        values=vals,
        row_lengths=lengths,
        category=category,
    )


@register_kernel
class DASPKernel(SpMVKernel):
    """Row-length-bucketed tensor-core SpMV (the DASP SC'23 analog)."""

    name = "dasp"
    label = "DASP"
    capabilities = KernelCapabilities(tensor_cores=True)

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        start = time.perf_counter()
        op = _build_dasp(csr)
        host = time.perf_counter() - start
        n = csr.nrows
        device_bytes = (
            op.values.nbytes  # fp16 padded values
            + op.cols.nbytes  # int32 padded columns
            + (n + 1) * 4  # padded pointers
            + n * (4 + 1)  # row permutation + category metadata
            + n * 4  # fp32 staging buffer for the bucketed output
            + op.padded_nnz * 4  # fp32 value copy for the modified fp32 path
        )
        return PreparedOperand(
            kernel_name=self.name,
            data=op,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=device_bytes,
            preprocessing_seconds=model_preprocessing_seconds(
                "dasp", csr.nnz, csr.nrows, padded_nnz=op.padded_nnz
            ),
            host_seconds=host,
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        op: DASPOperand = prepared.data
        # padding slots hold zero values, so they contribute nothing even
        # though their (repeated) columns are gathered
        x16 = x.astype(np.float16).astype(np.float32)
        products = op.values.astype(np.float32) * x16[op.cols]
        rows = segment_ids(op.padded_pointers)
        y = np.bincount(rows, weights=products.astype(np.float64), minlength=op.shape[0])
        return y.astype(np.float32)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        op: DASPOperand = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n = op.shape[0]
        padded = op.padded_nnz

        tx_vals = stream_transactions(padded, 2)
        tx_cols = stream_transactions(padded, 4)
        slab = np.arange(padded, dtype=np.int64) // 32
        tx_x = grouped_transactions(slab, op.cols, 2)  # x kept fp16 for frag B
        tx_ptr = stream_transactions(n + 1, 4)
        tx_meta = stream_transactions(n, 5)
        tx_y = stream_transactions(n, 4)

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_ptr + tx_meta
        stats.store_transactions = tx_y
        stats.global_load_bytes = padded * 6 + (n + 1) * 4 + n * 5
        stats.global_store_bytes = n * 4
        # every padded K-slab of 8 rows is one m8n8k4 MMA: 8 rows x 4 K
        stats.mma_ops = -(-padded // (MMA_M * MMA_K))
        stats.cuda_int_ops = padded + 12 * n  # bucket bookkeeping
        stats.cuda_flops = 2 * n  # final gather of bucketed outputs
        stats.warps_launched = -(-n // MMA_M)
        stats.warp_instructions = 6 * (padded // 32 + 1) + 2 * stats.mma_ops

        dram_load = (
            padded * 6
            + (n + 1) * 4
            + n * 5
            + touched_sector_bytes(np.unique(op.cols), 2)
        )
        return KernelProfile(
            self.name, stats, dram_load, n * 4,
            arch_sensitive_mma=True, serial_steps=stats.mma_ops // 8,
        )

"""CSR Warp16 — the uncoalesced ablation baseline of Fig. 8.

Mirrors Spaden's work assignment (16 matrix rows per warp) but on plain
CSR with CUDA cores: the warp's lanes are statically bound to rows, and
every lane walks its row(s) sequentially.  Neighbouring lanes therefore
read elements of *different* rows on each instruction — addresses tens
to hundreds of bytes apart — so nearly every lane's load lands in its own
sector.  The paper measures this at 23.18x slower than Spaden, the
clearest demonstration that the coalesced access pattern, not the tensor
cores, carries most of the speedup.

Assignment modeled here: warp ``w`` owns rows ``[16w, 16w + 16)``; lanes
``t`` and ``t + 16`` split row ``16w + t`` into its first and second half
and iterate element-by-element.
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds
from repro.utils.scan import segment_ids

__all__ = ["CSRWarp16Kernel"]


@register_kernel
class CSRWarp16Kernel(SpMVKernel):
    """16 rows per warp with static lane binding — the uncoalesced Fig. 8 baseline."""

    name = "csr-warp16"
    label = "CSR Warp16"
    capabilities = KernelCapabilities(simulate=True)

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        return PreparedOperand(
            kernel_name=self.name,
            data=csr,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=csr.nbytes,
            preprocessing_seconds=model_preprocessing_seconds("csr", csr.nnz, csr.nrows),
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def simulate(self, prepared: PreparedOperand, x: np.ndarray, check_overflow: bool = False):
        """Lane-accurate Warp16: warp w owns rows [16w, 16w+16); lanes t
        and t+16 walk the first/second half of row 16w + t element by
        element.  Ground truth for the analytic profile.
        ``check_overflow`` is accepted for interface uniformity; the
        fp64 CUDA-core accumulator has nothing to check."""
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.warp import Warp

        csr: CSRMatrix = prepared.data
        x = self._check(prepared, x)
        memory = GlobalMemory()
        memory.register("row_pointers", csr.row_pointers.astype(np.int32))
        memory.register("col_indices", csr.col_indices)
        memory.register("values", csr.values)
        memory.register("x", x)
        memory.register("y", np.zeros(csr.nrows, dtype=np.float32))
        n = csr.nrows
        for first_row in range(0, n, 16):
            warp = Warp(memory)
            lane_row = first_row + (warp.lanes % 16)
            active = lane_row < n
            rows = np.minimum(lane_row, n - 1)
            starts = warp.load("row_pointers", rows, mask=active & (warp.lanes < 16)).astype(np.int64)
            ends = warp.load("row_pointers", rows + 1, mask=active & (warp.lanes < 16)).astype(np.int64)
            # the second-half lanes receive the bounds by shuffle
            starts = warp.shuffle(starts, warp.lanes % 16)
            ends = warp.shuffle(ends, warp.lanes % 16)
            warp.count_int_ops(3, mask=active & (warp.lanes < 16))
            lengths = np.where(active, ends - starts, 0)
            first_half = (lengths + 1) // 2
            # lane t < 16 walks [start, start+first_half), lane t+16 the rest
            lane_begin = np.where(warp.lanes < 16, starts, starts + first_half)
            lane_count = np.where(warp.lanes < 16, first_half, lengths - first_half)
            acc = np.zeros(32, dtype=np.float64)
            for step in range(int(lane_count.max(initial=0))):
                live = lane_count > step
                idx = np.where(live, lane_begin + step, 0)
                cols = warp.load("col_indices", idx, mask=live).astype(np.int64)
                vals = warp.load("values", idx, mask=live)
                xs = warp.load("x", np.where(live, cols, 0), mask=live)
                warp.count_flops(2, mask=live)
                warp.count_int_ops(1, mask=live)
                acc += np.where(live, vals.astype(np.float64) * xs.astype(np.float64), 0.0)
            # combine the two half-row sums and store from the low lanes
            acc = acc + warp.shuffle_down(acc, 16)
            warp.count_flops(1, mask=active & (warp.lanes < 16))
            warp.store("y", rows, acc.astype(np.float32), mask=active & (warp.lanes < 16))
        return memory.array("y").copy(), memory.stats

    def _instruction_groups(self, csr: CSRMatrix) -> np.ndarray:
        """Group key of the load instruction fetching each CSR entry.

        Lanes step through their half-row in lockstep, so the instruction
        is identified by (warp, step); the half (lane < 16 or >= 16) does
        not separate instructions — both halves' lanes issue together.
        """
        rows = segment_ids(csr.row_pointers)
        lengths = csr.row_lengths()[rows]
        pos = np.arange(csr.nnz, dtype=np.int64) - csr.row_pointers[rows]
        first_half = (lengths + 1) // 2
        step = np.where(pos < first_half, pos, pos - first_half)
        warp = rows // 16
        max_step = int(step.max(initial=0)) + 1
        return warp * max_step + step

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        csr: CSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n, nnz = csr.nrows, csr.nnz

        group = self._instruction_groups(csr)
        entry_idx = np.arange(nnz, dtype=np.int64)
        tx_vals = grouped_transactions(group, entry_idx, 4)
        tx_cols = grouped_transactions(group, entry_idx, 4)
        tx_x = grouped_transactions(group, csr.col_indices, 4)
        # the low 16 lanes read ptr[r] and ptr[r+1] (off-by-one spill)
        warp_of_row = np.arange(n, dtype=np.int64) // 16
        tx_ptr = grouped_transactions(warp_of_row, np.arange(n, dtype=np.int64), 4)
        tx_ptr += grouped_transactions(warp_of_row, np.arange(1, n + 1, dtype=np.int64), 4)
        tx_y = stream_transactions(n, 4)

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_ptr
        stats.store_transactions = tx_y
        stats.global_load_bytes = nnz * 12 + n * 8
        stats.global_store_bytes = n * 4
        stats.cuda_flops = 2 * nnz + n  # per-entry FMA + half-row combine
        stats.cuda_int_ops = nnz + 3 * n
        stats.warps_launched = -(-n // 16)
        # every warp runs for as many steps as its *longest* half-row —
        # the imbalance cost of static lane-to-row binding
        half_steps = -(-csr.row_lengths() // 2)
        pad = (-half_steps.size) % 16
        if pad:
            half_steps = np.concatenate([half_steps, np.zeros(pad, dtype=half_steps.dtype)])
        per_warp_steps = half_steps.reshape(-1, 16).max(axis=1)
        stats.warp_instructions = 6 * int(per_warp_steps.sum()) + n

        # each splintered sector's re-reference (the same row's next
        # element) sits thousands of other warps' accesses away, so the
        # L1/L2 evict it first: DRAM sees the transactions, not the streams
        dram_load = (tx_vals + tx_cols + tx_x + tx_ptr) * 32
        return KernelProfile(
            self.name, stats, dram_load, n * 4, serial_steps=int(per_warp_steps.sum())
        )

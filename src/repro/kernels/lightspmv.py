"""LightSpMV analog (Liu & Schmidt, ASAP'15).

Vector-level dynamic row distribution: warps (or sub-warps) grab the next
unprocessed row from a global atomic counter and process it
cooperatively, 32 consecutive entries per instruction.  Loads within a
row are coalesced, but short rows leave most lanes idle and every row
costs an atomic ticket — which is why the 2015 design is overtaken by
the merge-based cuSPARSE CSR of CUDA 11.6 (§5.2).
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds
from repro.utils.scan import segment_ids

__all__ = ["LightSpMVKernel"]


@register_kernel
class LightSpMVKernel(SpMVKernel):
    """Dynamic per-row warp scheduling (the LightSpMV ASAP'15 analog)."""

    name = "lightspmv"
    label = "LightSpMV"
    capabilities = KernelCapabilities()

    #: Rows fetched per atomic ticket (LightSpMV's vector-level mode).
    ROWS_PER_TICKET: int = 1

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        return PreparedOperand(
            kernel_name=self.name,
            data=csr,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=csr.nbytes,
            preprocessing_seconds=model_preprocessing_seconds("csr", csr.nnz, csr.nrows),
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        csr: CSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n, nnz = csr.nrows, csr.nnz

        rows = segment_ids(csr.row_pointers)
        pos = np.arange(nnz, dtype=np.int64) - csr.row_pointers[rows]
        # one instruction per (row, 32-entry chunk of the row)
        chunk = pos // 32
        max_chunk = int(chunk.max(initial=0)) + 1
        group = rows * max_chunk + chunk
        entry_idx = np.arange(nnz, dtype=np.int64)
        tx_vals = grouped_transactions(group, entry_idx, 4)
        tx_cols = grouped_transactions(group, entry_idx, 4)
        tx_x = grouped_transactions(group, csr.col_indices, 4)
        tx_ptr = 2 * stream_transactions(n, 4)
        tx_y = stream_transactions(n, 4)

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_ptr
        stats.store_transactions = tx_y
        stats.global_load_bytes = nnz * 12 + (n + 1) * 8
        stats.global_store_bytes = n * 4
        stats.cuda_flops = 2 * nnz + 5 * n  # row work + warp reductions
        stats.cuda_int_ops = nnz + 8 * n
        # one atomic row-counter ticket per row batch
        stats.atomic_ops = -(-n // self.ROWS_PER_TICKET)
        stats.warps_launched = -(-n // self.ROWS_PER_TICKET)
        # per row chunk: loads + FMA + loop; per row: ticket + reduction
        chunks = int(np.sum(-(-csr.row_lengths() // 32))) if nnz else 0
        stats.warp_instructions = 10 * chunks + 8 * n

        dram_load = (
            nnz * 8
            + (n + 1) * 4
            + touched_sector_bytes(np.unique(csr.col_indices), 4)
        )
        return KernelProfile(
            self.name,
            stats,
            dram_load,
            n * 4,
            serial_steps=chunks,
            # per-row dynamic dispatch (CUDA 7-era design) sustains well
            # below what the merge-based cuSPARSE kernel achieves on the
            # same traffic — calibrated to §5.2's "surpassed by the modern
            # version of cuSPARSE CSR"
            bandwidth_efficiency=0.62,
        )

"""Scalar CSR SpMV — Algorithm 1 with one thread per row.

The textbook GPU baseline: trivially parallel over rows, but threads of a
warp walk rows of different lengths, so loads of ``values`` /
``col_indices`` by neighbouring lanes are rarely in the same sector and
the warp idles once short rows finish.  Kept as a reference point and a
correctness cross-check; the evaluated cuSPARSE baseline is
:mod:`repro.kernels.csr_vector`.
"""

from __future__ import annotations


import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds
from repro.utils.scan import segment_ids

__all__ = ["CSRScalarKernel"]


@register_kernel
class CSRScalarKernel(SpMVKernel):
    """Algorithm 1 verbatim: one thread walks one row."""

    name = "csr-scalar"
    label = "CSR (thread/row)"
    capabilities = KernelCapabilities(batch=True, simulate=True, fallback_tier=30)

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        # CSR needs no conversion; only the analysis-pass cost is modeled
        return PreparedOperand(
            kernel_name=self.name,
            data=csr,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=csr.nbytes,
            preprocessing_seconds=model_preprocessing_seconds("csr", csr.nnz, csr.nrows),
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def run_many(self, prepared: PreparedOperand, X: np.ndarray) -> np.ndarray:
        """Vectorized batch over the shared CSR gather (bitwise-equal rows)."""
        X = self._check_many(prepared, X)
        return prepared.data.matvec_many(X)

    def simulate(self, prepared: PreparedOperand, x: np.ndarray, check_overflow: bool = False):
        """Lane-accurate Algorithm 1: one thread per row, lockstep warps.

        Ground truth for the analytic profile below — the unit tests
        assert the two agree counter for counter.  ``check_overflow`` is
        accepted for interface uniformity; the fp64 CUDA-core
        accumulator has nothing to check.
        """
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.warp import Warp

        csr: CSRMatrix = prepared.data
        x = self._check(prepared, x)
        memory = GlobalMemory()
        memory.register("row_pointers", csr.row_pointers.astype(np.int32))
        memory.register("col_indices", csr.col_indices)
        memory.register("values", csr.values)
        memory.register("x", x)
        memory.register("y", np.zeros(csr.nrows, dtype=np.float32))
        n = csr.nrows
        for first_row in range(0, n, 32):
            warp = Warp(memory)
            rows = np.minimum(first_row + warp.lanes, n - 1)
            active_rows = (first_row + warp.lanes) < n
            starts = warp.load("row_pointers", rows, mask=active_rows).astype(np.int64)
            ends = warp.load("row_pointers", rows + 1, mask=active_rows).astype(np.int64)
            warp.count_int_ops(2, mask=active_rows)
            acc = np.zeros(32, dtype=np.float64)
            lengths = np.where(active_rows, ends - starts, 0)
            for j in range(int(lengths.max(initial=0))):
                live = lengths > j
                idx = np.where(live, starts + j, 0)
                cols = warp.load("col_indices", idx, mask=live).astype(np.int64)
                vals = warp.load("values", idx, mask=live)
                xs = warp.load("x", np.where(live, cols, 0), mask=live)
                warp.count_flops(2, mask=live)
                warp.count_int_ops(2, mask=live)
                acc += np.where(live, vals.astype(np.float64) * xs.astype(np.float64), 0.0)
            warp.store("y", rows, acc.astype(np.float32), mask=active_rows)
        return memory.array("y").copy(), memory.stats

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        csr: CSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n = csr.nrows
        nwarps = -(-n // 32)

        rows = segment_ids(csr.row_pointers)
        # position of every entry within its row
        pos = np.arange(csr.nnz, dtype=np.int64) - csr.row_pointers[rows]
        # one load instruction per (warp of rows, iteration): lane = row % 32
        group = (rows // 32) * (int(pos.max(initial=0)) + 1) + pos
        entry_idx = np.arange(csr.nnz, dtype=np.int64)
        tx_vals = grouped_transactions(group, entry_idx, 4)
        tx_cols = grouped_transactions(group, entry_idx, 4)
        tx_x = grouped_transactions(group, csr.col_indices, 4)
        # row-pointer loads: each warp reads ptr[r] (sector-aligned) and
        # ptr[r+1] (off by one element, usually spilling a sector)
        warp_of_row = np.arange(n, dtype=np.int64) // 32
        tx_ptr = grouped_transactions(warp_of_row, np.arange(n, dtype=np.int64), 4)
        tx_ptr += grouped_transactions(warp_of_row, np.arange(1, n + 1, dtype=np.int64), 4)
        tx_y = stream_transactions(n, 4)

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_ptr
        stats.store_transactions = tx_y
        stats.global_load_bytes = csr.nnz * 12 + n * 8
        stats.global_store_bytes = n * 4
        stats.cuda_flops = 2 * csr.nnz
        stats.cuda_int_ops = 2 * csr.nnz + 2 * n  # addressing + loop control
        stats.warps_launched = nwarps
        # each warp iterates as long as its longest row
        lengths = csr.row_lengths()
        pad = (-lengths.size) % 32
        if pad:
            lengths = np.concatenate([lengths, np.zeros(pad, dtype=lengths.dtype)])
        per_warp_steps = lengths.reshape(-1, 32).max(axis=1)
        stats.warp_instructions = 5 * int(per_warp_steps.sum()) + n

        dram_load = (tx_vals + tx_cols + tx_x + tx_ptr) * 32
        return KernelProfile(
            self.name, stats, dram_load, n * 4, serial_steps=int(per_warp_steps.sum())
        )

"""COO SpMV kernel — one thread per nonzero with atomic accumulation.

The simplest possible GPU SpMV (§2.1: COO "for its simplicity"): streams
the triplet arrays perfectly coalesced but pays an atomic add per
nonzero, which serializes on heavy rows.
"""

from __future__ import annotations

import numpy as np

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds

__all__ = ["COOKernel"]


@register_kernel
class COOKernel(SpMVKernel):
    """One thread per nonzero, atomic adds into y (the simplest GPU SpMV)."""

    name = "coo"
    label = "COO (atomic)"
    capabilities = KernelCapabilities()

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        coo = csr.tocoo()
        return PreparedOperand(
            kernel_name=self.name,
            data=coo,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=coo.nbytes,
            preprocessing_seconds=model_preprocessing_seconds("csr", csr.nnz, csr.nrows),
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        coo: COOMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n, nnz = coo.nrows, coo.nnz

        tx_rows = stream_transactions(nnz, 4)
        tx_cols = stream_transactions(nnz, 4)
        tx_vals = stream_transactions(nnz, 4)
        slab = np.arange(nnz, dtype=np.int64) // 32
        tx_x = grouped_transactions(slab, coo.cols, 4)
        # atomics: one RMW per nonzero on y (warps of consecutive entries
        # mostly share a row, so sectors coalesce but the RMWs serialize)
        tx_y = grouped_transactions(slab, coo.rows, 4)

        stats.load_transactions = tx_rows + tx_cols + tx_vals + tx_x + tx_y
        stats.store_transactions = tx_y
        stats.global_load_bytes = nnz * 16
        stats.global_store_bytes = nnz * 4
        stats.cuda_flops = 2 * nnz
        stats.cuda_int_ops = nnz
        stats.atomic_ops = nnz
        stats.warps_launched = -(-nnz // 32)
        stats.warp_instructions = 6 * (nnz // 32 + 1)

        dram_load = nnz * 12 + touched_sector_bytes(np.unique(coo.cols), 4)
        return KernelProfile(
            self.name,
            stats,
            dram_load,
            n * 4,
            serial_steps=stats.warps_launched,
        )

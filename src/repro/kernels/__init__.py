"""SpMV kernels: Spaden and every baseline of the paper's evaluation.

Each kernel implements :class:`~repro.kernels.base.SpMVKernel`:

* ``prepare(csr)`` — build the kernel's storage format, reporting the
  preprocessing cost (Fig. 10a),
* ``run(prepared, x)`` — the numeric SpMV (vectorized NumPy with the
  kernel's precision semantics),
* ``profile(prepared, x)`` — exact analytic traffic/compute counters for
  the roofline model (validated against the lane-level simulator where
  one exists).

Registry: :func:`get_kernel` / :func:`available_kernels`.
"""

from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from repro.kernels.coo import COOKernel
from repro.kernels.csr_scalar import CSRScalarKernel
from repro.kernels.csr_vector import CuSparseCSRKernel
from repro.kernels.ell import ELLKernel
from repro.kernels.hyb import HYBKernel
from repro.kernels.csr_warp16 import CSRWarp16Kernel
from repro.kernels.lightspmv import LightSpMVKernel
from repro.kernels.gunrock import GunrockSpMVKernel
from repro.kernels.sell import SELLKernel
from repro.kernels.bsr import CuSparseBSRKernel
from repro.kernels.dasp import DASPKernel
from repro.kernels.spaden import SpadenKernel
from repro.kernels.spaden_nontc import SpadenNoTCKernel
from repro.kernels.spaden_wmma import SpadenWMMAKernel

__all__ = [
    "KernelProfile",
    "PreparedOperand",
    "SpMVKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "COOKernel",
    "CSRScalarKernel",
    "CuSparseCSRKernel",
    "ELLKernel",
    "HYBKernel",
    "CSRWarp16Kernel",
    "LightSpMVKernel",
    "GunrockSpMVKernel",
    "SELLKernel",
    "CuSparseBSRKernel",
    "DASPKernel",
    "SpadenKernel",
    "SpadenNoTCKernel",
    "SpadenWMMAKernel",
]

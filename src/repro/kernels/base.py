"""Kernel interface, registry, and shared traffic-counting helpers."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.constants import SECTOR_BYTES
from repro.errors import KernelError
from repro.exec.modes import ExecutionMode, KernelCapabilities
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats

__all__ = [
    "KernelProfile",
    "PreparedOperand",
    "SpMVKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
    "registered_kernels",
    "validate_operand",
    "stream_transactions",
    "gather_transactions",
    "grouped_transactions",
    "touched_sector_bytes",
]

_REGISTRY: dict[str, type["SpMVKernel"]] = {}


def _verify_capabilities(cls: type["SpMVKernel"]) -> None:
    """Cross-check declared capabilities against the overridden methods.

    A capability flag the implementation does not back (or an override
    the declaration hides) is a registration-time ``ValueError``, so
    duck-typing can never creep back in behind the declarations.
    """
    caps = cls.capabilities
    backing = {
        "batch": cls.run_many is not SpMVKernel.run_many,
        "simulate": cls.simulate is not SpMVKernel.simulate,
        "simulate_batch": cls.simulate_many is not SpMVKernel.simulate_many,
    }
    for flag, overridden in backing.items():
        if getattr(caps, flag) != overridden:
            verb = "overrides" if overridden else "does not override"
            raise ValueError(
                f"kernel {cls.name!r} declares {flag}={getattr(caps, flag)} "
                f"but {verb} the backing method"
            )
    if caps.simulate_batch and not caps.simulate:
        raise ValueError(f"kernel {cls.name!r}: simulate_batch requires simulate")
    if caps.overflow_check and not caps.simulate:
        raise ValueError(f"kernel {cls.name!r}: overflow_check requires simulate")


def register_kernel(cls: type["SpMVKernel"]) -> type["SpMVKernel"]:
    """Class decorator registering a kernel under its ``name``."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"kernel {cls.name!r} already registered")
    _verify_capabilities(cls)
    _REGISTRY[cls.name] = cls
    return cls


def get_kernel(name: str) -> "SpMVKernel":
    """Instantiate a registered kernel by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise KernelError(f"unknown kernel {name!r}; known: {sorted(_REGISTRY)}") from None


def available_kernels() -> list[str]:
    """Names of all registered kernels, sorted."""
    return sorted(_REGISTRY)


def registered_kernels() -> dict[str, type["SpMVKernel"]]:
    """Name -> class view of the registry (for capability-driven callers)."""
    return dict(_REGISTRY)


def validate_operand(
    kernel_name: str, prepared: "PreparedOperand", xs: np.ndarray, *, batched: bool
) -> np.ndarray:
    """The one operand/shape validator behind every kernel entry point.

    Checks that ``prepared`` belongs to ``kernel_name`` and that ``xs``
    is a well-shaped input — ``(ncols,)`` for a vector, ``(k, ncols)``
    for a batch — then returns it as float32.  ``run``, ``run_many``,
    ``simulate`` and ``simulate_many`` all funnel through here, so the
    error messages are identical no matter which path rejects the input.
    """
    if prepared.kernel_name != kernel_name:
        raise KernelError(
            f"operand prepared for {prepared.kernel_name!r} passed to {kernel_name!r}"
        )
    xs = np.asarray(xs)
    if batched:
        if xs.ndim != 2 or xs.shape[1] != prepared.shape[1]:
            raise KernelError(
                f"X has shape {xs.shape}, expected (k, {prepared.shape[1]})"
            )
    else:
        if xs.ndim != 1 or xs.shape[0] != prepared.shape[1]:
            raise KernelError(f"x has shape {xs.shape}, expected ({prepared.shape[1]},)")
    return xs.astype(np.float32)


@dataclass
class PreparedOperand:
    """A matrix converted into one kernel's execution format."""

    kernel_name: str
    #: The kernel-specific storage object (format instance or tuple).
    data: Any
    #: Shape of the logical matrix.
    shape: tuple[int, int]
    #: Nonzeros of the logical matrix.
    nnz: int
    #: Device bytes resident for this representation.
    device_bytes: int
    #: Modeled device-side preprocessing time, seconds (Fig. 10a).
    preprocessing_seconds: float
    #: Measured host wall time of the conversion, seconds.
    host_seconds: float = 0.0

    @property
    def bytes_per_nnz(self) -> float:
        return self.device_bytes / self.nnz if self.nnz else float("inf")

    @property
    def preprocessing_ns_per_nnz(self) -> float:
        return self.preprocessing_seconds * 1e9 / self.nnz if self.nnz else 0.0


@dataclass
class KernelProfile:
    """Traffic/compute counters of one kernel execution.

    ``stats`` holds L1/L2-level transaction counts (what the warp issues);
    ``dram_load_bytes``/``dram_store_bytes`` are the after-cache DRAM
    traffic the profiler computed (streams count once; gathered vectors
    count their compulsory unique-sector footprint, since every evaluated
    x vector fits in the L2 of both boards).
    """

    kernel_name: str
    stats: ExecutionStats
    dram_load_bytes: int
    dram_store_bytes: int
    #: True for kernels built on the V100-tuned ``mma.m8n8k4`` shape,
    #: which the PTX ISA documents as substantially slower on later
    #: architectures (the paper cites this for DASP, §5.2).
    arch_sensitive_mma: bool = False
    #: Total *serial dependent iterations* summed over all warps (e.g. a
    #: Spaden warp's block steps, a BSR warp's blocks).  Feeds the
    #: latency-chain term: when few warps are resident, these chains
    #: cannot be overlapped and bound the runtime regardless of bandwidth.
    serial_steps: int = 0
    #: Fraction of the GPU's sustained bandwidth this kernel's access
    #: pattern achieves (1.0 = a modern tuned kernel).  Used for older
    #: kernels whose scheduling granularity leaves memory slack the
    #: counters cannot see (LightSpMV's per-row dynamic dispatch).
    bandwidth_efficiency: float = 1.0

    @property
    def dram_bytes(self) -> int:
        return self.dram_load_bytes + self.dram_store_bytes

    @property
    def transactions(self) -> int:
        return self.stats.load_transactions + self.stats.store_transactions


class SpMVKernel(ABC):
    """Interface every evaluated SpMV method implements.

    The formal surface is four entry points — ``run`` / ``run_many``
    (numeric), ``simulate`` / ``simulate_many`` (lane-accurate) — plus
    the analytic ``profile``.  Which of them a kernel actually backs is
    declared in :attr:`capabilities` and enforced at registration, so
    callers branch on flags rather than sniffing attributes: the
    simulated entry points exist on every kernel and raise a
    :class:`~repro.errors.KernelError` when the capability is absent.
    """

    #: Registry key (e.g. ``"spaden"``, ``"cusparse-csr"``).
    name: str = ""
    #: Human-readable label used in benchmark tables.
    label: str = ""
    #: Declared capabilities, cross-checked at registration against the
    #: methods the class overrides (see :func:`register_kernel`).
    capabilities: KernelCapabilities = KernelCapabilities()

    @property
    def uses_tensor_cores(self) -> bool:
        """Whether the method computes on tensor cores (from capabilities)."""
        return self.capabilities.tensor_cores

    @abstractmethod
    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        """Convert a CSR matrix into this kernel's format."""

    @abstractmethod
    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        """Execute the SpMV numerically; returns float32 y."""

    @abstractmethod
    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        """Exact analytic traffic/compute counters for one execution."""

    def run_many(self, prepared: PreparedOperand, X: np.ndarray) -> np.ndarray:
        """Execute the SpMV for a batch of vectors.

        ``X`` has shape ``(k, ncols)`` (one input vector per row); the
        result has shape ``(k, nrows)``.  The base implementation is the
        loop fallback — one :meth:`run` per vector, so results are
        bitwise-identical to ``k`` independent calls.  Kernels whose
        format decode can be amortized across the batch (Spaden's bitBSR
        expansion, the CSR gather) override this with a vectorized path
        that preserves the per-vector arithmetic exactly, and declare
        ``capabilities.batch``.
        """
        X = self._check_many(prepared, X)
        out = np.zeros((X.shape[0], prepared.shape[0]), dtype=np.float32)
        for j in range(X.shape[0]):
            out[j] = self.run(prepared, X[j])
        return out

    def simulate(
        self, prepared: PreparedOperand, x: np.ndarray, check_overflow: bool = False
    ) -> tuple[np.ndarray, ExecutionStats]:
        """Lane-accurate execution; ``(y, measured ExecutionStats)``.

        Part of the formal interface but capability-gated: kernels that
        do not model warp behavior inherit this stub, which raises a
        :class:`~repro.errors.KernelError`.  Implementations accept
        ``check_overflow`` uniformly; only kernels declaring
        ``capabilities.overflow_check`` act on it.
        """
        raise KernelError(
            f"kernel {self.name!r} does not support SIMULATED execution "
            f"(capabilities: {', '.join(m.name for m in self.capabilities.modes)})"
        )

    def simulate_many(
        self, prepared: PreparedOperand, X: np.ndarray, check_overflow: bool = False
    ) -> tuple[np.ndarray, ExecutionStats]:
        """Lane-accurate batched execution; ``(Y, merged ExecutionStats)``.

        The base implementation is the loop fallback over
        :meth:`simulate` — available to every simulate-capable kernel,
        with counters merged across the batch.  Kernels whose simulated
        decode amortizes across vectors override it and declare
        ``capabilities.simulate_batch``.
        """
        if not self.capabilities.simulate:
            raise KernelError(
                f"kernel {self.name!r} does not support SIMULATED execution "
                f"(capabilities: {', '.join(m.name for m in self.capabilities.modes)})"
            )
        X = self._check_many(prepared, X)
        out = np.zeros((X.shape[0], prepared.shape[0]), dtype=np.float32)
        merged = ExecutionStats()
        for j in range(X.shape[0]):
            out[j], stats = self.simulate(prepared, X[j], check_overflow=check_overflow)
            merged.merge(stats)
        return out, merged

    # -- shared helpers ------------------------------------------------------
    def _check(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        """Validate a single ``(ncols,)`` input vector."""
        return validate_operand(self.name, prepared, x, batched=False)

    def _check_many(self, prepared: PreparedOperand, X: np.ndarray) -> np.ndarray:
        """Validate a ``(k, ncols)`` batch of input vectors."""
        return validate_operand(self.name, prepared, X, batched=True)


# -- traffic-counting helpers shared by the analytic profilers ---------------


def stream_transactions(count: int, itemsize: int) -> int:
    """Sectors for a fully coalesced streaming read/write of an array."""
    if count <= 0:
        return 0
    return -(-count * itemsize // SECTOR_BYTES)


def gather_transactions(indices: np.ndarray, itemsize: int, group: int = 32) -> int:
    """Sectors issued when warps gather ``indices`` in groups of ``group``.

    Models one load instruction per group of consecutive lanes: each group
    costs the number of distinct sectors its addresses fall in.  Exact and
    vectorized (sort each group, count distinct).
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return 0
    sectors = idx * itemsize // SECTOR_BYTES
    pad = (-sectors.size) % group
    if pad:
        # padding duplicates the final sector so it never adds transactions
        sectors = np.concatenate([sectors, np.full(pad, sectors[-1])])
    grid = np.sort(sectors.reshape(-1, group), axis=1)
    distinct = 1 + np.count_nonzero(np.diff(grid, axis=1), axis=1)
    return int(distinct.sum())


def grouped_transactions(group_keys: np.ndarray, element_indices: np.ndarray, itemsize: int) -> int:
    """Sectors issued when each *group* of lanes is one load instruction.

    ``group_keys[i]`` identifies the warp-instruction that accesses element
    ``element_indices[i]``; the cost of one instruction is the number of
    distinct sectors among its addresses, so the total is the count of
    distinct (group, sector) pairs.  Exact and fully vectorized.
    """
    g = np.asarray(group_keys, dtype=np.int64)
    idx = np.asarray(element_indices, dtype=np.int64)
    if g.shape != idx.shape:
        raise KernelError("group keys and indices must align")
    if g.size == 0:
        return 0
    sectors = idx * itemsize // SECTOR_BYTES
    span = int(sectors.max()) + 1
    return int(np.unique(g * span + sectors).size)


def touched_sector_bytes(indices: np.ndarray, itemsize: int) -> int:
    """Compulsory DRAM footprint of a gathered array: unique sectors x 32.

    This is the after-cache traffic for an operand that fits in L2 (both
    boards' L2 holds every evaluated x), i.e. each sector is fetched from
    DRAM once no matter how many warps re-read it.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        return 0
    return int(np.unique(idx * itemsize // SECTOR_BYTES).size) * SECTOR_BYTES

"""cuSPARSE-CSR analog: merge-based, nonzero-balanced CSR SpMV.

Modern cuSPARSE (CUDA 11.x) assigns warps equal *nonzero* shares rather
than equal rows, streaming ``values`` / ``col_indices`` perfectly
coalesced and carrying row boundaries through a merge path.  Partial row
sums that straddle warp boundaries are fixed up with a short second pass.
This is the strongest CUDA-core baseline in the paper (second fastest
method overall, §5.2).
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds

__all__ = ["CuSparseCSRKernel"]


@register_kernel
class CuSparseCSRKernel(SpMVKernel):
    """Merge-based, nonzero-balanced CSR SpMV (the cuSPARSE 11.x analog)."""

    name = "cusparse-csr"
    label = "cuSPARSE CSR"
    capabilities = KernelCapabilities(batch=True, fallback_tier=20)

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        # cuSPARSE keeps CSR as-is but allocates an analysis/workspace
        # buffer — charged at 4 B per nonzero (Fig. 10b reports 8.06 B/nnz
        # *total*, i.e. the CSR arrays plus this buffer).
        workspace = 0  # the buffer is transient; Fig. 10b counts resident CSR
        return PreparedOperand(
            kernel_name=self.name,
            data=csr,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=csr.nbytes + workspace,
            preprocessing_seconds=model_preprocessing_seconds("csr", csr.nnz, csr.nrows),
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def run_many(self, prepared: PreparedOperand, X: np.ndarray) -> np.ndarray:
        """Vectorized batch over the shared CSR gather (bitwise-equal rows)."""
        X = self._check_many(prepared, X)
        return prepared.data.matvec_many(X)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        csr: CSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n, nnz = csr.nrows, csr.nnz

        # values and col_indices stream coalesced: warps own 32-nnz slabs
        tx_vals = stream_transactions(nnz, 4)
        tx_cols = stream_transactions(nnz, 4)
        # x gathered per 32-nnz slab: exact per-instruction sector count
        slab = np.arange(nnz, dtype=np.int64) // 32
        tx_x = grouped_transactions(slab, csr.col_indices, 4)
        # merge path reads row pointers once (binary-search startup is
        # logarithmic per warp and charged as int ops below)
        tx_ptr = stream_transactions(n + 1, 4)
        tx_y = stream_transactions(n, 4)
        # cross-warp row fixup: one extra partial per warp
        warps = -(-nnz // 32)
        tx_fixup = 2 * stream_transactions(warps, 8)

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_ptr + tx_fixup
        stats.store_transactions = tx_y + tx_fixup
        stats.global_load_bytes = nnz * 12 + (n + 1) * 4 + warps * 8
        stats.global_store_bytes = n * 4 + warps * 8
        stats.cuda_flops = 2 * nnz + warps * 2
        stats.cuda_int_ops = nnz + warps * 24  # merge-path bookkeeping
        stats.warps_launched = warps
        # per 32-nnz slab: value/index/x loads, FMA, merge bookkeeping
        stats.warp_instructions = 8 * warps

        dram_load = (
            nnz * 8
            + (n + 1) * 4
            + warps * 8
            + touched_sector_bytes(np.unique(csr.col_indices), 4)
        )
        dram_store = n * 4 + warps * 8
        return KernelProfile(self.name, stats, dram_load, dram_store, serial_steps=warps)

"""Spaden — bitBSR on tensor cores (the paper's method).

``run`` executes the vectorized numeric path; ``simulate`` drives the
lane-accurate simulator (Algorithms 2-4 per lane); ``profile`` computes
the execution counters *analytically* from the bitBSR structure.  The
analytic profile is exact: the unit tests assert it equals the
simulator's measured counters on arbitrary matrices.

Traffic anatomy per warp (one pair of block rows, Fig. 5):

* 4 broadcast row-pointer reads (2 for a final unpaired row),
* per non-empty block: 3 broadcast scalar reads (block column, bitmap,
  value offset), 2 predicated packed-value gathers that touch only the
  sectors holding true nonzeros, and 2 broadcast x-segment reads,
* one MMA per step, where a warp's step count is the *longer* of its two
  block rows (the shorter row's portion is zero-padded),
* one 32-byte coalesced store of each 8-row y segment.
"""

from __future__ import annotations

import time

import numpy as np

from repro.constants import BLOCK_DIM, BLOCK_SIZE, SECTOR_BYTES, WARP_SIZE
from repro.core.builder import build_bitbsr
from repro.core.spmv import (
    spaden_spmv,
    spaden_spmv_many,
    spaden_spmv_simulated,
    spaden_spmv_simulated_many,
)
from repro.exec.modes import KernelCapabilities
from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    register_kernel,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds

__all__ = ["SpadenKernel"]

_U64 = np.uint64


def _entry_bit_parity(bitbsr: BitBSRMatrix) -> tuple[np.ndarray, np.ndarray]:
    """(block id, bit-position parity) of every stored value, in order."""
    if bitbsr.nblocks == 0:
        return np.zeros(0, np.int64), np.zeros(0, bool)
    shifts = np.arange(BLOCK_SIZE, dtype=_U64)
    mask = ((bitbsr.bitmaps[:, None] >> shifts[None, :]) & _U64(1)).astype(bool)
    bidx, pos = np.nonzero(mask)
    return bidx.astype(np.int64), (pos % 2 == 1)


@register_kernel
class SpadenKernel(SpMVKernel):
    """The paper's method: bitBSR decode + diagonal pairing on tensor cores."""

    name = "spaden"
    label = "Spaden"
    capabilities = KernelCapabilities(
        tensor_cores=True,
        batch=True,
        simulate=True,
        simulate_batch=True,
        overflow_check=True,
        fallback_tier=0,
    )

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        start = time.perf_counter()
        report = build_bitbsr(csr)
        host = time.perf_counter() - start
        bit = report.matrix
        return PreparedOperand(
            kernel_name=self.name,
            data=bit,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=bit.nbytes,
            preprocessing_seconds=model_preprocessing_seconds(
                "bitbsr", csr.nnz, csr.nrows, nblocks=bit.nblocks
            ),
            host_seconds=host,
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return spaden_spmv(prepared.data, x)

    def run_many(self, prepared: PreparedOperand, X: np.ndarray) -> np.ndarray:
        """Vectorized batch: one bitBSR decode shared across the vectors.

        Row ``j`` of the result is bitwise-identical to
        ``run(prepared, X[j])`` (see :func:`repro.core.spmv.spaden_spmv_many`).
        """
        X = self._check_many(prepared, X)
        return spaden_spmv_many(prepared.data, X)

    def simulate_many(
        self, prepared: PreparedOperand, X: np.ndarray, check_overflow: bool = False
    ) -> tuple[np.ndarray, ExecutionStats]:
        """Lane-accurate batched execution, processed per warp.

        Merged counters equal ``k`` times the single-vector counters, so
        the analytic ``profile`` stays exact per vector for batches.
        """
        X = self._check_many(prepared, X)
        return spaden_spmv_simulated_many(prepared.data, X, check_overflow=check_overflow)

    def simulate(
        self, prepared: PreparedOperand, x: np.ndarray, check_overflow: bool = False
    ) -> tuple[np.ndarray, ExecutionStats]:
        """Lane-accurate execution through :mod:`repro.gpu` (small inputs).

        ``check_overflow`` makes the MMA unit raise
        :class:`~repro.errors.NumericalError` at the first non-finite
        accumulator element, identifying the owning lane and register.
        """
        x = self._check(prepared, x)
        return spaden_spmv_simulated(prepared.data, x, check_overflow=check_overflow)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        bit: BitBSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        nbrows = bit.block_rows_count
        nblocks = bit.nblocks
        nnz = bit.nnz
        vbytes = bit.values.itemsize

        lens = np.diff(bit.block_row_pointers)
        top = lens[0::2]
        bottom = lens[1::2]
        if bottom.size < top.size:
            bottom = np.concatenate([bottom, [0]])
        steps = np.maximum(top, bottom)
        full_pairs = nbrows // 2
        odd_warp = nbrows % 2

        # --- MMA and launch ---------------------------------------------
        stats.mma_ops = int(steps.sum())
        stats.warps_launched = full_pairs + odd_warp

        # --- broadcast scalar loads --------------------------------------
        ptr_loads = 4 * full_pairs + 2 * odd_warp
        per_block_broadcasts = 3 * nblocks  # block column, bitmap, offset
        x_loads = 2 * nblocks  # the two predicated x-segment reads

        # --- packed value gathers (the only data-dependent sectors) ------
        bidx, odd = _entry_bit_parity(bit)
        entry_idx = np.arange(nnz, dtype=np.int64)
        sectors = entry_idx * vbytes // SECTOR_BYTES
        span = int(sectors.max(initial=0)) + 1
        tx_even = int(np.unique(bidx[~odd] * span + sectors[~odd]).size)
        tx_odd = int(np.unique(bidx[odd] * span + sectors[odd]).size)

        stats.load_transactions = ptr_loads + per_block_broadcasts + x_loads + tx_even + tx_odd
        stats.global_load_bytes = (
            ptr_loads * WARP_SIZE * 4
            + nblocks * WARP_SIZE * (4 + 8 + 4)  # broadcast column/bitmap/offset
            + nnz * vbytes
            + x_loads * WARP_SIZE * vbytes
        )

        # --- y stores: one 32 B segment per block row ---------------------
        stats.store_transactions = nbrows
        stats.global_store_bytes = nbrows * BLOCK_DIM * 4

        # --- CUDA-core decode work ----------------------------------------
        # Algorithm 2: 8 int ops/lane for the matrix side, 2 for the
        # vector side; Algorithm 4: 3 per warp.
        stats.cuda_int_ops = (8 + 2) * WARP_SIZE * nblocks + 3 * WARP_SIZE * stats.warps_launched
        stats.cuda_flops = 0  # all arithmetic runs on the tensor cores
        # Issue slots per MMA step: a fixed part (broadcast loads, bit
        # tests, rank math, register writes, the MMA) plus an
        # occupancy-dependent part — predicated value gathers replay per
        # live lane/sector, so denser blocks issue more micro-ops while
        # predicated-off lanes cost nothing.  Constants calibrated so
        # modeled Spaden throughput matches the paper's measured levels
        # on both boards.
        k_per_step = nnz / stats.mma_ops if stats.mma_ops else 0.0
        slots_per_step = 12.0 + 0.75 * k_per_step
        stats.warp_instructions = (
            ptr_loads + int(round(slots_per_step * stats.mma_ops)) + 4 * stats.warps_launched
        )

        # --- DRAM traffic (everything streams once; x is L2-resident) -----
        x_segment_sectors = touched_sector_bytes(
            np.unique(bit.block_cols).astype(np.int64) * BLOCK_DIM * vbytes, 1
        )
        dram_load = (
            nnz * vbytes  # packed values
            + nblocks * (8 + 4 + 4)  # bitmaps + block columns + offsets
            + (nbrows + 1) * 4  # block row pointers
            + x_segment_sectors
        )
        dram_store = nbrows * BLOCK_DIM * 4
        return KernelProfile(
            self.name, stats, dram_load, dram_store, serial_steps=int(steps.sum())
        )

"""cuSPARSE-BSR analog: dense 8x8 blocks, one warp per block row.

Perfectly coalesced — a block's 64 float32 values are 256 contiguous
bytes — but every stored zero travels with the block.  On matrices whose
blocks are mostly sparse the wasted traffic dominates (Fig. 9b: Spaden
beats BSR by up to 4.2x there), while on nearly-dense blocks
(raefsky3, TSOPF) BSR's zero-overhead decode wins (1.2-1.5x over
Spaden).
"""

from __future__ import annotations

import time

import numpy as np

from repro.constants import BLOCK_DIM
from repro.formats.bsr import BSRMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds

__all__ = ["CuSparseBSRKernel"]


@register_kernel
class CuSparseBSRKernel(SpMVKernel):
    """Dense 8x8 block SpMV, zeros included (the cuSPARSE BSR analog)."""

    name = "cusparse-bsr"
    label = "cuSPARSE BSR"
    capabilities = KernelCapabilities(simulate=True)

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        start = time.perf_counter()
        bsr = BSRMatrix.from_coo(csr.tocoo(), block_dim=BLOCK_DIM)
        host = time.perf_counter() - start
        return PreparedOperand(
            kernel_name=self.name,
            data=bsr,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=bsr.nbytes,
            preprocessing_seconds=model_preprocessing_seconds(
                "bsr", csr.nnz, csr.nrows, nblocks=bsr.nblocks
            ),
            host_seconds=host,
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def simulate(self, prepared: PreparedOperand, x: np.ndarray, check_overflow: bool = False):
        """Lane-accurate bsrmv: one warp per block row, 256 B blocks
        streamed by halves (32 lanes x 2 rounds), dense 8x8 dot products
        on CUDA cores.  Ground truth for the analytic profile.
        ``check_overflow`` is accepted for interface uniformity; the
        fp64 CUDA-core accumulator has nothing to check."""
        from repro.gpu.memory import GlobalMemory
        from repro.gpu.warp import Warp

        bsr: BSRMatrix = prepared.data
        x = self._check(prepared, x)
        memory = GlobalMemory()
        memory.register("block_row_pointers", bsr.block_row_pointers.astype(np.int32))
        memory.register("block_cols", bsr.block_cols)
        memory.register("blocks", bsr.blocks.reshape(-1))
        xpad = np.zeros(bsr.block_cols_count * BLOCK_DIM, dtype=np.float32)
        xpad[: x.size] = x
        memory.register("x", xpad)
        memory.register("y", np.zeros(bsr.block_rows_count * BLOCK_DIM, dtype=np.float32))

        for brow in range(bsr.block_rows_count):
            warp = Warp(memory)
            start = int(memory.warp_load("block_row_pointers", np.full(32, brow))[0])
            end = int(memory.warp_load("block_row_pointers", np.full(32, brow + 1))[0])
            acc = np.zeros(BLOCK_DIM, dtype=np.float64)
            for b in range(start, end):
                bcol = int(memory.warp_load("block_cols", np.full(32, b))[0])
                # the 64 float32 block values: two coalesced 32-lane rounds
                base = b * 64
                half1 = warp.load("blocks", base + warp.lanes)
                half2 = warp.load("blocks", base + 32 + warp.lanes)
                block = np.concatenate([half1, half2]).reshape(BLOCK_DIM, BLOCK_DIM)
                # x segment: 8 elements read by the first 8 lanes
                seg = warp.load(
                    "x", bcol * BLOCK_DIM + (warp.lanes % BLOCK_DIM), mask=warp.lanes < 8
                )[:8]
                warp.count_flops(4)  # 2 rounds x (multiply + add) per lane
                warp.count_int_ops(2)
                acc += block.astype(np.float64) @ seg.astype(np.float64)
            warp.store(
                "y",
                brow * BLOCK_DIM + warp.lanes % BLOCK_DIM,
                np.resize(acc.astype(np.float32), 32),
                mask=warp.lanes < 8,
            )
            warp.count_int_ops(1, mask=warp.lanes < 8)
        return memory.array("y")[: bsr.nrows].copy(), memory.stats

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        bsr: BSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        nblocks = bsr.nblocks
        n = bsr.nrows
        nbrows = bsr.block_rows_count

        # block values stream coalesced: 256 B = 8 sectors per block
        tx_blocks = stream_transactions(nblocks * 64, 4)
        # block column and the two row pointers are broadcast scalar reads
        tx_bcols = nblocks
        tx_ptr = 2 * nbrows
        # x segments: 8 float32 = 32 B, gathered per block column
        tx_x = grouped_transactions(
            np.arange(nblocks, dtype=np.int64),
            bsr.block_cols.astype(np.int64) * BLOCK_DIM,
            4 * BLOCK_DIM,
        )
        tx_y = stream_transactions(nbrows * BLOCK_DIM, 4)

        stats.load_transactions = tx_blocks + tx_bcols + tx_ptr + tx_x
        stats.store_transactions = tx_y
        stats.global_load_bytes = (
            nblocks * (256 + 32 * 4 + 32)  # values + broadcast column + x segment
            + nbrows * 2 * 32 * 4  # broadcast row pointers
        )
        stats.global_store_bytes = nbrows * BLOCK_DIM * 4
        # the dense 8x8 matvec multiplies zeros too: 2 * 64 flops per block
        stats.cuda_flops = 2 * 64 * nblocks
        stats.cuda_int_ops = 2 * 32 * nblocks + 8 * nbrows
        stats.warps_launched = nbrows
        stats.warp_instructions = 12 * nblocks

        x_segments = np.unique(bsr.block_cols).astype(np.int64) * BLOCK_DIM
        dram_load = (
            nblocks * 260  # blocks + block columns
            + (nbrows + 1) * 4
            + touched_sector_bytes(x_segments, 4 * BLOCK_DIM)
        )
        return KernelProfile(
            self.name, stats, dram_load, nbrows * BLOCK_DIM * 4, serial_steps=nblocks
        )

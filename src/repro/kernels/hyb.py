"""HYB SpMV kernel — ELL regular part plus an atomic COO tail (§2.1).

The classic cuSPARSE hybrid: the ELL part runs the coalesced one-thread-
per-row grid; overflow entries beyond the split width run the COO atomic
kernel.  Strong when most nonzeros fit the regular width.
"""

from __future__ import annotations

import time

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.hyb import HYBMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import CONVERSION_BANDWIDTH

__all__ = ["HYBKernel"]


@register_kernel
class HYBKernel(SpMVKernel):
    """ELL regular part + atomic COO tail (the cuSPARSE HYB analog)."""

    name = "hyb"
    label = "HYB"
    capabilities = KernelCapabilities()

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        start = time.perf_counter()
        hyb = HYBMatrix.from_coo(csr.tocoo())
        host = time.perf_counter() - start
        work = 12.0 * csr.nnz + 8.0 * hyb.ell.col_indices.size
        return PreparedOperand(
            kernel_name=self.name,
            data=hyb,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=hyb.nbytes,
            preprocessing_seconds=work / CONVERSION_BANDWIDTH,
            host_seconds=host,
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        hyb: HYBMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n = hyb.nrows
        slots = int(hyb.ell.col_indices.size)
        tail = hyb.tail.nnz

        # ELL pass (column-major coalesced, padding included)
        tx_ell = 2 * stream_transactions(slots, 4)
        valid = hyb.ell.col_indices != -1
        flat_valid = valid.T.reshape(-1)
        gathered = hyb.ell.col_indices.T.reshape(-1)[flat_valid] if slots else np.zeros(0, np.int64)
        group = np.nonzero(flat_valid)[0] // 32 if slots else np.zeros(0, np.int64)
        tx_x_ell = grouped_transactions(group, gathered, 4)
        tx_y = stream_transactions(n, 4)

        # COO tail pass (atomics)
        tx_tail = 3 * stream_transactions(tail, 4)
        tail_slab = np.arange(tail, dtype=np.int64) // 32
        tx_x_tail = grouped_transactions(tail_slab, hyb.tail.cols, 4)
        tx_y_tail = grouped_transactions(tail_slab, hyb.tail.rows, 4)

        stats.load_transactions = tx_ell + tx_x_ell + tx_tail + tx_x_tail + tx_y_tail
        stats.store_transactions = tx_y + tx_y_tail
        stats.global_load_bytes = slots * 8 + tail * 16
        stats.global_store_bytes = n * 4 + tail * 4
        stats.cuda_flops = 2 * slots + 2 * tail
        stats.cuda_int_ops = slots + 2 * tail
        stats.atomic_ops = tail
        stats.warps_launched = -(-n // 32) + -(-max(tail, 1) // 32)
        stats.warp_instructions = 5 * (slots // 32 + 1) + 6 * (tail // 32 + 1)

        cols_union = np.unique(np.concatenate([gathered, hyb.tail.cols.astype(np.int64)]))
        dram_load = slots * 8 + tail * 12 + touched_sector_bytes(cols_union, 4)
        return KernelProfile(
            self.name,
            stats,
            dram_load,
            n * 4 + tail * 4,
            serial_steps=-(-n // 32) * hyb.ell.width + tail // 32,
        )

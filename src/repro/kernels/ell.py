"""ELL SpMV kernel — the classic regular-grid GPU baseline (§2.1).

One thread per row walking the column-major padded grid: loads are
perfectly coalesced (lane = row, slot-major iteration), at the cost of
moving padding for every short row.  Strong on uniform row lengths,
pathological on skew — the trade HYB repairs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.formats.ell import ELLMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import CONVERSION_BANDWIDTH

__all__ = ["ELLKernel"]


@register_kernel
class ELLKernel(SpMVKernel):
    """Padded regular-grid SpMV: coalesced but pays for every padding slot."""

    name = "ell"
    label = "ELL"
    capabilities = KernelCapabilities()

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        start = time.perf_counter()
        ell = ELLMatrix.from_coo(csr.tocoo())
        host = time.perf_counter() - start
        # conversion: one gather pass + the padded writes
        work = 8.0 * csr.nnz + 8.0 * ell.col_indices.size
        return PreparedOperand(
            kernel_name=self.name,
            data=ell,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=ell.nbytes,
            preprocessing_seconds=work / CONVERSION_BANDWIDTH,
            host_seconds=host,
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return prepared.data.matvec(x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        ell: ELLMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n = ell.nrows
        slots = int(ell.col_indices.size)  # n * width, padding included

        # column-major slot grid: warps of 32 consecutive rows stream
        # each slot column coalesced — every slot travels, pad or not
        tx_vals = stream_transactions(slots, 4)
        tx_cols = stream_transactions(slots, 4)
        valid = ell.col_indices != -1
        group = (np.nonzero(valid.T.reshape(-1))[0] // 32) if slots else np.zeros(0, np.int64)
        gathered = ell.col_indices.T.reshape(-1)[valid.T.reshape(-1)] if slots else np.zeros(0, np.int64)
        tx_x = grouped_transactions(group, gathered, 4)
        tx_y = stream_transactions(n, 4)

        stats.load_transactions = tx_vals + tx_cols + tx_x
        stats.store_transactions = tx_y
        stats.global_load_bytes = slots * 8
        stats.global_store_bytes = n * 4
        stats.cuda_flops = 2 * slots  # padding multiplies zeros
        stats.cuda_int_ops = slots + 2 * n
        stats.warps_launched = -(-n // 32)
        stats.warp_instructions = 5 * (slots // 32 + 1)

        dram_load = slots * 8 + touched_sector_bytes(np.unique(gathered), 4)
        return KernelProfile(
            self.name,
            stats,
            dram_load,
            n * 4,
            serial_steps=-(-n // 32) * ell.width,
        )

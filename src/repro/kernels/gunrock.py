"""Gunrock-style SpMV: message passing along graph edges.

Gunrock expresses SpMV as an *advance* over all edges — every nonzero is
a message from its column (source vertex) to its row (destination).  The
frontier machinery materializes per-edge work items, so besides the CSR
arrays the kernel moves per-edge destination ids and partial products
through memory, then segment-reduces them into y.  The generality costs
roughly 2-3x against a dedicated SpMV (§5.2: "less performant than
specific sparse matrix libraries").
"""

from __future__ import annotations

import numpy as np

from repro.formats.csr import CSRMatrix
from repro.gpu.counters import ExecutionStats
from repro.exec.modes import KernelCapabilities
from repro.kernels.base import (
    KernelProfile,
    PreparedOperand,
    SpMVKernel,
    grouped_transactions,
    register_kernel,
    stream_transactions,
    touched_sector_bytes,
)
from repro.perf.preprocessing import model_preprocessing_seconds

__all__ = ["GunrockSpMVKernel"]


@register_kernel
class GunrockSpMVKernel(SpMVKernel):
    """Edge-centric advance + segmented reduce (the Gunrock analog)."""

    name = "gunrock"
    label = "Gunrock"
    capabilities = KernelCapabilities()

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        # Gunrock keeps the graph in CSR plus frontier scratch (per-edge
        # work queue), but the scratch is transient.
        return PreparedOperand(
            kernel_name=self.name,
            data=csr,
            shape=csr.shape,
            nnz=csr.nnz,
            device_bytes=csr.nbytes,
            preprocessing_seconds=model_preprocessing_seconds("csr", csr.nnz, csr.nrows),
        )

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        csr: CSRMatrix = prepared.data
        # numerically: the advance + segmented reduce is a plain SpMV
        return csr.matvec(x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        csr: CSRMatrix = prepared.data
        self._check(prepared, x)
        stats = ExecutionStats()
        n, nnz = csr.nrows, csr.nnz

        # advance pass: stream CSR + gather x, emit per-edge partials
        # (destinations are recovered from the row pointers during the
        # reduce pass, so only the 4 B product travels per edge)
        tx_vals = stream_transactions(nnz, 4)
        tx_cols = stream_transactions(nnz, 4)
        slab = np.arange(nnz, dtype=np.int64) // 32
        tx_x = grouped_transactions(slab, csr.col_indices, 4)
        tx_ptr = 2 * stream_transactions(n + 1, 4)  # both passes read it
        tx_emit = stream_transactions(nnz, 4)
        # reduce pass: read the partials back, segment-reduce, write y
        tx_pairs = stream_transactions(nnz, 4)
        tx_y = stream_transactions(n, 4)

        stats.load_transactions = tx_vals + tx_cols + tx_x + tx_ptr + tx_pairs
        stats.store_transactions = tx_emit + tx_y
        stats.global_load_bytes = nnz * 12 + 2 * (n + 1) * 4 + nnz * 4
        stats.global_store_bytes = nnz * 4 + n * 4
        stats.cuda_flops = 3 * nnz  # multiply + two-pass reduction adds
        stats.cuda_int_ops = 2 * nnz + 8 * n  # frontier bookkeeping
        stats.warps_launched = 2 * -(-nnz // 32)
        # advance pass + segmented-reduce pass, each touching every edge
        stats.warp_instructions = 14 * (nnz // 32 + 1)

        dram_load = (
            nnz * 8
            + 2 * (n + 1) * 4
            + nnz * 4  # per-edge partials re-read by the reduce pass
            + touched_sector_bytes(np.unique(csr.col_indices), 4)
        )
        dram_store = nnz * 4 + n * 4
        return KernelProfile(
            self.name, stats, dram_load, dram_store, serial_steps=stats.warps_launched
        )

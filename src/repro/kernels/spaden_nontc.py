"""Spaden w/o TC — the Fig. 8 ablation: bitBSR decoded on CUDA cores.

Identical storage and memory behaviour to Spaden (bitBSR, coalesced
block traffic, zero-skipping decode) but the block-vector products run on
CUDA cores: each lane multiplies its two decoded elements by the matching
x entries and the eight lanes of a block row combine partial sums with
shuffle reductions.  The paper measures Spaden 1.47x faster than this
variant — the share of the speedup attributable to the tensor cores
themselves.
"""

from __future__ import annotations

import numpy as np

from repro.constants import BLOCK_DIM, WARP_SIZE
from repro.core.spmv import spaden_spmv
import dataclasses

from repro.formats.bitbsr import BitBSRMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels.base import KernelProfile, PreparedOperand, register_kernel
from repro.kernels.spaden import SpadenKernel

__all__ = ["SpadenNoTCKernel"]


@register_kernel
class SpadenNoTCKernel(SpadenKernel):
    """Fig. 8 ablation: bitBSR decode with the MAC/reduce on CUDA cores."""

    name = "spaden-no-tc"
    label = "Spaden w/o TC"
    # inherits Spaden's batch/simulate paths; runs on CUDA cores and
    # takes the chain slot right after the tensor-core original
    capabilities = dataclasses.replace(
        SpadenKernel.capabilities, tensor_cores=False, fallback_tier=10
    )

    def prepare(self, csr: CSRMatrix) -> PreparedOperand:
        prepared = super().prepare(csr)
        prepared.kernel_name = self.name
        return prepared

    def run(self, prepared: PreparedOperand, x: np.ndarray) -> np.ndarray:
        x = self._check(prepared, x)
        return spaden_spmv(prepared.data, x)

    def profile(self, prepared: PreparedOperand, x: np.ndarray) -> KernelProfile:
        # memory side is identical to Spaden; swap the compute terms
        base = super().profile(prepared, x)
        bit: BitBSRMatrix = prepared.data
        stats = base.stats
        nblocks = bit.nblocks
        # every decoded lane pair multiplies against x (zeros included —
        # the ternary writes computed zeros) and joins a log2(8)-round
        # shuffle reduction per 8-element row segment
        stats.cuda_flops = (2 * 2 + 2 * 3) * WARP_SIZE * nblocks
        stats.cuda_int_ops += 3 * WARP_SIZE * nblocks  # reduction lane math
        # the CUDA-core multiply + cross-lane reduce + accumulate replaces
        # the single MMA with a dependent ~60-slot sequence per step (two
        # blocks: FMAs, three shuffle-add rounds, predicated accumulate,
        # and their stalls): this is where the tensor core's 1.47x lives
        steps = int(stats.mma_ops)
        stats.warp_instructions += 60 * steps
        stats.mma_ops = 0
        # the per-step dependent chain is longer too: the reduce must
        # finish before the accumulator is reusable
        return KernelProfile(
            self.name,
            stats,
            base.dram_load_bytes,
            base.dram_store_bytes,
            serial_steps=steps + steps // 2,
            # the in-warp multiply + shuffle-reduce + accumulate sequence
            # sits between consecutive block loads, lengthening the
            # critical path and starving the memory system relative to
            # the fire-and-forget MMA hand-off — calibrated to the
            # paper's measured 1.47x tensor-core contribution
            bandwidth_efficiency=0.68,
        )

"""Composable middleware around a kernel invocation.

Three concerns used to be wired by hand at every call site and are
lifted here instead:

Tracers
    :mod:`repro.gpu.instrument` holds a *single* global tracer slot.
    :func:`install_tracers` turns an ``execute(tracers=...)`` sequence
    into one installation for the duration of the run stage — a no-op
    for the empty sequence (so an ambient tracer installed by the
    caller, e.g. ``with Sanitizer(): engine.spmv(...)``, stays live),
    a plain :class:`~repro.gpu.instrument.tracing` for one tracer, and a
    :class:`TracerStack` fan-out when several observers watch the same
    execution.

Faults
    A fault is any callable ``(kernel_name, prepared) -> None`` that may
    mutate a freshly prepared operand — the fault-injection seam the
    robustness tests drive.  :class:`OperandFault` wraps a hook with
    bookkeeping of which kernels it fired on.

Observability
    :func:`stage_span` opens one :mod:`repro.obs` span around an exec
    stage (or a chain attempt, or an engine batch).  It is the *only*
    route through which the observability layer sees an execution: obs
    code never touches kernels directly (the boundary gate enforces
    it), and the span is passive — errors propagate untouched, results
    are never read back.

Deadlines
    :func:`deadline_checkpoint` is the enforcement point for the
    :mod:`repro.resilience` time budgets: the executor calls it at
    every stage boundary, and the chain walker between attempts.  A
    ``None`` deadline makes it a no-op, so requests without a budget
    pay nothing.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TYPE_CHECKING

from repro.gpu.instrument import Tracer, tracing
from repro.obs import span as _obs_span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.base import PreparedOperand
    from repro.resilience.deadline import Deadline

__all__ = [
    "OperandFault",
    "TracerStack",
    "apply_faults",
    "deadline_checkpoint",
    "install_tracers",
    "stage_span",
]


def deadline_checkpoint(deadline: "Deadline | None", stage: str) -> None:
    """Raise :class:`~repro.errors.DeadlineExceededError` if the budget
    is spent; no-op without a deadline.  The stage machine is the
    checkpoint — no watchdog threads, no signal handlers: new work
    simply refuses to start once the budget is gone."""
    if deadline is not None:
        deadline.check(stage)


def stage_span(name: str, **attributes: object):
    """Open an observability span on the process-wide log.

    The middleware seam consumers and the executor instrument through;
    yields the live :class:`~repro.obs.Span` so callers may refine
    attributes (e.g. the resolved kernel name) while it is open.
    """
    return _obs_span(name, **attributes)

#: Signature every operand fault satisfies.
FaultHook = Callable[[str, "PreparedOperand"], None]


class TracerStack(Tracer):
    """Fan one instrumentation stream out to several tracers.

    The gpu layer calls each hook once; the stack forwards it to every
    child in order.  A child that raises (the sanitizer's
    halt-on-violation mode) aborts the instruction exactly as it would
    when installed alone.
    """

    def __init__(self, tracers: Iterable[Tracer]):
        self.tracers = tuple(tracers)

    def on_warp_begin(self, warp) -> None:
        for tracer in self.tracers:
            tracer.on_warp_begin(warp)

    def on_global_access(
        self, memory, name, kind, indices, mask, itemsize, sectors, ideal_sectors
    ) -> None:
        for tracer in self.tracers:
            tracer.on_global_access(
                memory, name, kind, indices, mask, itemsize, sectors, ideal_sectors
            )

    def on_fragment_access(self, fragment, registers) -> None:
        for tracer in self.tracers:
            tracer.on_fragment_access(fragment, registers)


def install_tracers(tracers: Sequence[Tracer]):
    """Context manager installing ``tracers`` around a run stage.

    Empty sequences leave the ambient tracer untouched; otherwise the
    installation *replaces* the ambient tracer for the duration (add the
    ambient tracer to the sequence explicitly to stack on top of it).
    """
    tracers = tuple(tracers)
    if not tracers:
        return contextlib.nullcontext()
    if len(tracers) == 1:
        return tracing(tracers[0])
    return tracing(TracerStack(tracers))


@dataclass
class OperandFault:
    """A fault-injection hook with per-kernel firing bookkeeping."""

    hook: FaultHook
    #: Kernel names the hook has been applied to, in order.
    fired: list[str] = field(default_factory=list)

    def __call__(self, kernel_name: str, prepared: "PreparedOperand") -> None:
        self.hook(kernel_name, prepared)
        self.fired.append(kernel_name)


def apply_faults(
    kernel_name: str, prepared: "PreparedOperand", faults: Sequence[FaultHook]
) -> None:
    """Run every fault hook against a freshly prepared operand."""
    for fault in faults:
        fault(kernel_name, prepared)

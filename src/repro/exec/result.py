"""Result types of the execution layer.

:class:`DegradationEvent` lives here (it is produced by the chain walker
in :mod:`repro.exec.chain`); :mod:`repro.robustness.dispatch` re-exports
it so PR-1 callers keep importing from the robustness package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.exec.modes import ExecutionMode
from repro.gpu.counters import ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.kernels.base import KernelProfile, PreparedOperand

__all__ = ["DegradationEvent", "ExecutionResult"]


@dataclass(frozen=True)
class DegradationEvent:
    """One abandoned kernel attempt."""

    #: Kernel that failed.
    kernel: str
    #: Stage the failure surfaced in: prepare / verify / run / check.
    stage: str
    #: Exception class name (e.g. ``"BitmapPopcountError"``).
    cause: str
    #: The exception message.
    detail: str
    #: Kernel tried next, or ``None`` if the chain was exhausted.
    fallback: str | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        nxt = f" -> {self.fallback}" if self.fallback else " (chain exhausted)"
        return f"[{self.kernel}/{self.stage}] {self.cause}: {self.detail}{nxt}"


@dataclass
class ExecutionResult:
    """Outcome of one :func:`repro.exec.execute` call.

    ``y`` is always the float32 result (``(nrows,)`` for a vector,
    ``(k, nrows)`` for a batch).  ``stats`` is populated for SIMULATED
    executions, ``profile`` for PROFILED ones; both are ``None``
    otherwise.  ``events`` is the degradation log — empty for a direct
    ``execute``, one entry per abandoned attempt when the result came
    through :func:`repro.exec.execute_chain`.
    """

    #: The computed result (float32).
    y: np.ndarray
    #: Name of the kernel that produced ``y``.
    kernel: str
    #: The mode the successful execution actually ran in.
    mode: ExecutionMode
    #: The operand the run used (cache keys, device bytes, reuse).
    operand: "PreparedOperand"
    #: Measured simulator counters (SIMULATED mode only).
    stats: ExecutionStats | None = None
    #: Exact analytic counters (PROFILED mode only).
    profile: "KernelProfile | None" = None
    #: Host seconds spent in ``prepare`` (0.0 for pre-prepared operands).
    prepare_seconds: float = 0.0
    #: Host seconds spent in the run stage.
    run_seconds: float = 0.0
    #: One event per abandoned attempt, in chain order.
    events: list[DegradationEvent] = field(default_factory=list)
    #: Kernel names tried, including the successful one.
    attempts: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when at least one kernel was abandoned before ``y``."""
        return bool(self.events)

"""Execution modes and declared kernel capabilities.

The paper's contribution is one algorithm observed three ways: the
numeric result (§4.3), the lane/register-accurate simulation (§3), and
the analytic traffic counters (§5).  :class:`ExecutionMode` names those
observation paths; :class:`KernelCapabilities` is the per-kernel
declaration of which paths exist, replacing ``hasattr`` duck-typing at
every call site.

This module is the dependency root of :mod:`repro.exec`: it imports
nothing from the rest of the package (``kernels/base.py`` imports it, so
it must stay leaf-level).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ExecutionMode", "KernelCapabilities"]


class ExecutionMode(enum.Enum):
    """The three observation paths of one SpMV execution.

    NUMERIC
        The vectorized numeric path (``run`` / ``run_many``): the
        fastest way to a correct ``y``, no counters.
    SIMULATED
        The lane-accurate simulator (``simulate`` / ``simulate_many``):
        warps, fragments, and the memory system step per instruction,
        producing measured :class:`~repro.gpu.counters.ExecutionStats`.
        Capability-gated — only kernels modeling warp behavior have it.
    PROFILED
        The numeric path plus the exact analytic
        :class:`~repro.kernels.base.KernelProfile` (§5 counters computed
        from structure, no simulation).  Single-vector only.
    """

    NUMERIC = "numeric"
    SIMULATED = "simulated"
    PROFILED = "profiled"


@dataclass(frozen=True)
class KernelCapabilities:
    """What one kernel declares it can do.

    Declarations are verified at registration time against the methods
    the class actually overrides (see
    :func:`repro.kernels.base.register_kernel`), so a capability flag
    can never silently desync from the implementation.
    """

    #: The method computes on tensor cores (drives the pre-flight
    #: fragment-layout verification and the fallback-chain ordering).
    tensor_cores: bool = False
    #: ``run_many`` is a vectorized batch path that amortizes the format
    #: decode across vectors.  The loop fallback on the base class means
    #: every kernel *accepts* batches; this flag marks the ones that
    #: gain from them.
    batch: bool = False
    #: A lane-accurate ``simulate`` path exists.
    simulate: bool = False
    #: A natively batched ``simulate_many`` exists (one simulated decode
    #: serving the whole batch).  Implies ``simulate``.
    simulate_batch: bool = False
    #: ``simulate(..., check_overflow=True)`` performs accumulator
    #: overflow detection (fp16 MMA kernels); kernels accumulating in
    #: fp32/fp64 accept the flag but have nothing to check.
    overflow_check: bool = False
    #: Position in the graceful-degradation chain, or ``None`` to stay
    #: out of it.  Lower tiers are tried first; ties break on
    #: registration name.  Tensor-core kernels take the low tiers, the
    #: always-works scalar baseline the highest.
    fallback_tier: int | None = None

    def supports(self, mode: ExecutionMode) -> bool:
        """Whether this kernel implements ``mode``."""
        if mode is ExecutionMode.SIMULATED:
            return self.simulate
        return True

    @property
    def modes(self) -> tuple[ExecutionMode, ...]:
        """Every supported :class:`ExecutionMode`, in enum order."""
        return tuple(m for m in ExecutionMode if self.supports(m))

"""Capability-derived fallback chains and the chain walker.

:func:`default_chain` derives the graceful-degradation order from the
kernel registry instead of a hardcoded name tuple: every kernel
declaring a ``fallback_tier`` participates, sorted by tier (tensor-core
kernels hold the low tiers, the always-works scalar baseline the
highest), so registering a kernel cannot silently desync the chain.

:func:`execute_chain` walks a chain through :func:`repro.exec.execute`,
recording a :class:`~repro.exec.result.DegradationEvent` per abandoned
attempt.  Hooks let the engine keep its cache-through prepare
(``prepare=``) and poisoned-entry eviction (``invalidate=``) without
reimplementing the walk.

The walker is also where the :mod:`repro.resilience` policies act:

* an open **circuit breaker** skips its kernel up front — no prepare,
  no verify, no run — recording a ``circuit-open`` degradation event;
* a **retry policy** re-attempts the *same* kernel on retryable causes
  (after evicting any poisoned cached operand, so the retry re-prepares
  from the pristine CSR) with seeded backoff, before degrading;
* a **deadline** is checked between attempts and inside each attempt's
  stage machine; a :class:`~repro.errors.DeadlineExceededError` is
  terminal — it propagates instead of degrading, because a slower
  fallback cannot beat a clock that already ran out.

All three default to ``None`` and cost nothing when absent.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.errors import DeadlineExceededError, KernelError, ReproError
from repro.exec.executor import Operand, execute
from repro.exec.middleware import FaultHook, deadline_checkpoint, stage_span
from repro.exec.modes import ExecutionMode
from repro.exec.result import DegradationEvent, ExecutionResult
from repro.formats.csr import CSRMatrix
from repro.gpu.instrument import Tracer
from repro.kernels.base import PreparedOperand, get_kernel, registered_kernels
from repro.obs import get_registry
from repro.resilience import RECOVERABLE_EXCEPTIONS, RetryClass
from repro.resilience.breaker import BreakerBoard
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy


def _count_degradation(event: DegradationEvent) -> None:
    """Record one abandoned attempt in the process-wide registry."""
    get_registry().counter(
        "exec_degradations_total",
        "Kernel attempts abandoned by the chain walker, by failing stage.",
        labels=("kernel", "exec_stage", "cause"),
    ).inc(kernel=event.kernel, exec_stage=event.stage, cause=event.cause)


def _count_retry(kernel: str, cause: str) -> None:
    get_registry().counter(
        "exec_retries_total",
        "Same-kernel re-attempts on retryable causes, before degradation.",
        labels=("kernel", "cause"),
    ).inc(kernel=kernel, cause=cause)

__all__ = ["ChainExhaustedError", "default_chain", "execute_chain"]

#: Either a fixed mode for the whole chain or a per-kernel chooser
#: (called with the kernel instance) — the engine uses the latter to
#: simulate only on kernels with a natively batched simulator.
ModeSpec = Union[ExecutionMode, Callable[["object"], ExecutionMode]]


class ChainExhaustedError(KernelError):
    """Every kernel in a chain failed; carries the degradation events."""

    def __init__(self, message: str, events: list[DegradationEvent]):
        super().__init__(message)
        self.events = events


def default_chain() -> tuple[str, ...]:
    """The fallback chain the registry implies, fastest first.

    Kernels with ``capabilities.fallback_tier`` set, ordered by tier
    (then name, for reproducibility on ties).  Importing
    :mod:`repro.kernels` here guarantees every built-in kernel has
    registered before the chain is read.
    """
    import repro.kernels  # noqa: F401  (side effect: registry population)

    members = [
        (cls.capabilities.fallback_tier, name)
        for name, cls in registered_kernels().items()
        if cls.capabilities.fallback_tier is not None
    ]
    return tuple(name for _tier, name in sorted(members))


def execute_chain(
    csr: CSRMatrix,
    x: np.ndarray,
    chain: Sequence[str] | None = None,
    *,
    mode: ModeSpec = ExecutionMode.NUMERIC,
    tracers: Sequence[Tracer] = (),
    faults: Sequence[FaultHook] = (),
    check_overflow: bool = False,
    deep_verify: bool = False,
    prepare: Callable[[str], PreparedOperand] | None = None,
    invalidate: Callable[[str], None] | None = None,
    deadline: Deadline | None = None,
    retry: RetryPolicy | None = None,
    breakers: BreakerBoard | None = None,
) -> ExecutionResult:
    """Walk ``chain`` through :func:`~repro.exec.execute` until one wins.

    Each attempt re-prepares from the pristine ``csr`` (or asks the
    ``prepare`` hook, which cache-through callers use), so a corrupted
    operand never contaminates the next kernel's attempt.  A failing
    attempt is recorded as a :class:`DegradationEvent` — with the stage
    the executor tagged on the exception — and ``invalidate`` (if given)
    is told to drop any cached state for that kernel.  Beside
    :class:`~repro.errors.ReproError`, the safelisted recoverable
    exceptions (:data:`~repro.resilience.RECOVERABLE_EXCEPTIONS`:
    ``MemoryError``, ``ArithmeticError``) degrade the same way; true
    corruption — ``KeyboardInterrupt``, programming errors — always
    propagates.

    With ``breakers``, each kernel's circuit is consulted *before* any
    work: an open circuit records a ``circuit-open`` event (stage
    ``"dispatch"``) and falls through without attempting execution, and
    every real attempt's outcome is fed back to the board — on the same
    failure that triggers ``invalidate``, so the quarantine (breaker
    trip) and the cache eviction happen together.  With ``retry``,
    retryable causes (see :func:`~repro.resilience.classify_exception`)
    are re-attempted on the same kernel with seeded backoff — after
    ``invalidate``, so the retry re-prepares — and only the final
    failure degrades.  ``deadline`` is checked between attempts and at
    every stage boundary inside them; a miss raises
    :class:`~repro.errors.DeadlineExceededError` without walking
    further.

    ``chain`` also accepts an :class:`~repro.plan.ExecutionPlan` (or
    anything carrying an ordered ``kernels`` attribute): the walker
    consumes the plan's kernel order exactly as it would a name tuple,
    so planners slot in without the exec layer importing
    :mod:`repro.plan`.  A plain sequence of names (or ``None`` for the
    registry default) walks the byte-identical pre-planner path.

    The returned result carries the accumulated ``events`` and the full
    ``attempts`` list.  Raises :class:`ChainExhaustedError` (a
    :class:`~repro.errors.KernelError`) only if every kernel fails.
    """
    plan_kernels = getattr(chain, "kernels", None)
    if plan_kernels is not None:
        chain = tuple(plan_kernels)
    if chain is None:
        chain = default_chain()
    if not chain:
        raise KernelError("empty kernel chain")

    events: list[DegradationEvent] = []
    attempts: list[str] = []

    def abandon(name: str, stage: str, cause: str, detail: str, fallback: str | None):
        event = DegradationEvent(name, stage, cause, detail, fallback)
        events.append(event)
        _count_degradation(event)

    with stage_span("exec.chain", chain=",".join(chain)) as chain_span:
        for i, name in enumerate(chain):
            fallback = chain[i + 1] if i + 1 < len(chain) else None
            if breakers is not None and not breakers.allow(name):
                # quarantined: skipped up front, nothing prepared or run
                abandon(
                    name,
                    "dispatch",
                    "circuit-open",
                    f"circuit for kernel {name!r} is "
                    f"{breakers.state(name).value}; skipped without attempting",
                    fallback,
                )
                continue
            attempts.append(name)
            result = None
            for try_number in range(retry.max_attempts if retry is not None else 1):
                deadline_checkpoint(deadline, "dispatch")
                try:
                    with stage_span(
                        "exec.attempt", kernel=name, position=i, try_number=try_number
                    ) as attempt:
                        kernel = get_kernel(name)
                        operand: Operand = prepare(name) if prepare is not None else csr
                        result = execute(
                            kernel,
                            operand,
                            x,
                            mode=mode(kernel) if callable(mode) else mode,
                            tracers=tracers,
                            faults=faults,
                            check_overflow=check_overflow,
                            deep_verify=deep_verify,
                            deadline=deadline,
                        )
                        attempt.attributes["outcome"] = "ok"
                except DeadlineExceededError:
                    # terminal: no fallback can beat an expired clock
                    raise
                except (ReproError,) + RECOVERABLE_EXCEPTIONS as exc:
                    stage = getattr(exc, "exec_stage", "prepare")
                    cause = type(exc).__name__
                    if invalidate is not None:
                        # quarantine first: a poisoned cached operand must
                        # not serve the retry (or the next request)
                        invalidate(name)
                    if (
                        retry is not None
                        and try_number + 1 < retry.max_attempts
                        and retry.classify(exc) is RetryClass.RETRYABLE
                    ):
                        delay = retry.delay(try_number)
                        if deadline is None or deadline.remaining() > delay:
                            _count_retry(name, cause)
                            retry.sleep(delay)
                            continue
                    if breakers is not None:
                        breakers.record_failure(name)
                    abandon(name, stage, cause, str(exc), fallback)
                    break
                else:
                    break
            if result is None:
                continue
            if breakers is not None:
                breakers.record_success(name)
            chain_span.attributes["kernel"] = name
            chain_span.attributes["degradations"] = len(events)
            result.events = events
            result.attempts = attempts
            return result

        chain_span.attributes["exhausted"] = True
        get_registry().counter(
            "exec_chain_exhausted_total",
            "Chain walks in which every kernel failed.",
        ).inc()
        summary = "; ".join(f"{e.kernel}/{e.stage}: {e.cause}" for e in events)
        raise ChainExhaustedError(
            f"all kernels in chain {tuple(chain)} failed ({summary})", events
        )

"""Capability-derived fallback chains and the chain walker.

:func:`default_chain` derives the graceful-degradation order from the
kernel registry instead of a hardcoded name tuple: every kernel
declaring a ``fallback_tier`` participates, sorted by tier (tensor-core
kernels hold the low tiers, the always-works scalar baseline the
highest), so registering a kernel cannot silently desync the chain.

:func:`execute_chain` walks a chain through :func:`repro.exec.execute`,
recording a :class:`~repro.exec.result.DegradationEvent` per abandoned
attempt.  Hooks let the engine keep its cache-through prepare
(``prepare=``) and poisoned-entry eviction (``invalidate=``) without
reimplementing the walk.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np

from repro.errors import KernelError, ReproError
from repro.exec.executor import Operand, execute
from repro.exec.middleware import FaultHook, stage_span
from repro.exec.modes import ExecutionMode
from repro.exec.result import DegradationEvent, ExecutionResult
from repro.formats.csr import CSRMatrix
from repro.gpu.instrument import Tracer
from repro.kernels.base import PreparedOperand, get_kernel, registered_kernels
from repro.obs import get_registry


def _count_degradation(event: DegradationEvent) -> None:
    """Record one abandoned attempt in the process-wide registry."""
    get_registry().counter(
        "exec_degradations_total",
        "Kernel attempts abandoned by the chain walker, by failing stage.",
        labels=("kernel", "exec_stage", "cause"),
    ).inc(kernel=event.kernel, exec_stage=event.stage, cause=event.cause)

__all__ = ["ChainExhaustedError", "default_chain", "execute_chain"]

#: Either a fixed mode for the whole chain or a per-kernel chooser
#: (called with the kernel instance) — the engine uses the latter to
#: simulate only on kernels with a natively batched simulator.
ModeSpec = Union[ExecutionMode, Callable[["object"], ExecutionMode]]


class ChainExhaustedError(KernelError):
    """Every kernel in a chain failed; carries the degradation events."""

    def __init__(self, message: str, events: list[DegradationEvent]):
        super().__init__(message)
        self.events = events


def default_chain() -> tuple[str, ...]:
    """The fallback chain the registry implies, fastest first.

    Kernels with ``capabilities.fallback_tier`` set, ordered by tier
    (then name, for reproducibility on ties).  Importing
    :mod:`repro.kernels` here guarantees every built-in kernel has
    registered before the chain is read.
    """
    import repro.kernels  # noqa: F401  (side effect: registry population)

    members = [
        (cls.capabilities.fallback_tier, name)
        for name, cls in registered_kernels().items()
        if cls.capabilities.fallback_tier is not None
    ]
    return tuple(name for _tier, name in sorted(members))


def execute_chain(
    csr: CSRMatrix,
    x: np.ndarray,
    chain: Sequence[str] | None = None,
    *,
    mode: ModeSpec = ExecutionMode.NUMERIC,
    tracers: Sequence[Tracer] = (),
    faults: Sequence[FaultHook] = (),
    check_overflow: bool = False,
    deep_verify: bool = False,
    prepare: Callable[[str], PreparedOperand] | None = None,
    invalidate: Callable[[str], None] | None = None,
) -> ExecutionResult:
    """Walk ``chain`` through :func:`~repro.exec.execute` until one wins.

    Each attempt re-prepares from the pristine ``csr`` (or asks the
    ``prepare`` hook, which cache-through callers use), so a corrupted
    operand never contaminates the next kernel's attempt.  A failing
    attempt is recorded as a :class:`DegradationEvent` — with the stage
    the executor tagged on the exception — and ``invalidate`` (if given)
    is told to drop any cached state for that kernel.

    The returned result carries the accumulated ``events`` and the full
    ``attempts`` list.  Raises :class:`ChainExhaustedError` (a
    :class:`~repro.errors.KernelError`) only if every kernel fails.
    """
    if chain is None:
        chain = default_chain()
    if not chain:
        raise KernelError("empty kernel chain")

    events: list[DegradationEvent] = []
    attempts: list[str] = []
    with stage_span("exec.chain", chain=",".join(chain)) as chain_span:
        for i, name in enumerate(chain):
            fallback = chain[i + 1] if i + 1 < len(chain) else None
            attempts.append(name)
            try:
                with stage_span("exec.attempt", kernel=name, position=i) as attempt:
                    kernel = get_kernel(name)
                    operand: Operand = prepare(name) if prepare is not None else csr
                    result = execute(
                        kernel,
                        operand,
                        x,
                        mode=mode(kernel) if callable(mode) else mode,
                        tracers=tracers,
                        faults=faults,
                        check_overflow=check_overflow,
                        deep_verify=deep_verify,
                    )
                    attempt.attributes["outcome"] = "ok"
            except ReproError as exc:
                stage = getattr(exc, "exec_stage", "prepare")
                event = DegradationEvent(name, stage, type(exc).__name__, str(exc), fallback)
                events.append(event)
                _count_degradation(event)
                if invalidate is not None:
                    invalidate(name)
                continue
            chain_span.attributes["kernel"] = name
            chain_span.attributes["degradations"] = len(events)
            result.events = events
            result.attempts = attempts
            return result

        chain_span.attributes["exhausted"] = True
        get_registry().counter(
            "exec_chain_exhausted_total",
            "Chain walks in which every kernel failed.",
        ).inc()
        summary = "; ".join(f"{e.kernel}/{e.stage}: {e.cause}" for e in events)
        raise ChainExhaustedError(
            f"all kernels in chain {tuple(chain)} failed ({summary})", events
        )

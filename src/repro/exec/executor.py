"""``execute()`` — the single entry point for one kernel invocation.

Every consumer layer (engine, degradation dispatcher, sanitizer, bench,
CLI, apps) routes kernel invocations through here instead of calling
``kernel.run`` / ``kernel.simulate`` / ``kernel.profile`` directly.  The
call runs the PR-1 stage machine for one kernel —

``prepare``
    resolve the kernel, convert the matrix (skipped for a
    pre-:class:`~repro.kernels.base.PreparedOperand`), apply fault hooks,
``verify``
    (opt-in) deep-verify every sparse matrix inside the operand, and for
    tensor-core kernels check the live fragment tables against §3,
``run``
    the mode-selected entry point with any tracers installed,
``check``
    reject a non-finite or mis-shaped result

— and tags any :class:`~repro.errors.ReproError` with the stage it
surfaced in (``exc.exec_stage``) so chain walkers can attribute
degradations without wrapping each stage themselves.
"""

from __future__ import annotations

import time
from typing import Sequence, Union

import numpy as np

from repro.errors import KernelError, NumericalError, ReproError
from repro.exec.middleware import (
    FaultHook,
    apply_faults,
    deadline_checkpoint,
    install_tracers,
    stage_span,
)
from repro.exec.modes import ExecutionMode
from repro.exec.result import ExecutionResult
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.fragment import verify_lane_mapping
from repro.gpu.instrument import Tracer
from repro.kernels.base import PreparedOperand, SpMVKernel, get_kernel
from repro.obs import get_registry
from repro.resilience import RECOVERABLE_EXCEPTIONS
from repro.resilience.deadline import Deadline

__all__ = ["check_result", "execute", "verify_operand"]


def _record_execution(kernel_name: str, mode: ExecutionMode, status: str) -> None:
    """Count one finished (or failed) ``execute()`` in the registry."""
    get_registry().counter(
        "exec_executions_total",
        "Kernel invocations through the exec seam, by outcome.",
        labels=("kernel", "mode", "status"),
    ).inc(kernel=kernel_name, mode=mode.name, status=status)


def _observe_stage_seconds(stage: str, kernel_name: str, seconds: float) -> None:
    """Record one stage's host seconds into the stage histogram."""
    get_registry().histogram(
        "exec_stage_seconds",
        "Host seconds per exec stage, by kernel.",
        labels=("exec_stage", "kernel"),
    ).observe(seconds, exec_stage=stage, kernel=kernel_name)

KernelRef = Union[str, SpMVKernel]
Operand = Union[CSRMatrix, PreparedOperand]


def _operand_matrices(prepared: PreparedOperand):
    """Every SparseMatrix inside a prepared operand (data may be a tuple)."""
    data = prepared.data
    items = data if isinstance(data, (tuple, list)) else (data,)
    return [m for m in items if isinstance(m, SparseMatrix)]


def verify_operand(kernel: SpMVKernel, prepared: PreparedOperand) -> None:
    """The pre-flight ``verify`` stage: deep format + lane-mapping checks."""
    for matrix in _operand_matrices(prepared):
        matrix.verify(deep=True)
    if kernel.uses_tensor_cores:
        verify_lane_mapping()


def check_result(y: np.ndarray, shape: tuple[int, int], k: int | None = None) -> np.ndarray:
    """The ``check`` stage: reject mis-shaped or non-finite results.

    ``k is None`` validates a single ``(nrows,)`` vector; otherwise a
    ``(k, nrows)`` batch.  Returns the result as float32.
    """
    y = np.asarray(y)
    if k is None:
        if y.shape != (shape[0],):
            raise NumericalError(f"result has shape {y.shape}, expected ({shape[0]},)")
        if not np.isfinite(y).all():
            row = int(np.flatnonzero(~np.isfinite(y))[0])
            raise NumericalError(f"non-finite result: y[{row}] = {y[row]!r}")
    else:
        if y.shape != (k, shape[0]):
            raise NumericalError(
                f"batch result has shape {y.shape}, expected ({k}, {shape[0]})"
            )
        if not np.isfinite(y).all():
            j, row = (int(v[0]) for v in np.nonzero(~np.isfinite(y)))
            raise NumericalError(f"non-finite batch result: Y[{j}, {row}] = {y[j, row]!r}")
    return y.astype(np.float32)


def execute(
    kernel: KernelRef,
    operand: Operand,
    x: np.ndarray,
    *,
    mode: ExecutionMode = ExecutionMode.NUMERIC,
    tracers: Sequence[Tracer] = (),
    faults: Sequence[FaultHook] = (),
    check_overflow: bool = False,
    deep_verify: bool = False,
    deadline: Deadline | None = None,
) -> ExecutionResult:
    """Run one SpMV through the full stage machine; returns the result.

    ``kernel`` is a registry name or an instance; ``operand`` is either
    the pristine CSR matrix (prepared here, timed) or an already
    prepared operand (cache-through callers).  ``x`` may be a single
    ``(ncols,)`` vector or a ``(k, ncols)`` batch — batches take the
    ``run_many`` / ``simulate_many`` entry points and are rejected for
    PROFILED mode (the analytic counters describe one execution).

    ``tracers`` are installed around the run stage only (``prepare`` is
    host-side and stays uninstrumented); ``faults`` are applied to the
    freshly prepared operand; ``check_overflow`` is forwarded to the
    simulated entry points.  Any :class:`~repro.errors.ReproError` — or
    a safelisted recoverable non-Repro exception
    (:data:`~repro.resilience.RECOVERABLE_EXCEPTIONS`) — escapes with
    ``exc.exec_stage`` set to the failing stage; argument validation
    (an unknown kernel, an unsupported mode, a batch handed to
    PROFILED) fails under ``prepare``, before anything has run.

    ``deadline`` (a :class:`~repro.resilience.Deadline`) is checked at
    every stage boundary: the first boundary past the budget raises
    :class:`~repro.errors.DeadlineExceededError` tagged with that
    stage, and the in-flight stage is never interrupted.  ``None``
    (the default) skips every checkpoint.

    Each stage runs inside an observability span (``exec.prepare`` /
    ``exec.verify`` / ``exec.run`` / ``exec.check``, under one
    ``exec.execute`` root) and feeds the process-wide metrics registry;
    both are passive, so results and simulator counters are identical
    with or without anything reading them.
    """
    stage = "prepare"
    kernel_label = kernel if isinstance(kernel, str) else kernel.name
    try:
        with stage_span("exec.execute", kernel=kernel_label, mode=mode.name) as root:
            if isinstance(kernel, str):
                kernel = get_kernel(kernel)
                kernel_label = kernel.name
                root.attributes["kernel"] = kernel.name
            caps = kernel.capabilities
            if not caps.supports(mode):
                raise KernelError(
                    f"kernel {kernel.name!r} does not support {mode.name} execution "
                    f"(capabilities: {', '.join(m.name for m in caps.modes)})"
                )
            xs = np.asarray(x)
            batched = xs.ndim != 1
            if batched and mode is ExecutionMode.PROFILED:
                # pure argument validation: nothing ran, so this must
                # not escape tagged exec_stage="run"
                raise KernelError(
                    f"PROFILED execution takes a single vector, got X with shape {xs.shape}"
                )
            deadline_checkpoint(deadline, "prepare")
            prepare_seconds = 0.0
            with stage_span(
                "exec.prepare", exec_stage="prepare", kernel=kernel.name
            ) as prep_span:
                if isinstance(operand, PreparedOperand):
                    prepared = operand
                    prep_span.attributes["cached"] = True
                else:
                    start = time.perf_counter()
                    prepared = kernel.prepare(operand)
                    prepare_seconds = time.perf_counter() - start
                    prep_span.attributes["cached"] = False
                    _observe_stage_seconds("prepare", kernel.name, prepare_seconds)
                apply_faults(kernel.name, prepared, faults)

            if deep_verify:
                stage = "verify"
                deadline_checkpoint(deadline, "verify")
                with stage_span("exec.verify", exec_stage="verify", kernel=kernel.name):
                    verify_operand(kernel, prepared)

            stage = "run"
            deadline_checkpoint(deadline, "run")
            stats = None
            profile = None
            with stage_span(
                "exec.run",
                exec_stage="run",
                kernel=kernel.name,
                mode=mode.name,
                batched=batched,
            ):
                start = time.perf_counter()
                with install_tracers(tracers):
                    if mode is ExecutionMode.SIMULATED:
                        if batched:
                            y, stats = kernel.simulate_many(
                                prepared, xs, check_overflow=check_overflow
                            )
                        else:
                            y, stats = kernel.simulate(
                                prepared, xs, check_overflow=check_overflow
                            )
                    else:
                        y = kernel.run_many(prepared, xs) if batched else kernel.run(prepared, xs)
                        if mode is ExecutionMode.PROFILED:
                            profile = kernel.profile(prepared, xs)
                run_seconds = time.perf_counter() - start
            _observe_stage_seconds("run", kernel.name, run_seconds)

            stage = "check"
            deadline_checkpoint(deadline, "check")
            with stage_span("exec.check", exec_stage="check", kernel=kernel.name):
                y = check_result(y, prepared.shape, k=xs.shape[0] if batched else None)
    except (ReproError,) + RECOVERABLE_EXCEPTIONS as exc:
        # recoverable non-Repro exceptions (MemoryError, ArithmeticError)
        # get the same stage tag so the chain walker can attribute them;
        # anything else — KeyboardInterrupt, programming errors —
        # propagates untouched
        exc.exec_stage = stage
        _record_execution(kernel_label, mode, f"error:{stage}")
        raise
    _record_execution(kernel.name, mode, "ok")
    return ExecutionResult(
        y=y,
        kernel=kernel.name,
        mode=mode,
        operand=prepared,
        stats=stats,
        profile=profile,
        prepare_seconds=prepare_seconds,
        run_seconds=run_seconds,
        attempts=[kernel.name],
    )

"""``execute()`` — the single entry point for one kernel invocation.

Every consumer layer (engine, degradation dispatcher, sanitizer, bench,
CLI, apps) routes kernel invocations through here instead of calling
``kernel.run`` / ``kernel.simulate`` / ``kernel.profile`` directly.  The
call runs the PR-1 stage machine for one kernel —

``prepare``
    resolve the kernel, convert the matrix (skipped for a
    pre-:class:`~repro.kernels.base.PreparedOperand`), apply fault hooks,
``verify``
    (opt-in) deep-verify every sparse matrix inside the operand, and for
    tensor-core kernels check the live fragment tables against §3,
``run``
    the mode-selected entry point with any tracers installed,
``check``
    reject a non-finite or mis-shaped result

— and tags any :class:`~repro.errors.ReproError` with the stage it
surfaced in (``exc.exec_stage``) so chain walkers can attribute
degradations without wrapping each stage themselves.
"""

from __future__ import annotations

import time
from typing import Sequence, Union

import numpy as np

from repro.errors import KernelError, NumericalError, ReproError
from repro.exec.middleware import FaultHook, apply_faults, install_tracers
from repro.exec.modes import ExecutionMode
from repro.exec.result import ExecutionResult
from repro.formats.base import SparseMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.fragment import verify_lane_mapping
from repro.gpu.instrument import Tracer
from repro.kernels.base import PreparedOperand, SpMVKernel, get_kernel

__all__ = ["check_result", "execute", "verify_operand"]

KernelRef = Union[str, SpMVKernel]
Operand = Union[CSRMatrix, PreparedOperand]


def _operand_matrices(prepared: PreparedOperand):
    """Every SparseMatrix inside a prepared operand (data may be a tuple)."""
    data = prepared.data
    items = data if isinstance(data, (tuple, list)) else (data,)
    return [m for m in items if isinstance(m, SparseMatrix)]


def verify_operand(kernel: SpMVKernel, prepared: PreparedOperand) -> None:
    """The pre-flight ``verify`` stage: deep format + lane-mapping checks."""
    for matrix in _operand_matrices(prepared):
        matrix.verify(deep=True)
    if kernel.uses_tensor_cores:
        verify_lane_mapping()


def check_result(y: np.ndarray, shape: tuple[int, int], k: int | None = None) -> np.ndarray:
    """The ``check`` stage: reject mis-shaped or non-finite results.

    ``k is None`` validates a single ``(nrows,)`` vector; otherwise a
    ``(k, nrows)`` batch.  Returns the result as float32.
    """
    y = np.asarray(y)
    if k is None:
        if y.shape != (shape[0],):
            raise NumericalError(f"result has shape {y.shape}, expected ({shape[0]},)")
        if not np.isfinite(y).all():
            row = int(np.flatnonzero(~np.isfinite(y))[0])
            raise NumericalError(f"non-finite result: y[{row}] = {y[row]!r}")
    else:
        if y.shape != (k, shape[0]):
            raise NumericalError(
                f"batch result has shape {y.shape}, expected ({k}, {shape[0]})"
            )
        if not np.isfinite(y).all():
            j, row = (int(v[0]) for v in np.nonzero(~np.isfinite(y)))
            raise NumericalError(f"non-finite batch result: Y[{j}, {row}] = {y[j, row]!r}")
    return y.astype(np.float32)


def execute(
    kernel: KernelRef,
    operand: Operand,
    x: np.ndarray,
    *,
    mode: ExecutionMode = ExecutionMode.NUMERIC,
    tracers: Sequence[Tracer] = (),
    faults: Sequence[FaultHook] = (),
    check_overflow: bool = False,
    deep_verify: bool = False,
) -> ExecutionResult:
    """Run one SpMV through the full stage machine; returns the result.

    ``kernel`` is a registry name or an instance; ``operand`` is either
    the pristine CSR matrix (prepared here, timed) or an already
    prepared operand (cache-through callers).  ``x`` may be a single
    ``(ncols,)`` vector or a ``(k, ncols)`` batch — batches take the
    ``run_many`` / ``simulate_many`` entry points and are rejected for
    PROFILED mode (the analytic counters describe one execution).

    ``tracers`` are installed around the run stage only (``prepare`` is
    host-side and stays uninstrumented); ``faults`` are applied to the
    freshly prepared operand; ``check_overflow`` is forwarded to the
    simulated entry points.  Any :class:`~repro.errors.ReproError`
    escapes with ``exc.exec_stage`` set to the failing stage.
    """
    stage = "prepare"
    try:
        if isinstance(kernel, str):
            kernel = get_kernel(kernel)
        caps = kernel.capabilities
        if not caps.supports(mode):
            raise KernelError(
                f"kernel {kernel.name!r} does not support {mode.name} execution "
                f"(capabilities: {', '.join(m.name for m in caps.modes)})"
            )
        prepare_seconds = 0.0
        if isinstance(operand, PreparedOperand):
            prepared = operand
        else:
            start = time.perf_counter()
            prepared = kernel.prepare(operand)
            prepare_seconds = time.perf_counter() - start
        apply_faults(kernel.name, prepared, faults)

        if deep_verify:
            stage = "verify"
            verify_operand(kernel, prepared)

        stage = "run"
        xs = np.asarray(x)
        batched = xs.ndim != 1
        if batched and mode is ExecutionMode.PROFILED:
            raise KernelError(
                f"PROFILED execution takes a single vector, got X with shape {xs.shape}"
            )
        stats = None
        profile = None
        start = time.perf_counter()
        with install_tracers(tracers):
            if mode is ExecutionMode.SIMULATED:
                if batched:
                    y, stats = kernel.simulate_many(prepared, xs, check_overflow=check_overflow)
                else:
                    y, stats = kernel.simulate(prepared, xs, check_overflow=check_overflow)
            else:
                y = kernel.run_many(prepared, xs) if batched else kernel.run(prepared, xs)
                if mode is ExecutionMode.PROFILED:
                    profile = kernel.profile(prepared, xs)
        run_seconds = time.perf_counter() - start

        stage = "check"
        y = check_result(y, prepared.shape, k=xs.shape[0] if batched else None)
    except ReproError as exc:
        exc.exec_stage = stage
        raise
    return ExecutionResult(
        y=y,
        kernel=kernel.name,
        mode=mode,
        operand=prepared,
        stats=stats,
        profile=profile,
        prepare_seconds=prepare_seconds,
        run_seconds=run_seconds,
        attempts=[kernel.name],
    )

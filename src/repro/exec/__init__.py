"""The pluggable execution layer — one seam for every kernel invocation.

The repo observes one algorithm three ways (numeric §4.3, lane-accurate
§3, analytic §5); this package is the single place where an observation
path is chosen and run:

* :class:`ExecutionMode` names the paths; :class:`KernelCapabilities`
  (declared per kernel, enforced at registration) says which exist —
  callers branch on declared flags, never on attribute sniffing;
* :func:`execute` runs one kernel through the prepare / verify / run /
  check stage machine, with tracer installation and fault injection as
  composable middleware;
* :func:`execute_chain` + :func:`default_chain` walk the
  capability-derived graceful-degradation chain;
* future backends (sharded, async, real-GPU) plug in behind the same
  ``execute`` signature.

See ``docs/architecture.md`` for the design and migration notes.

Only :mod:`repro.exec.modes` loads eagerly — it is the dependency root
:mod:`repro.kernels.base` imports, so the rest of the package (which
imports the kernel registry back) resolves lazily via PEP 562.
"""

from repro.exec.modes import ExecutionMode, KernelCapabilities

__all__ = [
    "ChainExhaustedError",
    "DegradationEvent",
    "ExecutionMode",
    "ExecutionResult",
    "KernelCapabilities",
    "OperandFault",
    "TracerStack",
    "apply_faults",
    "check_result",
    "default_chain",
    "execute",
    "execute_chain",
    "install_tracers",
    "spmv",
    "verify_operand",
]

#: attribute -> defining submodule, resolved on first access
# concurrency: not-shared -- constant name table; __getattr__ only reads it
# (resolution caches into module globals, an atomic dict store under the GIL)
_LAZY = {
    "ChainExhaustedError": "repro.exec.chain",
    "default_chain": "repro.exec.chain",
    "execute_chain": "repro.exec.chain",
    "check_result": "repro.exec.executor",
    "execute": "repro.exec.executor",
    "verify_operand": "repro.exec.executor",
    "OperandFault": "repro.exec.middleware",
    "TracerStack": "repro.exec.middleware",
    "apply_faults": "repro.exec.middleware",
    "install_tracers": "repro.exec.middleware",
    "DegradationEvent": "repro.exec.result",
    "ExecutionResult": "repro.exec.result",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def spmv(csr, x, kernel: str = "spaden", *, mode: ExecutionMode = ExecutionMode.NUMERIC):
    """One-shot convenience: prepare + execute ``kernel`` on ``(csr, x)``.

    Returns the :class:`ExecutionResult`; use :func:`execute` directly
    to reuse a prepared operand across calls.
    """
    from repro.exec.executor import execute

    return execute(kernel, csr, x, mode=mode)

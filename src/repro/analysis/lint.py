"""AST lint for warp-synchronous kernel code.

The simulator's counters — and the paper's traffic model built on them —
are only meaningful when kernels are written in the warp-synchronous
idiom: one length-32 array per lane value, predication via masks, every
global access through the counted ``Warp``/``GlobalMemory`` entry points.
This module enforces that idiom statically, over
``src/repro/kernels/*.py`` and the warp-level ``core`` helpers.

Rules (see :data:`RULES`):

``per-lane-loop``
    A Python ``for`` loop over ``range(WARP_SIZE)`` / ``range(32)``
    serializes what the hardware does in one instruction, and bypasses
    the lanewise bookkeeping (``count_flops``, coalescing counting).
``unmasked-divergent-access``
    A ``Warp.load/store/atomic_add`` (or the ``GlobalMemory.warp_*``
    equivalents) issued without a mask inside an ``if``/``while`` body —
    i.e. reachable under divergence, where some lanes must be predicated
    off.  Accesses under uniform ``for`` loops are fine.
``raw-memory-mutation``
    Writing through ``memory.array(name)[...] = ...`` (directly or via a
    local alias) mutates device memory behind the coalescing counters and
    the sanitizer's race detector; stores must go through ``warp_store``.
``fp64-upcast``
    ``np.float64`` appearing in a module that imports the tensor-core
    compute objects (``Fragment``, ``MMAUnit``, ``to_tf32`` or the
    ``repro.gpu.fragment``/``mma``/``wmma`` modules).  The paper's
    fp16/tf32 pipelines accumulate in float32; a silent fp64 upcast
    makes the Python model more accurate than the hardware it stands for.

A finding is waived with an inline pragma carrying a justification::

    # lint: ignore[per-lane-loop] -- this loop *builds* the lanewise table

The pragma covers its own line when it trails code, otherwise the next
code line (comment continuation lines in between are fine).

Known limitations, by design: the checker is intra-procedural — an
unmasked load inside a helper called under divergence
(e.g. ``_broadcast_load`` under ``if block_row_bottom is not None:``) is
not flagged — and alias tracking for ``raw-memory-mutation`` only follows
direct single-name assignments within one function.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.astwalk import (
    format_findings,
    iter_python_files,
    parse_module,
    sort_findings,
)

__all__ = ["LintFinding", "RULES", "lint_source", "lint_paths", "format_findings"]


RULES: dict[str, str] = {
    "per-lane-loop": (
        "Python loop over range(WARP_SIZE); use the lanewise warp/fragment "
        "operations (length-32 arrays) instead"
    ),
    "unmasked-divergent-access": (
        "Warp.load/store/atomic_add without a mask inside an if/while body "
        "(reachable under divergence)"
    ),
    "raw-memory-mutation": (
        "direct mutation of memory.array(...) bypasses warp_store and the "
        "coalescing/race instrumentation"
    ),
    "fp64-upcast": (
        "np.float64 in a fp16/tf32 tensor-core path; accumulate in float32 "
        "like the hardware, or waive with a justification"
    ),
    "parse-error": "the file could not be parsed as Python",
}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


#: Counted memory entry points, mapped to the positional-argument count at
#: which the mask is supplied (warp.load(name, indices, mask) -> 3, ...).
_MEMORY_OPS: dict[str, int] = {
    "load": 3,
    "warp_load": 3,
    "store": 4,
    "warp_store": 4,
    "atomic_add": 4,
    "warp_atomic_add": 4,
}

#: Imported names / modules that put a module in scope for ``fp64-upcast``.
_TC_NAMES = {"Fragment", "MMAUnit", "to_tf32"}
_TC_MODULES = {"repro.gpu.fragment", "repro.gpu.mma", "repro.gpu.wmma"}

_PRAGMA = re.compile(r"#\s*lint:\s*ignore\[([a-zA-Z0-9_,\- ]+)\]")


def _waivers(source: str) -> dict[int, set[str]]:
    """Map line number -> waived rule names, resolving pragma placement."""
    lines = source.splitlines()
    waived: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        before = text[: match.start()].strip()
        if before and not before.startswith("#"):
            target = lineno  # trailing pragma: covers its own line
        else:
            target = None  # standalone pragma: covers the next code line
            for later in range(lineno, len(lines)):
                candidate = lines[later].strip()
                if candidate and not candidate.startswith("#"):
                    target = later + 1
                    break
        if target is not None:
            waived.setdefault(target, set()).update(rules)
    return waived


def _receiver_name(func: ast.Attribute) -> str:
    """Best-effort name of a method call's receiver, lowercased."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id.lower()
    if isinstance(value, ast.Attribute):
        return value.attr.lower()
    return ""


def _is_memory_like(name: str) -> bool:
    return "warp" in name or "mem" in name


def _is_array_call(node: ast.expr) -> bool:
    """True for ``<memory-like>.array(...)`` calls."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "array"
        and _is_memory_like(_receiver_name(node.func))
    )


def _is_warp_range(node: ast.expr) -> bool:
    """True for ``range`` calls whose *stop* is the warp width.

    Only the stop argument matters: ``range(WARP_SIZE)`` iterates lanes,
    while ``range(0, n, 32)`` strides over warps and is idiomatic.
    """
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "range"):
        return False
    if not node.args:
        return False
    stop = node.args[0] if len(node.args) == 1 else node.args[1]
    if isinstance(stop, ast.Name) and stop.id == "WARP_SIZE":
        return True
    return isinstance(stop, ast.Constant) and stop.value == 32


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, fp64_in_scope: bool):
        self.path = path
        self.fp64_in_scope = fp64_in_scope
        self.findings: list[LintFinding] = []
        self._divergence = 0
        #: Per-function stack of local names aliasing memory.array(...).
        self._aliases: list[set[str]] = [set()]

    # -- helpers -------------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            LintFinding(path=self.path, line=node.lineno, col=node.col_offset, rule=rule, message=message)
        )

    # -- rule: per-lane-loop ---------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_warp_range(node.iter):
            self._flag(
                node,
                "per-lane-loop",
                "per-lane Python loop over the warp; use lanewise (length-32 "
                "array) operations instead",
            )
        self.generic_visit(node)

    # -- rule: unmasked-divergent-access --------------------------------------
    def visit_If(self, node: ast.If) -> None:
        self.visit(node.test)
        self._divergence += 1
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._divergence -= 1

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._divergence += 1
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._divergence -= 1

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._divergence > 0
            and isinstance(func, ast.Attribute)
            and func.attr in _MEMORY_OPS
            and (func.attr.startswith("warp_") or _is_memory_like(_receiver_name(func)))
        ):
            mask_arity = _MEMORY_OPS[func.attr]
            has_mask = len(node.args) >= mask_arity or any(
                kw.arg == "mask" for kw in node.keywords
            )
            if not has_mask:
                self._flag(
                    node,
                    "unmasked-divergent-access",
                    f"{func.attr}() without a mask inside an if/while body; "
                    "predicate the access on the active-lane mask",
                )
        self.generic_visit(node)

    # -- rule: raw-memory-mutation --------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._aliases.append(set())
        self._divergence, saved = 0, self._divergence
        self.generic_visit(node)
        self._divergence = saved
        self._aliases.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def _is_device_subscript(self, target: ast.expr) -> bool:
        if not isinstance(target, ast.Subscript):
            return False
        base = target.value
        if _is_array_call(base):
            return True
        return isinstance(base, ast.Name) and base.id in self._aliases[-1]

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if self._is_device_subscript(target):
                self._flag(
                    target,
                    "raw-memory-mutation",
                    "assignment through memory.array(...) bypasses warp_store; "
                    "use the counted store path",
                )
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_array_call(node.value)
        ):
            self._aliases[-1].add(node.targets[0].id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._is_device_subscript(node.target):
            self._flag(
                node.target,
                "raw-memory-mutation",
                "in-place update through memory.array(...) bypasses warp_store "
                "(and warp_atomic_add); use the counted paths",
            )
        self.generic_visit(node)

    # -- rule: fp64-upcast -----------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            self.fp64_in_scope
            and node.attr == "float64"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            self._flag(
                node,
                "fp64-upcast",
                "np.float64 in a fp16/tf32 compute path; the tensor-core "
                "pipeline accumulates in float32",
            )
        self.generic_visit(node)


def _fp64_scope(tree: ast.Module) -> bool:
    """Does this module import the tensor-core compute machinery?"""
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                # compute objects by name ("from repro.gpu.mma import MMAUnit");
                # importing just the Precision enum does not make a compute path
                if alias.name in _TC_NAMES:
                    return True
                # "from repro.gpu import fragment" style module imports
                if f"{node.module}.{alias.name}" in _TC_MODULES:
                    return True
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _TC_MODULES:
                    return True
    return False


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; returns unwaived findings."""
    tree, error = parse_module(source, path)
    if tree is None:
        assert error is not None
        return [
            LintFinding(
                path=path,
                line=error.lineno or 0,
                col=error.offset or 0,
                rule="parse-error",
                message=str(error.msg),
            )
        ]
    checker = _Checker(path, fp64_in_scope=_fp64_scope(tree))
    checker.visit(tree)
    waived = _waivers(source)
    return [
        f
        for f in checker.findings
        if f.rule not in waived.get(f.line, set()) and "*" not in waived.get(f.line, set())
    ]


def lint_paths(paths) -> list[LintFinding]:
    """Lint files and/or directory trees (``*.py``, recursively)."""
    findings: list[LintFinding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_source(f.read_text(encoding="utf-8"), path=str(f)))
    return sort_findings(findings)

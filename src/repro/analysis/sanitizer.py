"""SIMT sanitizer: race, lane-ownership, and coalescing analysis.

The sanitizer is a :class:`~repro.gpu.instrument.Tracer` installed for
the duration of a kernel execution.  It maintains three analyses over the
access stream the gpu layer reports:

Race detection
    Warps are concurrent on hardware even though the simulator runs them
    sequentially, so the sanitizer flags conflicting accesses to the same
    ``GlobalMemory`` element from *different* warps — write/write,
    write-after-read, or read of a plainly-written element — unless both
    sides go through ``atomic_add``.  Within one warp, lockstep execution
    orders instructions, so only same-instruction (one warp-step)
    write/write conflicts are hazards; those are raised by the memory
    model itself as structured :class:`~repro.errors.RaceError`\\ s.

Lane-ownership checking
    Every consultation of a fragment's layout table is compared against
    the functional §3 mapping (:func:`repro.gpu.fragment.lane_register_element`).
    A perturbed table — an injected fault, or a future architecture's
    layout wired up wrong — means some lane is about to touch an element
    outside its ownership set; the sanitizer raises
    :class:`~repro.errors.LaneOwnershipError` with the lane/register/portion
    coordinate before the bad value can scramble an MMA.

Coalescing report
    Per device array and access kind, the achieved 32-byte-sector count
    is accumulated next to the ideal (perfectly coalesced) count, giving
    the efficiency table ``repro.cli analyze`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import LaneOwnershipError, RaceError
from repro.gpu import fragment as _fragment
from repro.gpu.fragment import FragmentKind, portion_of_register
from repro.gpu.instrument import Tracer, tracing
from repro.obs import get_registry


def _count_finding(finding: str) -> None:
    """Mirror one sanitizer finding into the process-wide registry."""
    get_registry().counter(
        "sanitizer_findings_total",
        "Races and lane-ownership violations the sanitizer observed.",
        labels=("finding",),
    ).inc(finding=finding)

__all__ = [
    "CoalescingEntry",
    "RaceRecord",
    "OwnershipRecord",
    "SanitizerReport",
    "Sanitizer",
    "KernelSanitizeResult",
    "sanitize_kernel",
    "small_suite",
]


@dataclass
class CoalescingEntry:
    """Achieved vs. ideal sector counts for one (array, access-kind)."""

    array: str
    kind: str
    instructions: int = 0
    achieved_sectors: int = 0
    ideal_sectors: int = 0

    @property
    def efficiency(self) -> float:
        """Ideal / achieved sectors (1.0 = perfectly coalesced)."""
        if self.achieved_sectors == 0:
            return 1.0
        return self.ideal_sectors / self.achieved_sectors


@dataclass(frozen=True)
class RaceRecord:
    """One conflicting cross-warp access pair on a global-memory element."""

    array: str
    index: int
    #: (kind, warp ordinal, lane) of the earlier access.
    first: tuple[str, int, int]
    #: (kind, warp ordinal, lane) of the conflicting access.
    second: tuple[str, int, int]

    def __str__(self) -> str:
        k1, w1, l1 = self.first
        k2, w2, l2 = self.second
        return (
            f"{self.array}[{self.index}]: {k1} by warp {w1} lane {l1} "
            f"conflicts with {k2} by warp {w2} lane {l2}"
        )


@dataclass(frozen=True)
class OwnershipRecord:
    """One layout-table slot that disagrees with the §3 mapping."""

    fragment_kind: str
    lane: int
    register: int
    portion: int
    expected: tuple[int, int]
    actual: tuple[int, int]

    def __str__(self) -> str:
        return (
            f"{self.fragment_kind}: lane {self.lane} register x[{self.register}] "
            f"(portion {self.portion}) touches element {self.actual}, "
            f"outside its ownership set (§3 assigns {self.expected})"
        )


@dataclass
class SanitizerReport:
    """Everything one sanitized execution revealed."""

    races: list[RaceRecord] = field(default_factory=list)
    ownership_violations: list[OwnershipRecord] = field(default_factory=list)
    #: Keyed by (array name, access kind).
    coalescing: dict[tuple[str, str], CoalescingEntry] = field(default_factory=dict)
    warps_observed: int = 0
    global_accesses: int = 0
    fragment_accesses: int = 0

    @property
    def clean(self) -> bool:
        """True when no race or ownership violation was observed."""
        return not self.races and not self.ownership_violations

    def as_dict(self) -> dict:
        """Serializable findings, the shape ``RunReport.sanitizer`` holds."""
        return {
            "warps_observed": self.warps_observed,
            "global_accesses": self.global_accesses,
            "fragment_accesses": self.fragment_accesses,
            "races": [
                {
                    "array": r.array,
                    "index": r.index,
                    "first": list(r.first),
                    "second": list(r.second),
                }
                for r in self.races
            ],
            "ownership_violations": [
                {
                    "fragment_kind": o.fragment_kind,
                    "lane": o.lane,
                    "register": o.register,
                    "portion": o.portion,
                    "expected": list(o.expected),
                    "actual": list(o.actual),
                }
                for o in self.ownership_violations
            ],
            "coalescing": [
                {
                    "array": e.array,
                    "kind": e.kind,
                    "instructions": e.instructions,
                    "achieved_sectors": e.achieved_sectors,
                    "ideal_sectors": e.ideal_sectors,
                    "efficiency": e.efficiency,
                }
                for (_name, _kind), e in sorted(self.coalescing.items())
            ],
        }

    @property
    def load_efficiency(self) -> float:
        """Aggregate load coalescing efficiency across all arrays."""
        achieved = sum(e.achieved_sectors for e in self.coalescing.values() if e.kind == "load")
        ideal = sum(e.ideal_sectors for e in self.coalescing.values() if e.kind == "load")
        return ideal / achieved if achieved else 1.0

    def summary(self) -> str:
        lines = [
            f"warps {self.warps_observed}, memory instructions {self.global_accesses}, "
            f"fragment accesses {self.fragment_accesses}"
        ]
        for rec in self.races:
            lines.append(f"RACE {rec}")
        for rec in self.ownership_violations:
            lines.append(f"OWNERSHIP {rec}")
        for (name, kind), entry in sorted(self.coalescing.items()):
            lines.append(
                f"{kind:<6} {name:<20} {entry.instructions:>6} instr  "
                f"{entry.achieved_sectors:>7} sectors (ideal {entry.ideal_sectors}, "
                f"{entry.efficiency:.0%} coalesced)"
            )
        return "\n".join(lines)


#: Warp ordinal assigned to accesses issued before any Warp exists
#: (operand setup); those are host-side and excluded from race checks.
_HOST = -1


class Sanitizer(Tracer):
    """Install around simulator work with ``with Sanitizer() as san: ...``.

    ``halt_on_violation=True`` (the default) raises the structured error
    at the first race / ownership violation; ``False`` collects every
    finding into :attr:`report` instead, for survey-style runs.
    """

    def __init__(self, halt_on_violation: bool = True):
        self.halt_on_violation = halt_on_violation
        self.report = SanitizerReport()
        #: (memory id, array name, element index) -> (kind, warp, lane) list.
        self._accesses: dict[tuple[int, str, int], list[tuple[str, int, int]]] = {}
        self._current_warp = _HOST
        self._seen_ownership: set[tuple[str, int, int]] = set()
        # functional §3 ground truth, independent of the (possibly
        # perturbed) live tables the fragments index through
        self._reference = {kind: _fragment._index_maps(kind) for kind in FragmentKind}
        self._tracing = tracing(self)

    def __enter__(self) -> "Sanitizer":
        self._tracing.__enter__()
        return self

    def __exit__(self, *exc) -> None:
        self._tracing.__exit__(*exc)

    # -- tracer hooks --------------------------------------------------------
    def on_warp_begin(self, warp) -> None:
        self._current_warp = self.report.warps_observed
        self.report.warps_observed += 1

    def on_global_access(
        self, memory, name, kind, indices, mask, itemsize, sectors, ideal_sectors
    ) -> None:
        self.report.global_accesses += 1
        entry = self.report.coalescing.setdefault(
            (name, kind), CoalescingEntry(array=name, kind=kind)
        )
        entry.instructions += 1
        entry.achieved_sectors += sectors
        entry.ideal_sectors += ideal_sectors

        warp = self._current_warp
        if warp == _HOST:
            return
        lanes = np.flatnonzero(mask)
        idx = np.asarray(indices, dtype=np.int64)
        for lane in lanes:
            lane = int(lane)
            # keyed per memory instance: distinct GlobalMemory objects are
            # distinct address spaces (separate launches), and same-named
            # arrays in them must not alias into false cross-warp races
            element = (id(memory), name, int(idx[lane]))
            history = self._accesses.setdefault(element, [])
            conflict = self._find_conflict(history, kind, warp)
            if conflict is not None:
                self._record_race((name, int(idx[lane])), conflict, (kind, warp, lane))
            history.append((kind, warp, lane))

    def on_fragment_access(self, fragment, registers) -> None:
        self.report.fragment_accesses += 1
        regs = tuple(range(fragment.registers.shape[1])) if registers is None else tuple(registers)
        rows, cols = _fragment._MAPS[fragment.kind]
        ref_rows, ref_cols = self._reference[fragment.kind]
        reg_idx = np.asarray(regs, dtype=np.int64)
        bad = (rows[:, reg_idx] != ref_rows[:, reg_idx]) | (cols[:, reg_idx] != ref_cols[:, reg_idx])
        if not bad.any():
            return
        for lane, j in np.argwhere(bad):
            lane, reg = int(lane), int(regs[int(j)])
            key = (fragment.kind.value, lane, reg)
            if key in self._seen_ownership:
                continue
            self._seen_ownership.add(key)
            _count_finding("ownership")
            record = OwnershipRecord(
                fragment_kind=fragment.kind.value,
                lane=lane,
                register=reg,
                portion=portion_of_register(reg),
                expected=(int(ref_rows[lane, reg]), int(ref_cols[lane, reg])),
                actual=(int(rows[lane, reg]), int(cols[lane, reg])),
            )
            self.report.ownership_violations.append(record)
            if self.halt_on_violation:
                raise LaneOwnershipError(
                    f"lane-ownership violation: {record}",
                    fragment_kind=record.fragment_kind,
                    lane=record.lane,
                    register=record.register,
                    portion=record.portion,
                    expected=record.expected,
                    actual=record.actual,
                    check="lane-ownership",
                    coord=(record.lane, record.register, record.portion),
                )

    # -- race bookkeeping ----------------------------------------------------
    @staticmethod
    def _find_conflict(
        history: list[tuple[str, int, int]], kind: str, warp: int
    ) -> tuple[str, int, int] | None:
        """First prior access this one conflicts with, else ``None``.

        Conflicts (all require *different* warps, since intra-warp
        ordering is guaranteed by lockstep execution):

        * this is a plain ``store`` and the element was touched at all,
        * this is a ``load`` or ``atomic`` and the element was plainly
          stored.

        ``atomic``/``atomic`` and any read/read combination are ordered
        by the hardware and allowed.
        """
        for prior in history:
            prior_kind, prior_warp, _lane = prior
            if prior_warp == warp or prior_warp == _HOST:
                continue
            if kind == "store" or prior_kind == "store":
                return prior
        return None

    def _record_race(
        self,
        element: tuple[str, int],
        first: tuple[str, int, int],
        second: tuple[str, int, int],
    ) -> None:
        record = RaceRecord(array=element[0], index=element[1], first=first, second=second)
        self.report.races.append(record)
        _count_finding("race")
        if self.halt_on_violation:
            raise RaceError(
                f"cross-warp data race: {record}",
                array=record.array,
                index=record.index,
                lanes=[first[2], second[2]],
                warps=[first[1], second[1]],
                check="cross-warp-race",
                coord=(record.array, record.index, first[1], second[1]),
            )


# -- whole-kernel driver ------------------------------------------------------


@dataclass
class KernelSanitizeResult:
    """Outcome of one kernel executed under the sanitizer."""

    kernel: str
    #: Whether a lane-accurate ``simulate`` path was exercised.
    simulated: bool
    #: max |y - csr.matvec(x)| over every executed path.
    max_error: float
    report: SanitizerReport

    @property
    def clean(self) -> bool:
        return self.report.clean


def sanitize_kernel(
    kernel_name: str,
    csr,
    x: np.ndarray,
    *,
    halt_on_violation: bool = True,
) -> KernelSanitizeResult:
    """Run one registered kernel under the sanitizer on a small matrix.

    ``prepare`` runs uninstrumented (format conversion is host-side);
    the NUMERIC and, where the kernel declares the capability, the
    SIMULATED observation paths execute through
    :func:`repro.exec.execute` with the sanitizer installed as a tracer.
    Kernels whose numeric path never touches the simulator trivially
    produce an empty access log — the sanitizer then certifies only
    their simulated path, which is exactly the part that models warp
    behavior.
    """
    from repro.exec import ExecutionMode, execute
    from repro.kernels import get_kernel

    kernel = get_kernel(kernel_name)
    prepared = kernel.prepare(csr)
    reference = csr.matvec(np.asarray(x, dtype=np.float32))
    sanitizer = Sanitizer(halt_on_violation=halt_on_violation)
    tracers = (sanitizer,)
    result = execute(kernel, prepared, x, tracers=tracers)
    max_error = float(np.abs(result.y - reference).max(initial=0.0))
    simulated = False
    if kernel.capabilities.simulate:
        sim = execute(kernel, prepared, x, mode=ExecutionMode.SIMULATED, tracers=tracers)
        simulated = True
        max_error = max(max_error, float(np.abs(sim.y - reference).max(initial=0.0)))
    return KernelSanitizeResult(
        kernel=kernel_name,
        simulated=simulated,
        max_error=max_error,
        report=sanitizer.report,
    )


def small_suite(seed: int = 0) -> dict[str, tuple]:
    """Deterministic verification-scale matrices for sanitizer sweeps.

    Returns ``{name: (csr, x)}`` with fp16-exact values so tensor-core
    kernels reproduce the reference matvec bit-for-bit modulo fp32
    accumulation order.  Shapes are deliberately awkward (non-square,
    non-multiples of the 8-element block) to exercise edge warps.
    """
    from repro.formats.coo import COOMatrix
    from repro.formats.csr import CSRMatrix
    from repro.matrices.generators import fp16_exact_values

    rng = np.random.default_rng(seed)
    suite: dict[str, tuple] = {}
    for name, nrows, ncols, density in (
        ("random-40x56", 40, 56, 0.15),
        ("random-93x61", 93, 61, 0.05),
    ):
        mask = rng.random((nrows, ncols)) < density
        vals = fp16_exact_values(rng, nrows * ncols).reshape(nrows, ncols)
        dense = np.where(mask, vals, 0.0).astype(np.float32)
        csr = CSRMatrix.from_coo(COOMatrix.from_dense(dense))
        x = fp16_exact_values(rng, ncols)
        suite[name] = (csr, x)
    return suite

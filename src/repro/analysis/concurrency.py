"""Static thread-safety auditor for the serving-layer packages.

ROADMAP item 1 turns :class:`~repro.engine.SpMVEngine` into a
concurrent front-end, and item 2 fans shards across worker pools.
Neither is safe unless the state those layers share — the operand
cache, the submit/flush queue, the metrics registry, the breaker
windows — is written under a declared lock discipline.  This module
enforces that discipline *statically*, the way
:mod:`repro.analysis.lint` enforces the warp-synchronous idiom: an AST
pass over the audited packages (:data:`AUDITED_PACKAGES`), no runtime
import of the code it checks.

Three analyses, reported as structured :class:`ConcurrencyFinding`\\ s:

**Shared-state discovery.**  Any of the following is shared mutable
state and must carry a contract:

* an instance attribute *written* (``self.x = ...``, ``self.x += ...``,
  ``self.x[...] = ...``, ``self.x.y = ...``, ``del self.x[...]``)
  outside ``__init__`` / ``__post_init__`` → ``unguarded-mutable-state``
  unless declared ``guarded-by`` or waived;
* a module-level global bound to a mutable literal or a known mutable
  constructor (``list``/``dict``/``set``/``OrderedDict``/``deque``/
  ``defaultdict``/``Counter``) → ``mutable-global`` unless waived;
* a class attribute bound the same way (shared across every instance)
  → ``mutable-class-attribute`` unless waived.

**Lock-contract checking.**  A class declares its contract with a
pragma trailing (or standing immediately above) the field's
``__init__`` assignment::

    self._entries = OrderedDict()   # concurrency: guarded-by(self._lock)

Every read or write of a guarded field in any other method must then be
lexically inside a ``with self._lock:`` block (the exact expression
named by the pragma); an access outside it is a
``guarded-field-escape``.  Deliberately unshared (or deliberately
lock-free) state is waived with a justification, mirroring the lint's
waiver grammar::

    self._local = threading.local()   # concurrency: not-shared -- per-thread live stack

A waiver without the ``-- why`` text is itself a finding
(``missing-justification``) and waives nothing.

**Lock-ordering.**  Every lexically nested acquisition (``with a_lock:``
containing ``with b_lock:``) contributes an edge ``a → b`` to a
process-wide lock graph; a cycle in that graph is a potential deadlock
and is reported as ``lock-order-cycle``.  Re-entrant re-acquisition of
the same lock is not an edge (the hardened classes use ``RLock`` where
they self-nest through helper calls).

Known limitations, by design (mirroring the lint): the checker is
lexical and intra-procedural — a guarded access inside a helper that
callers invoke while holding the lock is still flagged (pass the data,
not the field: see ``OperandCache._publish_residency``), and lock
acquisitions across call boundaries do not contribute ordering edges.
Accesses from *outside* the owning class are invisible; the contract
covers the class's own methods, which is where the mutation lives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.astwalk import (
    format_findings,
    iter_python_files,
    parse_module,
    sort_findings,
)

__all__ = [
    "AUDITED_PACKAGES",
    "CONCURRENCY_RULES",
    "ConcurrencyFinding",
    "audit_package",
    "audit_paths",
    "audit_source",
    "format_findings",
]

#: ``src/repro`` sub-packages the serving arc touches from more than one
#: thread; ``repro.cli analyze --concurrency`` audits exactly these.
AUDITED_PACKAGES: tuple[str, ...] = (
    "engine",
    "exec",
    "obs",
    "persist",
    "plan",
    "resilience",
    "robustness",
    "serve",
)

CONCURRENCY_RULES: dict[str, str] = {
    "unguarded-mutable-state": (
        "instance attribute written outside __init__ with no guarded-by "
        "contract and no not-shared waiver"
    ),
    "guarded-field-escape": (
        "read/write of a guarded field lexically outside its declared "
        "`with <lock>:` block"
    ),
    "mutable-global": (
        "module-level mutable global; guard it behind an owning object "
        "or waive it as not-shared with a justification"
    ),
    "mutable-class-attribute": (
        "mutable class attribute shared by every instance; make it "
        "immutable or waive it as not-shared"
    ),
    "lock-order-cycle": (
        "nested lock acquisitions form a cycle; two threads taking the "
        "locks in opposite orders can deadlock"
    ),
    "missing-justification": (
        "a not-shared waiver requires `-- why`; an unjustified waiver "
        "waives nothing"
    ),
    "bad-pragma": "unrecognized or dangling `# concurrency:` pragma",
    "parse-error": "the file could not be parsed as Python",
}


@dataclass(frozen=True)
class ConcurrencyFinding:
    """One thread-safety violation at a source location."""

    path: str
    line: int
    rule: str
    message: str
    cls: str = ""
    field: str = ""

    def __str__(self) -> str:
        where = ".".join(p for p in (self.cls, self.field) if p)
        subject = f" {where}:" if where else ""
        return f"{self.path}:{self.line}: [{self.rule}]{subject} {self.message}"


# -- pragma grammar -----------------------------------------------------------

_PRAGMA = re.compile(
    r"#\s*concurrency:\s*(?P<kind>guarded-by\((?P<lock>[^)]+)\)|not-shared|[\w\-()./ ]*)"
    r"(?P<rest>.*)"
)

#: Constructors whose module-level / class-level result is mutable state.
_MUTABLE_CALLS = {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter"}

#: Methods whose writes *create* state rather than share it.
_INIT_METHODS = {"__init__", "__post_init__"}


@dataclass(frozen=True)
class _Pragma:
    """One resolved pragma: what it declares and the code line it covers."""

    kind: str  # "guarded-by" | "not-shared"
    lock: str | None
    target_line: int
    pragma_line: int


def _normalize(expr: str) -> str:
    return "".join(expr.split())


def _resolve_pragmas(source: str, path: str) -> tuple[list[_Pragma], list[ConcurrencyFinding]]:
    """Parse every ``# concurrency:`` pragma, resolving placement.

    A pragma trailing code covers its own line; a standalone pragma
    covers the next code line (comment continuation lines in between
    are fine) — identical to the lint's waiver placement rules.
    """
    lines = source.splitlines()
    pragmas: list[_Pragma] = []
    findings: list[ConcurrencyFinding] = []
    for lineno, text in enumerate(lines, start=1):
        if "# concurrency:" not in text and "#concurrency:" not in text:
            continue
        match = _PRAGMA.search(text)
        if match is None:  # pragma: no cover - regex accepts any tail
            continue
        kind = match.group("kind").strip()
        before = text[: match.start()].strip()
        if before and not before.startswith("#"):
            target = lineno
        else:
            target = None
            for later in range(lineno, len(lines)):
                candidate = lines[later].strip()
                if candidate and not candidate.startswith("#"):
                    target = later + 1
                    break
        if target is None:
            findings.append(
                ConcurrencyFinding(path, lineno, "bad-pragma", "pragma covers no code line")
            )
            continue
        if kind.startswith("guarded-by("):
            pragmas.append(_Pragma("guarded-by", _normalize(match.group("lock")), target, lineno))
        elif kind == "not-shared":
            justification = match.group("rest").strip()
            if not justification.startswith("--") or not justification.lstrip("- ").strip():
                findings.append(
                    ConcurrencyFinding(
                        path,
                        lineno,
                        "missing-justification",
                        "not-shared waiver without a `-- why` justification",
                    )
                )
                continue
            pragmas.append(_Pragma("not-shared", None, target, lineno))
        else:
            findings.append(
                ConcurrencyFinding(
                    path,
                    lineno,
                    "bad-pragma",
                    f"unrecognized concurrency pragma {kind!r}; expected "
                    "guarded-by(<lock>) or not-shared -- <why>",
                )
            )
    return pragmas, findings


# -- AST helpers --------------------------------------------------------------


def _is_dunder(name: str) -> bool:
    """``__all__``-style names: module/class protocol slots, written once
    at definition time by idiom, never mutated afterwards."""
    return name.startswith("__") and name.endswith("__")


def _is_mutable_value(node: ast.expr | None) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_CALLS
    return False


def _self_field(node: ast.expr) -> str | None:
    """The ``X`` of a ``self.X``-rooted expression, else ``None``.

    Descends through attribute/subscript chains so ``self.stats.hits``
    and ``self._entries[key]`` both resolve to their base field — a
    write through either mutates state reachable from ``self``.
    """
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        parent = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(parent, ast.Name)
            and parent.id == "self"
        ):
            return node.attr
        node = parent
    return None


def _looks_like_lock(expr_text: str) -> bool:
    """Heuristic: is this ``with``-context expression a mutex?

    Covers ``Lock``/``RLock`` naming conventions and condition
    variables (``threading.Condition`` wraps a lock, and ``with cond:``
    acquires it — the serving front-end guards its bookkeeping that
    way so waiters and mutators share one mutex).
    """
    lowered = expr_text.lower()
    return "lock" in lowered or "cond" in lowered


@dataclass(frozen=True)
class _Access:
    field: str
    line: int
    write: bool
    held: tuple[str, ...]  # normalized lock expressions lexically held


class _MethodScanner(ast.NodeVisitor):
    """Collect ``self.<field>`` accesses and lock-order edges in one method.

    Tracks the lexically held ``with``-acquired locks; nested function
    definitions reset the stack (their bodies run when called, not where
    they are written).
    """

    def __init__(self, lock_edges: list):
        self.accesses: list[_Access] = []
        self.with_lines: dict[str, int] = {}
        self._held: list[str] = []
        self._edges = lock_edges

    # -- lock tracking -------------------------------------------------------
    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            try:
                text = _normalize(ast.unparse(item.context_expr))
            except Exception:  # pragma: no cover - unparse is total on parsed trees
                continue
            if _looks_like_lock(text):
                for held in self._held:
                    if held != text:
                        self._edges.append((held, text, node.lineno))
                self._held.append(text)
                acquired.append(text)
                self.with_lines.setdefault(text, node.lineno)
            self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self._held.pop()

    visit_AsyncWith = visit_With

    def _scan_detached(self, body) -> None:
        held, self._held = self._held, []
        for stmt in body:
            self.visit(stmt)
        self._held = held

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scan_detached(node.body)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._scan_detached([ast.Expr(value=node.body)])

    # -- access collection ---------------------------------------------------
    def _record(self, field: str | None, line: int, write: bool) -> None:
        if field is not None:
            self.accesses.append(_Access(field, line, write, tuple(self._held)))

    def _record_targets(self, targets, line: int) -> None:
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                self._record_targets(target.elts, line)
            elif isinstance(target, ast.Starred):
                self._record_targets([target.value], line)
            else:
                self._record(_self_field(target), line, write=True)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_targets(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_targets([node.target], node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_targets([node.target], node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record_targets(node.targets, node.lineno)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            self._record(node.attr, node.lineno, write=isinstance(node.ctx, ast.Store))
        self.generic_visit(node)


# -- per-module audit ---------------------------------------------------------


def _init_fields(cls: ast.ClassDef) -> dict[str, int]:
    """``{field: lineno}`` for every ``self.X = ...`` in init methods."""
    fields: dict[str, int] = {}
    for method in cls.body:
        if isinstance(method, ast.FunctionDef) and method.name in _INIT_METHODS:
            for node in ast.walk(method):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        fields.setdefault(target.attr, target.lineno)
    return fields


def _audit_module(
    source: str, path: str
) -> tuple[list[ConcurrencyFinding], list[tuple[str, str, str, int]]]:
    """Audit one module; returns unwaived findings and lock-graph edges.

    Edges are ``(from_token, to_token, path, line)`` with tokens
    qualified by class name, so ``self._lock`` in two classes stays two
    distinct locks in the process-wide graph.
    """
    tree, error = parse_module(source, path)
    if tree is None:
        assert error is not None
        return (
            [ConcurrencyFinding(path, error.lineno or 0, "parse-error", str(error.msg))],
            [],
        )
    pragmas, findings = _resolve_pragmas(source, path)
    guards = {p.target_line: p for p in pragmas if p.kind == "guarded-by"}
    waived_lines = {p.target_line for p in pragmas if p.kind == "not-shared"}
    claimed_pragma_lines: set[int] = set()
    edges: list[tuple[str, str, str, int]] = []

    def waived(line: int) -> bool:
        return line in waived_lines

    # -- module-level globals -------------------------------------------------
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not targets or not _is_mutable_value(value):
            continue
        if waived(stmt.lineno):
            continue
        names = [
            t.id
            for t in targets
            if isinstance(t, ast.Name) and not _is_dunder(t.id)
        ]
        if names:
            findings.append(
                ConcurrencyFinding(
                    path,
                    stmt.lineno,
                    "mutable-global",
                    "module-level mutable global; every importing thread shares it",
                    field=", ".join(names),
                )
            )

    # -- classes --------------------------------------------------------------
    class_map = {n.name: n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)}

    def class_chain(cls: ast.ClassDef) -> list[ast.ClassDef]:
        """``cls`` plus every same-module base, subclass-first.

        A subclass inherits the base's ``__init__`` contract (``Counter``
        writes the ``_series`` that ``Metric.__init__`` declared
        guarded); bases defined in other modules are invisible, one more
        facet of the documented lexical scope.
        """
        chain: list[ast.ClassDef] = []
        queue, seen = [cls], set()
        while queue:
            current = queue.pop(0)
            if current.name in seen:
                continue
            seen.add(current.name)
            chain.append(current)
            for base in current.bases:
                if isinstance(base, ast.Name) and base.id in class_map:
                    queue.append(class_map[base.id])
        return chain

    for cls in class_map.values():
        init_lines: dict[str, int] = {}
        for member in class_chain(cls):
            for field_name, lineno in _init_fields(member).items():
                init_lines.setdefault(field_name, lineno)
        contracts: dict[str, str] = {}
        exempt_fields: set[str] = set()
        for field_name, lineno in init_lines.items():
            pragma = guards.get(lineno)
            if pragma is not None:
                contracts[field_name] = pragma.lock or ""
                claimed_pragma_lines.add(pragma.pragma_line)
            if waived(lineno):
                exempt_fields.add(field_name)

        # class attributes bound to mutable values
        for stmt in cls.body:
            targets, value = [], None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if not targets or not _is_mutable_value(value) or waived(stmt.lineno):
                continue
            names = [
                t.id
                for t in targets
                if isinstance(t, ast.Name) and not _is_dunder(t.id)
            ]
            if names:
                findings.append(
                    ConcurrencyFinding(
                        path,
                        stmt.lineno,
                        "mutable-class-attribute",
                        "mutable class attribute is shared by every instance",
                        cls=cls.name,
                        field=", ".join(names),
                    )
                )

        # scan every non-init method
        local_edges: list[tuple[str, str, int]] = []
        accesses: list[_Access] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in _INIT_METHODS:
                continue
            scanner = _MethodScanner(local_edges)
            for stmt in method.body:
                scanner.visit(stmt)
            accesses.extend(scanner.accesses)

        def qualify(token: str) -> str:
            return f"{cls.name}.{token}" if token.startswith("self.") else token

        for held, acquired, lineno in local_edges:
            edges.append((qualify(held), qualify(acquired), path, lineno))

        flagged: set[tuple[str, int, str]] = set()

        def flag(rule: str, access: _Access, message: str) -> None:
            key = (access.field, access.line, rule)
            if key in flagged or waived(access.line):
                return
            flagged.add(key)
            findings.append(
                ConcurrencyFinding(
                    path, access.line, rule, message, cls=cls.name, field=access.field
                )
            )

        for access in accesses:
            if access.field in exempt_fields:
                continue
            contract = contracts.get(access.field)
            if contract is not None:
                if contract not in access.held:
                    kind = "write" if access.write else "read"
                    flag(
                        "guarded-field-escape",
                        access,
                        f"{kind} outside `with {contract}:` (declared guarded-by)",
                    )
            elif access.write:
                flag(
                    "unguarded-mutable-state",
                    access,
                    "written outside __init__ with no guarded-by contract; "
                    "declare `# concurrency: guarded-by(<lock>)` on its "
                    "__init__ assignment or waive it as not-shared",
                )

    # guarded-by pragmas that attached to no __init__ field declaration
    for pragma in pragmas:
        if pragma.kind == "guarded-by" and pragma.pragma_line not in claimed_pragma_lines:
            findings.append(
                ConcurrencyFinding(
                    path,
                    pragma.pragma_line,
                    "bad-pragma",
                    f"guarded-by({pragma.lock}) attaches to no `self.<field> = ...` "
                    "assignment in an __init__/__post_init__ method",
                )
            )

    return findings, edges


# -- lock-order cycle detection -----------------------------------------------


def _lock_cycles(
    edges: list[tuple[str, str, str, int]]
) -> list[ConcurrencyFinding]:
    """DFS over the merged acquisition graph; one finding per cycle."""
    graph: dict[str, dict[str, tuple[str, int]]] = {}
    for src, dst, path, line in edges:
        graph.setdefault(src, {}).setdefault(dst, (path, line))
        graph.setdefault(dst, {})

    findings: list[ConcurrencyFinding] = []
    seen_cycles: set[frozenset[str]] = set()
    color: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
    stack: list[str] = []

    def visit(node: str) -> None:
        color[node] = 1
        stack.append(node)
        for succ in graph[node]:
            if color.get(succ, 0) == 0:
                visit(succ)
            elif color.get(succ) == 1:
                cycle = stack[stack.index(succ):] + [succ]
                key = frozenset(cycle)
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    path, line = graph[node][succ]
                    findings.append(
                        ConcurrencyFinding(
                            path,
                            line,
                            "lock-order-cycle",
                            "nested acquisitions form the cycle "
                            + " -> ".join(cycle)
                            + "; a thread holding the later lock can deadlock "
                            "one holding the earlier",
                        )
                    )
        stack.pop()
        color[node] = 2

    for node in sorted(graph):
        if color.get(node, 0) == 0:
            visit(node)
    return findings


# -- public API ---------------------------------------------------------------


def audit_source(source: str, path: str = "<string>") -> list[ConcurrencyFinding]:
    """Audit one module's source text; returns unwaived findings."""
    findings, edges = _audit_module(source, path)
    findings.extend(_lock_cycles(edges))
    return sort_findings(findings)


def audit_paths(paths) -> list[ConcurrencyFinding]:
    """Audit files and/or directory trees, merging lock graphs.

    The acquisition graph spans every audited file, so an A→B edge in
    one module and a B→A edge in another still close a reported cycle.
    """
    findings: list[ConcurrencyFinding] = []
    edges: list[tuple[str, str, str, int]] = []
    for file in iter_python_files(paths):
        file_findings, file_edges = _audit_module(
            file.read_text(encoding="utf-8"), str(file)
        )
        findings.extend(file_findings)
        edges.extend(file_edges)
    findings.extend(_lock_cycles(edges))
    return sort_findings(findings)


def audit_package(package_root) -> list[ConcurrencyFinding]:
    """Audit :data:`AUDITED_PACKAGES` under an on-disk ``repro`` root.

    The root is passed in (``Path(repro.__path__[0])`` from callers that
    may import the package) because this module itself must stay
    importable without pulling in the code it audits.
    """
    root = Path(package_root)
    return audit_paths([root / name for name in AUDITED_PACKAGES if (root / name).is_dir()])

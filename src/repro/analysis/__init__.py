"""Execution-side correctness tooling for the simulated GPU.

Three prongs, all reachable through ``python -m repro.cli analyze``:

* :mod:`repro.analysis.sanitizer` — the *dynamic* prong: a
  :class:`~repro.gpu.instrument.Tracer` that watches every warp memory
  instruction and fragment layout-table consultation while a kernel runs
  on the lane-accurate simulator, flagging intra-warp and cross-warp data
  races, §3 lane-ownership violations, and producing an achieved-vs-ideal
  coalescing report per device array.
* :mod:`repro.analysis.lint` — the *static kernel* prong: an AST pass
  over the kernel sources enforcing the warp-synchronous idioms the
  simulator's counters (and the paper's traffic model) rely on.
* :mod:`repro.analysis.concurrency` — the *static thread-safety* prong:
  an AST audit of the serving-layer packages enforcing the declared
  lock contracts (``# concurrency: guarded-by(...)``) and reporting
  unguarded shared state and lock-ordering cycles, ahead of the
  ROADMAP item-1 concurrent front-end.

Shared traversal/reporting plumbing lives in
:mod:`repro.analysis.astwalk`; the boundary gate
(``scripts/check_exec_boundaries.py``) builds on it too.

PR 1 gave the *data* side deep verifiers (``verify(deep=True)``); this
package is the *execution* side counterpart, so a refactor that breaks a
kernel's warp behavior fails loudly with lane coordinates instead of
silently skewing modeled runtimes.
"""

from repro.analysis.concurrency import (
    AUDITED_PACKAGES,
    CONCURRENCY_RULES,
    ConcurrencyFinding,
    audit_package,
    audit_paths,
    audit_source,
)
from repro.analysis.lint import (
    LintFinding,
    RULES,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import (
    CoalescingEntry,
    KernelSanitizeResult,
    OwnershipRecord,
    RaceRecord,
    Sanitizer,
    SanitizerReport,
    sanitize_kernel,
    small_suite,
)

__all__ = [
    "AUDITED_PACKAGES",
    "CONCURRENCY_RULES",
    "CoalescingEntry",
    "ConcurrencyFinding",
    "KernelSanitizeResult",
    "LintFinding",
    "OwnershipRecord",
    "RULES",
    "RaceRecord",
    "Sanitizer",
    "SanitizerReport",
    "audit_package",
    "audit_paths",
    "audit_source",
    "format_findings",
    "lint_paths",
    "lint_source",
    "sanitize_kernel",
    "small_suite",
]

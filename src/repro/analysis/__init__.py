"""Execution-side correctness tooling for the simulated GPU.

Two prongs, both reachable through ``python -m repro.cli analyze``:

* :mod:`repro.analysis.sanitizer` — the *dynamic* prong: a
  :class:`~repro.gpu.instrument.Tracer` that watches every warp memory
  instruction and fragment layout-table consultation while a kernel runs
  on the lane-accurate simulator, flagging intra-warp and cross-warp data
  races, §3 lane-ownership violations, and producing an achieved-vs-ideal
  coalescing report per device array.
* :mod:`repro.analysis.lint` — the *static* prong: an AST pass over the
  kernel sources enforcing the warp-synchronous idioms the simulator's
  counters (and the paper's traffic model) rely on.

PR 1 gave the *data* side deep verifiers (``verify(deep=True)``); this
package is the *execution* side counterpart, so a refactor that breaks a
kernel's warp behavior fails loudly with lane coordinates instead of
silently skewing modeled runtimes.
"""

from repro.analysis.lint import (
    LintFinding,
    RULES,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.analysis.sanitizer import (
    CoalescingEntry,
    KernelSanitizeResult,
    OwnershipRecord,
    RaceRecord,
    Sanitizer,
    SanitizerReport,
    sanitize_kernel,
    small_suite,
)

__all__ = [
    "CoalescingEntry",
    "KernelSanitizeResult",
    "LintFinding",
    "OwnershipRecord",
    "RULES",
    "RaceRecord",
    "Sanitizer",
    "SanitizerReport",
    "format_findings",
    "lint_paths",
    "lint_source",
    "sanitize_kernel",
    "small_suite",
]

"""Shared AST traversal and reporting helpers for the static gates.

Three static analyses walk the tree the same way — the kernel lint
(:mod:`repro.analysis.lint`), the thread-safety auditor
(:mod:`repro.analysis.concurrency`) and the execution-boundary gate
(``scripts/check_exec_boundaries.py``).  This module owns the parts
they were each reimplementing: file discovery, parse-with-findings,
import extraction, and grep-friendly finding output.

Deliberately stdlib-only: the static analyses inspect
``src/repro`` at the AST level and must never import the code they
audit (the ``IMPORT_FENCES`` entry for ``analysis/astwalk`` in
``scripts/check_exec_boundaries.py`` enforces this).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "format_findings",
    "iter_python_files",
    "module_imports",
    "parse_module",
    "sort_findings",
]


def iter_python_files(paths: Iterable) -> list[Path]:
    """Expand files and/or directory trees into ``*.py`` files.

    Directories are walked recursively in sorted order; explicit file
    entries are kept as given, so callers can lint a single snippet.
    """
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def parse_module(source: str, path: str = "<string>") -> tuple[ast.Module | None, SyntaxError | None]:
    """Parse one module; returns ``(tree, None)`` or ``(None, error)``.

    Callers turn the error into their own structured ``parse-error``
    finding, so every gate reports unparseable files the same way
    instead of crashing mid-walk.
    """
    try:
        return ast.parse(source), None
    except SyntaxError as exc:
        return None, exc


def module_imports(tree: ast.AST) -> Iterator[tuple[str, int]]:
    """Yield ``(module_name, lineno)`` for every absolute import.

    Both ``import a.b`` and ``from a.b import c`` yield ``a.b``;
    relative imports (``from . import x``) are skipped — the boundary
    gates reason about absolute package names only.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name, node.lineno
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            yield node.module, node.lineno


def sort_findings(findings: Sequence) -> list:
    """Stable location order: ``(path, line, col-if-any)``."""
    return sorted(findings, key=lambda f: (f.path, f.line, getattr(f, "col", 0)))


def format_findings(findings: Sequence) -> str:
    """One ``path:line...: [rule] message`` line per finding."""
    return "\n".join(str(f) for f in findings)
